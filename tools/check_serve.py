#!/usr/bin/env python3
"""Service-mode smoke gate (docs/OBSERVABILITY.md, "Service mode").

CI's ``serve-smoke`` leg runs this end-to-end harness:

1. boot ``repro360 serve`` as a subprocess on an ephemeral port;
2. submit a short fleet job over HTTP and poll it to completion;
3. scrape ``/metrics`` and gate it with ``tools/check_metrics.py``;
4. validate the job's run directory with ``tools/check_run_ledger.py``;
5. **byte-diff** the job's registry and payload against a direct
   ``repro360 fleet --json --metrics-output`` run of the same spec —
   the server and the CLI share one execution path, so the artifacts
   must be identical;
6. resubmit the identical spec and require an instant ``cache_hit``
   replay (plus a non-zero ``repro_service_jobs_cache_hits_total``).

Usage::

    PYTHONPATH=src python tools/check_serve.py [--duration 2.0]

Exits 0 when every check passes, 1 otherwise (listing every problem).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "tools"))

from check_metrics import check as check_openmetrics  # noqa: E402
from check_run_ledger import check_run  # noqa: E402

from repro.service.client import ServiceClient, ServiceError  # noqa: E402


def spec_argv(spec):
    """The ``repro360 fleet`` argv equivalent of a fleet job spec."""
    argv = ["fleet", "--json"]
    argv += ["--calls", ",".join(str(v) for v in spec["calls"])]
    argv += ["--duration", str(spec["duration"])]
    argv += ["--warmup", str(spec["warmup"])]
    if spec.get("batch"):
        argv.append("--batch")
    return argv


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0],
    )
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--warmup", type=float, default=0.5)
    parser.add_argument("--timeout", type=float, default=300.0)
    args = parser.parse_args(argv)

    spec = {
        "kind": "fleet",
        "calls": [1],
        "duration": args.duration,
        "warmup": args.warmup,
        "batch": True,
    }
    problems = []
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        run_root = Path(tmp) / "runs"
        env["REPRO_CACHE_DIR"] = str(Path(tmp) / "cache")
        server = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
             "--run-root", str(run_root)],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        try:
            url = server.stdout.readline().strip()
            if not url.startswith("http"):
                print(f"server did not announce a URL (got {url!r})")
                return 1
            client = ServiceClient(url, timeout=30.0)
            client.healthz()
            print(f"server up at {url}")

            # 2. submit and poll to completion.
            job = client.submit(spec)
            record = client.wait(job["id"], timeout=args.timeout)
            print(
                f"job {record['id']} -> {record['state']} "
                f"({record['done']}/{record['total']})"
            )
            if record["state"] != "done":
                problems.append(
                    f"job finished {record['state']!r}: {record.get('error')}"
                )
            result = record.get("result") or {}

            # 3. the /metrics scrape passes the catalogue gate.
            text = client.metrics_text()
            for problem in check_openmetrics(text):
                problems.append(f"/metrics: {problem}")
            if "repro_service_jobs_completed_total 1" not in text:
                problems.append("/metrics: expected jobs_completed_total 1")
            print(f"/metrics scrape: {len(text.splitlines())} lines, gated")

            # 4. the run directory honours the ledger contract.
            run_dir = record.get("run_dir")
            if run_dir:
                print(check_run(Path(run_dir), problems))
                events = client.events(record["id"])
                if not events:
                    problems.append("no heartbeat events served for the job")
            else:
                problems.append("job record carries no run_dir")

            # 5. byte-diff against the direct CLI invocation.
            registry_path = Path(tmp) / "direct_registry.json"
            direct = subprocess.run(
                [sys.executable, "-m", "repro.cli"] + spec_argv(spec)
                + ["--metrics-output", str(registry_path)],
                capture_output=True, text=True, env=env,
            )
            if direct.returncode != 0:
                problems.append(f"direct CLI run failed: {direct.stderr}")
            else:
                cli_payload = json.loads(direct.stdout)
                if result.get("payload") != cli_payload:
                    problems.append("job payload != direct `fleet --json`")
                cli_registry = json.loads(registry_path.read_text())
                if result.get("registry") != cli_registry:
                    problems.append(
                        "job registry != direct `fleet --metrics-output`"
                    )
                else:
                    print("server artifacts == direct CLI run (byte-equal)")

            # 6. identical resubmission replays from cache.
            replay = client.submit(spec)
            if not replay.get("cache_hit"):
                replay = client.wait(replay["id"], timeout=30.0)
            if not replay.get("cache_hit"):
                problems.append("identical resubmission did not cache-hit")
            elif replay.get("result", result) != result and replay["result"]:
                problems.append("cache-hit replay returned a different result")
            else:
                print(f"resubmission {replay['id']}: cache_hit=true")
            text = client.metrics_text()
            if "repro_service_jobs_cache_hits_total 1" not in text:
                problems.append("/metrics: expected jobs_cache_hits_total 1")
        except ServiceError as error:
            problems.append(f"service error: {error}")
        finally:
            server.terminate()
            try:
                server.wait(10.0)
            except subprocess.TimeoutExpired:
                server.kill()

    for problem in problems:
        print(problem)
    print(f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
