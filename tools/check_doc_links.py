#!/usr/bin/env python3
"""Check that relative markdown links in the repo's docs resolve.

Walks every tracked ``*.md`` file (skipping caches, virtualenvs and the
git directory), extracts inline ``[text](target)`` links, and verifies
that each relative target exists on disk. External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#...``) are ignored; a
``path#fragment`` target is checked for the path only.

Usage::

    python tools/check_doc_links.py [root]

Exits 0 when all links resolve, 1 otherwise (listing every dead link).
"""

import re
import sys
from pathlib import Path

SKIP_DIRS = {".git", ".repro_cache", "__pycache__", ".pytest_cache", "node_modules", ".venv"}
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
IGNORED_PREFIXES = ("http://", "https://", "mailto:", "#")


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def dead_links(path: Path):
    """Yield (line_number, target) for each unresolvable relative link."""
    text = path.read_text(encoding="utf-8")
    for number, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(IGNORED_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                yield number, target


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    failures = []
    checked = 0
    for path in iter_markdown(root):
        checked += 1
        for number, target in dead_links(path):
            failures.append(f"{path.relative_to(root)}:{number}: dead link -> {target}")
    for failure in failures:
        print(failure)
    print(f"{checked} markdown file(s) checked, {len(failures)} dead link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
