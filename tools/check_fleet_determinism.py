#!/usr/bin/env python3
"""Serial == sharded fleet-registry gate (CI ``fleet-smoke`` helper).

The fleet determinism contract (docs/FLEET.md) says worker count may
change wall clock only: a sweep sharded across a process pool must
produce the exact results of the serial run.  This helper enforces the
contract end to end through the CLI — it runs the same ``repro360
fleet`` sweep twice, at ``--jobs 1`` and ``--jobs 2``, captures each
run's deterministic registry snapshot (``--metrics-output``, which
writes counters + histograms only; see
:func:`repro.experiments.fleet.deterministic_registry_dict`), and fails
unless the two files are byte-for-byte identical::

    python tools/check_fleet_determinism.py            # event engine
    python tools/check_fleet_determinism.py --batch    # batched cells

``--batch`` checks the batched cell engine's sharding unit instead
(whole cell blocks, :class:`repro.experiments.parallel.CellBlockTask`)
— same contract, different partition: a point's cells are split into
contiguous blocks per worker, so the gate proves block boundaries never
leak into results.

Exits 0 when the registries match, 1 on divergence or a failed sweep.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_sweep(args: argparse.Namespace, jobs: int, output: Path) -> int:
    """Run one fleet sweep through the CLI; returns the exit status."""
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "fleet",
        "--scenario",
        args.scenario,
        "--calls",
        args.calls,
        "--cells",
        str(args.cells),
        "--duration",
        str(args.duration),
        "--warmup",
        str(args.warmup),
        "--seed",
        str(args.seed),
        "--jobs",
        str(jobs),
        "--metrics-output",
        str(output),
    ]
    if args.batch:
        command.append("--batch")
    completed = subprocess.run(
        command,
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        capture_output=True,
        text=True,
    )
    if completed.returncode != 0:
        print(f"fleet determinism: sweep at --jobs {jobs} failed:")
        sys.stdout.write(completed.stderr)
    return completed.returncode


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", default="cellular")
    parser.add_argument("--calls", default="4", help="comma-separated calls-per-cell")
    parser.add_argument("--cells", type=int, default=2)
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--warmup", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--batch",
        action="store_true",
        help="check the batched cell engine (cell-block sharding)",
    )
    args = parser.parse_args(argv)
    engine = "batched cell engine" if args.batch else "event engine"
    with tempfile.TemporaryDirectory() as scratch:
        serial = Path(scratch) / "fleet_serial.json"
        sharded = Path(scratch) / "fleet_sharded.json"
        if run_sweep(args, jobs=1, output=serial) != 0:
            return 1
        if run_sweep(args, jobs=2, output=sharded) != 0:
            return 1
        serial_bytes = serial.read_bytes()
        sharded_bytes = sharded.read_bytes()
    if serial_bytes != sharded_bytes:
        print(f"fleet determinism ({engine}): FAIL — registries diverge")
        print(f"  serial:  {len(serial_bytes)} bytes")
        print(f"  sharded: {len(sharded_bytes)} bytes")
        return 1
    print(
        f"fleet determinism ({engine}): OK — serial and sharded "
        f"registries are byte-identical ({len(serial_bytes)} bytes)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
