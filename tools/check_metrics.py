#!/usr/bin/env python3
"""Validate a ``repro360 metrics --format openmetrics`` export.

A small OpenMetrics text-format parser plus a catalogue-drift gate, in
the same spirit as ``tools/check_doc_links.py``: CI runs a tiny metered
sweep, exports OpenMetrics, and this script fails the build when the
export stops parsing or drifts from ``repro.obs``'s METRIC_CATALOGUE /
SPAN_CATALOGUE (renamed metric, changed kind, broken histogram
invariants, missing ``# EOF``).

Checks:

- every line is a valid ``# TYPE`` / ``# HELP`` comment or sample;
- the file ends with ``# EOF`` (the OpenMetrics terminator);
- every family maps back to a catalogue metric or span name and its
  advertised type matches the catalogue kind (counter/gauge/histogram,
  spans are summaries);
- counter samples use the ``_total`` suffix;
- histogram ``_bucket`` series are cumulative (non-decreasing over
  increasing ``le``), end with ``le="+Inf"``, and the +Inf bucket
  equals ``_count``.

Usage::

    PYTHONPATH=src python tools/check_metrics.py metrics.txt
    ... | PYTHONPATH=src python tools/check_metrics.py -

Exits 0 when the export is clean, 1 otherwise (listing every problem).
"""

import re
import sys
from pathlib import Path

# Allow running from the repo root without PYTHONPATH.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.metrics.export import openmetrics_family  # noqa: E402
from repro.obs.metrics import METRIC_CATALOGUE  # noqa: E402
from repro.obs.spans import SPAN_CATALOGUE  # noqa: E402

TYPE_RE = re.compile(r"^# TYPE (?P<family>[a-zA-Z_:][a-zA-Z0-9_:]*) (?P<type>\w+)$")
HELP_RE = re.compile(r"^# HELP (?P<family>[a-zA-Z_:][a-zA-Z0-9_:]*) .*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[^ ]+)$"
)
LE_RE = re.compile(r'^le="(?P<le>[^"]+)"$')

VALID_TYPES = ("counter", "gauge", "histogram", "summary")


def expected_families():
    """Family name → (kind, catalogue name) for every catalogue entry."""
    table = {}
    for name, spec in METRIC_CATALOGUE.items():
        table[openmetrics_family(name, spec.unit)] = (spec.kind, name)
    for name in SPAN_CATALOGUE:
        table[openmetrics_family("span." + name) + "_seconds"] = ("summary", name)
    return table


def _parse_value(text):
    if text == "+Inf":
        return float("inf")
    return float(text)


def check(text):
    """Return a list of problem strings for one OpenMetrics document."""
    problems = []
    known = expected_families()
    declared = {}  # family -> advertised type
    buckets = {}  # family -> list of (le, value) in file order
    scalars = {}  # sample name -> value
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        problems.append("document does not end with '# EOF'")
    for number, line in enumerate(lines, start=1):
        if not line.strip() or line.strip() == "# EOF":
            continue
        if line.startswith("# TYPE "):
            match = TYPE_RE.match(line)
            if not match:
                problems.append(f"line {number}: malformed TYPE comment: {line!r}")
                continue
            family, kind = match.group("family"), match.group("type")
            if kind not in VALID_TYPES:
                problems.append(f"line {number}: unknown type {kind!r} for {family}")
            if family in declared:
                problems.append(f"line {number}: duplicate TYPE for {family}")
            declared[family] = kind
            if family not in known:
                problems.append(
                    f"line {number}: family {family} not derived from "
                    f"METRIC_CATALOGUE/SPAN_CATALOGUE (catalogue drift?)"
                )
            elif known[family][0] != kind:
                problems.append(
                    f"line {number}: {family} advertised as {kind} but the "
                    f"catalogue says {known[family][0]}"
                )
            continue
        if line.startswith("# HELP "):
            if not HELP_RE.match(line):
                problems.append(f"line {number}: malformed HELP comment: {line!r}")
            continue
        if line.startswith("#"):
            problems.append(f"line {number}: unexpected comment: {line!r}")
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {number}: malformed sample line: {line!r}")
            continue
        name, labels, raw = match.group("name"), match.group("labels"), match.group("value")
        try:
            value = _parse_value(raw)
        except ValueError:
            problems.append(f"line {number}: non-numeric sample value {raw!r}")
            continue
        if value < 0:
            problems.append(f"line {number}: negative sample {name} = {value}")
        if labels:
            le = LE_RE.match(labels)
            if not le or not name.endswith("_bucket"):
                problems.append(f"line {number}: unexpected labels {labels!r} on {name}")
                continue
            family = name[: -len("_bucket")]
            buckets.setdefault(family, []).append((le.group("le"), value))
        else:
            scalars[name] = value
        # Resolve which declared family this sample belongs to.
        base = name
        for suffix in ("_bucket", "_total", "_sum", "_count"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                break
        if base not in declared and name not in declared:
            problems.append(f"line {number}: sample {name} has no TYPE declaration")
    # Per-family shape checks.
    for family, kind in declared.items():
        if kind == "counter" and f"{family}_total" not in scalars:
            problems.append(f"{family}: counter without a _total sample")
        if kind == "gauge" and family not in scalars:
            problems.append(f"{family}: gauge without a sample")
        if kind in ("histogram", "summary"):
            for suffix in ("_sum", "_count"):
                if f"{family}{suffix}" not in scalars:
                    problems.append(f"{family}: {kind} missing {family}{suffix}")
        if kind == "histogram":
            series = buckets.get(family, [])
            if not series:
                problems.append(f"{family}: histogram without _bucket samples")
                continue
            if series[-1][0] != "+Inf":
                problems.append(f"{family}: last bucket is not le=\"+Inf\"")
            values = [v for _, v in series]
            if any(b < a for a, b in zip(values, values[1:])):
                problems.append(f"{family}: bucket series is not cumulative")
            count = scalars.get(f"{family}_count")
            if count is not None and values and values[-1] != count:
                problems.append(
                    f"{family}: +Inf bucket ({values[-1]:g}) != _count ({count:g})"
                )
    return problems


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print(__doc__.strip().splitlines()[0])
        print("usage: check_metrics.py <metrics.txt | ->")
        return 2
    text = sys.stdin.read() if argv[0] == "-" else Path(argv[0]).read_text()
    problems = check(text)
    for problem in problems:
        print(problem)
    families = len(re.findall(r"^# TYPE ", text, flags=re.M))
    print(f"{families} metric families checked, {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
