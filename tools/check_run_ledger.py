#!/usr/bin/env python3
"""Validate one or more run-ledger directories (docs/OBSERVABILITY.md).

CI's ``telemetry-smoke`` leg runs tiny ledgered sweeps (``repro360
metrics --run-dir``, ``repro360 fleet --batch --run-dir``) and points
this script at the resulting run directories; the build fails when a
run's artifacts are missing, malformed, or violate the heartbeat
contract.

Checks per run directory:

- ``manifest.json`` parses, carries the ledger schema version and the
  required identity/provenance keys, and reports a terminal status
  (``ok`` / ``error`` / ``cancelled``) — **or** a live ``running``
  status whose heartbeats are fresh (newer than ``--stale-after``
  seconds), in which case the run is reported as *running* and the
  seal-time artifacts (final registry, mandatory snapshot) are not yet
  required;
- ``heartbeat.jsonl`` parses line-by-line, every record carries the
  schema version and a known ``kind``, parent-side streams
  (session/cell/leg) keep ``done`` non-decreasing and carry an
  ``eta_s`` field once ``done``/``total`` are present, and worker-side
  ``cohort`` streams keep ``tick`` non-decreasing per ``(pid, cohort)``;
- at least one OpenMetrics snapshot exists and every snapshot passes
  the full ``tools/check_metrics.py`` parser/catalogue gate;
- ``registry.json`` parses and carries the export schema version.

Usage::

    PYTHONPATH=src python tools/check_run_ledger.py RUN_DIR [RUN_DIR...]
            [--stale-after SECONDS]

A run *root* (a directory of run directories) is also accepted — every
child holding a ``manifest.json`` is checked.  Exits 0 when every run
is clean, 1 otherwise (listing every problem).
"""

import argparse
import json
import sys
from pathlib import Path

# Allow running from the repo root without PYTHONPATH.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from check_metrics import check as check_openmetrics  # noqa: E402

from repro.obs.ledger import (  # noqa: E402
    DEFAULT_STALE_AFTER_S,
    HEARTBEAT_KINDS,
    LEDGER_VERSION,
    MANIFEST_NAME,
    TERMINAL_STATUSES,
    read_heartbeats,
    read_manifest,
    run_status,
    snapshot_paths,
)

#: Keys the initial manifest write always records.
MANIFEST_KEYS = (
    "version",
    "run_id",
    "command",
    "status",
    "started_wall",
    "started_iso",
    "environment",
    "artifacts",
)

#: Parent-side heartbeat kinds whose ``done`` must be non-decreasing.
PARENT_KINDS = ("session", "cell", "leg")


def check_manifest(
    run_dir: Path,
    problems: list,
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
) -> dict:
    try:
        manifest = read_manifest(run_dir)
    except (OSError, json.JSONDecodeError) as error:
        problems.append(f"{run_dir}: cannot load manifest: {error}")
        return {}
    for key in MANIFEST_KEYS:
        if key not in manifest:
            problems.append(f"{run_dir}: manifest missing key {key!r}")
    if manifest.get("version") != LEDGER_VERSION:
        problems.append(
            f"{run_dir}: manifest version {manifest.get('version')!r} "
            f"!= ledger schema {LEDGER_VERSION}"
        )
    status = manifest.get("status")
    if status == "running":
        # An in-progress run is not a contract failure as long as its
        # heartbeats are fresh — something is still writing to it.
        if run_status(run_dir, stale_after_s=stale_after_s) == "stale":
            problems.append(
                f"{run_dir}: manifest status 'running' but newest heartbeat "
                f"is older than {stale_after_s:g}s (writer presumed dead)"
            )
    elif status not in TERMINAL_STATUSES:
        problems.append(f"{run_dir}: unknown manifest status {status!r}")
    return manifest


def check_heartbeats(run_dir: Path, problems: list, sealed: bool = True) -> int:
    records = read_heartbeats(run_dir)
    if not records:
        # A live run may not have completed its first task yet.
        if sealed:
            problems.append(f"{run_dir}: heartbeat.jsonl has no records")
        return 0
    last_done = {}  # kind -> last done (parent streams)
    last_tick = {}  # (pid, cohort) -> last tick (worker streams)
    for number, record in enumerate(records, start=1):
        where = f"{run_dir}: heartbeat record {number}"
        if record.get("v") != LEDGER_VERSION:
            problems.append(f"{where}: version {record.get('v')!r}")
        kind = record.get("kind")
        if kind not in HEARTBEAT_KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        if kind in PARENT_KINDS:
            done = record.get("done")
            if done is None:
                continue  # plain marker record (no progress payload)
            if "eta_s" not in record:
                problems.append(f"{where}: progress record without eta_s")
            total = record.get("total")
            if total is not None and done > total:
                problems.append(f"{where}: done {done} > total {total}")
            if done < last_done.get(kind, 0):
                problems.append(
                    f"{where}: {kind} done decreased "
                    f"({last_done[kind]} -> {done})"
                )
            last_done[kind] = done
        else:  # cohort
            stream = (record.get("pid"), record.get("cohort"))
            tick = record.get("tick")
            if tick is None or record.get("ticks") is None:
                problems.append(f"{where}: cohort record without tick/ticks")
                continue
            if "eta_s" not in record:
                problems.append(f"{where}: cohort record without eta_s")
            if tick < last_tick.get(stream, 0):
                problems.append(
                    f"{where}: cohort {stream} tick decreased "
                    f"({last_tick[stream]} -> {tick})"
                )
            last_tick[stream] = tick
    return len(records)


def check_snapshots(run_dir: Path, problems: list, sealed: bool = True) -> int:
    paths = snapshot_paths(run_dir)
    if not paths:
        # finish() always snapshots, so only a sealed run must have one.
        if sealed:
            problems.append(f"{run_dir}: no OpenMetrics snapshots")
        return 0
    for path in paths:
        for problem in check_openmetrics(path.read_text()):
            problems.append(f"{run_dir}: {path.name}: {problem}")
    return len(paths)


def check_registry(run_dir: Path, problems: list) -> None:
    path = run_dir / "registry.json"
    if not path.exists():
        problems.append(f"{run_dir}: no registry.json (final registry artifact)")
        return
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        problems.append(f"{run_dir}: registry.json does not parse: {error}")
        return
    from repro.metrics.export import EXPORT_VERSION

    if payload.get("version") != EXPORT_VERSION:
        problems.append(
            f"{run_dir}: registry version {payload.get('version')!r} "
            f"!= export schema {EXPORT_VERSION}"
        )


def check_run(
    run_dir: Path,
    problems: list,
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
) -> str:
    manifest = check_manifest(run_dir, problems, stale_after_s=stale_after_s)
    sealed = manifest.get("status") != "running"
    beats = check_heartbeats(run_dir, problems, sealed=sealed)
    snaps = check_snapshots(run_dir, problems, sealed=sealed)
    if sealed or (run_dir / "registry.json").exists():
        check_registry(run_dir, problems)
    label = manifest.get("status")
    if label == "running":
        label = run_status(run_dir, stale_after_s=stale_after_s)
    return (
        f"{run_dir}: status={label} "
        f"heartbeats={beats} snapshots={snaps}"
    )


def expand(paths):
    """Resolve run directories; a run *root* expands to its children."""
    runs = []
    for raw in paths:
        path = Path(raw)
        if (path / MANIFEST_NAME).exists():
            runs.append(path)
            continue
        children = sorted(
            child for child in path.glob("*") if (child / MANIFEST_NAME).exists()
        )
        if children:
            runs.extend(children)
        else:
            runs.append(path)  # let check_manifest report the failure
    return runs


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.strip().splitlines()[0],
    )
    parser.add_argument("run_dirs", nargs="+", metavar="RUN_DIR")
    parser.add_argument(
        "--stale-after",
        type=float,
        default=DEFAULT_STALE_AFTER_S,
        metavar="SECONDS",
        help="age beyond which a 'running' run's heartbeats count as "
        "abandoned (default %(default)s)",
    )
    args = parser.parse_args(argv)
    problems = []
    for run_dir in expand(args.run_dirs):
        print(check_run(run_dir, problems, stale_after_s=args.stale_after))
    for problem in problems:
        print(problem)
    print(f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
