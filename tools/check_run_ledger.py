#!/usr/bin/env python3
"""Validate one or more run-ledger directories (docs/OBSERVABILITY.md).

CI's ``telemetry-smoke`` leg runs tiny ledgered sweeps (``repro360
metrics --run-dir``, ``repro360 fleet --batch --run-dir``) and points
this script at the resulting run directories; the build fails when a
run's artifacts are missing, malformed, or violate the heartbeat
contract.

Checks per run directory:

- ``manifest.json`` parses, carries the ledger schema version and the
  required identity/provenance keys, and reports a terminal status;
- ``heartbeat.jsonl`` parses line-by-line, every record carries the
  schema version and a known ``kind``, parent-side streams
  (session/cell/leg) keep ``done`` non-decreasing and carry an
  ``eta_s`` field once ``done``/``total`` are present, and worker-side
  ``cohort`` streams keep ``tick`` non-decreasing per ``(pid, cohort)``;
- at least one OpenMetrics snapshot exists and every snapshot passes
  the full ``tools/check_metrics.py`` parser/catalogue gate;
- ``registry.json`` parses and carries the export schema version.

Usage::

    PYTHONPATH=src python tools/check_run_ledger.py RUN_DIR [RUN_DIR...]

A run *root* (a directory of run directories) is also accepted — every
child holding a ``manifest.json`` is checked.  Exits 0 when every run
is clean, 1 otherwise (listing every problem).
"""

import json
import sys
from pathlib import Path

# Allow running from the repo root without PYTHONPATH.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from check_metrics import check as check_openmetrics  # noqa: E402

from repro.obs.ledger import (  # noqa: E402
    HEARTBEAT_KINDS,
    LEDGER_VERSION,
    MANIFEST_NAME,
    read_heartbeats,
    read_manifest,
    snapshot_paths,
)

#: Keys the initial manifest write always records.
MANIFEST_KEYS = (
    "version",
    "run_id",
    "command",
    "status",
    "started_wall",
    "started_iso",
    "environment",
    "artifacts",
)

#: Parent-side heartbeat kinds whose ``done`` must be non-decreasing.
PARENT_KINDS = ("session", "cell", "leg")


def check_manifest(run_dir: Path, problems: list) -> dict:
    try:
        manifest = read_manifest(run_dir)
    except (OSError, json.JSONDecodeError) as error:
        problems.append(f"{run_dir}: cannot load manifest: {error}")
        return {}
    for key in MANIFEST_KEYS:
        if key not in manifest:
            problems.append(f"{run_dir}: manifest missing key {key!r}")
    if manifest.get("version") != LEDGER_VERSION:
        problems.append(
            f"{run_dir}: manifest version {manifest.get('version')!r} "
            f"!= ledger schema {LEDGER_VERSION}"
        )
    status = manifest.get("status")
    if status == "running":
        problems.append(
            f"{run_dir}: manifest status still 'running' (run not sealed)"
        )
    elif status not in ("ok", "error"):
        problems.append(f"{run_dir}: unknown manifest status {status!r}")
    return manifest


def check_heartbeats(run_dir: Path, problems: list) -> int:
    records = read_heartbeats(run_dir)
    if not records:
        problems.append(f"{run_dir}: heartbeat.jsonl has no records")
        return 0
    last_done = {}  # kind -> last done (parent streams)
    last_tick = {}  # (pid, cohort) -> last tick (worker streams)
    for number, record in enumerate(records, start=1):
        where = f"{run_dir}: heartbeat record {number}"
        if record.get("v") != LEDGER_VERSION:
            problems.append(f"{where}: version {record.get('v')!r}")
        kind = record.get("kind")
        if kind not in HEARTBEAT_KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        if kind in PARENT_KINDS:
            done = record.get("done")
            if done is None:
                continue  # plain marker record (no progress payload)
            if "eta_s" not in record:
                problems.append(f"{where}: progress record without eta_s")
            total = record.get("total")
            if total is not None and done > total:
                problems.append(f"{where}: done {done} > total {total}")
            if done < last_done.get(kind, 0):
                problems.append(
                    f"{where}: {kind} done decreased "
                    f"({last_done[kind]} -> {done})"
                )
            last_done[kind] = done
        else:  # cohort
            stream = (record.get("pid"), record.get("cohort"))
            tick = record.get("tick")
            if tick is None or record.get("ticks") is None:
                problems.append(f"{where}: cohort record without tick/ticks")
                continue
            if "eta_s" not in record:
                problems.append(f"{where}: cohort record without eta_s")
            if tick < last_tick.get(stream, 0):
                problems.append(
                    f"{where}: cohort {stream} tick decreased "
                    f"({last_tick[stream]} -> {tick})"
                )
            last_tick[stream] = tick
    return len(records)


def check_snapshots(run_dir: Path, problems: list) -> int:
    paths = snapshot_paths(run_dir)
    if not paths:
        problems.append(f"{run_dir}: no OpenMetrics snapshots")
        return 0
    for path in paths:
        for problem in check_openmetrics(path.read_text()):
            problems.append(f"{run_dir}: {path.name}: {problem}")
    return len(paths)


def check_registry(run_dir: Path, problems: list) -> None:
    path = run_dir / "registry.json"
    if not path.exists():
        problems.append(f"{run_dir}: no registry.json (final registry artifact)")
        return
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        problems.append(f"{run_dir}: registry.json does not parse: {error}")
        return
    from repro.metrics.export import EXPORT_VERSION

    if payload.get("version") != EXPORT_VERSION:
        problems.append(
            f"{run_dir}: registry version {payload.get('version')!r} "
            f"!= export schema {EXPORT_VERSION}"
        )


def check_run(run_dir: Path, problems: list) -> str:
    manifest = check_manifest(run_dir, problems)
    beats = check_heartbeats(run_dir, problems)
    snaps = check_snapshots(run_dir, problems)
    check_registry(run_dir, problems)
    return (
        f"{run_dir}: status={manifest.get('status')} "
        f"heartbeats={beats} snapshots={snaps}"
    )


def expand(paths):
    """Resolve run directories; a run *root* expands to its children."""
    runs = []
    for raw in paths:
        path = Path(raw)
        if (path / MANIFEST_NAME).exists():
            runs.append(path)
            continue
        children = sorted(
            child for child in path.glob("*") if (child / MANIFEST_NAME).exists()
        )
        if children:
            runs.extend(children)
        else:
            runs.append(path)  # let check_manifest report the failure
    return runs


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print(__doc__.strip().splitlines()[0])
        print("usage: check_run_ledger.py RUN_DIR [RUN_DIR...]")
        return 2
    problems = []
    for run_dir in expand(argv):
        print(check_run(run_dir, problems))
    for problem in problems:
        print(problem)
    print(f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
