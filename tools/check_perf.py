#!/usr/bin/env python3
"""Compare a fresh perf record against the committed baseline.

``repro360 perf`` writes a JSON record (``BENCH_perf.json``) whose
tracked signal is a set of machine-portable *ratios*:

- per-kernel ``speedup`` (vectorised vs scalar reference, measured in
  the same process, on the same machine — see
  ``src/repro/experiments/perf.py``), and
- ``single_session_vs_seed`` (fresh single-session time vs the recorded
  pre-optimisation seed baseline).

This gate loads a fresh record and the committed one and fails when a
tracked ratio regressed by more than ``--tolerance`` (default 30%)::

    python tools/check_perf.py --fresh BENCH_perf_ci.json \
        --baseline BENCH_perf.json

Ratios are clamped to ``RATIO_CLAMP`` before comparison: a memoised
kernel like ``matrix_build`` measures 30-70x depending on cache and CPU
weather, and the difference between 35x and 67x is noise, not signal —
what matters is that it never collapses back towards 1x.  Absolute
wall-clock fields are reported for context but never gate (CI machines
and dev laptops differ too much for absolute times to be comparable).

Exits 0 when every tracked ratio holds, 1 on regression or a missing /
malformed record.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Speedups above this are treated as "this many or better" — past it,
#: run-to-run variance dwarfs any real change.
RATIO_CLAMP = 8.0

#: Per-ratio clamp overrides.  The batched-engine headline measures
#: ~13-15x (the PR that added it targets >=10x), so the default 8x
#: clamp would blind the gate to a collapse from 13x to 8x; clamping at
#: 12x keeps the 10x design floor inside the gated range while still
#: ignoring noise above it.
RATIO_CLAMPS = {
    "batch.batched_speedup": 12.0,
    "fleet_batch.batched_speedup": 12.0,
    # The ledger-overhead ratio hovers around 1.0 by design; clamping
    # there keeps "telemetry got (noisily) faster than plain" runs from
    # inflating the baseline — the absolute floor below is the gate.
    "ledger.overhead_ratio": 1.0,
}

#: Absolute floors that gate regardless of the baseline or tolerance.
#: The batched shared-cell engine's acceptance criterion is >=5x
#: aggregate cell-sessions/sec over the scalar cell reference at its
#: largest measured block (C*N >= 512 coupled sessions); a fresh record
#: below the floor fails even if the committed baseline also slipped.
RATIO_FLOORS = {
    "fleet_batch.batched_speedup": 5.0,
    # Run-ledger acceptance criterion: ledger-on session throughput
    # within 5% of ledger-off (overhead_ratio = plain_s / ledger_s).
    "ledger.overhead_ratio": 0.95,
}

#: Default allowed fractional regression before the gate fails.
DEFAULT_TOLERANCE = 0.30


def load_record(path: Path) -> dict:
    with open(path) as handle:
        return json.load(handle)


def tracked_ratios(record: dict) -> dict:
    """Extract the gated ratios from a perf record, keyed by name."""
    ratios = {}
    for name, entry in (record.get("kernels") or {}).items():
        speedup = entry.get("speedup")
        if speedup is not None:
            ratios[f"kernels.{name}.speedup"] = float(speedup)
    vs_seed = record.get("single_session_vs_seed")
    if vs_seed is not None:
        ratios["single_session_vs_seed"] = float(vs_seed)
    batch = record.get("batch")
    if batch and batch.get("batched_speedup") is not None:
        ratios["batch.batched_speedup"] = float(batch["batched_speedup"])
    fleet_batch = record.get("fleet_batch")
    if fleet_batch and fleet_batch.get("batched_speedup") is not None:
        ratios["fleet_batch.batched_speedup"] = float(
            fleet_batch["batched_speedup"]
        )
    ledger = record.get("ledger")
    if ledger and ledger.get("overhead_ratio") is not None:
        ratios["ledger.overhead_ratio"] = float(ledger["overhead_ratio"])
    return ratios


def compare(fresh: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE) -> list:
    """Return a list of regression messages (empty = pass).

    A ratio regresses when the clamped fresh value falls below the
    clamped baseline value by more than ``tolerance``.  Ratios present
    in the baseline but missing from the fresh record also fail — a
    renamed or dropped kernel must update the committed baseline.
    """
    fresh_ratios = tracked_ratios(fresh)
    baseline_ratios = tracked_ratios(baseline)
    failures = []
    for name, base_value in sorted(baseline_ratios.items()):
        fresh_value = fresh_ratios.get(name)
        if fresh_value is None:
            failures.append(f"{name}: missing from fresh record (baseline {base_value})")
            continue
        clamp = RATIO_CLAMPS.get(name, RATIO_CLAMP)
        base_clamped = min(base_value, clamp)
        fresh_clamped = min(fresh_value, clamp)
        floor = base_clamped * (1.0 - tolerance)
        if fresh_clamped < floor:
            failures.append(
                f"{name}: {fresh_value} < floor {floor:.3f} "
                f"(baseline {base_value}, tolerance {tolerance:.0%})"
            )
    for name, floor in sorted(RATIO_FLOORS.items()):
        fresh_value = fresh_ratios.get(name)
        if fresh_value is not None and fresh_value < floor:
            failures.append(
                f"{name}: {fresh_value} < absolute floor {floor} "
                "(design requirement, independent of baseline)"
            )
    return failures


def report(fresh: dict, baseline: dict, failures: list) -> None:
    fresh_ratios = tracked_ratios(fresh)
    baseline_ratios = tracked_ratios(baseline)
    print("perf gate: tracked ratios (fresh vs baseline)")
    for name in sorted(set(fresh_ratios) | set(baseline_ratios)):
        print(
            f"  {name}: {fresh_ratios.get(name, 'missing')} "
            f"(baseline {baseline_ratios.get(name, 'missing')})"
        )
    single = fresh.get("single_session_s")
    if single is not None:
        print(f"  [context] single_session_s: {single} (not gated)")
    if failures:
        print("FAIL:")
        for message in failures:
            print(f"  {message}")
    else:
        print("OK: no tracked ratio regressed")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, type=Path, help="freshly measured record")
    parser.add_argument("--baseline", required=True, type=Path, help="committed baseline record")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional regression (default 0.30)",
    )
    args = parser.parse_args(argv)
    try:
        fresh = load_record(args.fresh)
        baseline = load_record(args.baseline)
    except (OSError, json.JSONDecodeError) as error:
        print(f"perf gate: cannot load record: {error}")
        return 1
    failures = compare(fresh, baseline, args.tolerance)
    report(fresh, baseline, failures)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
