"""Cell-capacity sweeps: calls-per-cell vs. quality (docs/FLEET.md).

The capacity-planning question the paper's Fig. 17 gestures at — how
many concurrent POI360 callers does one LTE cell carry before quality
degrades? — becomes a sweep here: for each calls-per-cell value, run
several independent shared cells (:class:`repro.experiments.parallel.
CellTask` shards whole cells across the process pool) and aggregate
per-cell Jain fairness and per-caller MOS / rate / delay into one
:class:`FleetPoint` per population size.

Determinism contract: cell ``c`` of point ``p`` always derives its base
seed as ``seed + 1_000_000 * (p * cells + c)`` regardless of worker
count, so sharded sweeps are bit-identical to serial ones (the CI
``fleet-smoke`` leg diffs the two merged registries).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.parallel import (
    CellBlockTask,
    CellTask,
    ProgressCallback,
    merged_meter,
    resolve_jobs,
    run_tasks,
)
from repro.obs.meter import SessionMeter
from repro.telephony.fleet import CellResult

#: Seed stride between cells of one sweep — far above the 1000-stride
#: between members of one cell, so no two simulated UEs in a sweep can
#: collide on a seed (cells would need >1000 members).
CELL_SEED_STRIDE = 1_000_000


def _finite_mean(values: Sequence[float]) -> float:
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return float("nan")
    return float(np.mean(finite))


@dataclass(frozen=True)
class FleetPoint:
    """Aggregates for one calls-per-cell population size."""

    ues: int
    cells: int
    #: Mean / worst Jain fairness index across the point's cells.
    jain_mean: float
    jain_min: float
    #: Mean expected MOS across every caller of every cell.
    mos_mean: float
    #: Mean received media rate per caller (Mbps).
    rate_mean_mbps: float
    #: Median of the callers' median frame delays (ms).
    delay_median_ms: float
    #: Mean freeze ratio across callers.
    freeze_mean: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "calls_per_cell": self.ues,
            "cells": self.cells,
            "jain_mean": round(self.jain_mean, 4),
            "jain_min": round(self.jain_min, 4),
            "mos_mean": round(self.mos_mean, 3),
            "rate_mean_mbps": round(self.rate_mean_mbps, 3),
            "delay_median_ms": round(self.delay_median_ms, 1),
            "freeze_mean": round(self.freeze_mean, 4),
        }


@dataclass
class FleetSweepResult:
    """One capacity sweep: per-population aggregates + raw cells."""

    points: List[FleetPoint]
    #: Raw per-cell results, grouped per point (``cells[p][c]``).
    cells: List[List[CellResult]]
    #: Merged fleet registry (cells + members) when metering was on.
    meter: Optional[SessionMeter] = None


def fleet_tasks(
    scenario_name: str,
    calls: Sequence[int],
    cells: int = 1,
    scheme: str = "poi360",
    transport: str = "fbcc",
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 0,
    background_ues: int = 0,
    background_load: float = 0.0,
    prb_budget: int = 50,
    rotate_profiles: bool = False,
    meter: bool = False,
) -> List[CellTask]:
    """The sweep's task list, in deterministic (point, cell) order."""
    tasks: List[CellTask] = []
    for point_index, ues in enumerate(calls):
        if ues < 1:
            raise ValueError("calls-per-cell values must be >= 1")
        for cell_index in range(cells):
            tasks.append(
                CellTask(
                    scenario_name=scenario_name,
                    scheme=scheme,
                    transport=transport,
                    duration=duration,
                    warmup=warmup,
                    seed=seed + CELL_SEED_STRIDE * (point_index * cells + cell_index),
                    ues=ues,
                    background_ues=background_ues,
                    background_load=background_load,
                    prb_budget=prb_budget,
                    rotate_profiles=rotate_profiles,
                    meter=meter,
                )
            )
    return tasks


def lockstep_scenario(
    scenario_name: str,
    scheme: str = "poi360",
    transport: str = "fbcc",
    duration: float = 30.0,
    seed: int = 0,
):
    """A scenario config coerced onto the lockstep grid.

    The batched cell engine requires every cadence on the 1 ms subframe
    grid (:func:`repro.telephony.uplink.batch_unsupported_reason`); the
    default 30 fps frame interval (1/30 s) is not, so batched sweeps run
    the scenario at 25 fps.  This makes ``--batch`` numbers comparable
    *to each other* and to the scalar lockstep reference — not bitwise
    to the event-driven 30 fps sweep (docs/FLEET.md, "Batched cells").
    """
    import dataclasses

    from repro.telephony.uplink import _ms_aligned
    from repro.traces.scenarios import scenario

    config = scenario(
        scenario_name,
        scheme=scheme,
        transport=transport,
        duration=duration,
        seed=seed,
    )
    if not _ms_aligned(1.0 / config.video.fps):
        config = dataclasses.replace(
            config, video=dataclasses.replace(config.video, fps=25.0)
        )
    return config


def fleet_batch_tasks(
    scenario_name: str,
    calls: Sequence[int],
    cells: int = 1,
    scheme: str = "poi360",
    transport: str = "fbcc",
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 0,
    background_ues: int = 0,
    background_load: float = 0.0,
    prb_budget: int = 50,
    jobs: Optional[int] = None,
    meter: bool = False,
    heartbeat_path: Optional[str] = None,
) -> List[CellBlockTask]:
    """The ``--batch`` task list: whole batched cell blocks.

    Each point's cells keep the exact seed schedule of
    :func:`fleet_tasks` and are chunked into at most ``jobs`` contiguous
    blocks; the partition affects wall clock only (cells are independent
    — the flattened results are byte-equal for any block split).
    ``meter`` attaches live per-cell engine meters, ``heartbeat_path``
    streams each block's tick progress into a run-ledger heartbeat file.
    """
    workers = resolve_jobs(jobs)
    tasks: List[CellBlockTask] = []
    for point_index, ues in enumerate(calls):
        if ues < 1:
            raise ValueError("calls-per-cell values must be >= 1")
        seeds = [
            seed + CELL_SEED_STRIDE * (point_index * cells + cell_index)
            for cell_index in range(cells)
        ]
        blocks = min(len(seeds), max(1, workers))
        # Balanced contiguous chunks, larger chunks first.
        size, extra = divmod(len(seeds), blocks)
        start = 0
        for block in range(blocks):
            stop = start + size + (1 if block < extra else 0)
            tasks.append(
                CellBlockTask(
                    scenario_name=scenario_name,
                    scheme=scheme,
                    transport=transport,
                    duration=duration,
                    warmup=warmup,
                    seeds=tuple(seeds[start:stop]),
                    ues=ues,
                    background_ues=background_ues,
                    background_load=background_load,
                    prb_budget=prb_budget,
                    meter=meter,
                    heartbeat_path=heartbeat_path,
                )
            )
            start = stop
    return tasks


def _aggregate(ues: int, results: Sequence[CellResult]) -> FleetPoint:
    summaries = [r.summary for cell in results for r in cell.results]
    jains = [cell.jain for cell in results]
    mos = [m for cell in results for m in cell.member_mos]
    delays = [s.delay.median * 1e3 for s in summaries]
    return FleetPoint(
        ues=ues,
        cells=len(results),
        jain_mean=_finite_mean(jains),
        jain_min=float(min(jains)),
        mos_mean=_finite_mean(mos),
        rate_mean_mbps=_finite_mean([s.throughput.mean / 1e6 for s in summaries]),
        delay_median_ms=float(np.median(delays)) if delays else float("nan"),
        freeze_mean=_finite_mean([s.freeze_ratio for s in summaries]),
    )


def fleet_sweep(
    scenario_name: str,
    calls: Sequence[int] = (1, 2, 4, 8),
    cells: int = 1,
    jobs: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    meter: bool = False,
    batch: bool = False,
    heartbeat_path: Optional[str] = None,
    **kwargs,
) -> FleetSweepResult:
    """Run the capacity sweep; cells shard across the process pool.

    ``kwargs`` pass through to :func:`fleet_tasks` (scheme, transport,
    duration, warmup, seed, background_ues, background_load, prb_budget,
    rotate_profiles).  Results are grouped back per calls-per-cell value
    in task order, so the output is independent of ``jobs``.

    ``batch=True`` runs the same seed schedule on the batched cell
    engine (:mod:`repro.sim.batch_cell`): whole cell blocks shard across
    the pool instead of single cells, the scenario is coerced onto the
    lockstep grid (:func:`lockstep_scenario`), the ``fleet.*`` registry
    is metered **live** inside the engine's tick loop (per-cell meters
    from :meth:`~repro.sim.batch_cell.BatchedCellSimulation.run_cells`,
    including the batched-engine ``batch.*`` and
    ``fleet.cell_prb_exhausted`` counters), and user-profile rotation is
    unsupported (profiles are an event-engine feature).  Serial and
    sharded batch sweeps remain byte-equal; batch and event sweeps are
    statistically comparable, not bitwise (different engines).

    ``heartbeat_path`` (batch path only) streams each block's
    tick-by-tick cohort progress into a run-ledger heartbeat file while
    the sweep runs.
    """
    calls = list(calls)
    if batch:
        if kwargs.pop("rotate_profiles", False):
            raise ValueError(
                "--rotate-profiles requires the event engine (user "
                "profiles are not part of the lockstep uplink profile)"
            )
        tasks = fleet_batch_tasks(
            scenario_name,
            calls,
            cells=cells,
            jobs=jobs,
            meter=meter,
            heartbeat_path=heartbeat_path,
            **kwargs,
        )
        blocks = run_tasks(tasks, jobs=jobs, progress=progress)
        results = [cell for block in blocks for cell in block]
    else:
        tasks = fleet_tasks(
            scenario_name, calls, cells=cells, meter=meter, **kwargs
        )
        results = run_tasks(tasks, jobs=jobs, progress=progress)
    grouped: List[List[CellResult]] = [
        results[point_index * cells : (point_index + 1) * cells]
        for point_index in range(len(calls))
    ]
    points = [_aggregate(ues, group) for ues, group in zip(calls, grouped)]
    fleet = None
    if meter:
        fleet = merged_meter(results, workers=resolve_jobs(jobs))
    return FleetSweepResult(points=points, cells=grouped, meter=fleet)


def deterministic_registry_dict(meter: SessionMeter) -> dict:
    """Registry snapshot with every nondeterministic family removed.

    Counters and histograms are pure functions of the simulation, so
    serial and sharded sweeps produce identical values; spans are wall
    clock and the ``fleet.workers``/straggler gauges depend on the job
    count, so they are excluded.  The CI ``fleet-smoke`` leg diffs two
    of these snapshots byte-for-byte.
    """
    snapshot = meter.metrics.as_dict()
    return {
        "counters": dict(sorted(snapshot["counters"].items())),
        "histograms": snapshot["histograms"],
    }
