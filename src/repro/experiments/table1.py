"""Table 1 — the PSNR→MOS mapping (Sen et al., SIGCOMM'10).

This is an input of the paper's methodology rather than a result; it is
exposed here so the benchmark suite can regenerate and verify the exact
banding every other figure's MOS PDFs are built on.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.video.quality import MOS_BANDS, mos_band

#: (MOS label, PSNR range text) rows exactly as printed in the paper.
PAPER_ROWS: Tuple[Tuple[str, str], ...] = (
    ("excellent", "> 37"),
    ("good", "31 ~ 37"),
    ("fair", "25 ~ 31"),
    ("poor", "20 ~ 25"),
    ("bad", "< 20"),
)


def table_rows() -> List[Tuple[str, str]]:
    """Render our implemented banding in the paper's format."""
    rows: List[Tuple[str, str]] = []
    upper = None
    for name, lower in MOS_BANDS:
        if upper is None:
            rows.append((name, f"> {lower:g}"))
        elif lower == float("-inf"):
            rows.append((name, f"< {upper:g}"))
        else:
            rows.append((name, f"{lower:g} ~ {upper:g}"))
        upper = lower
    return rows


def verify_banding() -> bool:
    """Spot-check the mapping against the paper's boundaries."""
    checks = (
        (37.01, "excellent"),
        (37.0, "good"),
        (31.01, "good"),
        (31.0, "fair"),
        (25.01, "fair"),
        (25.0, "poor"),
        (20.01, "poor"),
        (20.0, "bad"),
        (5.0, "bad"),
    )
    return all(mos_band(psnr) == band for psnr, band in checks)
