"""Fig. 13 — end-to-end video frame delay CDFs.

Paper shape: wireline delays are low for every scheme; on cellular
POI360's median is ≈460 ms, about 15% below Conduit, with Pyramid the
slowest (its conservative profile carries the most traffic).  Frame
delay is capture-to-display latency, not the frame interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.experiments.microbench import NETWORKS, SCHEMES, micro_grid
from repro.experiments.runner import ExperimentSettings, pooled_values
from repro.metrics.delay import delay_cdf


@dataclass(frozen=True)
class Fig13Row:
    """Delay summary + CDF for one (network, scheme) condition."""

    network: str
    scheme: str
    median: float
    p90: float
    cdf: Tuple[Tuple[float, float], ...]


def delay_rows(settings: Optional[ExperimentSettings] = None) -> List[Fig13Row]:
    """Regenerate the Fig. 13 delay CDFs."""
    grid = micro_grid(settings)
    rows: List[Fig13Row] = []
    for network in NETWORKS:
        for scheme in SCHEMES:
            delays = pooled_values(grid[(network, scheme)], "frame_delays")
            array = np.asarray(delays, dtype=float)
            rows.append(
                Fig13Row(
                    network=network,
                    scheme=scheme,
                    median=float(np.median(array)) if array.size else float("nan"),
                    p90=float(np.percentile(array, 90)) if array.size else float("nan"),
                    cdf=tuple(delay_cdf(delays)),
                )
            )
    return rows


def median_of(rows: List[Fig13Row], network: str, scheme: str) -> float:
    for row in rows:
        if row.network == network and row.scheme == scheme:
            return row.median
    raise KeyError((network, scheme))
