"""Fig. 15 — firmware-buffer level vs per-second uplink TBS, FBCC vs GCC.

Paper shape: FBCC's samples cluster in the "high usage" region around
the sweet spot (buffer high enough to win the PF scheduler's full
share, below the overuse/saturation region), while a large fraction of
GCC's samples sit in the low-usage region (buffer drained, bandwidth
wasted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.runner import ExperimentSettings, run_sessions
from repro.units import kbytes

#: Region boundaries, following the paper's own labels: the *low usage*
#: region is defined on the throughput axis ("uplink throughput below
#: 2 Mbps" on their ~4.5 Mbps cell — scaled to our ~3 Mbps calibration),
#: the *overuse/saturation* region on the buffer axis past the knee.
LOW_USAGE_BELOW_BPS = 1.4e6
OVERUSE_ABOVE = kbytes(20)


@dataclass(frozen=True)
class Fig15Result:
    """Per-transport scatter of (throughput bps, buffer bytes)."""

    transport: str
    points: Tuple[Tuple[float, float], ...]

    def buffer_median(self) -> float:
        if not self.points:
            return float("nan")
        return float(np.median([buffer for _, buffer in self.points]))

    def region_fractions(self) -> Dict[str, float]:
        """Fraction of per-second samples per Fig. 15 region."""
        if not self.points:
            return {"low": float("nan"), "high": float("nan"), "overuse": float("nan")}
        rates = np.asarray([rate for rate, _ in self.points])
        buffers = np.asarray([buffer for _, buffer in self.points])
        overuse = (buffers > OVERUSE_ABOVE)
        low = (rates < LOW_USAGE_BELOW_BPS) & ~overuse
        return {
            "low": float(low.mean()),
            "high": float((~low & ~overuse).mean()),
            "overuse": float(overuse.mean()),
        }

    def mean_throughput(self) -> float:
        if not self.points:
            return float("nan")
        return float(np.mean([rate for rate, _ in self.points]))


def sweet_spot_scatter(
    settings: Optional[ExperimentSettings] = None,
) -> List[Fig15Result]:
    """Regenerate the Fig. 15 scatter for both transports."""
    results = []
    for transport in ("gcc", "fbcc"):
        sessions = run_sessions("cellular", "poi360", transport, settings)
        points: List[Tuple[float, float]] = []
        for session in sessions:
            points.extend(session.log.diag_seconds)
        results.append(Fig15Result(transport=transport, points=tuple(points)))
    return results
