"""Generic parameter sweeps over session configurations.

Research tooling: vary one (nested) config field across a set of
values, run seeded sessions per value, and collect summaries — the
machinery behind questions like "how does the freeze ratio grow with
shadow-fading depth?" or "where does the sweet-spot target stop
helping?".

Fields are addressed by dotted path into the frozen dataclass tree,
e.g. ``"lte.channel.shadow_sigma_db"`` or ``"fbcc.target_buffer"``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.config import SessionConfig
from repro.telephony.session import SessionResult, run_session


def replace_field(config: Any, dotted: str, value: Any) -> Any:
    """Return a copy of a nested frozen-dataclass tree with one field set.

    >>> from repro.config import SessionConfig
    >>> cfg = replace_field(SessionConfig(), "lte.channel.rss_dbm", -100.0)
    >>> cfg.lte.channel.rss_dbm
    -100.0
    """
    head, _, rest = dotted.partition(".")
    if not hasattr(config, head):
        raise AttributeError(f"{type(config).__name__} has no field {head!r}")
    if rest:
        inner = replace_field(getattr(config, head), rest, value)
        return dataclasses.replace(config, **{head: inner})
    return dataclasses.replace(config, **{head: value})


@dataclass(frozen=True)
class SweepPoint:
    """All repetitions of one sweep value."""

    value: Any
    results: Tuple[SessionResult, ...]

    def mean(self, attribute: str) -> float:
        """Mean of a scalar SessionSummary attribute."""
        values = [getattr(r.summary, attribute) for r in self.results]
        return sum(values) / len(values)

    def mean_psnr(self) -> float:
        return sum(r.summary.quality.mean_psnr for r in self.results) / len(
            self.results
        )


def sweep(
    base: SessionConfig,
    field: str,
    values: Sequence[Any],
    repetitions: int = 1,
    duration: float = 60.0,
    warmup: float = 20.0,
    base_seed: int = 1,
) -> List[SweepPoint]:
    """Run ``repetitions`` sessions per value of ``field``."""
    points: List[SweepPoint] = []
    for value in values:
        results = []
        for repetition in range(repetitions):
            config = replace_field(base, field, value)
            config = dataclasses.replace(
                config, seed=base_seed + repetition, duration=duration
            )
            results.append(run_session(config, warmup=warmup))
        points.append(SweepPoint(value=value, results=tuple(results)))
    return points


def as_series(points: List[SweepPoint], attribute: str) -> Dict[Any, float]:
    """(value → mean attribute) mapping for quick plotting."""
    return {point.value: point.mean(attribute) for point in points}
