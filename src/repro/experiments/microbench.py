"""Shared grid for the §6.1.1 micro-benchmarks (Figs. 11-14).

One run of ``micro_grid`` produces the sessions behind four figures:
ROI PSNR + MOS (Fig. 11), short-term stability (Fig. 12), frame-delay
CDFs (Fig. 13) and freeze ratios (Fig. 14) — all three compression
schemes over both the campus wireline network and commercial LTE, with
GCC as the common transport (as in the paper's setup).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.runner import ExperimentSettings, run_grid
from repro.telephony.session import SessionResult

NETWORKS: Tuple[str, ...] = ("wireline", "cellular")
SCHEMES: Tuple[str, ...] = ("poi360", "conduit", "pyramid")

GridKey = Tuple[str, str]


def micro_grid(
    settings: Optional[ExperimentSettings] = None,
    jobs: Optional[int] = None,
) -> Dict[GridKey, List[SessionResult]]:
    """All (network, scheme) conditions of the §6.1.1 micro-benchmarks."""
    return run_grid(NETWORKS, SCHEMES, transport="gcc", settings=settings, jobs=jobs)
