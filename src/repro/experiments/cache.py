"""Content-addressed, on-disk cache of experiment session results.

Running a condition at paper scale costs minutes; its result is a pure
function of (experiment settings, scenario, scheme, transport, user
profiles) **and the simulator code itself**.  This module persists the
session lists under ``.repro_cache/`` keyed by a stable hash of all of
the above, so pytest invocations, figure harnesses, benches, and the
CLI share one pool of finished sessions.

Layout::

    .repro_cache/
        <code-salt>/           # first 12 hex chars of the source hash
            <key>.pkl          # pickled List[SessionResult]

The *code salt* is a SHA-256 over every ``repro`` source file, so any
change to the simulator automatically invalidates the whole cache (old
salt directories are simply never read again; ``clear`` removes them).

Controls:

- ``REPRO_CACHE_DIR`` env var or :func:`set_cache_dir` — location
  (default ``.repro_cache`` under the current directory);
- ``REPRO_CACHE=0`` env var or :func:`set_cache_enabled` — kill switch.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.telephony.session import SessionResult

#: Counter names tracked by the cache; they mirror the ``cache.*``
#: metrics of :data:`repro.obs.METRIC_CATALOGUE`.
COUNTER_NAMES = ("entry_hits", "entry_misses", "session_hits", "sessions_stored")

#: Overridden by :func:`set_cache_dir`; None = resolve from environment.
_CACHE_DIR: Optional[Path] = None

#: Overridden by :func:`set_cache_enabled`; None = resolve from environment.
_ENABLED: Optional[bool] = None

#: Computed lazily, once per process (the source tree does not change
#: under a running experiment).
_CODE_SALT: Optional[str] = None

#: Process-level hit/miss counters (this run); a persistent mirror in
#: ``<cache_dir>/counters.json`` accumulates across processes so
#: ``repro360 cache stats`` can report lifetime effectiveness.
_COUNTERS: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}


def set_cache_dir(path: Optional[os.PathLike]) -> None:
    """Override the cache directory (None restores the default)."""
    global _CACHE_DIR
    _CACHE_DIR = None if path is None else Path(path)


def cache_dir() -> Path:
    """Directory holding the persistent cache (not necessarily created)."""
    if _CACHE_DIR is not None:
        return _CACHE_DIR
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def set_cache_enabled(enabled: Optional[bool]) -> None:
    """Force the cache on/off (None restores the environment default)."""
    global _ENABLED
    _ENABLED = enabled


def cache_enabled() -> bool:
    """Whether session results are persisted / looked up on disk."""
    if _ENABLED is not None:
        return _ENABLED
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def code_salt() -> str:
    """Hash of every ``repro`` source file — the cache's version stamp."""
    global _CODE_SALT
    if _CODE_SALT is None:
        import repro

        digest = hashlib.sha256()
        root = Path(repro.__file__).parent
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_SALT = digest.hexdigest()[:12]
    return _CODE_SALT


def condition_key(settings, scenario_name: str, scheme: str, transport: str,
                  profiles: Iterable[str]) -> str:
    """Stable content hash identifying one experimental condition."""
    payload = repr((
        dataclasses.asdict(settings),
        scenario_name,
        scheme,
        transport,
        tuple(profiles),
    ))
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def _entry_path(key: str) -> Path:
    return cache_dir() / code_salt() / f"{key}.pkl"


def _counters_path() -> Path:
    return cache_dir() / "counters.json"


def _bump(**deltas: int) -> None:
    """Add to the process counters and the persistent mirror (best effort)."""
    for name, delta in deltas.items():
        _COUNTERS[name] += delta
    path = _counters_path()
    try:
        totals = {name: 0 for name in COUNTER_NAMES}
        try:
            stored = json.loads(path.read_text())
            for name in COUNTER_NAMES:
                totals[name] = int(stored.get(name, 0))
        except (OSError, ValueError):
            pass
        for name, delta in deltas.items():
            totals[name] += delta
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(totals, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        # Counter persistence must never break an experiment.
        pass


def counters() -> Dict[str, int]:
    """This process's cache hit/miss counters (a copy).

    Keys mirror the ``cache.*`` metric names: ``entry_hits`` /
    ``entry_misses`` count :func:`load` outcomes, ``session_hits``
    counts the sessions those hits returned, and ``sessions_stored``
    counts sessions persisted by :func:`store`.
    """
    return dict(_COUNTERS)


def persistent_counters() -> Dict[str, int]:
    """Lifetime counters accumulated in ``<cache_dir>/counters.json``."""
    totals = {name: 0 for name in COUNTER_NAMES}
    try:
        stored = json.loads(_counters_path().read_text())
        for name in COUNTER_NAMES:
            totals[name] = int(stored.get(name, 0))
    except (OSError, ValueError):
        pass
    return totals


def reset_counters() -> None:
    """Zero the process counters (tests; the mirror is left alone)."""
    for name in COUNTER_NAMES:
        _COUNTERS[name] = 0


def load(key: str) -> Optional[List[SessionResult]]:
    """Fetch a condition's sessions from disk, or None on miss."""
    if not cache_enabled():
        return None
    path = _entry_path(key)
    try:
        with open(path, "rb") as handle:
            results = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
        # Missing, torn, or written by an incompatible code version
        # whose salt happened to collide — treat all as a miss.
        _bump(entry_misses=1)
        return None
    _bump(entry_hits=1, session_hits=len(results))
    return results


def store(key: str, results: List[SessionResult]) -> None:
    """Persist a condition's sessions (atomic write; best effort)."""
    if not cache_enabled():
        return
    _bump(sessions_stored=len(results))
    path = _entry_path(key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(results, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        # A read-only or full filesystem must not break the experiment.
        pass


def payload_key(payload: dict) -> str:
    """Stable content hash of a JSON-safe payload (e.g. a job spec).

    Canonical JSON keyed the same way :func:`condition_key` keys
    experiment conditions; the surrounding ``<code-salt>/`` directory
    provides code-version invalidation, so the key itself only hashes
    the payload.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:32]


def _payload_path(key: str) -> Path:
    return cache_dir() / code_salt() / f"{key}.json"


def load_payload(key: str) -> Optional[dict]:
    """Fetch a JSON payload entry from disk, or None on miss.

    The JSON sibling of :func:`load` for results that are not pickled
    session lists — the service (`repro.service`) persists finished job
    payloads this way, so a resubmitted identical job completes from
    cache even across server restarts.  Does not touch the ``cache.*``
    hit/miss counters (the service meters its own ``service.jobs_cache_
    hits``).
    """
    if not cache_enabled():
        return None
    try:
        return json.loads(_payload_path(key).read_text())
    except (OSError, ValueError):
        return None


def store_payload(key: str, payload: dict) -> None:
    """Persist a JSON payload entry (atomic write; best effort)."""
    if not cache_enabled():
        return
    path = _payload_path(key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError:
        pass


def stats() -> dict:
    """Entry count / byte size / staleness breakdown of the cache."""
    root = cache_dir()
    salt = code_salt()
    current_entries = 0
    stale_entries = 0
    total_bytes = 0
    if root.is_dir():
        for path in root.rglob("*.pkl"):
            total_bytes += path.stat().st_size
            if path.parent.name == salt:
                current_entries += 1
            else:
                stale_entries += 1
    lifetime = persistent_counters()
    return {
        "path": str(root),
        "code_salt": salt,
        "current_entries": current_entries,
        "stale_entries": stale_entries,
        "total_bytes": total_bytes,
        "entry_hits": lifetime["entry_hits"],
        "entry_misses": lifetime["entry_misses"],
        "session_hits": lifetime["session_hits"],
        "sessions_stored": lifetime["sessions_stored"],
    }


def clear() -> int:
    """Delete every cached entry; returns the number of files removed."""
    root = cache_dir()
    removed = 0
    if root.is_dir():
        for path in root.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for child in root.iterdir():
            if child.is_dir():
                shutil.rmtree(child, ignore_errors=True)
        try:
            _counters_path().unlink()
        except OSError:
            pass
    return removed
