"""Per-figure experiment harnesses (see DESIGN.md §4 for the index).

Each ``figNN`` module regenerates the rows/series of one paper figure;
``table1`` covers the PSNR→MOS table.  Figures 11-14 share one grid of
sessions and figures 15-16 another, via the cached runners in
:mod:`repro.experiments.runner`.
"""

from repro.experiments.runner import ExperimentSettings, run_grid, run_sessions

__all__ = ["ExperimentSettings", "run_grid", "run_sessions"]
