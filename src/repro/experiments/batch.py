"""Lockstep-cohort execution of experiment sweeps.

The batched engine (:mod:`repro.sim.batch`) advances a *homogeneous*
cohort of sessions on the shared 1 ms grid — homogeneous meaning every
session shares the same tick cadences (channel/cell/diag/frame/encode/
pacer intervals, BSR depth, …; see
:meth:`repro.telephony.uplink.UplinkProfile.signature`).  A sweep grid
is rarely homogeneous as a whole, but its conditions usually are: the
parameters being swept (RSS, speed, cell load, seeds, target buffers)
are exactly the ones a cohort may vary per session.

:class:`BatchRunner` is the bridge: it groups a flat config list by
lockstep signature, slices each group into cohorts of at most
``max_cohort`` sessions, runs each cohort through
:func:`repro.sim.batch.run_batched`, and returns results **in input
order**.  Cohorts — not sessions — are the unit of process-pool
fan-out, so the runner *composes with* the existing pool
(:mod:`repro.experiments.parallel`): workers each advance a whole
cohort in lockstep, multiplying the two speedups.

Configs the lockstep grid cannot express (non-LTE access, explicit
competitor UEs, the sweet-spot learner, off-grid cadences) are reported
by :func:`repro.telephony.uplink.batch_unsupported_reason`; the runner
either raises (default) or routes them one-by-one through the serial
event engine, controlled by ``on_unsupported``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import SessionConfig
from repro.experiments.parallel import resolve_jobs
from repro.telephony.session import SessionResult
from repro.telephony.uplink import UplinkProfile, batch_unsupported_reason


def plan_cohorts(
    configs: Sequence[SessionConfig], max_cohort: int = 64
) -> List[List[int]]:
    """Group config positions into lockstep cohorts.

    Returns lists of indices into ``configs``; every index appears in
    exactly one cohort, each cohort is signature-homogeneous (same tick
    cadences and duration) and at most ``max_cohort`` long.  Input
    order is preserved inside each cohort, so seeds and RNG streams are
    untouched by the slicing.
    """
    if max_cohort < 1:
        raise ValueError("max_cohort must be >= 1")
    groups: Dict[Tuple, List[int]] = {}
    for position, config in enumerate(configs):
        key = (UplinkProfile.from_config(config).signature(), config.duration)
        groups.setdefault(key, []).append(position)
    cohorts: List[List[int]] = []
    for indices in groups.values():
        for start in range(0, len(indices), max_cohort):
            cohorts.append(indices[start : start + max_cohort])
    return cohorts


#: Cohort size below which the scalar lockstep engine beats the batched
#: one.  BENCH_perf.json measures batched speedups of 0.13× at cohort 1
#: and 0.62× at cohort 8 (the per-tick array dispatch overhead dominates
#: until enough sessions amortise it), crossing 1× between 8 and 64;
#: log-interpolating the measured points puts break-even near 12.
DEFAULT_SCALAR_CROSSOVER = 12


def _run_cohort(payload):
    """Worker entry point: run one cohort (pickles across processes).

    ``payload`` is ``(mode, configs, warmup, metered, heartbeat_path,
    label)`` — ``"batched"`` advances the cohort through
    :func:`repro.sim.batch.run_batched`, ``"scalar"`` runs each session
    through the scalar lockstep reference (the small-cohort fast path;
    bit-identical results either way).  Returns ``(results, meter)``;
    ``meter`` is the cohort's engine :class:`~repro.obs.SessionMeter`
    (or None when unmetered) and pickles back to the parent.  When
    ``heartbeat_path`` is set the cohort streams progress records into
    that run-ledger file from inside the tick loop
    (:func:`repro.obs.ledger.cohort_heartbeat_callback`).
    """
    mode, configs, warmup, metered, heartbeat_path, label = payload
    progress = None
    if heartbeat_path is not None:
        from repro.obs.ledger import cohort_heartbeat_callback

        progress = cohort_heartbeat_callback(heartbeat_path, label=label)
    if mode == "scalar":
        from repro.telephony.uplink import run_uplink_session

        meter = None
        if metered:
            from repro.obs.meter import SessionMeter

            meter = SessionMeter()
            meter.inc("batch.scalar_fallbacks", float(len(configs)))
        results = []
        for index, config in enumerate(configs):
            results.append(run_uplink_session(config, warmup=warmup))
            if progress is not None:
                # Scalar cohorts have no shared tick loop; report whole
                # sessions instead (tick stays monotone per stream).
                progress(index + 1, len(configs), len(configs))
        return results, meter
    from repro.sim.batch import run_batched

    meter = None
    if metered:
        from repro.obs.meter import SessionMeter

        meter = SessionMeter()
    results = run_batched(configs, warmup=warmup, meter=meter, progress=progress)
    return results, meter


class CohortOutcome:
    """One finished cohort, as handed to a ``progress`` callback.

    Shaped like a result object (a ``meter`` attribute plus the result
    list) so :meth:`repro.obs.ledger.RunLedger.progress` can absorb the
    cohort's engine meter into the live registry as each cohort lands.
    """

    __slots__ = ("results", "meter")

    def __init__(self, results: List[SessionResult], meter):
        self.results = results
        self.meter = meter


class BatchRunner:
    """Run a sweep's sessions as lockstep cohorts, optionally pooled.

    Parameters
    ----------
    max_cohort:
        Upper bound on sessions advanced together.  Larger cohorts
        amortise the per-tick vector dispatch over more sessions (the
        dominant win); the default suits sweep-sized groups.
    jobs:
        Process-pool width for cohort fan-out, resolved exactly like
        :func:`repro.experiments.parallel.resolve_jobs`.  Cohorts are
        the fan-out unit; with one cohort (or one core) the runner
        stays serial.
    on_unsupported:
        ``"raise"`` (default) fails fast on configs outside the
        lockstep grid; ``"serial"`` routes them one-by-one through the
        full event-driven engine instead (different session model —
        results for those positions are *not* lockstep-comparable).
    scalar_crossover:
        Cohorts smaller than this run each session through the *scalar*
        lockstep engine instead of the batched one — below the measured
        break-even (~12 sessions, see :data:`DEFAULT_SCALAR_CROSSOVER`)
        the array dispatch overhead makes batching a slowdown.  The two
        engines are bit-identical, so this changes wall clock only.
        Pass ``0`` to always batch.
    """

    def __init__(
        self,
        max_cohort: int = 64,
        jobs: Optional[int] = None,
        on_unsupported: str = "raise",
        scalar_crossover: int = DEFAULT_SCALAR_CROSSOVER,
    ):
        if on_unsupported not in ("raise", "serial"):
            raise ValueError("on_unsupported must be 'raise' or 'serial'")
        self.max_cohort = max_cohort
        self.jobs = jobs
        self.on_unsupported = on_unsupported
        self.scalar_crossover = scalar_crossover

    def run(
        self, configs: Sequence[SessionConfig], warmup: float = 0.0
    ) -> List[SessionResult]:
        """Run every config; results come back in input order."""
        results, _ = self._execute(configs, warmup, metered=False)
        return results

    def run_metered(
        self,
        configs: Sequence[SessionConfig],
        warmup: float = 0.0,
        progress=None,
        heartbeat_path=None,
    ):
        """Like :meth:`run`, plus a merged cohort-level engine meter.

        Returns ``(results, meter)``: results in input order and one
        :class:`~repro.obs.SessionMeter` folding every cohort's engine
        counters (``batch.cohorts``/``batch.sessions``/
        ``batch.subframes``/``batch.scalar_fallbacks``) and ``batch.run``
        spans, merged in deterministic cohort order.  ``progress`` is
        called per finished cohort as ``progress(done, total,
        CohortOutcome)`` — :meth:`repro.obs.ledger.RunLedger.progress`
        plugs in directly — and ``heartbeat_path`` streams in-worker
        cohort records into a run ledger's heartbeat file.  Metering is
        strictly read-only: results are byte-identical to :meth:`run`.
        """
        from repro.obs.meter import SessionMeter

        results, meters = self._execute(
            configs,
            warmup,
            metered=True,
            progress=progress,
            heartbeat_path=heartbeat_path,
        )
        merged = SessionMeter()
        for meter in meters:
            if meter is not None:
                merged.merge(meter)
        return results, merged

    def _execute(
        self,
        configs: Sequence[SessionConfig],
        warmup: float,
        metered: bool,
        progress=None,
        heartbeat_path=None,
    ):
        configs = list(configs)
        supported: List[int] = []
        fallback: List[int] = []
        for position, config in enumerate(configs):
            reason = batch_unsupported_reason(config)
            if reason is None:
                supported.append(position)
            elif self.on_unsupported == "raise":
                raise ValueError(
                    f"config {position} cannot run in lockstep: {reason}"
                )
            else:
                fallback.append(position)
        cohorts = plan_cohorts(
            [configs[i] for i in supported], self.max_cohort
        )
        # plan_cohorts indexed the supported sublist; map back to the
        # caller's positions.
        cohorts = [[supported[i] for i in cohort] for cohort in cohorts]
        heartbeat = None if heartbeat_path is None else str(heartbeat_path)
        payloads = [
            (
                "scalar" if len(cohort) < self.scalar_crossover else "batched",
                [configs[i] for i in cohort],
                warmup,
                metered,
                heartbeat,
                label,
            )
            for label, cohort in enumerate(cohorts)
        ]
        results: List[Optional[SessionResult]] = [None] * len(configs)
        meters = []
        workers = resolve_jobs(self.jobs)
        serial = (
            workers <= 1
            or len(payloads) <= 1
            or (os.cpu_count() or 1) == 1
            or len(payloads) < workers
        )
        if serial:
            outcomes = map(_run_cohort, payloads)
        else:
            pool = ProcessPoolExecutor(max_workers=workers)
            outcomes = pool.map(_run_cohort, payloads)
        cohort_results = []
        for done, (batch, meter) in enumerate(outcomes, start=1):
            cohort_results.append(batch)
            meters.append(meter)
            if progress is not None:
                progress(done, len(payloads), CohortOutcome(batch, meter))
        if not serial:
            pool.shutdown()
        for cohort, batch in zip(cohorts, cohort_results):
            for position, result in zip(cohort, batch):
                results[position] = result
        if fallback:
            from repro.telephony.session import run_session

            for position in fallback:
                results[position] = run_session(
                    configs[position], warmup=warmup
                )
        return results, meters


def run_batched_sessions(
    configs: Sequence[SessionConfig],
    warmup: float = 0.0,
    max_cohort: int = 64,
    jobs: Optional[int] = None,
    scalar_crossover: int = DEFAULT_SCALAR_CROSSOVER,
) -> List[SessionResult]:
    """One-call convenience wrapper around :class:`BatchRunner`."""
    return BatchRunner(
        max_cohort=max_cohort, jobs=jobs, scalar_crossover=scalar_crossover
    ).run(configs, warmup)
