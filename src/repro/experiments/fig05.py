"""Fig. 5 — firmware-buffer occupancy vs uplink TBS throughput.

The paper measures buffer level and per-second summed TBS on an LTE
phone: throughput grows roughly linearly with occupancy and saturates
(~4.5 Mbps) past a knee (~10 KByte), because the PF scheduler serves a
UE in proportion to its backlog.  We regenerate the scatter by driving
a standalone UE uplink with constant-rate traffic at a sweep of offered
loads and sampling (mean buffer, summed TBS) once per second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config import LteConfig
from repro.lte.diagnostics import DiagRecord
from repro.lte.ue import UeUplink
from repro.net.packet import Packet
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry
from repro.units import BITS_PER_BYTE, bytes_to_kbytes, mbps

#: Offered loads swept when none are given (bps).
DEFAULT_RATES = tuple(mbps(r) for r in (0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0))

#: Packet size used by the constant-rate source (bytes).
PACKET_BYTES = 1200.0


@dataclass(frozen=True)
class Fig05Point:
    """One per-second sample of the paper's Fig. 5 scatter."""

    buffer_kbytes: float
    throughput_mbps: float


def buffer_throughput_curve(
    rates_bps: Optional[Sequence[float]] = None,
    seconds_per_rate: float = 15.0,
    warmup: float = 3.0,
    seed: int = 1,
    lte_config: Optional[LteConfig] = None,
) -> List[Fig05Point]:
    """Sweep offered load and sample (buffer level, TBS/s) pairs."""
    rates = tuple(rates_bps) if rates_bps is not None else DEFAULT_RATES
    config = lte_config or LteConfig()
    points: List[Fig05Point] = []
    for index, rate in enumerate(rates):
        points.extend(
            _run_one_rate(rate, seconds_per_rate, warmup, seed + index, config)
        )
    return points


def _run_one_rate(
    rate_bps: float,
    duration: float,
    warmup: float,
    seed: int,
    config: LteConfig,
) -> List[Fig05Point]:
    sim = Simulation()
    rng = RngRegistry(seed)
    ue = UeUplink(sim, config, rng.stream("ue"))

    def inject() -> None:
        ue.send(Packet(kind="video", size_bytes=PACKET_BYTES, created=sim.now))

    sim.every(PACKET_BYTES * BITS_PER_BYTE / rate_bps, inject)

    samples: List[Fig05Point] = []
    state = {"tbs": 0.0, "levels": [], "count": 0}

    def on_batch(batch: List[DiagRecord]) -> None:
        for record in batch:
            state["tbs"] += record.tbs_bytes
            state["levels"].append(record.buffer_bytes)

    def flush_second() -> None:
        state["count"] += 1
        levels = state["levels"] or [0.0]
        if state["count"] > warmup:
            samples.append(
                Fig05Point(
                    buffer_kbytes=bytes_to_kbytes(sum(levels) / len(levels)),
                    throughput_mbps=state["tbs"] * BITS_PER_BYTE / 1e6,
                )
            )
        state["tbs"] = 0.0
        state["levels"] = []

    ue.diag.subscribe(on_batch)
    sim.every(1.0, flush_second)
    sim.run(duration + warmup)
    return samples


def saturation_throughput(points: Sequence[Fig05Point]) -> float:
    """Plateau throughput: mean of samples with buffer past the knee."""
    deep = [p.throughput_mbps for p in points if p.buffer_kbytes >= 10.0]
    if not deep:
        return float("nan")
    return sum(deep) / len(deep)


def low_buffer_slope(points: Sequence[Fig05Point]) -> float:
    """Least-squares slope (Mbps per KByte) over the linear region."""
    linear = [(p.buffer_kbytes, p.throughput_mbps) for p in points if p.buffer_kbytes < 6.0]
    if len(linear) < 2:
        return float("nan")
    n = len(linear)
    mean_x = sum(x for x, _ in linear) / n
    mean_y = sum(y for _, y in linear) / n
    num = sum((x - mean_x) * (y - mean_y) for x, y in linear)
    den = sum((x - mean_x) ** 2 for x, _ in linear)
    return num / den if den else float("nan")
