"""Process-parallel execution of independent telephony sessions.

Every session of an experiment grid is an isolated discrete-event
simulation with its own seed, so the (user × repetition × condition)
fan-out is embarrassingly parallel.  This module runs
:class:`SessionTask` descriptions across a ``ProcessPoolExecutor`` and
returns results **in task order**, which — together with the unchanged
per-session seed derivation — makes parallel runs bit-identical to
serial ones.

Worker count resolution (first match wins):

1. an explicit ``jobs=`` argument,
2. :func:`set_default_jobs` (the CLI's ``--jobs`` flag sets this),
3. the ``REPRO_JOBS`` environment variable,
4. serial execution (1).

Even with workers granted, :func:`run_tasks` runs serially when a pool
cannot win: single-core machines and task lists shorter than the worker
count (see the function docstring — documented in docs/PERFORMANCE.md).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.obs.meter import SessionMeter
from repro.telephony.session import SessionResult

#: Signature of the ``run_tasks`` progress callback:
#: ``progress(done, total, result)`` after each finished session.
ProgressCallback = Callable[[int, int, SessionResult], None]

#: Signature of the ``run_tasks`` cancellation probe: a nullary callable
#: returning True once the sweep should stop (``threading.Event.is_set``
#: bound to an event is the common shape).
CancelProbe = Callable[[], bool]


class RunCancelled(RuntimeError):
    """A sweep was cancelled between tasks (see ``run_tasks(cancel=)``).

    Raised from the *calling* process, never from inside a worker:
    already-running tasks finish, queued ones are abandoned.  The
    service's job queue (:mod:`repro.service.jobs`) maps this onto its
    ``cancelled`` job state.
    """

#: Process-wide default set by ``set_default_jobs`` (e.g. from --jobs).
_DEFAULT_JOBS: Optional[int] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default worker count (None = unset)."""
    global _DEFAULT_JOBS
    _DEFAULT_JOBS = jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the effective worker count (always >= 1)."""
    if jobs is None:
        jobs = _DEFAULT_JOBS
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"REPRO_JOBS must be an integer, got {env!r}") from None
    if jobs is None:
        return 1
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


@dataclass(frozen=True)
class SessionTask:
    """Everything a worker process needs to run one session.

    Carries only plain values (the profile by name, the scenario by
    registry key), so the task pickles cheaply and the worker rebuilds
    the full config itself — identical to what the serial path builds.
    """

    scenario_name: str
    scheme: str
    transport: str
    duration: float
    warmup: float
    seed: int
    profile_name: str
    #: Attach a per-session :class:`repro.obs.SessionMeter`; its registry
    #: comes back on ``SessionResult.meter`` and merges into the fleet
    #: view via :func:`merged_meter`.
    meter: bool = False

    def run(self) -> SessionResult:
        """Build the session config and run it (current process)."""
        from repro.roi.users import profile_by_name
        from repro.telephony.session import TelephonySession
        from repro.traces.scenarios import scenario

        config = scenario(
            self.scenario_name,
            scheme=self.scheme,
            transport=self.transport,
            duration=self.duration,
            seed=self.seed,
        )
        session = TelephonySession(
            config, profile=profile_by_name(self.profile_name), meter=self.meter
        )
        return session.run(self.duration, warmup=self.warmup)


@dataclass(frozen=True)
class CellTask:
    """Everything a worker process needs to run one shared cell.

    The fleet analogue of :class:`SessionTask`: one task is one
    :class:`repro.telephony.fleet.CellSession` of ``ues`` callers, so a
    city-scale sweep shards *cells* across the process pool — members of
    one cell must share a clock and cannot be split.  Like
    :class:`SessionTask` it carries only plain values and the worker
    rebuilds the configs, keeping sharded results bit-identical to
    serial ones.
    """

    scenario_name: str
    scheme: str
    transport: str
    duration: float
    warmup: float
    #: Base seed of the cell; member ``i`` runs at ``seed + 1000*i``.
    seed: int
    ues: int
    background_ues: int = 0
    background_load: float = 0.0
    prb_budget: int = 50
    #: Rotate the named user profiles across members (member ``i`` gets
    #: ``USER_PROFILES[i % len]``); False runs identical callers.
    rotate_profiles: bool = False
    meter: bool = False

    def run(self):
        """Build the cell and run it (current process) → ``CellResult``."""
        from repro.config import FleetConfig
        from repro.roi.users import USER_PROFILES
        from repro.telephony.fleet import CellSession, member_configs
        from repro.traces.scenarios import scenario

        base = scenario(
            self.scenario_name,
            scheme=self.scheme,
            transport=self.transport,
            duration=self.duration,
            seed=self.seed,
        )
        profiles = None
        if self.rotate_profiles:
            profiles = [
                USER_PROFILES[index % len(USER_PROFILES)]
                for index in range(self.ues)
            ]
        fleet = FleetConfig(
            ues=self.ues,
            prb_budget=self.prb_budget,
            background_ues=self.background_ues,
            background_load=self.background_load,
            seed=self.seed,
        )
        cell = CellSession(
            member_configs(base, self.ues),
            profiles=profiles,
            fleet=fleet,
            meter=self.meter,
        )
        return cell.run(self.duration, warmup=self.warmup)


@dataclass(frozen=True)
class CellBlockTask:
    """Everything a worker process needs to run one *batched cell block*.

    The ``--batch`` sharding unit: one task is one
    :class:`repro.sim.batch_cell.BatchedCellSimulation` advancing a
    contiguous run of a sweep's cells (same calls-per-cell, consecutive
    seeds) in lockstep.  Cells never couple with each other, so how a
    point's cells are partitioned into blocks changes wall clock only —
    the flattened per-cell results (and hence the merged registries) are
    byte-equal for any partition, including the serial one-block case.
    ``run()`` returns a list of :class:`repro.telephony.fleet.CellResult`
    in seed order.
    """

    scenario_name: str
    scheme: str
    transport: str
    duration: float
    warmup: float
    #: Base seed of each cell in the block; member ``i`` of a cell runs
    #: at ``cell_seed + 1000*i``.
    seeds: tuple
    ues: int
    background_ues: int = 0
    background_load: float = 0.0
    prb_budget: int = 50
    #: Attach live per-cell engine meters (``fleet.*`` + ``batch.*``
    #: counters accumulated inside the tick loop; see
    #: :meth:`repro.sim.batch_cell.BatchedCellSimulation.run_cells`).
    meter: bool = False
    #: Run-ledger heartbeat file: the block streams cohort-progress
    #: records into it from inside the tick loop (worker-safe appends;
    #: :func:`repro.obs.ledger.cohort_heartbeat_callback`).
    heartbeat_path: Optional[str] = None

    def run(self) -> List:
        from repro.config import FleetConfig
        from repro.experiments.fleet import lockstep_scenario
        from repro.sim.batch_cell import run_batched_cells
        from repro.telephony.fleet import member_configs

        cells = []
        fleets = []
        for seed in self.seeds:
            base = lockstep_scenario(
                self.scenario_name,
                scheme=self.scheme,
                transport=self.transport,
                duration=self.duration,
                seed=seed,
            )
            cells.append(member_configs(base, self.ues))
            fleets.append(
                FleetConfig(
                    ues=self.ues,
                    prb_budget=self.prb_budget,
                    background_ues=self.background_ues,
                    background_load=self.background_load,
                    seed=seed,
                )
            )
        progress = None
        if self.heartbeat_path is not None:
            from repro.obs.ledger import cohort_heartbeat_callback

            progress = cohort_heartbeat_callback(
                self.heartbeat_path, label=self.seeds[0] if self.seeds else 0
            )
        return run_batched_cells(
            cells,
            fleets=fleets,
            duration=self.duration,
            warmup=self.warmup,
            meter=self.meter,
            progress=progress,
        )


def _run_task(task):
    return task.run()


def run_tasks(
    tasks: Sequence,
    jobs: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    cancel: Optional[CancelProbe] = None,
) -> List:
    """Run tasks, fanning across processes; results are in task order.

    Tasks are anything with a picklable ``.run()`` — per-session
    :class:`SessionTask` or per-cell :class:`CellTask` (whole cells are
    the sharding unit for fleet sweeps).

    Falls back to serial execution — no pool spin-up, no pickling —
    whenever a pool cannot win: one effective worker or at most one
    task, a single-core machine (workers would time-slice one CPU and
    pay IPC on top, measured as a 0.95× "speedup"), or a task list
    shorter than the worker count (the pool's fixed cost is amortised
    over too few sessions).  Results are bit-identical either way; only
    wall clock changes.

    ``progress`` is invoked as ``progress(done, total, result)`` after
    every finished session, in task order, from the calling process —
    long sweeps can report per-worker health without touching results.

    ``cancel`` is probed before each serial task and after each pooled
    completion; once it returns True the sweep raises
    :class:`RunCancelled` from the calling process (in-flight worker
    tasks drain, queued ones never start).  Cancellation cannot corrupt
    results: every task that *did* run is bit-identical to its serial
    counterpart.
    """
    tasks = list(tasks)
    workers = resolve_jobs(jobs)
    serial = (
        workers <= 1
        or len(tasks) <= 1
        or (os.cpu_count() or 1) == 1
        or len(tasks) < workers
    )
    total = len(tasks)
    results: List = []
    if serial:
        for task in tasks:
            if cancel is not None and cancel():
                raise RunCancelled(f"cancelled after {len(results)}/{total} tasks")
            result = task.run()
            results.append(result)
            if progress is not None:
                progress(len(results), total, result)
        return results
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # Chunked map: preserves order, amortises pickling overhead.
        chunksize = max(1, len(tasks) // (workers * 4))
        for result in pool.map(_run_task, tasks, chunksize=chunksize):
            results.append(result)
            if progress is not None:
                progress(len(results), total, result)
            if cancel is not None and cancel():
                raise RunCancelled(f"cancelled after {len(results)}/{total} tasks")
    return results


def merged_meter(
    results: Sequence,
    workers: int = 1,
    cache_counters: Optional[dict] = None,
) -> SessionMeter:
    """Fold per-session (or per-cell) meters into one fleet registry.

    Accepts anything with a ``.meter`` attribute — ``SessionResult`` or
    ``CellResult`` (whose meter already carries its members' totals).

    Counters and histogram buckets sum elementwise, spans accumulate, so
    the merged view of a parallel sweep equals the serial one exactly
    (merge order is task order, and every operation is commutative
    addition).  On top of the per-session metrics the fleet meter carries:

    - ``fleet.sessions`` — sessions that contributed a meter,
    - ``fleet.workers`` — the worker count used for the sweep,
    - ``fleet.straggler_s`` / ``fleet.straggler_index`` — wall-clock of
      the slowest session (its ``session.run`` span) and its task index,
    - ``cache.*`` counters when a ``cache_counters`` snapshot from
      :func:`repro.experiments.cache.counters` is supplied.
    """
    fleet = SessionMeter()
    straggler_s = 0.0
    straggler_index = -1
    sessions = 0
    for index, result in enumerate(results):
        meter = getattr(result, "meter", None)
        if meter is None:
            continue
        fleet.merge(meter)
        sessions += 1
        run_span = meter.spans.stats.get("session.run")
        if run_span is not None and run_span.max_s > straggler_s:
            straggler_s = run_span.max_s
            straggler_index = index
    fleet.inc("fleet.sessions", sessions)
    fleet.set_gauge("fleet.workers", workers)
    if straggler_index >= 0:
        fleet.set_gauge("fleet.straggler_s", straggler_s)
        fleet.set_gauge("fleet.straggler_index", straggler_index)
    if cache_counters:
        for name, value in cache_counters.items():
            if value:
                fleet.inc(f"cache.{name}", value)
    return fleet
