"""Fig. 16 — end-to-end comparison of FBCC vs GCC under POI360.

Paper shape (200 s sessions, same adaptive compression on top):

- mean throughputs are comparable, but GCC's per-second series is far
  noisier (≈57% higher std) because it probes up and cuts sharply,
  while FBCC converges to the measured uplink bandwidth;
- FBCC's freeze ratio (≈1.6%) is well below GCC's (≈4.7%);
- FBCC's MOS mass sits at good/excellent, GCC leaves >40% at fair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.runner import (
    ExperimentSettings,
    mean_of,
    pooled_mos,
    run_sessions,
)


@dataclass(frozen=True)
class Fig16Row:
    """One transport's Fig. 16 numbers."""

    transport: str
    throughput_mean: float
    throughput_std: float
    freeze_ratio: float
    mean_psnr: float
    mos_pdf: Dict[str, float]

    @property
    def relative_std(self) -> float:
        """Throughput std relative to its mean (sawtooth severity)."""
        if not self.throughput_mean:
            return float("nan")
        return self.throughput_std / self.throughput_mean


def transport_rows(settings: Optional[ExperimentSettings] = None) -> List[Fig16Row]:
    """Regenerate Fig. 16a/b for both transports."""
    rows: List[Fig16Row] = []
    for transport in ("gcc", "fbcc"):
        sessions = run_sessions("cellular", "poi360", transport, settings)
        throughput_means = [s.summary.throughput.mean for s in sessions]
        throughput_stds = [s.summary.throughput.std for s in sessions]
        rows.append(
            Fig16Row(
                transport=transport,
                throughput_mean=sum(throughput_means) / len(throughput_means),
                throughput_std=sum(throughput_stds) / len(throughput_stds),
                freeze_ratio=mean_of(sessions, "freeze_ratio"),
                mean_psnr=sum(
                    s.summary.quality.mean_psnr for s in sessions
                ) / len(sessions),
                mos_pdf=pooled_mos(sessions),
            )
        )
    return rows


def row(rows: List[Fig16Row], transport: str) -> Fig16Row:
    for candidate in rows:
        if candidate.transport == transport:
            return candidate
    raise KeyError(transport)
