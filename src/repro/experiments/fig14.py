"""Fig. 14 — video freeze ratio (frames delayed past 600 ms).

Paper shape: on wireline everything stays under 2% (POI360 ≈0.6%); on
cellular the fixed profiles fail — Conduit and Pyramid reach 8-17% —
while POI360's adaptive compression keeps the ratio below ≈3%.
Frames that never arrive (expired at the pacer or unrecoverable) count
as frozen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.microbench import NETWORKS, SCHEMES, micro_grid
from repro.experiments.runner import ExperimentSettings, mean_of


@dataclass(frozen=True)
class Fig14Row:
    """Freeze ratio for one (network, scheme) condition."""

    network: str
    scheme: str
    freeze_ratio: float


def freeze_rows(settings: Optional[ExperimentSettings] = None) -> List[Fig14Row]:
    """Regenerate the Fig. 14 freeze-ratio bars."""
    grid = micro_grid(settings)
    rows: List[Fig14Row] = []
    for network in NETWORKS:
        for scheme in SCHEMES:
            rows.append(
                Fig14Row(
                    network=network,
                    scheme=scheme,
                    freeze_ratio=mean_of(grid[(network, scheme)], "freeze_ratio"),
                )
            )
    return rows


def as_table(rows: List[Fig14Row]) -> Dict[Tuple[str, str], float]:
    """(network, scheme) → freeze ratio."""
    return {(r.network, r.scheme): r.freeze_ratio for r in rows}
