"""Fig. 12 — short-term ROI quality stability.

The paper plots the CDF of the std of the ROI compression level inside
2-second windows: on cellular, Conduit's binary profile oscillates
wildly (≈14x POI360's std) and Pyramid sits in between, while POI360
adapts its mode to the laggy feedback and stays smooth.  We report both
the level-domain series (the paper's metric) and the quality-domain
(ROI-PSNR std) view — see EXPERIMENTS.md for how the two relate under
our plateau-shaped mode family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.experiments.microbench import NETWORKS, SCHEMES, micro_grid
from repro.experiments.runner import ExperimentSettings


@dataclass(frozen=True)
class Fig12Row:
    """Stability summary for one (network, scheme) condition."""

    network: str
    scheme: str
    #: Mean/median of the 2 s-window compression-level stds.
    level_std_mean: float
    level_std_median: float
    #: Mean of the 2 s-window ROI-PSNR stds (dB).
    quality_std_mean: float
    #: Full level-domain series for CDF plotting.
    level_stds: Tuple[float, ...]


def stability_rows(settings: Optional[ExperimentSettings] = None) -> List[Fig12Row]:
    """Regenerate the Fig. 12 CDFs (both stability domains)."""
    grid = micro_grid(settings)
    rows: List[Fig12Row] = []
    for network in NETWORKS:
        for scheme in SCHEMES:
            level_stds: List[float] = []
            quality_stds: List[float] = []
            for result in grid[(network, scheme)]:
                level_stds.extend(result.summary.stability_stds)
                quality_stds.extend(result.summary.quality_stds)
            level_array = np.asarray(level_stds, dtype=float)
            quality_array = np.asarray(quality_stds, dtype=float)
            rows.append(
                Fig12Row(
                    network=network,
                    scheme=scheme,
                    level_std_mean=float(level_array.mean()) if level_array.size else float("nan"),
                    level_std_median=float(np.median(level_array)) if level_array.size else float("nan"),
                    quality_std_mean=float(quality_array.mean()) if quality_array.size else float("nan"),
                    level_stds=tuple(level_array.tolist()),
                )
            )
    return rows


def stability_ratios(rows: List[Fig12Row], network: str = "cellular") -> Dict[str, float]:
    """Each scheme's mean level-std relative to POI360's (paper: Conduit
    ≈14x, Pyramid ≈5x on cellular)."""
    baseline = next(
        r.level_std_mean for r in rows if r.network == network and r.scheme == "poi360"
    )
    return {
        r.scheme: (r.level_std_mean / baseline if baseline else float("inf"))
        for r in rows
        if r.network == network
    }
