"""Fig. 6 — CDF of the firmware-buffer level under WebRTC's rate control.

The paper streams the 4K panorama over GCC and finds the uplink buffer
*empty* about 40% of the time even though the traffic always exceeds
the available bandwidth (§3.3): GCC's sawtooth keeps the sending rate
below the instantaneous bandwidth for long stretches, and the paced
frame bursts drain before the next frame arrives.  "Empty" here means
the level rounds to 0 KByte at the diag interface's granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.experiments.runner import ExperimentSettings, run_sessions
from repro.units import kbytes

#: Buffer level below which the diag interface reports "0 KByte".
EMPTY_THRESHOLD_BYTES = kbytes(1)


@dataclass(frozen=True)
class Fig06Result:
    """Empty-buffer fraction and the CDF of buffer levels (bytes)."""

    empty_fraction: float
    levels: Tuple[float, ...]

    def cdf(self, num_points: int = 50) -> List[Tuple[float, float]]:
        """(level KByte, cumulative fraction) pairs."""
        if not self.levels:
            return []
        ordered = sorted(self.levels)
        points = []
        for index in range(num_points):
            position = int((index + 1) / num_points * len(ordered)) - 1
            points.append(
                (ordered[max(0, position)] / 1024.0, (index + 1) / num_points)
            )
        return points


def buffer_level_cdf(settings: Optional[ExperimentSettings] = None) -> Fig06Result:
    """Regenerate Fig. 6 from POI360-compression-over-GCC sessions."""
    results = run_sessions("cellular", "poi360", "gcc", settings)
    levels: List[float] = []
    for result in results:
        levels.extend(level for _, level in result.log.buffer_levels)
    if not levels:
        return Fig06Result(empty_fraction=float("nan"), levels=())
    empty = sum(1 for level in levels if level < EMPTY_THRESHOLD_BYTES)
    return Fig06Result(
        empty_fraction=empty / len(levels), levels=tuple(levels)
    )
