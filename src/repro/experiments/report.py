"""Paper-vs-measured report generator.

``python -m repro.experiments.report [--scale quick|paper]`` runs every
experiment in DESIGN.md's index and prints one section per figure with
the paper's expectation next to the measured value.  EXPERIMENTS.md is
generated from the same rows.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, Sequence

from repro.experiments import fig05, fig06, fig11, fig12, fig13, fig14, fig15, fig16, fig17, table1
from repro.experiments.runner import ExperimentSettings
from repro.plotting import cdf_plot, scatter_plot
from repro.video.quality import MOS_ORDER


def _fmt_pdf(pdf) -> str:
    return " ".join(f"{band[:4]}={pdf.get(band, 0.0) * 100:.0f}%" for band in MOS_ORDER)


def _table(header: Sequence[str], rows: Iterable[Sequence[str]]) -> str:
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    out = [line(header), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def report_table1(out) -> None:
    out.write("\n== Table 1: PSNR -> MOS mapping ==\n")
    out.write(_table(("MOS", "PSNR range (dB)"), table1.table_rows()))
    out.write(f"\nbanding matches paper boundaries: {table1.verify_banding()}\n")


def report_fig05(out, seconds: float = 10.0) -> None:
    out.write("\n== Fig. 5: buffer level vs uplink TBS/s ==\n")
    points = fig05.buffer_throughput_curve(seconds_per_rate=seconds)
    out.write(
        scatter_plot(
            [(p.buffer_kbytes, p.throughput_mbps) for p in points],
            xlabel="buffer KByte",
            ylabel="Mbps",
        )
    )
    out.write(
        f"\nsamples={len(points)}  low-buffer slope={fig05.low_buffer_slope(points):.3f} Mbps/KB  "
        f"plateau={fig05.saturation_throughput(points):.2f} Mbps\n"
        "paper: linear growth then saturation (~4.5 Mbps past ~10 KB on their cell)\n"
    )


def report_fig06(out, settings) -> None:
    out.write("\n== Fig. 6: firmware buffer CDF under GCC ==\n")
    result = fig06.buffer_level_cdf(settings)
    out.write(cdf_plot([l / 1024.0 for l in result.levels], xlabel="buffer KByte"))
    out.write(
        f"\nempty (<1 KB) fraction = {result.empty_fraction * 100:.0f}%  "
        "(paper: ~40% empty despite traffic exceeding bandwidth)\n"
    )


def report_micro(out, settings) -> None:
    rows11 = fig11.quality_rows(settings)
    out.write("\n== Fig. 11: ROI PSNR and MOS ==\n")
    out.write(
        _table(
            ("network", "scheme", "PSNR dB", "MOS PDF"),
            [
                (r.network, r.scheme, f"{r.mean_psnr:.1f}", _fmt_pdf(r.mos_pdf))
                for r in rows11
            ],
        )
    )
    out.write(
        "\npaper: POI360 highest everywhere; on cellular Conduit/Pyramid drop 11-13 dB below POI360\n"
    )

    rows12 = fig12.stability_rows(settings)
    out.write("\n== Fig. 12: short-term stability (2 s windows) ==\n")
    out.write(
        _table(
            ("network", "scheme", "level std", "PSNR std (dB)"),
            [
                (r.network, r.scheme, f"{r.level_std_mean:.2f}", f"{r.quality_std_mean:.2f}")
                for r in rows12
            ],
        )
    )
    ratios = fig12.stability_ratios(rows12)
    out.write(
        f"\ncellular level-std vs POI360: {ratios}\n"
        "paper: Conduit ~14x and Pyramid ~5x POI360's std on cellular\n"
    )

    rows13 = fig13.delay_rows(settings)
    out.write("\n== Fig. 13: frame delay ==\n")
    out.write(
        _table(
            ("network", "scheme", "median ms", "p90 ms"),
            [
                (r.network, r.scheme, f"{r.median * 1e3:.0f}", f"{r.p90 * 1e3:.0f}")
                for r in rows13
            ],
        )
    )
    out.write("\npaper: cellular median ~460 ms for POI360, ~15% below Conduit, Pyramid slowest\n")

    rows14 = fig14.freeze_rows(settings)
    out.write("\n== Fig. 14: freeze ratio (>600 ms) ==\n")
    out.write(
        _table(
            ("network", "scheme", "freeze %"),
            [
                (r.network, r.scheme, f"{r.freeze_ratio * 100:.1f}")
                for r in rows14
            ],
        )
    )
    out.write("\npaper: wireline <2% all; cellular POI360 <3%, Conduit/Pyramid 8-17%\n")


def report_transport(out, settings) -> None:
    out.write("\n== Fig. 15: sweet-spot scatter ==\n")
    for result in fig15.sweet_spot_scatter(settings):
        fractions = result.region_fractions()
        out.write(f"--- {result.transport} ---\n")
        out.write(
            scatter_plot(
                [(b / 1024.0, r / 1e6) for r, b in result.points],
                xlabel="buffer KByte",
                ylabel="TBS Mbps",
                height=10,
            )
        )
        out.write(
            f"\n{result.transport}: median buffer {result.buffer_median() / 1024:.1f} KB, "
            f"regions low={fractions['low'] * 100:.0f}% high={fractions['high'] * 100:.0f}% "
            f"overuse={fractions['overuse'] * 100:.0f}%\n"
        )
    out.write("paper: FBCC clusters in the high-usage region; GCC largely in low-usage\n")

    out.write("\n== Fig. 16: FBCC vs GCC ==\n")
    rows16 = fig16.transport_rows(settings)
    out.write(
        _table(
            ("transport", "thru Mbps", "std Mbps", "rel std", "freeze %", "PSNR", "MOS PDF"),
            [
                (
                    r.transport,
                    f"{r.throughput_mean / 1e6:.2f}",
                    f"{r.throughput_std / 1e6:.2f}",
                    f"{r.relative_std:.2f}",
                    f"{r.freeze_ratio * 100:.1f}",
                    f"{r.mean_psnr:.1f}",
                    _fmt_pdf(r.mos_pdf),
                )
                for r in rows16
            ],
        )
    )
    out.write(
        "\npaper: similar means; GCC std ~57% higher; FBCC freeze 1.6% vs GCC 4.7%; "
        "FBCC 69% good + 23% excellent vs GCC >40% fair\n"
    )


def report_system(out, settings) -> None:
    out.write("\n== Fig. 17: system-level evaluation (POI360 + FBCC) ==\n")
    rows = fig17.system_rows(settings)
    out.write(
        _table(
            ("family", "condition", "PSNR dB", "freeze %", "MOS PDF"),
            [
                (
                    r.family,
                    r.condition,
                    f"{r.mean_psnr:.1f}",
                    f"{r.freeze_ratio * 100:.1f}",
                    _fmt_pdf(r.mos_pdf),
                )
                for r in rows
            ],
        )
    )
    out.write(
        "\npaper: idle~1% vs busy~4% freeze with -2 dB; freeze <3% across RSS but weak has no "
        "excellent frames; freeze grows with speed (to ~9%) while highway quality stays high\n"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("quick", "paper"), default="quick")
    parser.add_argument(
        "--only",
        default=None,
        help="comma list of sections: table1,fig05,fig06,micro,transport,system",
    )
    args = parser.parse_args(argv)
    settings = (
        ExperimentSettings.paper() if args.scale == "paper" else ExperimentSettings.quick()
    )
    sections = args.only.split(",") if args.only else [
        "table1", "fig05", "fig06", "micro", "transport", "system",
    ]
    out = sys.stdout
    if "table1" in sections:
        report_table1(out)
    if "fig05" in sections:
        report_fig05(out)
    if "fig06" in sections:
        report_fig06(out, settings)
    if "micro" in sections:
        report_micro(out, settings)
    if "transport" in sections:
        report_transport(out, settings)
    if "system" in sections:
        report_system(out, settings)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
