"""Session runners shared by the per-figure harnesses.

The paper runs every micro-benchmark as 5-minute sessions repeated 10
times across 5 users.  That is ≈25 simulated minutes per condition —
reproducible here, but slow for a test suite — so the settings scale:
``ExperimentSettings.quick()`` (default for pytest benches) uses shorter
sessions with fewer users, ``ExperimentSettings.paper()`` matches the
paper's durations.  Results for a given settings value are cached, so
the four micro-benchmark figures (11-14) share one grid of sessions.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.roi.users import USER_PROFILES, UserProfile
from repro.telephony.session import SessionResult, TelephonySession
from repro.traces.scenarios import scenario


@dataclass(frozen=True)
class ExperimentSettings:
    """How much simulated time an experiment spends per condition."""

    duration: float = 120.0
    warmup: float = 40.0
    repetitions: int = 1
    num_users: int = 2
    base_seed: int = 1

    @staticmethod
    def quick() -> "ExperimentSettings":
        """Bench-friendly scale (minutes of wall clock for all figures)."""
        return ExperimentSettings()

    @staticmethod
    def paper() -> "ExperimentSettings":
        """The paper's scale: 5-minute sessions, 5 users, 10 repetitions."""
        return ExperimentSettings(
            duration=300.0, warmup=40.0, repetitions=10, num_users=5
        )

    def users(self) -> Tuple[UserProfile, ...]:
        return USER_PROFILES[: max(1, min(self.num_users, len(USER_PROFILES)))]


#: Cache of already-run conditions, keyed by (settings, scenario,
#: scheme, transport).
_CACHE: Dict[Tuple, List[SessionResult]] = {}


def clear_cache() -> None:
    """Drop all cached session results (used by tests)."""
    _CACHE.clear()


def run_sessions(
    scenario_name: str,
    scheme: str,
    transport: str,
    settings: Optional[ExperimentSettings] = None,
) -> List[SessionResult]:
    """Run (or fetch cached) sessions for one experimental condition.

    One session per (user, repetition) pair, each with an independent
    seed and its own synthetic video (content seed follows the session
    seed, mirroring the paper's one-video-per-user setup).
    """
    settings = settings or ExperimentSettings.quick()
    key = (settings, scenario_name, scheme, transport)
    if key in _CACHE:
        return _CACHE[key]
    results: List[SessionResult] = []
    for user_index, profile in enumerate(settings.users()):
        for repetition in range(settings.repetitions):
            seed = settings.base_seed + 1000 * user_index + repetition
            config = scenario(
                scenario_name,
                scheme=scheme,
                transport=transport,
                duration=settings.duration,
                seed=seed,
            )
            session = TelephonySession(config, profile=profile)
            results.append(
                session.run(settings.duration, warmup=settings.warmup)
            )
    _CACHE[key] = results
    return results


def run_grid(
    scenarios: Tuple[str, ...],
    schemes: Tuple[str, ...],
    transport: str = "gcc",
    settings: Optional[ExperimentSettings] = None,
) -> Dict[Tuple[str, str], List[SessionResult]]:
    """Run every (scenario, scheme) condition; returns keyed results."""
    grid: Dict[Tuple[str, str], List[SessionResult]] = {}
    for scenario_name in scenarios:
        for scheme in schemes:
            grid[(scenario_name, scheme)] = run_sessions(
                scenario_name, scheme, transport, settings
            )
    return grid


def pooled_mos(results: List[SessionResult]) -> Dict[str, float]:
    """MOS PDF pooled over every frame of every session."""
    from repro.video.quality import MOS_ORDER, mos_band

    counts = {band: 0 for band in MOS_ORDER}
    total = 0
    for result in results:
        for psnr in result.log.roi_psnrs:
            counts[mos_band(psnr)] += 1
            total += 1
    if total == 0:
        return {band: 0.0 for band in MOS_ORDER}
    return {band: counts[band] / total for band in MOS_ORDER}


def mean_of(results: List[SessionResult], attribute: str) -> float:
    """Mean of a scalar SessionSummary attribute across sessions."""
    values = [getattr(result.summary, attribute) for result in results]
    return sum(values) / len(values)


def pooled_values(results: List[SessionResult], field: str) -> List[float]:
    """Concatenate a per-frame log list across sessions."""
    pooled: List[float] = []
    for result in results:
        pooled.extend(getattr(result.log, field))
    return pooled


def replace_settings(settings: ExperimentSettings, **changes) -> ExperimentSettings:
    """Convenience wrapper over :func:`dataclasses.replace`."""
    return dataclasses.replace(settings, **changes)
