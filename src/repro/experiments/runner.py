"""Session runners shared by the per-figure harnesses.

The paper runs every micro-benchmark as 5-minute sessions repeated 10
times across 5 users.  That is ≈25 simulated minutes per condition —
reproducible here, but slow for a test suite — so the settings scale:
``ExperimentSettings.quick()`` (default for pytest benches) uses shorter
sessions with fewer users, ``ExperimentSettings.paper()`` matches the
paper's durations.

Finished conditions are cached twice over: an in-process dict (L1,
returns the *same* result objects) in front of the persistent
content-addressed store in ``repro.experiments.cache`` (L2, shared by
every process and invalidated automatically when the simulator code
changes).  Independent sessions fan out across worker processes when
``jobs`` (argument, ``--jobs``, or ``REPRO_JOBS``) allows — results are
bit-identical to serial execution because each session is a sealed
simulation with an unchanged seed derivation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments import cache as _disk_cache
from repro.experiments.parallel import SessionTask, run_tasks
from repro.roi.users import USER_PROFILES, UserProfile
from repro.telephony.session import SessionResult


@dataclass(frozen=True)
class ExperimentSettings:
    """How much simulated time an experiment spends per condition."""

    duration: float = 120.0
    warmup: float = 40.0
    repetitions: int = 1
    num_users: int = 2
    base_seed: int = 1

    @staticmethod
    def quick() -> "ExperimentSettings":
        """Bench-friendly scale (minutes of wall clock for all figures)."""
        return ExperimentSettings()

    @staticmethod
    def paper() -> "ExperimentSettings":
        """The paper's scale: 5-minute sessions, 5 users, 10 repetitions."""
        return ExperimentSettings(
            duration=300.0, warmup=40.0, repetitions=10, num_users=5
        )

    def users(self) -> Tuple[UserProfile, ...]:
        return USER_PROFILES[: max(1, min(self.num_users, len(USER_PROFILES)))]


#: L1 cache of already-run conditions, keyed by (settings, scenario,
#: scheme, transport).  Hits return the identical result objects.
_CACHE: Dict[Tuple, List[SessionResult]] = {}


def clear_cache(disk: bool = False) -> None:
    """Drop cached session results (in-memory; ``disk=True`` adds L2)."""
    _CACHE.clear()
    if disk:
        _disk_cache.clear()


def _condition_tasks(
    scenario_name: str,
    scheme: str,
    transport: str,
    settings: ExperimentSettings,
) -> List[SessionTask]:
    """The condition's session tasks, in canonical (user, rep) order.

    Seed derivation — ``base_seed + 1000 * user_index + repetition`` —
    is the compatibility contract with every previously published
    number; do not reorder or reformulate it.
    """
    tasks: List[SessionTask] = []
    for user_index, profile in enumerate(settings.users()):
        for repetition in range(settings.repetitions):
            seed = settings.base_seed + 1000 * user_index + repetition
            tasks.append(
                SessionTask(
                    scenario_name=scenario_name,
                    scheme=scheme,
                    transport=transport,
                    duration=settings.duration,
                    warmup=settings.warmup,
                    seed=seed,
                    profile_name=profile.name,
                )
            )
    return tasks


def _disk_key(
    scenario_name: str, scheme: str, transport: str, settings: ExperimentSettings
) -> str:
    return _disk_cache.condition_key(
        settings,
        scenario_name,
        scheme,
        transport,
        (profile.name for profile in settings.users()),
    )


def run_sessions(
    scenario_name: str,
    scheme: str,
    transport: str,
    settings: Optional[ExperimentSettings] = None,
    jobs: Optional[int] = None,
) -> List[SessionResult]:
    """Run (or fetch cached) sessions for one experimental condition.

    One session per (user, repetition) pair, each with an independent
    seed and its own synthetic video (content seed follows the session
    seed, mirroring the paper's one-video-per-user setup).
    """
    settings = settings or ExperimentSettings.quick()
    key = (settings, scenario_name, scheme, transport)
    if key in _CACHE:
        return _CACHE[key]
    disk_key = _disk_key(scenario_name, scheme, transport, settings)
    results = _disk_cache.load(disk_key)
    if results is None:
        tasks = _condition_tasks(scenario_name, scheme, transport, settings)
        results = run_tasks(tasks, jobs=jobs)
        _disk_cache.store(disk_key, results)
    _CACHE[key] = results
    return results


def run_grid(
    scenarios: Tuple[str, ...],
    schemes: Tuple[str, ...],
    transport: str = "gcc",
    settings: Optional[ExperimentSettings] = None,
    jobs: Optional[int] = None,
) -> Dict[Tuple[str, str], List[SessionResult]]:
    """Run every (scenario, scheme) condition; returns keyed results.

    All sessions still missing after the cache lookups are pooled into
    one task list before fanning out, so workers stay busy across
    condition boundaries (a grid of short conditions parallelises as
    well as one long condition).
    """
    settings = settings or ExperimentSettings.quick()
    grid: Dict[Tuple[str, str], List[SessionResult]] = {}
    missing: List[Tuple[str, str]] = []
    pooled_tasks: List[SessionTask] = []
    per_condition = max(1, len(settings.users()) * settings.repetitions)
    for scenario_name in scenarios:
        for scheme in schemes:
            key = (settings, scenario_name, scheme, transport)
            if key in _CACHE:
                grid[(scenario_name, scheme)] = _CACHE[key]
                continue
            results = _disk_cache.load(
                _disk_key(scenario_name, scheme, transport, settings)
            )
            if results is not None:
                _CACHE[key] = results
                grid[(scenario_name, scheme)] = results
                continue
            missing.append((scenario_name, scheme))
            pooled_tasks.extend(
                _condition_tasks(scenario_name, scheme, transport, settings)
            )
    if missing:
        pooled_results = run_tasks(pooled_tasks, jobs=jobs)
        for index, (scenario_name, scheme) in enumerate(missing):
            results = pooled_results[
                index * per_condition : (index + 1) * per_condition
            ]
            _CACHE[(settings, scenario_name, scheme, transport)] = results
            _disk_cache.store(
                _disk_key(scenario_name, scheme, transport, settings), results
            )
            grid[(scenario_name, scheme)] = results
    return grid


def pooled_mos(results: List[SessionResult]) -> Dict[str, float]:
    """MOS PDF pooled over every frame of every session."""
    from repro.video.quality import MOS_ORDER, mos_band

    counts = {band: 0 for band in MOS_ORDER}
    total = 0
    for result in results:
        for psnr in result.log.roi_psnrs:
            counts[mos_band(psnr)] += 1
            total += 1
    if total == 0:
        return {band: 0.0 for band in MOS_ORDER}
    return {band: counts[band] / total for band in MOS_ORDER}


def mean_of(results: List[SessionResult], attribute: str) -> float:
    """Mean of a scalar SessionSummary attribute across sessions."""
    values = [getattr(result.summary, attribute) for result in results]
    return sum(values) / len(values)


def pooled_values(results: List[SessionResult], field: str) -> List[float]:
    """Concatenate a per-frame log list across sessions."""
    pooled: List[float] = []
    for result in results:
        pooled.extend(getattr(result.log, field))
    return pooled


def replace_settings(settings: ExperimentSettings, **changes) -> ExperimentSettings:
    """Convenience wrapper over :func:`dataclasses.replace`."""
    return dataclasses.replace(settings, **changes)
