"""The performance microbenchmark behind ``repro360 perf``.

Times three things and writes them to ``BENCH_perf.json`` so the perf
trajectory of the simulator is tracked from PR to PR:

1. one 30 s cellular POI360 session (the single-process hot path);
2. the Fig. 11-14 micro-grid run serially;
3. the same micro-grid fanned across worker processes.

Caches (both layers) are bypassed while measuring — every leg really
simulates.  The grid legs use short sessions so the whole bench stays
under a couple of minutes on a laptop; the *ratio* between legs is the
tracked signal, not the absolute numbers.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Optional

from repro.experiments import cache as result_cache
from repro.experiments.microbench import NETWORKS, SCHEMES
from repro.experiments.parallel import resolve_jobs
from repro.experiments.runner import ExperimentSettings, clear_cache, run_grid
from repro.roi.users import USER_PROFILES
from repro.telephony.session import TelephonySession
from repro.traces.scenarios import scenario

#: Wall-clock numbers measured on the pre-optimisation tree (same
#: machine class as CI), recorded when the perf subsystem landed; they
#: are the "before" column of this bench's first report.
SEED_BASELINE = {
    "single_session_s": 0.659,
    "note": "best of 5: 30 s cellular/poi360/gcc session (10 s warm-up) "
    "before hot-path batching",
}


def _time_single_session(duration: float, warmup: float) -> float:
    config = scenario(
        "cellular", scheme="poi360", transport="gcc", duration=duration, seed=3
    )
    start = time.perf_counter()
    TelephonySession(config, profile=USER_PROFILES[1]).run(duration, warmup)
    return time.perf_counter() - start


def _time_grid(settings: ExperimentSettings, jobs: int) -> float:
    clear_cache()
    start = time.perf_counter()
    run_grid(NETWORKS, SCHEMES, transport="gcc", settings=settings, jobs=jobs)
    elapsed = time.perf_counter() - start
    clear_cache()
    return elapsed


def run_perf_bench(
    duration: float = 30.0,
    warmup: float = 10.0,
    jobs: Optional[int] = 4,
    output: Optional[str] = "BENCH_perf.json",
) -> dict:
    """Run every leg and (optionally) write the JSON record."""
    workers = resolve_jobs(jobs if jobs else 0)
    settings = ExperimentSettings(
        duration=duration, warmup=warmup, repetitions=1, num_users=2
    )
    result_cache.set_cache_enabled(False)
    try:
        single = min(_time_single_session(duration, warmup) for _ in range(3))
        serial = _time_grid(settings, jobs=1)
        parallel = _time_grid(settings, jobs=workers)
    finally:
        result_cache.set_cache_enabled(None)
    record = {
        "bench": "repro360-perf",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "session_duration_s": duration,
        "grid_sessions": len(NETWORKS) * len(SCHEMES) * len(settings.users()),
        "single_session_s": round(single, 4),
        "micro_grid_serial_s": round(serial, 4),
        "parallel_jobs": workers,
        "micro_grid_parallel_s": round(parallel, 4),
        "parallel_speedup": round(serial / parallel, 3) if parallel > 0 else None,
        "seed_baseline": SEED_BASELINE,
        "single_session_vs_seed": round(
            SEED_BASELINE["single_session_s"] / single, 3
        )
        if single > 0
        else None,
    }
    if output:
        with open(output, "w") as handle:
            json.dump(record, handle, indent=1)
            handle.write("\n")
    return record
