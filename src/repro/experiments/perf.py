"""The performance microbenchmark behind ``repro360 perf``.

Two families of measurements, written to ``BENCH_perf.json`` so the
perf trajectory of the simulator is tracked from PR to PR:

1. **Session legs** — one 30 s cellular POI360 session (the
   single-process hot path), the Fig. 11-14 micro-grid serially, and
   the same grid fanned across worker processes.
2. **Named kernel microbenchmarks** — each times a vectorised hot-path
   kernel against its scalar reference implementation in the same
   process, so the recorded ``speedup`` is a machine-portable ratio:

   - ``matrix_build``   — cached/rolled Eq. (1) mode matrices vs a
     fresh ``build_mode_matrix_reference`` build per ROI move;
   - ``roi_quality``    — the receiver's array ROI-region PSNR vs the
     per-tile scalar loop (``REPRO_REFERENCE_KERNELS`` path);
   - ``encoder_alloc``  — steady-state ``FrameEncoder.encode`` with the
     per-matrix caches vs a ``reference=True`` encoder;
   - ``full_session``   — the 30 s single-session leg (absolute time,
     plus the ratio against the pre-optimisation seed baseline).

A third, always-on leg guards the observability layer itself:
``bench_ledger_overhead`` times a batched cohort plain vs with full run
telemetry (engine meter + heartbeat stream + snapshot) and records
``overhead_ratio``; ``tools/check_perf.py`` holds it above an absolute
0.95 floor so the run ledger stays within 5% of free.

Caches that could fake the numbers are bypassed while measuring — the
session legs really simulate, and the kernel legs clear the mode-matrix
cache before their cold start.  The *ratios* are the tracked signal,
not the absolute wall-clock numbers; ``tools/check_perf.py`` compares a
fresh record against the committed one and fails on regression.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Optional

import numpy as np

from repro.experiments import cache as result_cache
from repro.experiments.microbench import NETWORKS, SCHEMES
from repro.experiments.parallel import resolve_jobs
from repro.experiments.runner import ExperimentSettings, clear_cache, run_grid
from repro.roi.users import USER_PROFILES
from repro.telephony.session import TelephonySession
from repro.traces.scenarios import scenario

#: Wall-clock numbers measured on the pre-optimisation tree (same
#: machine class as CI), recorded when the perf subsystem landed; they
#: are the "before" column of this bench's first report.
SEED_BASELINE = {
    "single_session_s": 0.659,
    "note": "best of 5: 30 s cellular/poi360/gcc session (10 s warm-up) "
    "before hot-path batching",
}


def _best_of(repeats: int, fn, *args) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _time_single_session(duration: float, warmup: float) -> float:
    config = scenario(
        "cellular", scheme="poi360", transport="gcc", duration=duration, seed=3
    )
    start = time.perf_counter()
    TelephonySession(config, profile=USER_PROFILES[1]).run(duration, warmup)
    return time.perf_counter() - start


def _time_grid(settings: ExperimentSettings, jobs: int) -> float:
    clear_cache()
    start = time.perf_counter()
    run_grid(NETWORKS, SCHEMES, transport="gcc", settings=settings, jobs=jobs)
    elapsed = time.perf_counter() - start
    clear_cache()
    return elapsed


# ----------------------------------------------------------------------
# Named kernel microbenchmarks
# ----------------------------------------------------------------------


def _bench_entry(vectorized_s: float, reference_s: float, iterations: int) -> dict:
    return {
        "iterations": iterations,
        "vectorized_s": round(vectorized_s, 5),
        "reference_s": round(reference_s, 5),
        "speedup": round(reference_s / vectorized_s, 3) if vectorized_s > 0 else None,
    }


def bench_matrix_build(iterations: int = 4000, repeats: int = 3) -> dict:
    """Mode-matrix builds across a rotating ROI: cache+roll vs fresh."""
    from repro.compression.matrix import (
        build_mode_matrix,
        build_mode_matrix_reference,
        clear_matrix_cache,
    )
    from repro.config import VideoConfig
    from repro.video.frame import TileGrid

    video = VideoConfig()
    grid = TileGrid(video.width, video.height, video.tiles_x, video.tiles_y)
    rois = [(k % grid.tiles_x, (k // grid.tiles_x) % grid.tiles_y) for k in range(iterations)]
    cs = (1.8, 1.5, 1.1)

    def cached() -> None:
        for k, roi in enumerate(rois):
            build_mode_matrix(grid, roi, cs[k % 3], (1, 1))

    def reference() -> None:
        for k, roi in enumerate(rois):
            build_mode_matrix_reference(grid, roi, cs[k % 3], (1, 1))

    clear_matrix_cache()
    vectorized = _best_of(repeats, cached)
    reference_s = _best_of(repeats, reference)
    return _bench_entry(vectorized, reference_s, iterations)


def bench_roi_quality(iterations: int = 2000, repeats: int = 3) -> dict:
    """The receiver's per-frame ROI-region PSNR: array kernel vs the
    scalar per-tile reference loop."""
    from repro.compression.matrix import build_mode_matrix
    from repro.sim.rng import RngRegistry
    from repro.telephony.receiver import roi_region_psnr
    from repro.video import quality
    from repro.video.content import ContentModel
    from repro.video.frame import TileGrid
    from repro.config import VideoConfig

    video = VideoConfig()
    grid = TileGrid(video.width, video.height, video.tiles_x, video.tiles_y)
    content = ContentModel(grid, RngRegistry(seed=7).stream("content"))
    matrix = build_mode_matrix(grid, (5, 4), 1.5, (1, 1))
    half = video.roi_measure_halfwidth
    span = np.arange(-half, half + 1)
    dx, dy = np.repeat(span, len(span)), np.tile(span, len(span))
    j = 4 + dy
    valid = (j >= 0) & (j < grid.tiles_y)
    i, j = (5 + dx[valid]) % grid.tiles_x, j[valid]

    def run() -> None:
        for k in range(iterations):
            roi_region_psnr(
                i, j, matrix, 0.08, 0.033 * k, video, content, None
            )

    vectorized = _best_of(repeats, run)
    previous = quality.set_reference_kernels(True)
    try:
        reference_s = _best_of(repeats, run)
    finally:
        quality.set_reference_kernels(previous)
    return _bench_entry(vectorized, reference_s, iterations)


def bench_encoder_alloc(iterations: int = 3000, repeats: int = 3) -> dict:
    """Steady-state frame encoding (bit allocation + intra accounting):
    per-matrix caches vs the uncached reference encoder."""
    from repro.compression.matrix import build_mode_matrix
    from repro.sim.rng import RngRegistry
    from repro.video.content import ContentModel
    from repro.video.encoder import FrameEncoder
    from repro.video.frame import TileGrid
    from repro.config import VideoConfig

    video = VideoConfig()
    grid = TileGrid(video.width, video.height, video.tiles_x, video.tiles_y)
    matrix = build_mode_matrix(grid, (5, 4), 1.5, (1, 1))

    def run(reference: bool) -> None:
        registry = RngRegistry(seed=11)
        content = ContentModel(grid, registry.stream("content"))
        encoder = FrameEncoder(
            video, grid, content, registry.stream("encoder"), reference=reference
        )
        for k in range(iterations):
            encoder.encode(matrix, (5, 4), 2.5e6, 0.033 * k)

    vectorized = _best_of(repeats, run, False)
    reference_s = _best_of(repeats, run, True)
    return _bench_entry(vectorized, reference_s, iterations)


def run_kernel_benches() -> dict:
    """All named kernel microbenchmarks, keyed by name."""
    return {
        "matrix_build": bench_matrix_build(),
        "roi_quality": bench_roi_quality(),
        "encoder_alloc": bench_encoder_alloc(),
    }


# ----------------------------------------------------------------------
# Batched lockstep engine (repro.sim.batch)
# ----------------------------------------------------------------------


def _lockstep_config(seed: int, duration: float):
    """One cellular uplink config on the lockstep grid (25 fps)."""
    from dataclasses import replace

    from repro.config import SessionConfig

    config = SessionConfig()
    return replace(
        config,
        seed=seed,
        duration=duration,
        lte=replace(
            config.lte,
            channel=replace(config.lte.channel, rss_dbm=-82.0, speed_mph=8.0),
        ),
        video=replace(config.video, fps=25.0),
    )


def bench_batched_sessions(
    duration: float = 5.0,
    cohorts: tuple = (1, 8, 64, 1024, 2048),
    serial_sessions: int = 4,
    repeats: int = 2,
    serial_s: Optional[float] = None,
) -> dict:
    """Lockstep cohort throughput vs the serial reference engine.

    Both sides run the *same* uplink workload: the serial leg drives
    one :class:`repro.telephony.uplink.UplinkSession` per seed through
    the event engine's per-tick dispatch; the batched legs advance
    whole cohorts per tick through :class:`repro.sim.batch.
    BatchedSimulation` (bit-identical results, see tests/test_batch.py).
    The tracked signal is ``sessions_per_sec`` — aggregate simulated
    session-seconds per wall-clock second — and the headline
    ``speedup`` is the largest cohort's rate over the serial rate.
    Serial and batched legs are each best-of-``repeats`` so a noisy
    neighbour on a CI box skews the ratio as little as possible.

    The serial reference is timed **once** and its rate reused as the
    denominator for every cohort size (it does not depend on the cohort
    under test); callers that already hold a measurement — a second
    bench invocation in the same process, a CI smoke re-run — can pass
    it in as ``serial_s`` and skip the serial leg entirely.
    """
    import gc

    from repro.sim.batch import run_batched
    from repro.telephony.uplink import run_uplink_session

    def serial_leg() -> None:
        for seed in range(serial_sessions):
            run_uplink_session(_lockstep_config(seed + 1, duration))

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        if serial_s is None:
            serial_s = _best_of(repeats, serial_leg)
        serial_rate = serial_sessions * duration / serial_s
        cohort_entries = {}
        for n in cohorts:
            configs = [_lockstep_config(seed + 1, duration) for seed in range(n)]
            gc.collect()
            elapsed = _best_of(repeats, run_batched, configs)
            rate = n * duration / elapsed
            cohort_entries[str(n)] = {
                "run_s": round(elapsed, 4),
                "sessions_per_sec": round(rate, 1),
                "speedup": round(rate / serial_rate, 3),
            }
    finally:
        if gc_was_enabled:
            gc.enable()
    headline = cohort_entries[str(max(cohorts))]
    from repro.experiments.batch import DEFAULT_SCALAR_CROSSOVER

    return {
        "profile": "cellular uplink lockstep grid (25 fps)",
        "session_duration_s": duration,
        "serial_sessions": serial_sessions,
        "serial_engine_s_per_session": round(serial_s / serial_sessions, 4),
        "serial_sessions_per_sec": round(serial_rate, 1),
        "cohorts": cohort_entries,
        "batched_sessions_per_sec": headline["sessions_per_sec"],
        "batched_speedup": headline["speedup"],
        "scalar_crossover": DEFAULT_SCALAR_CROSSOVER,
    }


def bench_batched_cells(
    duration: float = 5.0,
    members: int = 4,
    cell_counts: tuple = (1, 8, 32, 128),
    serial_cells: int = 2,
    repeats: int = 2,
) -> dict:
    """Batched shared-cell throughput vs the scalar cell reference.

    The fleet counterpart of :func:`bench_batched_sessions`: the serial
    leg drives ``serial_cells`` scalar :class:`repro.telephony.uplink.
    UplinkCellSession` cells (N coupled members each, one Python tick
    loop per cell) and is timed **once**; the batched legs advance
    C-cell blocks through :class:`repro.sim.batch_cell.
    BatchedCellSimulation` (bit-identical results, see
    tests/test_batch_cell.py).  The tracked signal is aggregate
    *cell-member sessions per second* and the headline ``speedup`` is
    the largest block's rate over the serial rate — at the default
    sizes that is C×N = 512 coupled sessions per lockstep tick.
    """
    import gc

    from repro.config import FleetConfig
    from repro.sim.batch_cell import run_batched_cells
    from repro.telephony.fleet import member_configs
    from repro.telephony.uplink import UplinkCellSession

    def cell_inputs(count: int):
        cells = []
        fleets = []
        for index in range(count):
            base = _lockstep_config(1 + 1_000_000 * index, duration)
            cells.append(member_configs(base, members))
            fleets.append(FleetConfig(ues=members, seed=base.seed))
        return cells, fleets

    def serial_leg() -> None:
        cells, fleets = cell_inputs(serial_cells)
        for cell, fleet in zip(cells, fleets):
            UplinkCellSession(cell, fleet=fleet).run()

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        serial_s = _best_of(repeats, serial_leg)
        serial_rate = serial_cells * members * duration / serial_s
        block_entries = {}
        for count in cell_counts:
            cells, fleets = cell_inputs(count)
            gc.collect()
            elapsed = _best_of(repeats, run_batched_cells, cells, fleets)
            rate = count * members * duration / elapsed
            block_entries[str(count)] = {
                "run_s": round(elapsed, 4),
                "sessions_per_sec": round(rate, 1),
                "speedup": round(rate / serial_rate, 3),
            }
    finally:
        if gc_was_enabled:
            gc.enable()
    headline = block_entries[str(max(cell_counts))]
    return {
        "profile": "cellular uplink lockstep grid (25 fps), shared cells",
        "session_duration_s": duration,
        "members_per_cell": members,
        "serial_cells": serial_cells,
        "serial_sessions_per_sec": round(serial_rate, 1),
        "cells": block_entries,
        "max_coupled_sessions": max(cell_counts) * members,
        "batched_sessions_per_sec": headline["sessions_per_sec"],
        "batched_speedup": headline["speedup"],
    }


def bench_ledger_overhead(
    duration: float = 5.0,
    sessions: int = 16,
    repeats: int = 2,
    ledger=None,
) -> dict:
    """Ledger-on vs ledger-off batched session throughput.

    Times the same lockstep cohort twice: plain, then with the full run
    telemetry attached (engine meter, tick-loop heartbeat stream into a
    scratch run directory, one OpenMetrics snapshot per timed run).  The
    tracked ratio is ``overhead_ratio = plain_s / ledger_s`` — ledgered
    throughput over plain throughput, so 1.0 is free telemetry and
    ``tools/check_perf.py`` fails below its 0.95 absolute floor (the
    ledger must cost under 5%).

    ``ledger``, when given, is the *perf run's own*
    :class:`repro.obs.ledger.RunLedger`: the timed leg's final meter is
    folded into its live registry so a ledgered ``repro360 perf`` run
    ends with a real registry artifact.
    """
    import gc
    import tempfile

    from repro.obs.ledger import RunLedger, cohort_heartbeat_callback
    from repro.obs.meter import SessionMeter
    from repro.sim.batch import run_batched

    configs = [_lockstep_config(seed + 1, duration) for seed in range(sessions)]
    gc_was_enabled = gc.isenabled()
    gc.disable()
    last_meter = SessionMeter()
    try:
        plain_s = _best_of(repeats, run_batched, configs)
        with tempfile.TemporaryDirectory() as scratch:
            scratch_ledger = RunLedger.open("perf-ledger-leg", root=scratch)
            heartbeat = cohort_heartbeat_callback(scratch_ledger.heartbeat_path)

            def ledger_leg() -> None:
                meter = SessionMeter()
                run_batched(configs, meter=meter, progress=heartbeat)
                scratch_ledger.snapshot(meter)
                last_meter.merge(meter)

            ledger_s = _best_of(repeats, ledger_leg)
            scratch_ledger.finish("ok")
    finally:
        if gc_was_enabled:
            gc.enable()
    if ledger is not None:
        ledger.live.merge(last_meter)
    return {
        "profile": "cellular uplink lockstep grid (25 fps), full telemetry",
        "sessions": sessions,
        "session_duration_s": duration,
        "plain_s": round(plain_s, 4),
        "ledger_s": round(ledger_s, 4),
        "overhead_ratio": round(plain_s / ledger_s, 3) if ledger_s > 0 else None,
    }


def run_perf_bench(
    duration: float = 30.0,
    warmup: float = 10.0,
    jobs: Optional[int] = 4,
    output: Optional[str] = "BENCH_perf.json",
    batch: bool = False,
    fleet_batch: bool = False,
    ledger=None,
) -> dict:
    """Run every leg and (optionally) write the JSON record.

    ``ledger`` is an optional :class:`repro.obs.ledger.RunLedger` for
    the bench invocation itself: each completed leg appends a
    ``kind="leg"`` heartbeat record (done/total/ETA over the enabled
    legs), and the ledger-overhead leg's meter seeds its registry.
    """
    workers = resolve_jobs(jobs if jobs else 0)
    settings = ExperimentSettings(
        duration=duration, warmup=warmup, repetitions=1, num_users=2
    )
    # On a single-CPU machine a process pool cannot win: the "speedup"
    # it would record is scheduler noise (0.99x in one committed
    # record), not signal, so the parallel leg is skipped outright.
    cpu_count = os.cpu_count() or 1
    run_parallel_leg = cpu_count > 1 and workers > 1
    legs = ["kernels", "single_session", "micro_grid_serial"]
    if run_parallel_leg:
        legs.append("micro_grid_parallel")
    if batch:
        legs.append("batch")
    if fleet_batch:
        legs.append("fleet_batch")
    legs.append("ledger_overhead")

    def leg_done(name: str) -> None:
        if ledger is not None:
            ledger.heartbeat(
                "leg", done=legs.index(name) + 1, total=len(legs), leg=name
            )

    result_cache.set_cache_enabled(False)
    try:
        kernels = run_kernel_benches()
        leg_done("kernels")
        single = min(_time_single_session(duration, warmup) for _ in range(3))
        leg_done("single_session")
        serial = _time_grid(settings, jobs=1)
        leg_done("micro_grid_serial")
        parallel = None
        if run_parallel_leg:
            parallel = _time_grid(settings, jobs=workers)
            leg_done("micro_grid_parallel")
        batched = None
        if batch:
            batched = bench_batched_sessions()
            leg_done("batch")
        batched_cells = None
        if fleet_batch:
            batched_cells = bench_batched_cells()
            leg_done("fleet_batch")
        ledger_overhead = bench_ledger_overhead(ledger=ledger)
        leg_done("ledger_overhead")
    finally:
        result_cache.set_cache_enabled(None)
    record = {
        "bench": "repro360-perf",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "session_duration_s": duration,
        "grid_sessions": len(NETWORKS) * len(SCHEMES) * len(settings.users()),
        "single_session_s": round(single, 4),
        "micro_grid_serial_s": round(serial, 4),
        "parallel_jobs": workers,
        "micro_grid_parallel_s": round(parallel, 4) if parallel else None,
        "parallel_speedup": round(serial / parallel, 3) if parallel else None,
        "parallel_note": (
            None
            if run_parallel_leg
            else f"skipped: cpu_count={cpu_count}, workers={workers} "
            "(a pool cannot win; the ratio would be scheduler noise)"
        ),
        "kernels": kernels,
        "batch": batched,
        "fleet_batch": batched_cells,
        "ledger": ledger_overhead,
        "seed_baseline": SEED_BASELINE,
        "single_session_vs_seed": round(
            SEED_BASELINE["single_session_s"] / single, 3
        )
        if single > 0
        else None,
    }
    if output:
        with open(output, "w") as handle:
            json.dump(record, handle, indent=1)
            handle.write("\n")
    return record
