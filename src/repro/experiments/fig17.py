"""Fig. 17 — system-level evaluation of the full POI360 stack.

Three condition families, each run with adaptive compression + FBCC:

- **background load** (Fig. 17a/b): idle early-morning cell vs busy
  noon cell — freeze stays low (≈1% → ≈4%), PSNR drops ≈2 dB, and even
  busy keeps all frames at fair-or-better;
- **signal strength** (Fig. 17c/d): -115 / -82 / -73 dBm — freeze stays
  under ≈3% everywhere, but weak signal costs quality (no excellent
  frames) while strong signal yields a large excellent share;
- **mobility** (Fig. 17e/f): 15 / 30 / 50 mph drives — freeze grows
  with speed (≈static → ≈7% → ≈9%) while quality stays good/excellent
  on the high-RSS highway route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.runner import (
    ExperimentSettings,
    mean_of,
    pooled_mos,
    run_sessions,
)


@dataclass(frozen=True)
class Fig17Row:
    """One condition of the system-level evaluation."""

    family: str
    condition: str
    mean_psnr: float
    freeze_ratio: float
    mos_pdf: Dict[str, float]

    def excellent(self) -> float:
        return self.mos_pdf.get("excellent", 0.0)

    def poor_or_bad(self) -> float:
        return self.mos_pdf.get("poor", 0.0) + self.mos_pdf.get("bad", 0.0)


#: (family, condition label, scenario name) for every Fig. 17 bar.
CONDITIONS = (
    ("load", "idle", "idle_cell"),
    ("load", "busy", "busy_cell"),
    ("rss", "weak", "rss_weak"),
    ("rss", "moderate", "rss_moderate"),
    ("rss", "strong", "rss_strong"),
    ("mobility", "15mph", "driving_15mph"),
    ("mobility", "30mph", "driving_30mph"),
    ("mobility", "50mph", "driving_50mph"),
)


def system_rows(settings: Optional[ExperimentSettings] = None) -> List[Fig17Row]:
    """Regenerate every Fig. 17 condition with the full POI360 stack."""
    rows: List[Fig17Row] = []
    for family, condition, scenario_name in CONDITIONS:
        sessions = run_sessions(scenario_name, "poi360", "fbcc", settings)
        rows.append(
            Fig17Row(
                family=family,
                condition=condition,
                mean_psnr=sum(
                    s.summary.quality.mean_psnr for s in sessions
                ) / len(sessions),
                freeze_ratio=mean_of(sessions, "freeze_ratio"),
                mos_pdf=pooled_mos(sessions),
            )
        )
    return rows


def row(rows: List[Fig17Row], family: str, condition: str) -> Fig17Row:
    for candidate in rows:
        if candidate.family == family and candidate.condition == condition:
            return candidate
    raise KeyError((family, condition))


def family_rows(rows: List[Fig17Row], family: str) -> List[Fig17Row]:
    return [r for r in rows if r.family == family]
