"""Fig. 11 — user-perceived ROI quality: PSNR bars and MOS PDFs.

Paper shape: on wireline every scheme is reasonable with POI360 ahead;
on cellular POI360 keeps the highest PSNR while Conduit and Pyramid
lose heavily (Conduit shows essentially no good/excellent frames, most
of Pyramid's mass sits at fair-or-below).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.experiments.microbench import NETWORKS, SCHEMES, micro_grid
from repro.experiments.runner import ExperimentSettings, pooled_mos, pooled_values


@dataclass(frozen=True)
class Fig11Row:
    """One bar of Fig. 11a/b plus the matching Fig. 11c/d PDF."""

    network: str
    scheme: str
    mean_psnr: float
    std_psnr: float
    mos_pdf: Dict[str, float]

    def good_or_better(self) -> float:
        return self.mos_pdf.get("good", 0.0) + self.mos_pdf.get("excellent", 0.0)


def quality_rows(settings: Optional[ExperimentSettings] = None) -> List[Fig11Row]:
    """Regenerate every bar/PDF of Fig. 11."""
    grid = micro_grid(settings)
    rows: List[Fig11Row] = []
    for network in NETWORKS:
        for scheme in SCHEMES:
            results = grid[(network, scheme)]
            psnrs = pooled_values(results, "roi_psnrs")
            array = np.asarray(psnrs, dtype=float)
            rows.append(
                Fig11Row(
                    network=network,
                    scheme=scheme,
                    mean_psnr=float(array.mean()) if array.size else float("nan"),
                    std_psnr=float(array.std()) if array.size else float("nan"),
                    mos_pdf=pooled_mos(results),
                )
            )
    return rows


def row(rows: List[Fig11Row], network: str, scheme: str) -> Fig11Row:
    """Pick one condition's row."""
    for candidate in rows:
        if candidate.network == network and candidate.scheme == scheme:
            return candidate
    raise KeyError((network, scheme))
