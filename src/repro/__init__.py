"""POI360 reproduction: panoramic mobile video telephony over LTE.

A trace-driven reimplementation of *POI360: Panoramic Mobile Video
Telephony over LTE Cellular Networks* (Xie & Zhang, CoNEXT 2017): the
adaptive ROI spatial compression (§4.2), the firmware-buffer-aware
congestion control FBCC (§4.3), the GCC / Conduit / Pyramid baselines,
and a subframe-level LTE uplink + end-to-end path simulator standing in
for the paper's hardware prototype (see DESIGN.md).

Quickstart::

    from repro import SessionConfig, run_session

    result = run_session(SessionConfig(scheme="poi360", transport="fbcc",
                                       duration=60.0, seed=1))
    print(result.summary.to_dict())
"""

from repro.config import (
    CellConfig,
    ChannelConfig,
    CompressionConfig,
    DownlinkConfig,
    FbccConfig,
    FecConfig,
    FleetConfig,
    GccConfig,
    LteConfig,
    PathConfig,
    SCHEMES,
    SessionConfig,
    TRANSPORTS,
    ViewerConfig,
    VideoConfig,
    WirelineConfig,
)
from repro.metrics.summary import SessionLog, SessionSummary
from repro.obs import (
    EVENT_CATALOGUE,
    METRIC_CATALOGUE,
    NULL_BUS,
    NULL_METER,
    SPAN_CATALOGUE,
    MetricsRegistry,
    SessionMeter,
    SpanProfiler,
    TraceBus,
    TraceEvent,
)
from repro.roi.users import USER_PROFILES, UserProfile, profile_by_name
from repro.telephony.fleet import CellResult, CellSession, member_configs, run_cell
from repro.telephony.session import SessionResult, TelephonySession, run_session

__version__ = "1.0.0"

__all__ = [
    "CellConfig",
    "ChannelConfig",
    "CompressionConfig",
    "DownlinkConfig",
    "FbccConfig",
    "FecConfig",
    "FleetConfig",
    "GccConfig",
    "LteConfig",
    "PathConfig",
    "SCHEMES",
    "SessionConfig",
    "TRANSPORTS",
    "ViewerConfig",
    "VideoConfig",
    "WirelineConfig",
    "SessionLog",
    "SessionSummary",
    "SessionResult",
    "EVENT_CATALOGUE",
    "METRIC_CATALOGUE",
    "SPAN_CATALOGUE",
    "NULL_BUS",
    "NULL_METER",
    "MetricsRegistry",
    "SessionMeter",
    "SpanProfiler",
    "TraceBus",
    "TraceEvent",
    "TelephonySession",
    "run_session",
    "CellResult",
    "CellSession",
    "member_configs",
    "run_cell",
    "USER_PROFILES",
    "UserProfile",
    "profile_by_name",
    "__version__",
]
