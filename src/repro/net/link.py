"""Generic link models for the non-LTE parts of the path.

Two flavours:

- :class:`StochasticLink` — a latency/jitter/loss stage with no explicit
  queue, used for the Internet core + the viewer's downlink and for the
  light feedback path (their queueing is negligible next to the sender's
  uplink, which the LTE substrate models in full).
- :class:`RateLimitedLink` — a FIFO with finite service rate and a byte
  cap, used for the campus wireline access in the paper's baseline.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.net.packet import Packet
from repro.sim.engine import Simulation
from repro.units import BITS_PER_BYTE

PacketSink = Callable[[Packet], None]


class StochasticLink:
    """Delay + jitter + random loss; delivery order is preserved."""

    def __init__(
        self,
        sim: Simulation,
        rng: np.random.Generator,
        delay: float,
        jitter_std: float = 0.0,
        loss: float = 0.0,
        sink: Optional[PacketSink] = None,
    ):
        self._sim = sim
        self._rng = rng
        self.delay = delay
        self.jitter_std = jitter_std
        self.loss = loss
        self._sink = sink
        self._last_arrival = 0.0
        self.delivered = 0
        self.lost = 0

    def set_sink(self, sink: PacketSink) -> None:
        self._sink = sink

    def deliver(self, packet: Packet) -> None:
        """Send ``packet`` across the link."""
        if self.loss > 0.0 and self._rng.random() < self.loss:
            self.lost += 1
            return
        jitter = self._rng.normal(0.0, self.jitter_std) if self.jitter_std else 0.0
        arrival = self._sim.now + max(self.delay * 0.25, self.delay + jitter)
        # Keep FIFO order: a late packet delays the ones behind it.
        arrival = max(arrival, self._last_arrival)
        self._last_arrival = arrival
        self.delivered += 1
        self._sim.at(arrival, self._arrive, packet)

    def _arrive(self, packet: Packet) -> None:
        packet.arrived = self._sim.now
        if self._sink is not None:
            self._sink(packet)


class RateLimitedLink:
    """FIFO link with finite service rate, propagation delay and a cap."""

    def __init__(
        self,
        sim: Simulation,
        rng: np.random.Generator,
        rate_bps: float,
        delay: float,
        jitter_std: float = 0.0,
        queue_cap_bytes: float = 256_000.0,
        sink: Optional[PacketSink] = None,
    ):
        self._sim = sim
        self._rng = rng
        self.rate_bps = rate_bps
        self.delay = delay
        self.jitter_std = jitter_std
        self.queue_cap_bytes = queue_cap_bytes
        self._sink = sink
        self._busy_until = 0.0
        self._queued_bytes = 0.0
        self.dropped = 0

    def set_sink(self, sink: PacketSink) -> None:
        self._sink = sink

    @property
    def queued_bytes(self) -> float:
        """Bytes currently waiting for or in serialization."""
        return self._queued_bytes

    def deliver(self, packet: Packet) -> None:
        """Enqueue ``packet``; drops it when the queue cap is exceeded."""
        if self._queued_bytes + packet.size_bytes > self.queue_cap_bytes:
            self.dropped += 1
            return
        serialization = packet.size_bytes * BITS_PER_BYTE / self.rate_bps
        start = max(self._sim.now, self._busy_until)
        self._busy_until = start + serialization
        self._queued_bytes += packet.size_bytes
        jitter = self._rng.normal(0.0, self.jitter_std) if self.jitter_std else 0.0
        arrival = self._busy_until + max(self.delay * 0.25, self.delay + jitter)
        self._sim.at(arrival, self._arrive, packet)

    def _arrive(self, packet: Packet) -> None:
        self._queued_bytes -= packet.size_bytes
        packet.arrived = self._sim.now
        if self._sink is not None:
            self._sink(packet)
