"""Forward (media) and reverse (feedback) end-to-end paths.

The forward path composes the sender's access hop — the full LTE uplink
substrate or the campus wireline link — with a stochastic stage covering
the Internet core and the viewer's downlink.  The reverse path carries
the viewer's light feedback traffic (ROI, mismatch reports, GCC
feedback) and is a pure latency/jitter stage.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.config import LteConfig, PathConfig
from repro.lte.downlink import EnbDownlink
from repro.lte.ue import UeUplink
from repro.net.link import RateLimitedLink, StochasticLink
from repro.net.packet import Packet
from repro.obs.bus import NULL_BUS
from repro.obs.meter import NULL_METER
from repro.sim.engine import Simulation

PacketSink = Callable[[Packet], None]

#: Fixed downlink residue (core→eNB backhaul + phone RX pipeline) when
#: the full LTE downlink model supplies queueing and burst jitter.
DOWNLINK_FIXED_RESIDUE = 0.015


class ForwardPath:
    """Sender → viewer media path."""

    def __init__(
        self,
        sim: Simulation,
        path_config: PathConfig,
        lte_config: LteConfig,
        rng: np.random.Generator,
        trace=NULL_BUS,
        meter=NULL_METER,
    ):
        self._sim = sim
        self.config = path_config
        self.ue: Optional[UeUplink] = None
        self.access_link: Optional[RateLimitedLink] = None
        self.downlink: Optional[EnbDownlink] = None
        if path_config.downlink_lte is not None:
            # Explicit eNodeB downlink hop: the stochastic stage covers
            # only the Internet core plus a small fixed residue.
            self.downlink = EnbDownlink(sim, path_config.downlink_lte, rng)
            self._core = StochasticLink(
                sim,
                rng,
                delay=path_config.core_delay + DOWNLINK_FIXED_RESIDUE,
                jitter_std=path_config.core_delay * path_config.core_jitter_rel,
                loss=path_config.random_loss,
                sink=self.downlink.deliver,
            )
        else:
            self._core = StochasticLink(
                sim,
                rng,
                delay=path_config.core_delay + path_config.downlink_delay,
                jitter_std=np.hypot(
                    path_config.core_delay * path_config.core_jitter_rel,
                    path_config.downlink_jitter_std,
                ),
                loss=path_config.random_loss,
            )
        if path_config.access == "lte":
            self.ue = UeUplink(
                sim, lte_config, rng, sink=self._core.deliver, trace=trace, meter=meter
            )
        elif path_config.access == "wireline":
            self.access_link = RateLimitedLink(
                sim,
                rng,
                rate_bps=path_config.wireline.rate_bps,
                delay=path_config.wireline.one_way_delay,
                jitter_std=path_config.wireline.jitter_std,
                sink=self._core.deliver,
            )
        else:
            raise ValueError(f"unknown access type: {path_config.access!r}")

    def set_receiver(self, sink: PacketSink) -> None:
        """Attach the viewer-side packet handler."""
        if self.downlink is not None:
            self.downlink.set_sink(sink)
        else:
            self._core.set_sink(sink)

    def send(self, packet: Packet) -> None:
        """Inject a paced RTP packet at the sender's access hop."""
        if self.ue is not None:
            self.ue.send(packet)
        else:
            assert self.access_link is not None
            self.access_link.deliver(packet)

    @property
    def access_backlog_bytes(self) -> float:
        """Bytes queued at the sender's access hop (either flavour)."""
        if self.ue is not None:
            return self.ue.buffer_level
        assert self.access_link is not None
        return self.access_link.queued_bytes

    @property
    def lost_packets(self) -> int:
        """Packets lost anywhere on the forward path."""
        lost = self._core.lost
        if self.ue is not None:
            lost += self.ue.buffer.dropped_packets
        if self.access_link is not None:
            lost += self.access_link.dropped
        if self.downlink is not None:
            lost += self.downlink.dropped_packets
        return lost


class ReversePath:
    """Viewer → sender feedback path (ROI, M, GCC feedback)."""

    def __init__(self, sim: Simulation, path_config: PathConfig, rng: np.random.Generator):
        self._link = StochasticLink(
            sim,
            rng,
            delay=path_config.feedback_delay,
            jitter_std=path_config.feedback_jitter_std,
            loss=path_config.random_loss,
        )

    def set_receiver(self, sink: PacketSink) -> None:
        self._link.set_sink(sink)

    def send(self, packet: Packet) -> None:
        self._link.deliver(packet)
