"""End-to-end network path substrate (everything around the LTE uplink)."""

from repro.net.packet import Packet
from repro.net.link import RateLimitedLink, StochasticLink
from repro.net.path import ForwardPath, ReversePath

__all__ = [
    "Packet",
    "RateLimitedLink",
    "StochasticLink",
    "ForwardPath",
    "ReversePath",
]
