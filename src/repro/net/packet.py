"""Packet types flowing through the simulated network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_packet_ids = itertools.count()


@dataclass
class Packet:
    """A network packet (RTP media or data-channel feedback).

    ``payload`` carries structured simulation metadata in place of real
    bytes — e.g. the frame id and sequence number for RTP video, or the
    viewer's ROI / mismatch report for feedback messages.
    """

    kind: str
    size_bytes: float
    created: float
    payload: Dict[str, Any] = field(default_factory=dict)
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Filled in on delivery by the path.
    arrived: Optional[float] = None

    def age(self, now: float) -> float:
        """Time since the packet was created."""
        return now - self.created
