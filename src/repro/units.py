"""Unit helpers and conventions used across the POI360 reproduction.

Conventions (see DESIGN.md §6):

- **time** is expressed in seconds as ``float``,
- **data rates** are expressed in bits per second (``bps``),
- **data sizes** are expressed in bytes.

The helpers below exist so call sites can state their units explicitly
(``ms(40)`` instead of a bare ``0.04``) and so conversions stay in one
place.
"""

from __future__ import annotations

#: Number of bits in one byte.
BITS_PER_BYTE = 8

#: Length of one LTE subframe (the scheduling granularity) in seconds.
LTE_SUBFRAME = 1e-3


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def seconds_to_ms(value: float) -> float:
    """Convert seconds to milliseconds."""
    return value * 1e3


def kbps(value: float) -> float:
    """Convert kilobits per second to bits per second."""
    return value * 1e3


def mbps(value: float) -> float:
    """Convert megabits per second to bits per second."""
    return value * 1e6


def bps_to_mbps(value: float) -> float:
    """Convert bits per second to megabits per second."""
    return value / 1e6


def kbytes(value: float) -> float:
    """Convert kibibytes to bytes (the paper reports buffer levels in KByte)."""
    return value * 1024.0


def bytes_to_kbytes(value: float) -> float:
    """Convert bytes to kibibytes."""
    return value / 1024.0


def bytes_to_bits(value: float) -> float:
    """Convert bytes to bits."""
    return value * BITS_PER_BYTE


def bits_to_bytes(value: float) -> float:
    """Convert bits to bytes."""
    return value / BITS_PER_BYTE


def rate_to_bytes(rate_bps: float, duration_s: float) -> float:
    """Amount of data (bytes) carried by ``rate_bps`` over ``duration_s``."""
    return rate_bps * duration_s / BITS_PER_BYTE
