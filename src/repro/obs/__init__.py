"""Structured session observability: traces, metrics, spans, the meter.

Three catalogue-driven layers share one design (typed spec tuples,
falsy null objects, single-truthiness-check hot paths):

* **traces** — :class:`TraceBus` + ``EVENT_CATALOGUE`` (per-event log),
* **metrics** — :class:`MetricsRegistry` + ``METRIC_CATALOGUE``
  (counters, gauges, fixed-bucket histograms),
* **spans** — :class:`SpanProfiler` + ``SPAN_CATALOGUE`` (wall-clock
  stage timings), bundled per session by :class:`SessionMeter`.

A fourth layer builds on them per *run* instead of per session:
**ledgers** — :class:`RunLedger` (``repro.obs.ledger``) gives a sweep a
run directory with a manifest, a heartbeat JSONL stream and periodic
OpenMetrics snapshots of the live fleet registry.

See ``docs/OBSERVABILITY.md`` for the event/metric/span reference and
worked examples, and ``docs/ARCHITECTURE.md`` for where each subsystem
emits.
"""

from repro.obs.bus import DEFAULT_CAPACITY, NULL_BUS, NullTraceBus, TraceBus, TraceEvent
from repro.obs.events import EVENT_CATALOGUE, EVENT_NAMES, EventSpec, subsystem_of
from repro.obs.ledger import (
    DEFAULT_RUN_ROOT,
    HEARTBEAT_KINDS,
    LEDGER_VERSION,
    RUN_DIR_ENV,
    RunLedger,
    cohort_heartbeat_callback,
    latest_snapshot,
    load_registry,
    read_heartbeats,
    read_manifest,
    resolve_run_root,
    snapshot_paths,
)
from repro.obs.meter import NULL_METER, NullMeter, SessionMeter, coerce_meter
from repro.obs.metrics import (
    METRIC_CATALOGUE,
    METRIC_KINDS,
    METRIC_NAMES,
    Histogram,
    MetricSpec,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    catalogue_names,
)
from repro.obs.spans import (
    NULL_SPANS,
    NullSpanProfiler,
    SPAN_CATALOGUE,
    SPAN_NAMES,
    SpanProfiler,
    SpanSpec,
    SpanStats,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "NULL_BUS",
    "NullTraceBus",
    "TraceBus",
    "TraceEvent",
    "EVENT_CATALOGUE",
    "EVENT_NAMES",
    "EventSpec",
    "subsystem_of",
    "METRIC_CATALOGUE",
    "METRIC_KINDS",
    "METRIC_NAMES",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "catalogue_names",
    "SPAN_CATALOGUE",
    "SPAN_NAMES",
    "NULL_SPANS",
    "NullSpanProfiler",
    "SpanProfiler",
    "SpanSpec",
    "SpanStats",
    "NULL_METER",
    "NullMeter",
    "SessionMeter",
    "coerce_meter",
    "DEFAULT_RUN_ROOT",
    "HEARTBEAT_KINDS",
    "LEDGER_VERSION",
    "RUN_DIR_ENV",
    "RunLedger",
    "cohort_heartbeat_callback",
    "latest_snapshot",
    "load_registry",
    "read_heartbeats",
    "read_manifest",
    "resolve_run_root",
    "snapshot_paths",
]
