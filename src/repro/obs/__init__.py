"""Structured session observability: the trace bus and event catalogue.

See ``docs/OBSERVABILITY.md`` for the event reference and worked
examples, and ``docs/ARCHITECTURE.md`` for where each subsystem emits.
"""

from repro.obs.bus import DEFAULT_CAPACITY, NULL_BUS, NullTraceBus, TraceBus, TraceEvent
from repro.obs.events import EVENT_CATALOGUE, EVENT_NAMES, EventSpec, subsystem_of

__all__ = [
    "DEFAULT_CAPACITY",
    "NULL_BUS",
    "NullTraceBus",
    "TraceBus",
    "TraceEvent",
    "EVENT_CATALOGUE",
    "EVENT_NAMES",
    "EventSpec",
    "subsystem_of",
]
