"""The deterministic metrics registry and its typed catalogue.

Where the trace bus (``repro.obs.bus``) records *individual* events for
one session, the metrics layer aggregates: counters, gauges and
fixed-bucket histograms keyed by a typed :data:`METRIC_CATALOGUE` —
the same single-source-of-truth pattern as ``EVENT_CATALOGUE``.
Registries are plain accumulators, so per-worker registries from a
parallel sweep merge into one *fleet* registry with exact totals
(``repro.experiments.parallel.merged_meter``).

Determinism contract: a registry only ever *reads* component state and
writes into its own dictionaries.  It never touches an RNG stream,
never schedules simulation events, and never feeds anything back into
the simulation, so a metered session is byte-identical to a plain one
(asserted down to per-stream RNG bit-generator states in
``tests/test_obs.py``).  Metric values themselves are pure functions of
the simulation, hence bit-identical across serial/parallel runs; only
the *span* profiler (``repro.obs.spans``) records wall-clock, and that
wall-clock never enters simulation state.

Metric names are stable identifiers validated against the catalogue on
first use — a typo'd ``inc`` raises instead of silently creating a new
series, which is what keeps docs, exporters and the
``tools/check_metrics.py`` drift gate honest.

>>> registry = MetricsRegistry()
>>> registry.inc("receiver.frames")
>>> registry.inc("receiver.frames", 2)
>>> registry.counters["receiver.frames"]
3.0
>>> registry.observe("receiver.delay_s", 0.18)
>>> registry.histogram("receiver.delay_s").count
1
>>> bool(NULL_METRICS), bool(registry)
(False, True)
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple


class MetricSpec(NamedTuple):
    """Catalogue entry for one metric name."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    subsystem: str
    unit: str
    site: str
    description: str
    #: Upper bucket bounds (histograms only); an implicit +Inf bucket
    #: always follows the last bound.
    buckets: Tuple[float, ...] = ()


#: The three metric kinds the registry understands.
METRIC_KINDS = ("counter", "gauge", "histogram")

_SPECS = (
    # ------------------------------------------------------------- session
    MetricSpec(
        "session.runs", "counter", "session", "",
        "repro.telephony.session.TelephonySession.run",
        "Sessions run to completion.",
    ),
    # -------------------------------------------------------------- engine
    MetricSpec(
        "sim.runs", "counter", "engine", "",
        "repro.sim.engine.Simulation.run",
        "Event-loop drains (one per Simulation.run call).",
    ),
    MetricSpec(
        "sim.events", "counter", "engine", "",
        "repro.sim.engine.Simulation.run",
        "Events dispatched by the simulation loop.",
    ),
    # ----------------------------------------------------------------- lte
    MetricSpec(
        "lte.subframes", "counter", "lte", "",
        "repro.lte.ue.UeUplink._subframe",
        "Active (non-idle-skipped) 1 ms uplink subframes processed.",
    ),
    MetricSpec(
        "lte.drops", "counter", "lte", "",
        "repro.lte.ue.UeUplink.send",
        "RTP packets the modem dropped at firmware-buffer capacity.",
    ),
    MetricSpec(
        "lte.diag_batches", "counter", "lte", "",
        "repro.lte.diagnostics.DiagMonitor._deliver",
        "40 ms diagnostic batches delivered to subscribers.",
    ),
    MetricSpec(
        "lte.cqi", "histogram", "lte", "",
        "repro.lte.channel.ChannelProcess._update",
        "Distribution of the 50 Hz channel-quality indicator.",
        buckets=(0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 15.0),
    ),
    # ---------------------------------------------------------------- fbcc
    MetricSpec(
        "fbcc.ticks", "counter", "fbcc", "",
        "repro.rate_control.fbcc.controller.FbccTransport.on_diag",
        "Diagnostic batches consumed by the FBCC controller (25 Hz).",
    ),
    MetricSpec(
        "fbcc.congestion_events", "counter", "fbcc", "",
        "repro.rate_control.fbcc.controller.FbccTransport.on_diag",
        "Eq. (3) uplink-congestion detections.",
    ),
    MetricSpec(
        "fbcc.video_rate_mbps", "histogram", "fbcc", "Mbps",
        "repro.rate_control.fbcc.controller.FbccTransport.on_diag",
        "Distribution of the Eq. (6) encoding rate Rv, sampled per tick.",
        buckets=(0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0),
    ),
    # ----------------------------------------------------------------- gcc
    MetricSpec(
        "gcc.updates", "counter", "gcc", "",
        "repro.rate_control.gcc.controller.GccSenderControl.on_feedback",
        "REMB / receiver-report rate updates processed by the GCC sender.",
    ),
    # --------------------------------------------------------- compression
    MetricSpec(
        "compression.mode_switches", "counter", "compression", "",
        "repro.compression.poi360.AdaptiveCompression._note_switch",
        "Effective compression-mode changes (Eq. 1-2 feedback or rate cap).",
    ),
    MetricSpec(
        "compression.desired_index", "histogram", "compression", "",
        "repro.compression.poi360.AdaptiveCompression.update_mismatch",
        "Distribution of the M-selected desired mode index (0 = crop).",
        buckets=(0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0),
    ),
    # ----------------------------------------------------------- telephony
    MetricSpec(
        "sender.frames", "counter", "telephony", "",
        "repro.telephony.sender.PanoramicSender._on_capture",
        "Frames captured, compressed and encoded by the sender.",
    ),
    MetricSpec(
        "sender.frame_kbits", "histogram", "telephony", "kbit",
        "repro.telephony.sender.PanoramicSender._on_capture",
        "Distribution of encoded frame sizes.",
        buckets=(10.0, 25.0, 50.0, 100.0, 150.0, 200.0, 300.0, 500.0),
    ),
    MetricSpec(
        "receiver.frames", "counter", "telephony", "",
        "repro.telephony.receiver.PanoramicReceiver._display",
        "Frames displayed by the viewer.",
    ),
    MetricSpec(
        "receiver.freezes", "counter", "telephony", "",
        "repro.telephony.receiver.PanoramicReceiver._display",
        "Displayed frames whose delay exceeded the freeze threshold.",
    ),
    MetricSpec(
        "receiver.nacks", "counter", "telephony", "",
        "repro.telephony.receiver.PanoramicReceiver._send_nack",
        "NACK messages sent by the viewer.",
    ),
    MetricSpec(
        "receiver.delay_s", "histogram", "telephony", "s",
        "repro.telephony.receiver.PanoramicReceiver._display",
        "Distribution of capture-to-display frame delay.",
        buckets=(0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1.0, 1.5, 2.0),
    ),
    MetricSpec(
        "receiver.psnr_db", "histogram", "telephony", "dB",
        "repro.telephony.receiver.PanoramicReceiver._display",
        "Distribution of ROI-region PSNR per displayed frame.",
        buckets=(24.0, 28.0, 30.0, 32.0, 34.0, 36.0, 38.0, 40.0, 44.0),
    ),
    MetricSpec(
        "receiver.mismatch_s", "histogram", "telephony", "s",
        "repro.telephony.receiver.PanoramicReceiver._display",
        "Distribution of the Eq. (2) per-frame mismatch time M.",
        buckets=(0.1, 0.2, 0.3, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0),
    ),
    # --------------------------------------------------------------- cache
    MetricSpec(
        "cache.entry_hits", "counter", "cache", "",
        "repro.experiments.cache.load",
        "Persistent-cache condition entries served from disk.",
    ),
    MetricSpec(
        "cache.entry_misses", "counter", "cache", "",
        "repro.experiments.cache.load",
        "Persistent-cache lookups that had to simulate.",
    ),
    MetricSpec(
        "cache.session_hits", "counter", "cache", "",
        "repro.experiments.cache.load",
        "Individual session results served from the persistent cache.",
    ),
    MetricSpec(
        "cache.sessions_stored", "counter", "cache", "",
        "repro.experiments.cache.store",
        "Individual session results persisted after a miss.",
    ),
    # --------------------------------------------------------------- fleet
    MetricSpec(
        "fleet.sessions", "counter", "fleet", "",
        "repro.experiments.parallel.merged_meter",
        "Per-session registries merged into this fleet registry.",
    ),
    MetricSpec(
        "fleet.workers", "gauge", "fleet", "",
        "repro.experiments.parallel.merged_meter",
        "Worker processes the merged sweep fanned across.",
    ),
    MetricSpec(
        "fleet.straggler_s", "gauge", "fleet", "s",
        "repro.experiments.parallel.merged_meter",
        "Wall-clock seconds of the slowest merged session.",
    ),
    MetricSpec(
        "fleet.straggler_index", "gauge", "fleet", "",
        "repro.experiments.parallel.merged_meter",
        "Task-order index of the slowest merged session.",
    ),
    MetricSpec(
        "fleet.cells", "counter", "fleet", "",
        "repro.telephony.fleet.CellSession.run",
        "Shared-cell sessions run to completion.",
    ),
    MetricSpec(
        "fleet.cell_members", "histogram", "fleet", "",
        "repro.telephony.fleet.CellSession.run",
        "Distribution of POI360 callers per shared cell.",
        buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
    ),
    MetricSpec(
        "fleet.cell_jain", "histogram", "fleet", "",
        "repro.telephony.fleet.CellSession.run",
        "Jain fairness of post-warmup uplink grant bytes across a "
        "cell's members.",
        buckets=(0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0),
    ),
    MetricSpec(
        "fleet.member_mos", "histogram", "fleet", "",
        "repro.telephony.fleet.CellSession.run",
        "Distribution of the per-caller expected MOS (Table 1 bands "
        "scored 1-5).",
        buckets=(1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0),
    ),
    MetricSpec(
        "fleet.member_rate_mbps", "histogram", "fleet", "Mbps",
        "repro.telephony.fleet.CellSession.run",
        "Distribution of per-caller mean received throughput.",
        buckets=(0.25, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0),
    ),
    MetricSpec(
        "fleet.cell_prb_exhausted", "counter", "fleet", "",
        "repro.sim.batch_cell.BatchedCellSimulation._subframe",
        "Subframes a batched cell ended with its PRB budget exhausted "
        "(fewer than one grantable PRB left).",
    ),
    # --------------------------------------------------------------- batch
    MetricSpec(
        "batch.cohorts", "counter", "batch", "",
        "repro.sim.batch.BatchedSimulation.run",
        "Lockstep cohorts advanced to completion by the batched engines.",
    ),
    MetricSpec(
        "batch.sessions", "counter", "batch", "",
        "repro.sim.batch.BatchedSimulation.run",
        "Sessions advanced by the batched lockstep engines.",
    ),
    MetricSpec(
        "batch.subframes", "counter", "batch", "",
        "repro.sim.batch.BatchedSimulation.run",
        "Session-subframes ticked by the batched engines "
        "(sessions x 1 ms grid ticks).",
    ),
    MetricSpec(
        "batch.scalar_fallbacks", "counter", "batch", "",
        "repro.experiments.batch.BatchRunner.run",
        "Sessions routed to the scalar engine below the batching "
        "crossover (or by on_unsupported='scalar').",
    ),
    # ------------------------------------------------------------- service
    MetricSpec(
        "service.jobs_submitted", "counter", "service", "",
        "repro.service.jobs.JobRegistry.submit",
        "Job records created by the service (fresh runs and instant "
        "cache-hit completions).",
    ),
    MetricSpec(
        "service.jobs_deduped", "counter", "service", "",
        "repro.service.jobs.JobRegistry.submit",
        "Submissions attached to an already queued or running job with "
        "the same content-addressed key.",
    ),
    MetricSpec(
        "service.jobs_cache_hits", "counter", "service", "",
        "repro.service.jobs.JobRegistry.submit",
        "Jobs completed instantly from the content-addressed payload "
        "cache (identical spec, identical code salt).",
    ),
    MetricSpec(
        "service.jobs_completed", "counter", "service", "",
        "repro.service.jobs.JobRegistry._run_job",
        "Jobs run to a sealed ok ledger by a worker thread.",
    ),
    MetricSpec(
        "service.jobs_failed", "counter", "service", "",
        "repro.service.jobs.JobRegistry._run_job",
        "Jobs whose execution raised (ledger sealed with status error).",
    ),
    MetricSpec(
        "service.jobs_cancelled", "counter", "service", "",
        "repro.service.jobs.JobRegistry._run_job",
        "Jobs cancelled before or during execution.",
    ),
    MetricSpec(
        "service.requests", "counter", "service", "",
        "repro.service.server.ServiceHandler",
        "HTTP requests served by the job-queue server.",
    ),
    MetricSpec(
        "service.runs_gc_removed", "counter", "service", "",
        "repro.service.jobs.JobRegistry.gc",
        "Sealed run directories pruned by the service's artifact GC.",
    ),
    MetricSpec(
        "service.queue_wait_s", "histogram", "service", "s",
        "repro.service.jobs.JobRegistry._run_job",
        "Distribution of submit-to-start queue wait per executed job.",
        buckets=(0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0),
    ),
    MetricSpec(
        "service.jobs_queued", "gauge", "service", "",
        "repro.service.jobs.JobRegistry.service_registry",
        "Jobs waiting in the queue at scrape time.",
    ),
    MetricSpec(
        "service.jobs_running", "gauge", "service", "",
        "repro.service.jobs.JobRegistry.service_registry",
        "Jobs executing on worker threads at scrape time.",
    ),
    MetricSpec(
        "service.uptime_s", "gauge", "service", "s",
        "repro.service.jobs.JobRegistry.service_registry",
        "Wall-clock seconds since the job registry was created.",
    ),
)

#: Name → spec for every metric the stack can record.
METRIC_CATALOGUE: Dict[str, MetricSpec] = {spec.name: spec for spec in _SPECS}

#: Stable ordering for docs and exporters.
METRIC_NAMES: Tuple[str, ...] = tuple(spec.name for spec in _SPECS)


class Histogram:
    """Fixed-bucket histogram state (non-cumulative per-bucket counts).

    ``buckets`` are upper bounds; ``counts`` has one slot per bound plus
    a trailing overflow (+Inf) slot.  ``sum``/``count`` keep exact
    totals so the mean survives any bucketing.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]):
        self.buckets = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # le-semantics: the first bucket whose bound >= value.
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Counts as OpenMetrics cumulative le-buckets (incl. +Inf)."""
        out: List[int] = []
        running = 0
        for count in self.counts:
            running += count
            out.append(running)
        return out

    def merge(self, other: "Histogram") -> None:
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets "
                f"({self.buckets} vs {other.buckets})"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.sum += other.sum
        self.count += other.count

    def as_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class NullMetrics:
    """Metering disabled: falsy, every record call is a no-op."""

    enabled = False
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}

    def __bool__(self) -> bool:
        return False

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Discard the increment."""

    def set_gauge(self, name: str, value: float) -> None:
        """Discard the gauge write."""

    def observe(self, name: str, value: float) -> None:
        """Discard the observation."""

    def histogram(self, name: str) -> Optional[Histogram]:
        return None

    def histograms(self) -> Dict[str, Histogram]:
        return {}


#: The shared disabled registry.
NULL_METRICS = NullMetrics()


def _spec_of(name: str, kind: str) -> MetricSpec:
    spec = METRIC_CATALOGUE.get(name)
    if spec is None:
        raise KeyError(
            f"unknown metric {name!r}: not in METRIC_CATALOGUE "
            f"(repro.obs.metrics)"
        )
    if spec.kind != kind:
        raise ValueError(f"metric {name!r} is a {spec.kind}, not a {kind}")
    return spec


class MetricsRegistry:
    """Catalogue-validated counters, gauges and fixed-bucket histograms."""

    enabled = True

    def __init__(self):
        #: Exact counter totals, name → value.
        self.counters: Dict[str, float] = {}
        #: Last-written gauge values, name → value.
        self.gauges: Dict[str, float] = {}
        self._hists: Dict[str, Histogram] = {}

    def __bool__(self) -> bool:
        return True

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to a catalogue counter."""
        counters = self.counters
        if name not in counters:
            _spec_of(name, "counter")
            counters[name] = 0.0
        counters[name] += amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set a catalogue gauge to ``value`` (last write wins on merge)."""
        if name not in self.gauges:
            _spec_of(name, "gauge")
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into a catalogue histogram."""
        hist = self._hists.get(name)
        if hist is None:
            hist = Histogram(_spec_of(name, "histogram").buckets)
            self._hists[name] = hist
        hist.observe(value)

    def histogram(self, name: str) -> Optional[Histogram]:
        """The named histogram's state, or None if never observed."""
        return self._hists.get(name)

    def histograms(self) -> Dict[str, Histogram]:
        """Name → histogram for every observed histogram."""
        return dict(self._hists)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (counters/buckets sum,
        gauges overwrite)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        self.gauges.update(other.gauges)
        for name, hist in other._hists.items():
            mine = self._hists.get(name)
            if mine is None:
                mine = Histogram(hist.buckets)
                self._hists[name] = mine
            mine.merge(hist)

    def counters_by_subsystem(self) -> Dict[str, Dict[str, float]]:
        """Counter table grouped by the catalogue's subsystem labels."""
        grouped: Dict[str, Dict[str, float]] = {}
        for name, value in sorted(self.counters.items()):
            spec = METRIC_CATALOGUE.get(name)
            subsystem = spec.subsystem if spec else "other"
            grouped.setdefault(subsystem, {})[name] = value
        return grouped

    def as_dict(self) -> dict:
        """JSON-safe snapshot of the whole registry."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.as_dict() for name, hist in sorted(self._hists.items())
            },
        }


def catalogue_names(kinds: Optional[Iterable[str]] = None) -> Tuple[str, ...]:
    """Catalogue metric names, optionally filtered by kind."""
    if kinds is None:
        return METRIC_NAMES
    wanted = set(kinds)
    return tuple(
        name for name in METRIC_NAMES if METRIC_CATALOGUE[name].kind in wanted
    )
