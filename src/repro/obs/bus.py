"""The structured trace bus.

A :class:`TraceBus` is a ring buffer of named, timestamped events plus
an always-complete per-event-name counter table.  Components hold a bus
reference and emit with keyword fields::

    bus.emit("fw_buffer", level=4096.0, tbs=1200.0)

Tracing is **per session** and off by default.  The disabled path is the
module-level :data:`NULL_BUS` singleton, which is *falsy*, so hot call
sites (the LTE subframe loop runs at 1 kHz) guard with a single
truthiness check and pay nothing else::

    if self._trace:
        self._trace.emit("fw_buffer", level=level, tbs=tbs)

Emitting never touches an RNG stream and never schedules simulation
events, so enabling tracing cannot change a session's behaviour — the
determinism tests in ``tests/test_obs.py`` assert byte-identical
summaries with tracing on and off.

>>> bus = TraceBus(clock=lambda: 1.5)
>>> bus.emit("mode_switch", to_index=3)
>>> bus.events[0].name, bus.events[0].fields["to_index"]
('mode_switch', 3)
>>> bool(NULL_BUS), bool(bus)
(False, True)
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, NamedTuple, Optional, Tuple

#: Default ring capacity: a 90 s cellular session emits ~100k fw_buffer
#: events, so this keeps a full paper-length run without eviction.
DEFAULT_CAPACITY = 262_144


class TraceEvent(NamedTuple):
    """One named, timestamped observation."""

    #: Simulated time (s) at emission.
    time: float
    #: Event name from the catalogue (``repro.obs.events``).
    name: str
    #: Free-form keyword fields of the emit call.
    fields: Dict[str, Any]


class NullTraceBus:
    """Tracing disabled: falsy, emit is a no-op, nothing is stored."""

    enabled = False
    dropped = 0
    #: Shared empty views so disabled sessions still satisfy readers.
    counters: Dict[str, int] = {}

    def __bool__(self) -> bool:
        return False

    def emit(self, name: str, **fields: Any) -> None:
        """Discard the event."""

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return ()

    def select(self, names=None, since=None, until=None):
        return iter(())

    def series(self, name: str, field: str) -> Tuple[List[float], List[Any]]:
        return ([], [])

    def counters_by_subsystem(self) -> Dict[str, Dict[str, int]]:
        return {}


#: The shared disabled bus — every component's default collaborator.
NULL_BUS = NullTraceBus()


class TraceBus:
    """Ring-buffered event sink with per-name counters.

    ``clock`` is a zero-argument callable returning the current
    simulated time (the session passes the engine's clock).  The ring
    holds the most recent ``capacity`` events; :attr:`counters` and
    :attr:`dropped` keep exact totals even after eviction.
    """

    enabled = True

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive (capacity={capacity!r})")
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        #: Exact emit count per event name (eviction-proof).
        self.counters: Dict[str, int] = {}
        #: Events evicted from the ring so far.
        self.dropped = 0

    def __bool__(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._ring)

    def __getstate__(self):
        # The clock is typically a closure over the live simulation;
        # drop it so a finished session's bus pickles cleanly (the
        # events already carry their timestamps).
        state = dict(self.__dict__)
        state["_clock"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        if self._clock is None:
            self._clock = lambda: 0.0

    @property
    def capacity(self) -> int:
        """Ring size (events beyond it evict the oldest)."""
        return self._ring.maxlen or 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the timestamp source (a session binds its sim clock)."""
        self._clock = clock

    def emit(self, name: str, **fields: Any) -> None:
        """Record one event at the current simulated time."""
        ring = self._ring
        if len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append(TraceEvent(self._clock(), name, fields))
        counters = self.counters
        counters[name] = counters.get(name, 0) + 1

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """The retained events, oldest first."""
        return tuple(self._ring)

    def select(
        self,
        names=None,
        since: Optional[float] = None,
        until: Optional[float] = None,
    ) -> Iterator[TraceEvent]:
        """Iterate retained events filtered by name set and time window.

        ``names`` may be a single name or an iterable of names;
        ``since``/``until`` are inclusive bounds in simulated seconds.

        >>> bus = TraceBus()
        >>> bus.emit("a"); bus.emit("b")
        >>> [e.name for e in bus.select(names="a")]
        ['a']
        """
        if names is None:
            wanted = None
        elif isinstance(names, str):
            wanted = {names}
        else:
            wanted = set(names)
        for event in self._ring:
            if wanted is not None and event.name not in wanted:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            yield event

    def series(self, name: str, field: str) -> Tuple[List[float], List[Any]]:
        """(times, values) of one field across every retained ``name`` event.

        Events missing the field are skipped, so a site that emits the
        field conditionally still yields an aligned pair of lists.
        """
        times: List[float] = []
        values: List[Any] = []
        for event in self._ring:
            if event.name != name:
                continue
            if field not in event.fields:
                continue
            times.append(event.time)
            values.append(event.fields[field])
        return times, values

    def counters_by_subsystem(self) -> Dict[str, Dict[str, int]]:
        """Counter table grouped by the catalogue's subsystem labels."""
        from repro.obs.events import subsystem_of

        grouped: Dict[str, Dict[str, int]] = {}
        for name, count in sorted(self.counters.items()):
            grouped.setdefault(subsystem_of(name), {})[name] = count
        return grouped
