"""The per-session meter: one metrics registry + one span profiler.

Components hold a single ``meter`` collaborator instead of two, and the
disabled path is the falsy :data:`NULL_METER` singleton — exactly the
``NULL_BUS`` pattern, so hot call sites guard with one truthiness check
and pay nothing else when metering is off::

    if self._meter:
        self._meter.inc("receiver.frames")

Span-timed methods bracket their body with a begin/end pair (one
truthiness check at each end)::

    meter = self._meter
    t0 = meter.span_start() if meter else 0.0
    ...  # stage body
    if meter:
        meter.span_end("receiver.display", t0)

A :class:`SessionMeter` is plain data (dicts and floats), so it pickles
cleanly inside a :class:`repro.telephony.session.SessionResult` and
per-worker meters from a parallel sweep merge into one fleet meter
(``repro.experiments.parallel.merged_meter``).
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Union

from repro.obs.metrics import Histogram, MetricsRegistry, NULL_METRICS
from repro.obs.spans import NULL_SPANS, SpanProfiler


class NullMeter:
    """Metering disabled: falsy, every call is a no-op."""

    enabled = False
    metrics = NULL_METRICS
    spans = NULL_SPANS

    def __bool__(self) -> bool:
        return False

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Discard the increment."""

    def set_gauge(self, name: str, value: float) -> None:
        """Discard the gauge write."""

    def observe(self, name: str, value: float) -> None:
        """Discard the observation."""

    def span_start(self) -> float:
        return 0.0

    def span_end(self, name: str, t0: float) -> None:
        """Discard the span sample."""

    def span(self, name: str):
        return NULL_SPANS.span(name)


#: The shared disabled meter — every component's default collaborator.
NULL_METER = NullMeter()


class SessionMeter:
    """Metrics registry + span profiler for one session (or one fleet)."""

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        spans: Optional[SpanProfiler] = None,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = spans if spans is not None else SpanProfiler()

    def __bool__(self) -> bool:
        return True

    # -------------------------------------------------- metric passthrough

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.metrics.inc(name, amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self.metrics.histogram(name)

    # ----------------------------------------------------- span passthrough

    def span_start(self) -> float:
        """Wall-clock anchor for a begin/end span pair."""
        return perf_counter()

    def span_end(self, name: str, t0: float) -> None:
        """Record ``now - t0`` into the named span."""
        self.spans.record(name, perf_counter() - t0)

    def span(self, name: str):
        """Context-manager form for non-hot call sites."""
        return self.spans.span(name)

    # ------------------------------------------------------------ plumbing

    def merge(self, other: "SessionMeter") -> None:
        """Fold another meter (e.g. one worker's) into this one."""
        self.metrics.merge(other.metrics)
        self.spans.merge(other.spans)

    def as_dict(self) -> dict:
        """JSON-safe snapshot: the registry plus span statistics."""
        payload = self.metrics.as_dict()
        payload["spans"] = self.spans.as_dict()
        return payload


def coerce_meter(meter: Union[bool, None, NullMeter, SessionMeter]):
    """Normalise a user-facing ``meter`` argument.

    ``False``/``None`` → :data:`NULL_METER`, ``True`` → a fresh
    :class:`SessionMeter`, an existing meter passes through.
    """
    if meter is True:
        return SessionMeter()
    if not meter:
        return NULL_METER
    return meter
