"""Span profiling: wall-clock timing of named pipeline stages.

A :class:`SpanProfiler` accumulates (count, total, min, max) wall-clock
statistics per named stage — frame encode, the LTE subframe step, a
rate-control tick, the receiver's display path, a whole session run.
Names come from the typed :data:`SPAN_CATALOGUE` (the same
single-source-of-truth pattern as ``EVENT_CATALOGUE`` /
``METRIC_CATALOGUE``), so docs, exporters and the drift gate stay in
sync.

Wall-clock is kept **strictly out of simulation state**: a span reads
:func:`time.perf_counter` and writes only into the profiler's own
accumulators.  Nothing a span measures is ever fed back into the
simulation, so a profiled run stays byte-identical to a plain run —
only the recorded wall times differ between machines and runs, which is
the point of a profiler.

>>> profiler = SpanProfiler()
>>> with profiler.span("session.run"):
...     _ = sum(range(10))
>>> profiler.stats["session.run"].count
1
>>> bool(NULL_SPANS), bool(profiler)
(False, True)
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, NamedTuple, Tuple


class SpanSpec(NamedTuple):
    """Catalogue entry for one span name."""

    name: str
    subsystem: str
    site: str
    description: str


_SPECS = (
    SpanSpec(
        "session.run",
        "session",
        "repro.telephony.session.TelephonySession.run",
        "One whole session run (wall clock; drives straggler reporting).",
    ),
    SpanSpec(
        "sender.encode",
        "telephony",
        "repro.telephony.sender.PanoramicSender._on_capture",
        "Compress + encode + packetise one captured frame.",
    ),
    SpanSpec(
        "lte.subframe",
        "lte",
        "repro.lte.ue.UeUplink._subframe",
        "One active 1 ms uplink subframe (grant, drain, diag record).",
    ),
    SpanSpec(
        "rate_control.tick",
        "rate_control",
        "repro.rate_control.fbcc.controller.FbccTransport.on_diag / "
        "repro.rate_control.gcc.controller.GccSenderControl.on_feedback",
        "One rate-control decision: an FBCC diag tick or a GCC "
        "REMB/receiver-report update.",
    ),
    SpanSpec(
        "receiver.display",
        "telephony",
        "repro.telephony.receiver.PanoramicReceiver._display",
        "Render + measure one displayed frame (PSNR, mismatch, delay).",
    ),
    SpanSpec(
        "fleet.cell_run",
        "fleet",
        "repro.telephony.fleet.CellSession.run",
        "One whole shared-cell run: every member session, one clock.",
    ),
    SpanSpec(
        "batch.run",
        "batch",
        "repro.sim.batch.BatchedSimulation.run",
        "One batched lockstep cohort: every session, one 1 ms grid.",
    ),
    SpanSpec(
        "batch.cell_run",
        "batch",
        "repro.sim.batch_cell.BatchedCellSimulation.run_cells",
        "One batched cell block: C cells x N members, one 1 ms grid.",
    ),
)

#: Name → spec for every span the stack can time.
SPAN_CATALOGUE: Dict[str, SpanSpec] = {spec.name: spec for spec in _SPECS}

#: Stable ordering for docs and exporters.
SPAN_NAMES: Tuple[str, ...] = tuple(spec.name for spec in _SPECS)


class SpanStats:
    """Accumulated wall-clock statistics of one span name."""

    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self):
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def record(self, elapsed_s: float) -> None:
        self.count += 1
        self.total_s += elapsed_s
        if elapsed_s < self.min_s:
            self.min_s = elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s

    def merge(self, other: "SpanStats") -> None:
        self.count += other.count
        self.total_s += other.total_s
        if other.min_s < self.min_s:
            self.min_s = other.min_s
        if other.max_s > self.max_s:
            self.max_s = other.max_s

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class _Span:
    """Context manager recording one timed region into a profiler."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "SpanProfiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler.record(self._name, perf_counter() - self._t0)


class NullSpanProfiler:
    """Profiling disabled: falsy, records nothing."""

    enabled = False
    stats: Dict[str, SpanStats] = {}

    def __bool__(self) -> bool:
        return False

    def record(self, name: str, elapsed_s: float) -> None:
        """Discard the sample."""

    def span(self, name: str):
        return _NULL_SPAN

    def as_dict(self) -> dict:
        return {}


class _NullSpan:
    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_SPAN = _NullSpan()

#: The shared disabled profiler.
NULL_SPANS = NullSpanProfiler()


class SpanProfiler:
    """Catalogue-validated accumulator of per-stage wall-clock spans."""

    enabled = True

    def __init__(self):
        #: Name → accumulated statistics.
        self.stats: Dict[str, SpanStats] = {}

    def __bool__(self) -> bool:
        return True

    def record(self, name: str, elapsed_s: float) -> None:
        """Fold one elapsed wall-clock duration into the named span."""
        stats = self.stats.get(name)
        if stats is None:
            if name not in SPAN_CATALOGUE:
                raise KeyError(
                    f"unknown span {name!r}: not in SPAN_CATALOGUE "
                    f"(repro.obs.spans)"
                )
            stats = SpanStats()
            self.stats[name] = stats
        stats.record(elapsed_s)

    def span(self, name: str) -> _Span:
        """Context manager timing a region into the named span."""
        return _Span(self, name)

    def merge(self, other: "SpanProfiler") -> None:
        """Fold another profiler's accumulators into this one."""
        for name, stats in other.stats.items():
            mine = self.stats.get(name)
            if mine is None:
                mine = SpanStats()
                self.stats[name] = mine
            mine.merge(stats)

    def as_dict(self) -> dict:
        """JSON-safe snapshot, in catalogue order then extras."""
        ordered = [name for name in SPAN_NAMES if name in self.stats]
        ordered += [name for name in sorted(self.stats) if name not in SPAN_CATALOGUE]
        return {name: self.stats[name].as_dict() for name in ordered}
