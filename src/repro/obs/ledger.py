"""The run ledger: per-run artifact directories + live telemetry files.

POI360's conclusions rest on *instrumented* drive tests — continuous
measurement while the experiment runs, not just a number at the end.
The ledger gives every sweep/fleet/perf/batch invocation the same
property: a **run directory** holding the run's identity and
provenance, plus two files that stream *while the run is live* so a
multi-hour sweep can be watched (``repro360 watch <run-dir>``) instead
of staring at a silent terminal:

``<run-root>/<run-id>/``
    ``manifest.json``      run id, command, CLI config snapshot,
                           environment + code-salt provenance, exit
                           status (rewritten once at the end);
    ``heartbeat.jsonl``    one JSON record per completed task (from the
                           ``run_tasks`` progress callback) and per
                           cohort progress slice (emitted from inside
                           the batched engines' tick loops) — see
                           docs/OBSERVABILITY.md for the schema;
    ``snapshots/``         periodic OpenMetrics snapshots of the live
                           fleet registry (``metrics-NNNNNN.om``),
                           rate-limited to one per ``snapshot_every_s``;
    ``registry.json``      the final merged fleet registry
                           (:func:`repro.metrics.export.metrics_to_dict`);
    ``cache_stats.json``   a copy of ``repro360 cache stats`` so cache
                           hit/miss provenance survives with the run.

Determinism contract — the same one :class:`repro.obs.spans.SpanProfiler`
obeys: the ledger only ever *reads* results and meters and writes into
its own files.  It never touches an RNG stream, never schedules
simulation events, and never feeds anything back into the simulation,
so a ledger-enabled run is **byte-identical** (summaries, logs,
registries, RNG states) to a ledger-off run; only wall-clock fields in
the ledger's own files differ between runs.

The run root resolves ``--run-dir`` first, then the ``REPRO_RUN_DIR``
environment variable, then the ``.repro_runs/`` default (gitignored).
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.obs.meter import SessionMeter

PathLike = Union[str, Path]

#: Schema version stamped into the manifest and every heartbeat record.
LEDGER_VERSION = 1

#: Environment variable naming the default run root.
RUN_DIR_ENV = "REPRO_RUN_DIR"

#: Fallback run root (gitignored) when neither flag nor env is set.
DEFAULT_RUN_ROOT = ".repro_runs"

MANIFEST_NAME = "manifest.json"
HEARTBEAT_NAME = "heartbeat.jsonl"
SNAPSHOT_DIRNAME = "snapshots"
REGISTRY_NAME = "registry.json"
CACHE_STATS_NAME = "cache_stats.json"

#: Wall-clock seconds between OpenMetrics snapshots (the first eligible
#: snapshot is taken immediately, so even a tiny run produces one).
DEFAULT_SNAPSHOT_EVERY_S = 5.0

#: Terminal manifest statuses a sealed run may carry ("running" is the
#: only non-terminal one).
TERMINAL_STATUSES = ("ok", "error", "cancelled")

#: A "running" run whose newest heartbeat is older than this is
#: presumed abandoned (its process died without sealing the manifest).
DEFAULT_STALE_AFTER_S = 900.0

#: The heartbeat ``kind`` vocabulary.  ``session``/``cell`` records come
#: from the parent's ``run_tasks`` progress callback (``done`` is the
#: completed task count, monotone per run); ``cohort`` records come from
#: inside a batched engine's tick loop (``tick`` is monotone per
#: ``(pid, cohort)`` stream); ``leg`` records mark perf-bench stages.
HEARTBEAT_KINDS = ("session", "cell", "cohort", "leg")


def resolve_run_root(root: Optional[PathLike] = None) -> Optional[Path]:
    """The run root, or None when ledgers are not opted in.

    Precedence: an explicit ``root`` (the CLI's ``--run-dir``), then the
    ``REPRO_RUN_DIR`` environment variable, then None — commands only
    open a ledger when one of the two is set.
    """
    if root is not None:
        return Path(root)
    env = os.environ.get(RUN_DIR_ENV, "").strip()
    return Path(env) if env else None


def new_run_id(command: str) -> str:
    """A unique, sortable run id: ``<utc-stamp>-<command>-<pid>``."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{stamp}-{command}-{os.getpid()}"


def append_heartbeat(path: PathLike, record: dict) -> dict:
    """Append one heartbeat record as a single JSONL line.

    Opens in append mode per write: each record is one short
    ``O_APPEND`` write, so parent and worker processes can interleave
    lines into the same file without tearing each other's records.
    """
    line = json.dumps(record, separators=(",", ":"), sort_keys=True)
    with open(path, "a") as handle:
        handle.write(line + "\n")
    return record


def cohort_heartbeat_callback(
    path: PathLike,
    kind: str = "cohort",
    label: Optional[object] = None,
) -> Callable[[int, int, int], None]:
    """A batched-engine ``progress`` callback streaming cohort records.

    Returns a callable with the :meth:`repro.sim.batch.BatchedSimulation.run`
    progress signature ``(tick, total_ticks, n_sessions)`` that appends
    one heartbeat record per invocation.  Safe to build inside a worker
    process (:class:`repro.experiments.parallel.CellBlockTask` does):
    records carry the worker's ``pid`` and an optional cohort ``label``
    so interleaved streams stay separable, and ``tick`` is monotone per
    ``(pid, label)`` stream.
    """
    pid = os.getpid()
    t0 = time.time()

    def _progress(tick: int, total_ticks: int, sessions: int) -> None:
        now = time.time()
        elapsed = now - t0
        eta = None if tick <= 0 else elapsed * (total_ticks - tick) / tick
        record = {
            "v": LEDGER_VERSION,
            "kind": kind,
            "t_wall": round(now, 3),
            "pid": pid,
            "tick": tick,
            "ticks": total_ticks,
            "sessions": sessions,
            "elapsed_s": round(elapsed, 3),
            "eta_s": None if eta is None else round(eta, 3),
        }
        if label is not None:
            record["cohort"] = label
        append_heartbeat(path, record)

    return _progress


class RunLedger:
    """One run directory: manifest + heartbeat stream + snapshots.

    Construct through :meth:`open`, which creates the directory and
    writes the initial (``status: running``) manifest.  The ledger keeps
    a **live fleet registry** (:attr:`live`): every meter absorbed from
    a finished task merges into it, and periodic snapshots export it in
    the OpenMetrics text format, so a scraper (or ``repro360 watch``)
    sees the sweep's counters grow while it runs.
    """

    def __init__(
        self,
        run_dir: PathLike,
        command: str = "",
        snapshot_every_s: float = DEFAULT_SNAPSHOT_EVERY_S,
    ):
        self.run_dir = Path(run_dir)
        self.command = command
        self.snapshot_every_s = float(snapshot_every_s)
        self._t0 = time.time()
        self._seq = 0
        self._beats = 0
        self._snapshots = 0
        self._last_snapshot: Optional[float] = None
        self.finished = False
        #: Incrementally merged fleet registry of every absorbed meter.
        self.live = SessionMeter()
        self._manifest: dict = {}

    # ------------------------------------------------------------ paths

    @property
    def manifest_path(self) -> Path:
        return self.run_dir / MANIFEST_NAME

    @property
    def heartbeat_path(self) -> Path:
        return self.run_dir / HEARTBEAT_NAME

    @property
    def snapshot_dir(self) -> Path:
        return self.run_dir / SNAPSHOT_DIRNAME

    @property
    def registry_path(self) -> Path:
        return self.run_dir / REGISTRY_NAME

    @property
    def cache_stats_path(self) -> Path:
        return self.run_dir / CACHE_STATS_NAME

    # ---------------------------------------------------------- opening

    @classmethod
    def open(
        cls,
        command: str,
        config: Optional[dict] = None,
        root: Optional[PathLike] = None,
        run_id: Optional[str] = None,
        snapshot_every_s: float = DEFAULT_SNAPSHOT_EVERY_S,
    ) -> "RunLedger":
        """Create ``<root>/<run-id>/`` and write the initial manifest.

        ``root`` resolves like :func:`resolve_run_root` but falls back
        to :data:`DEFAULT_RUN_ROOT` — callers that reached ``open`` have
        already opted in.  ``config`` is a JSON-safe snapshot of the
        invocation (CLI arguments, scenario parameters).
        """
        resolved = resolve_run_root(root)
        if resolved is None:
            resolved = Path(DEFAULT_RUN_ROOT)
        run_id = run_id or new_run_id(command)
        ledger = cls(
            resolved / run_id, command=command, snapshot_every_s=snapshot_every_s
        )
        ledger.run_dir.mkdir(parents=True, exist_ok=True)
        ledger.snapshot_dir.mkdir(exist_ok=True)
        ledger.heartbeat_path.touch()
        ledger._manifest = {
            "version": LEDGER_VERSION,
            "run_id": run_id,
            "command": command,
            "status": "running",
            "started_wall": round(ledger._t0, 3),
            "started_iso": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime(ledger._t0)
            ),
            "config": config,
            "environment": {
                "python": platform.python_version(),
                "platform": platform.platform(),
                "cpu_count": os.cpu_count(),
                "hostname": platform.node(),
            },
            "code_salt": _code_salt(),
            "artifacts": {
                "heartbeat": HEARTBEAT_NAME,
                "snapshots": SNAPSHOT_DIRNAME,
                "registry": REGISTRY_NAME,
                "cache_stats": CACHE_STATS_NAME,
            },
        }
        ledger._write_manifest()
        return ledger

    def _write_manifest(self) -> None:
        self.manifest_path.write_text(json.dumps(self._manifest, indent=1) + "\n")

    # ------------------------------------------------------- heartbeats

    def heartbeat(
        self,
        kind: str,
        done: Optional[int] = None,
        total: Optional[int] = None,
        **fields,
    ) -> dict:
        """Append one parent-side heartbeat record.

        When ``done``/``total`` are given the record carries an
        ``eta_s`` projection (null until the first completion); ``seq``
        is monotone across the parent's records.
        """
        now = time.time()
        self._seq += 1
        elapsed = now - self._t0
        record = {
            "v": LEDGER_VERSION,
            "seq": self._seq,
            "kind": kind,
            "t_wall": round(now, 3),
            "elapsed_s": round(elapsed, 3),
        }
        if done is not None:
            record["done"] = int(done)
            record["total"] = None if total is None else int(total)
            eta = None
            if total is not None and done > 0:
                eta = elapsed * (total - done) / done
            record["eta_s"] = None if eta is None else round(eta, 3)
        record.update(fields)
        append_heartbeat(self.heartbeat_path, record)
        self._beats += 1
        return record

    def absorb(self, result) -> None:
        """Merge a finished task's meter(s) into the live registry.

        Accepts anything with a ``.meter`` attribute (``SessionResult``,
        ``CellResult``) or a list of such (a :class:`~repro.experiments.
        parallel.CellBlockTask` returns one result list per block).
        """
        if result is None:
            return
        if isinstance(result, (list, tuple)):
            for item in result:
                self.absorb(item)
            return
        meter = getattr(result, "meter", None)
        if meter is not None:
            self.live.merge(meter)

    def progress(
        self,
        kind: str = "session",
        workers: int = 1,
        inner=None,
    ):
        """A ``run_tasks`` progress callback that feeds this ledger.

        On every completed task: absorb its meter into :attr:`live`,
        append a heartbeat (monotone ``done``), and take a snapshot if
        one is due.  ``inner`` chains an existing callback (e.g. the
        CLI's stderr progress printer).
        """

        def _progress(done: int, total: int, result) -> None:
            self.absorb(result)
            self.heartbeat(kind, done=done, total=total, workers=workers)
            self.maybe_snapshot()
            if inner is not None:
                inner(done, total, result)

        return _progress

    # -------------------------------------------------------- snapshots

    def snapshot(self, meter: Optional[SessionMeter] = None) -> Path:
        """Write one OpenMetrics snapshot of the (or a given) registry."""
        from repro.metrics.export import write_metrics_openmetrics

        self._snapshots += 1
        path = self.snapshot_dir / f"metrics-{self._snapshots:06d}.om"
        write_metrics_openmetrics(path, self.live if meter is None else meter)
        self._last_snapshot = time.time()
        return path

    def maybe_snapshot(
        self, meter: Optional[SessionMeter] = None
    ) -> Optional[Path]:
        """Snapshot if ``snapshot_every_s`` elapsed (or none taken yet)."""
        if (
            self._last_snapshot is not None
            and time.time() - self._last_snapshot < self.snapshot_every_s
        ):
            return None
        return self.snapshot(meter)

    # -------------------------------------------------- final artifacts

    def write_registry(self, meter: Optional[SessionMeter] = None) -> Path:
        """Write the final registry artifact (``registry.json``)."""
        from repro.metrics.export import metrics_to_dict

        payload = metrics_to_dict(self.live if meter is None else meter)
        self.registry_path.write_text(json.dumps(payload, indent=1) + "\n")
        return self.registry_path

    def write_cache_stats(self, stats: dict) -> Path:
        """Copy a ``repro360 cache stats`` snapshot into the run."""
        self.cache_stats_path.write_text(json.dumps(stats, indent=1) + "\n")
        return self.cache_stats_path

    def finish(
        self,
        status: str = "ok",
        meter: Optional[SessionMeter] = None,
        **extra,
    ) -> dict:
        """Seal the run: final snapshot + registry, manifest rewrite.

        ``meter`` (or the live registry, when any meter was absorbed)
        gets one last snapshot and becomes ``registry.json``, so every
        ledgered run ends with at least one snapshot and a final
        registry artifact.  ``extra`` lands in the manifest verbatim.
        """
        final = meter if meter is not None else self.live
        self.snapshot(final)
        self.write_registry(final)
        now = time.time()
        self._manifest.update(
            {
                "status": status,
                "ended_wall": round(now, 3),
                "elapsed_s": round(now - self._t0, 3),
                "heartbeats": self._beats,
                "snapshots": self._snapshots,
            }
        )
        if extra:
            self._manifest.update(extra)
        self._write_manifest()
        self.finished = True
        return self._manifest

    # -------------------------------------------------- context manager

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.finished:
            status = "ok" if exc_type is None else "error"
            extra = {} if exc is None else {"error": repr(exc)}
            self.finish(status, **extra)


def _code_salt() -> Optional[str]:
    """The result cache's code salt (provenance), or None off-tree."""
    try:
        from repro.experiments.cache import code_salt

        return code_salt()
    except Exception:
        return None


# ----------------------------------------------------------------------
# Readers (repro360 watch, examples/metrics_dashboard.py, tools)
# ----------------------------------------------------------------------


def read_manifest(run_dir: PathLike) -> dict:
    """Load a run's manifest."""
    return json.loads((Path(run_dir) / MANIFEST_NAME).read_text())


def read_heartbeats(run_dir: PathLike) -> List[dict]:
    """Load every heartbeat record, in file (append) order.

    A half-written trailing line (the run may still be live) is
    silently dropped rather than raising.
    """
    path = Path(run_dir) / HEARTBEAT_NAME
    if not path.exists():
        return []
    records: List[dict] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return records


def snapshot_paths(run_dir: PathLike) -> List[Path]:
    """Every OpenMetrics snapshot of a run, oldest first."""
    directory = Path(run_dir) / SNAPSHOT_DIRNAME
    if not directory.is_dir():
        return []
    return sorted(directory.glob("metrics-*.om"))


def latest_snapshot(run_dir: PathLike) -> Optional[Path]:
    """The newest OpenMetrics snapshot, or None."""
    paths = snapshot_paths(run_dir)
    return paths[-1] if paths else None


def load_registry(run_dir: PathLike) -> SessionMeter:
    """Rebuild the final registry artifact as a :class:`SessionMeter`."""
    from repro.metrics.export import meter_from_dict

    payload = json.loads((Path(run_dir) / REGISTRY_NAME).read_text())
    return meter_from_dict(payload)


# ----------------------------------------------------------------------
# Maintenance (repro360 runs list|gc, the service's artifact GC)
# ----------------------------------------------------------------------


def heartbeat_age_s(run_dir: PathLike, now: Optional[float] = None) -> Optional[float]:
    """Seconds since the run last appended a heartbeat, or None.

    Uses the heartbeat file's mtime (every record is one ``O_APPEND``
    write, so the mtime tracks the newest record without parsing a
    possibly multi-megabyte stream); falls back to the manifest's mtime
    for a run that never heartbeat.
    """
    now = time.time() if now is None else now
    for name in (HEARTBEAT_NAME, MANIFEST_NAME):
        path = Path(run_dir) / name
        try:
            return max(0.0, now - path.stat().st_mtime)
        except OSError:
            continue
    return None


def run_status(
    run_dir: PathLike,
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
    now: Optional[float] = None,
) -> str:
    """Effective status of a run directory: its manifest status, with
    ``"running"`` demoted to ``"stale"`` once the newest heartbeat is
    older than ``stale_after_s`` (the writing process is presumed dead
    without having sealed the manifest).  ``"invalid"`` when the
    manifest is missing or unreadable.
    """
    try:
        manifest = read_manifest(run_dir)
    except (OSError, json.JSONDecodeError):
        return "invalid"
    status = manifest.get("status")
    if status != "running":
        return str(status)
    age = heartbeat_age_s(run_dir, now=now)
    if age is not None and age > stale_after_s:
        return "stale"
    return "running"


def _dir_size(path: Path) -> int:
    total = 0
    for child in path.rglob("*"):
        try:
            if child.is_file():
                total += child.stat().st_size
        except OSError:
            continue
    return total


@dataclass(frozen=True)
class RunInfo:
    """One row of ``repro360 runs list``."""

    run_dir: Path
    run_id: str
    command: str
    status: str  # terminal status, "running", "stale" or "invalid"
    age_s: float  # since the run started (manifest mtime fallback)
    size_bytes: int
    heartbeats: int  # record count (line count of heartbeat.jsonl)

    def to_dict(self) -> dict:
        return {
            "run_dir": str(self.run_dir),
            "run_id": self.run_id,
            "command": self.command,
            "status": self.status,
            "age_s": round(self.age_s, 1),
            "size_bytes": self.size_bytes,
            "heartbeats": self.heartbeats,
        }


def list_runs(
    root: PathLike,
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
    now: Optional[float] = None,
) -> List[RunInfo]:
    """Enumerate every run directory under a run root, oldest first.

    A run directory is any child holding a ``manifest.json``; unreadable
    manifests surface as ``status="invalid"`` rather than raising, so
    one torn run cannot hide the rest from ``repro360 runs list``.
    """
    root = Path(root)
    now = time.time() if now is None else now
    runs: List[RunInfo] = []
    if not root.is_dir():
        return runs
    for child in sorted(root.iterdir()):
        manifest_path = child / MANIFEST_NAME
        if not manifest_path.exists():
            continue
        try:
            manifest = read_manifest(child)
        except (OSError, json.JSONDecodeError):
            manifest = {}
        started = manifest.get("started_wall")
        if started is None:
            try:
                started = manifest_path.stat().st_mtime
            except OSError:
                started = now
        heartbeat = child / HEARTBEAT_NAME
        beats = 0
        if heartbeat.exists():
            try:
                beats = sum(1 for line in heartbeat.open() if line.strip())
            except OSError:
                beats = 0
        runs.append(
            RunInfo(
                run_dir=child,
                run_id=str(manifest.get("run_id", child.name)),
                command=str(manifest.get("command", "?")),
                status=run_status(child, stale_after_s=stale_after_s, now=now),
                age_s=max(0.0, now - float(started)),
                size_bytes=_dir_size(child),
                heartbeats=beats,
            )
        )
    return runs


def gc_runs(
    root: PathLike,
    keep_days: float = 7.0,
    dry_run: bool = False,
    stale_after_s: float = DEFAULT_STALE_AFTER_S,
    now: Optional[float] = None,
) -> Tuple[List[RunInfo], List[RunInfo]]:
    """Prune sealed (and stale) runs older than ``keep_days``.

    Returns ``(removed, kept)``.  Only runs whose effective status is
    terminal or ``"stale"`` are candidates — a live run is never
    removed, however old; age is measured from the run's *end*
    (``ended_wall``) when sealed, else from its newest heartbeat.
    ``dry_run`` reports the same partition without deleting anything.
    The service (`repro360 serve --gc-keep-days`) reuses this for its
    own artifact GC.
    """
    now = time.time() if now is None else now
    cutoff_s = float(keep_days) * 86400.0
    removed: List[RunInfo] = []
    kept: List[RunInfo] = []
    for info in list_runs(root, stale_after_s=stale_after_s, now=now):
        candidate = info.status in TERMINAL_STATUSES or info.status == "stale"
        idle_s = None
        if candidate:
            try:
                manifest = read_manifest(info.run_dir)
            except (OSError, json.JSONDecodeError):
                manifest = {}
            ended = manifest.get("ended_wall")
            if ended is not None:
                idle_s = max(0.0, now - float(ended))
            else:
                idle_s = heartbeat_age_s(info.run_dir, now=now)
        if candidate and idle_s is not None and idle_s > cutoff_s:
            if not dry_run:
                shutil.rmtree(info.run_dir, ignore_errors=True)
            removed.append(info)
        else:
            kept.append(info)
    return removed, kept
