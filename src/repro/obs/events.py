"""The trace event catalogue.

Single source of truth for every event the stack emits: its name, the
subsystem it belongs to, the fields it carries, and the emitting site.
``docs/OBSERVABILITY.md`` mirrors this table (a test keeps the two in
sync) and the ``repro360 trace --events`` filter validates names
against it.

Event names are stable identifiers: tooling (trace dumps, the worked
Fig. 11 example, downstream analysis scripts) keys on them, so renames
are breaking changes and belong in CHANGES.md.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Tuple


class EventSpec(NamedTuple):
    """Catalogue entry for one event name."""

    name: str
    subsystem: str
    fields: Tuple[str, ...]
    site: str
    description: str


_SPECS = (
    EventSpec(
        "session.start",
        "session",
        ("scheme", "transport", "seed"),
        "repro.telephony.session.TelephonySession.run",
        "A session run begins (emitted before any warm-up).",
    ),
    EventSpec(
        "session.warmup_done",
        "session",
        (),
        "repro.telephony.session.TelephonySession.run",
        "Warm-up finished; metric collection starts here.",
    ),
    EventSpec(
        "sim.run_begin",
        "engine",
        ("deadline", "pending"),
        "repro.sim.engine.Simulation.run",
        "The event loop starts draining toward a deadline.",
    ),
    EventSpec(
        "sim.run_end",
        "engine",
        ("pending",),
        "repro.sim.engine.Simulation.run",
        "The event loop reached its deadline (or emptied).",
    ),
    EventSpec(
        "fw_buffer",
        "lte",
        ("level", "tbs"),
        "repro.lte.ue.UeUplink._subframe",
        "Per-subframe firmware-buffer occupancy (bytes, after the "
        "grant drained) and the transport block size served this "
        "subframe. Idle-skipped subframes (empty buffer, all BSR slots "
        "zero) emit nothing.",
    ),
    EventSpec(
        "lte.drop",
        "lte",
        ("size_bytes", "level"),
        "repro.lte.ue.UeUplink.send",
        "The modem dropped an incoming RTP packet: the firmware "
        "buffer was at capacity.",
    ),
    EventSpec(
        "lte.cqi",
        "lte",
        ("cqi", "rss_dbm"),
        "repro.lte.channel.ChannelProcess._update",
        "Channel-quality update (50 Hz): new CQI and instantaneous RSS.",
    ),
    EventSpec(
        "diag.batch",
        "lte",
        ("n", "mean_level", "tbs_bytes"),
        "repro.lte.diagnostics.DiagMonitor._deliver",
        "One 40 ms diagnostic batch delivered to subscribers: record "
        "count, mean buffer level, summed TBS bytes.",
    ),
    EventSpec(
        "fbcc.congestion",
        "fbcc",
        ("phy_rate_bps", "held_rate_bps", "gamma_bytes"),
        "repro.rate_control.fbcc.controller.FbccTransport.on_diag",
        "Eq. (3) fired: uplink congestion detected; the encoder rate "
        "is pinned to the margin-scaled PHY rate (Eq. 5-6).",
    ),
    EventSpec(
        "fbcc.rate",
        "fbcc",
        ("video_rate_bps", "rtp_rate_bps", "bw_est_bps", "target_buffer_bytes"),
        "repro.rate_control.fbcc.controller.FbccTransport.on_diag",
        "Per diag batch (25 Hz): current Rv (Eq. 6), Rrtp (Eq. 7), "
        "PHY bandwidth estimate (Eq. 5) and sweet-spot target B*.",
    ),
    EventSpec(
        "gcc.rate",
        "gcc",
        ("rate_bps", "kind"),
        "repro.rate_control.gcc.controller.GccSenderControl.on_feedback",
        "The legacy GCC sender processed a REMB or receiver report; "
        "``rate_bps`` is the resulting R_gcc.",
    ),
    EventSpec(
        "mode_switch",
        "compression",
        ("from_index", "to_index", "desired_index", "cap_index"),
        "repro.compression.poi360.AdaptiveCompression._note_switch",
        "The effective compression mode changed (Eq. 1-2 feedback or "
        "uplink rate cap). Index 0 is the emergency crop mode.",
    ),
    EventSpec(
        "mode.mismatch",
        "compression",
        ("m_s", "desired_index"),
        "repro.compression.poi360.AdaptiveCompression.update_mismatch",
        "A sliding-window mismatch sample M arrived from the viewer "
        "and (re)selected the desired mode.",
    ),
    EventSpec(
        "sender.frame",
        "telephony",
        ("target_rate_bps", "size_bits"),
        "repro.telephony.sender.PanoramicSender._on_capture",
        "One captured frame was compressed and encoded against the "
        "transport's target bitrate.",
    ),
    EventSpec(
        "receiver.frame",
        "telephony",
        ("delay_s", "psnr_db", "roi_level", "mismatch_s"),
        "repro.telephony.receiver.PanoramicReceiver._display",
        "One frame was displayed: capture-to-display delay, ROI-region "
        "PSNR, displayed ROI compression level, Eq. (2) mismatch.",
    ),
    EventSpec(
        "receiver.freeze",
        "telephony",
        ("delay_s",),
        "repro.telephony.receiver.PanoramicReceiver._display",
        "A displayed frame's delay exceeded the freeze threshold "
        "(the frame counts toward the freeze ratio).",
    ),
    EventSpec(
        "receiver.nack",
        "telephony",
        ("count",),
        "repro.telephony.receiver.PanoramicReceiver._send_nack",
        "The viewer requested retransmission of missing sequences.",
    ),
)

#: Name → spec for every event the stack can emit.
EVENT_CATALOGUE: Dict[str, EventSpec] = {spec.name: spec for spec in _SPECS}

#: Stable ordering for docs and ``--format summary`` output.
EVENT_NAMES: Tuple[str, ...] = tuple(spec.name for spec in _SPECS)


def subsystem_of(name: str) -> str:
    """Subsystem label for an event name (catalogue, else name prefix)."""
    spec = EVENT_CATALOGUE.get(name)
    if spec is not None:
        return spec.subsystem
    prefix, _, rest = name.partition(".")
    return prefix if rest else "other"
