"""Dependency-free ASCII plotting for reports and examples."""

from repro.plotting.ascii import bar_chart, cdf_plot, histogram, scatter_plot

__all__ = ["bar_chart", "cdf_plot", "histogram", "scatter_plot"]
