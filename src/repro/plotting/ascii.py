"""Terminal plots (no matplotlib on the evaluation box).

Small, deterministic renderers used by ``repro.experiments.report`` and
the examples: scatter (Fig. 5/15), CDF (Fig. 6/12/13), bars (Fig. 11/14
/16/17) and histograms.  Every function returns a string.
"""

from __future__ import annotations

from typing import Sequence, Tuple


def _scale(value: float, low: float, high: float, size: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(size - 1, max(0, int(position * size)))


def scatter_plot(
    points: Sequence[Tuple[float, float]],
    width: int = 64,
    height: int = 16,
    xlabel: str = "x",
    ylabel: str = "y",
    marker: str = "o",
) -> str:
    """Scatter of (x, y) points on a character canvas."""
    if not points:
        return "(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    canvas = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = _scale(x, x_low, x_high, width)
        row = height - 1 - _scale(y, y_low, y_high, height)
        canvas[row][col] = marker
    lines = [f"{ylabel} {y_high:.3g}".rstrip()]
    lines.extend("  |" + "".join(row) for row in canvas)
    lines.append("  +" + "-" * width)
    lines.append(f"   {x_low:.3g} {xlabel} ... {x_high:.3g}")
    return "\n".join(lines)


def cdf_plot(
    values: Sequence[float],
    width: int = 64,
    height: int = 12,
    xlabel: str = "value",
) -> str:
    """Empirical CDF of a sample set."""
    if not values:
        return "(no data)"
    ordered = sorted(values)
    points = [
        (value, (index + 1) / len(ordered)) for index, value in enumerate(ordered)
    ]
    return scatter_plot(
        points, width=width, height=height, xlabel=xlabel, ylabel="CDF", marker="*"
    )


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 46,
    unit: str = "",
) -> str:
    """Horizontal bars with labels."""
    if not labels:
        return "(no data)"
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    top = max(max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(value / top * width))
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)} {value:.3g}{unit}")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    bins: int = 10,
    width: int = 46,
    unit: str = "",
) -> str:
    """Equal-width histogram as horizontal bars."""
    values = list(values)
    if not values:
        return "(no data)"
    low, high = min(values), max(values)
    if high == low:
        high = low + 1.0
    counts = [0] * bins
    for value in values:
        counts[_scale(value, low, high, bins)] += 1
    labels = []
    step = (high - low) / bins
    for index in range(bins):
        labels.append(f"{low + index * step:8.3g}-{low + (index + 1) * step:<8.3g}")
    shares = [count / len(values) for count in counts]
    return bar_chart(labels, shares, width=width, unit=unit)
