"""Service mode: the ``repro360 serve`` long-running job-queue server.

POI360's measurement workflow is campaign-shaped: many sweeps queued
against the same simulator build, watched while they run, compared
after they finish.  This package turns the one-shot CLI commands into a
**service**: a stdlib-only HTTP server (:mod:`repro.service.server`)
fronting a thread-pool job queue (:mod:`repro.service.jobs`) that runs
``metrics`` / ``fleet`` / ``perf`` invocations through the *same*
execution path the CLI uses (:func:`repro.service.jobs.execute_job`),
with a run ledger attached to every job and every finished payload
persisted in the content-addressed cache.

Because the CLI and the server share ``execute_job``, a job submitted
over HTTP produces **byte-identical** registries and summaries to the
same invocation typed at a terminal — the service adds queueing,
telemetry and caching around the simulation, never inside it.

See docs/OBSERVABILITY.md ("Service mode") for the endpoint map, the
``service.*`` metric catalogue additions and the job lifecycle.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (
    JOB_KINDS,
    JobCancelled,
    JobRegistry,
    execute_job,
    job_key,
    normalise_spec,
)
from repro.service.server import ServiceServer

__all__ = [
    "JOB_KINDS",
    "JobCancelled",
    "JobRegistry",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "execute_job",
    "job_key",
    "normalise_spec",
]
