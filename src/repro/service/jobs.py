"""Job specs, the shared execution path, and the thread-pool registry.

A **job** is one CLI-equivalent invocation expressed as a JSON spec::

    {"kind": "fleet", "calls": [1, 2], "duration": 8.0, ...}

:func:`normalise_spec` merges the same defaults the CLI parsers apply
and validates the same constraints (scheme/transport/scenario choices,
FBCC needs LTE, ``--rotate-profiles`` vs ``--batch``), so a spec and
its CLI flag spelling are interchangeable.  :func:`job_key` hashes the
canonical spec through :func:`repro.experiments.cache.payload_key` —
two submissions of the same work share one key, and the key lives
under the cache's code-salt directory, so a simulator change
invalidates every remembered result automatically.

:func:`execute_job` is the **single execution path**: ``repro360
metrics``/``fleet``/``perf`` call it directly, and the service's worker
threads call the very same function — which is why a job submitted over
HTTP produces byte-identical registries and summaries to the same
invocation typed at a terminal.  It never prints, never exits; it
returns a :class:`JobOutcome` and raises on failure.

:class:`JobRegistry` is the queue: submissions dedup against queued and
running jobs by key, completed payloads persist through the
content-addressed cache (so identical resubmissions — even across a
server restart — complete instantly with ``cache_hit=true``), every
executed job runs under a :class:`repro.obs.ledger.RunLedger` in the
registry's run root, and cancellation propagates into the sweep between
tasks via the ``run_tasks`` cancel probe.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.config import SCHEMES, TRANSPORTS
from repro.experiments import cache
from repro.experiments.parallel import RunCancelled, resolve_jobs
from repro.obs.ledger import (
    RunLedger,
    gc_runs,
    list_runs,
    new_run_id,
    read_manifest,
)
from repro.obs.meter import SessionMeter
from repro.traces.scenarios import SCENARIOS

#: Job kinds the service runs — one per CLI experiment subcommand.
JOB_KINDS = ("metrics", "fleet", "perf")

#: Name of the job's result artifact inside its run directory: the
#: JSON payload (CLI-equivalent output + deterministic registry) that a
#: recovered or cache-hit job serves without re-running anything.
RESULT_NAME = "result.json"

#: Per-kind spec defaults — mirrors of the CLI parser defaults in
#: :func:`repro.cli.build_parser`, asserted against them by the test
#: suite so the two can never drift.
SPEC_DEFAULTS: Dict[str, dict] = {
    "metrics": {
        "scenario": "cellular",
        "duration": 30.0,
        "warmup": 0.0,
        "seed": 1,
        "scheme": "poi360",
        "transport": "fbcc",
        "profile": "user2-typical",
        "sessions": 1,
        "batch": False,
    },
    "fleet": {
        "scenario": "cellular",
        "scheme": "poi360",
        "transport": "fbcc",
        "duration": 30.0,
        "warmup": 5.0,
        "seed": 1,
        "calls": [1, 2, 4, 8],
        "cells": 1,
        "prb_budget": 50,
        "background_ues": 0,
        "background_load": 0.2,
        "rotate_profiles": False,
        "batch": False,
    },
    "perf": {
        "duration": 30.0,
        "warmup": 10.0,
        "batch": False,
        "fleet_batch": False,
    },
}

#: Spec fields coerced to these types during normalisation (everything
#: else keeps the default's type).
_FLOAT_FIELDS = ("duration", "warmup", "background_load")
_INT_FIELDS = ("seed", "sessions", "cells", "prb_budget", "background_ues")
_BOOL_FIELDS = ("batch", "rotate_profiles", "fleet_batch")


class JobCancelled(RunCancelled):
    """A job was cancelled before or during execution."""


class JobOutcome:
    """What one executed job produced.

    ``payload`` is the JSON-safe, CLI-equivalent result (the ``fleet
    --json`` document, the ``metrics`` sweep header fields, the perf
    record); ``registry`` is the deterministic counters+histograms
    registry (``fleet --metrics-output`` byte-for-byte) when the kind
    has one; ``meter`` is the full fleet meter for rendering (spans and
    gauges included — wall-clock, not deterministic).
    """

    __slots__ = ("payload", "registry", "meter")

    def __init__(self, payload: dict, registry: Optional[dict] = None, meter=None):
        self.payload = payload
        self.registry = registry
        self.meter = meter


def normalise_spec(spec: dict) -> dict:
    """Validate a job spec and merge the CLI defaults; raises ValueError.

    Returns a canonical dict (sorted keys, coerced value types) so that
    :func:`job_key` hashes spelling-independent content: ``{"duration":
    8}`` and ``{"duration": 8.0}`` are the same job.
    """
    if not isinstance(spec, dict):
        raise ValueError(f"job spec must be an object, got {type(spec).__name__}")
    kind = spec.get("kind")
    if kind not in JOB_KINDS:
        raise ValueError(f"unknown job kind {kind!r}; known: {', '.join(JOB_KINDS)}")
    defaults = SPEC_DEFAULTS[kind]
    unknown = sorted(set(spec) - set(defaults) - {"kind"})
    if unknown:
        raise ValueError(
            f"unknown {kind} spec field(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(defaults))}"
        )
    merged = dict(defaults)
    merged.update({key: value for key, value in spec.items() if key != "kind"})
    for field in _FLOAT_FIELDS:
        if field in merged:
            merged[field] = float(merged[field])
    for field in _INT_FIELDS:
        if field in merged:
            merged[field] = int(merged[field])
    for field in _BOOL_FIELDS:
        if field in merged:
            merged[field] = bool(merged[field])

    if "scenario" in merged and merged["scenario"] not in SCENARIOS:
        raise ValueError(f"unknown scenario {merged['scenario']!r}")
    if "scheme" in merged and merged["scheme"] not in SCHEMES:
        raise ValueError(f"unknown scheme {merged['scheme']!r}")
    if "transport" in merged and merged["transport"] not in TRANSPORTS:
        raise ValueError(f"unknown transport {merged['transport']!r}")
    if (
        merged.get("transport") == "fbcc"
        and merged.get("scenario") == "wireline"
    ):
        raise ValueError("FBCC needs the LTE diagnostic interface")
    if kind == "metrics" and merged["sessions"] < 1:
        raise ValueError("sessions must be >= 1")
    if kind == "fleet":
        if isinstance(merged["calls"], str):
            try:
                merged["calls"] = [
                    int(v) for v in merged["calls"].split(",") if v.strip()
                ]
            except ValueError:
                raise ValueError(
                    f"calls must be integers, got {merged['calls']!r}"
                ) from None
        elif isinstance(merged["calls"], int):
            merged["calls"] = [merged["calls"]]
        try:
            merged["calls"] = [int(v) for v in merged["calls"]]
        except (TypeError, ValueError):
            raise ValueError(
                f"calls must be a list of integers, got {merged['calls']!r}"
            ) from None
        if not merged["calls"] or any(v < 1 for v in merged["calls"]):
            raise ValueError("calls values must be >= 1")
        if merged["batch"] and merged["rotate_profiles"]:
            raise ValueError(
                "rotate_profiles requires the event engine (drop it or "
                "drop batch)"
            )
    canonical = {"kind": kind}
    canonical.update(sorted(merged.items()))
    return canonical


def job_key(spec: dict) -> str:
    """Content-addressed key of a (normalised) job spec."""
    return cache.payload_key(normalise_spec(spec))


def _guard(progress, cancel):
    """Chain a cancel probe into a ``(done, total, result)`` callback."""
    if cancel is None:
        return progress

    def _wrapped(done: int, total: int, result) -> None:
        if cancel():
            raise JobCancelled(f"cancelled after {done}/{total} tasks")
        if progress is not None:
            progress(done, total, result)

    return _wrapped


def _cache_delta(before: Dict[str, int]) -> Dict[str, int]:
    """This job's share of the process-cumulative cache counters.

    A fresh CLI process sees its own counters directly; a long-lived
    server must difference them per job or every job after the first
    would re-report its predecessors' hits.  In a fresh process the
    delta equals the cumulative value, so the CLI path is unchanged.
    """
    after = cache.counters()
    return {name: after[name] - before.get(name, 0) for name in after}


def execute_job(
    spec: dict,
    jobs: Optional[int] = None,
    ledger: Optional[RunLedger] = None,
    progress: Optional[Callable[[int, int, object], None]] = None,
    cancel: Optional[Callable[[], bool]] = None,
) -> JobOutcome:
    """Run one normalised job spec — the CLI's and the server's shared path.

    ``jobs`` is the worker-process count (the CLI's ``--jobs``), not
    part of the spec: it changes wall-clock, never results, so the same
    key may legitimately run with different pool sizes.  ``ledger``
    streams run telemetry; ``progress``/``cancel`` have ``run_tasks``
    semantics, with cancellation surfacing as :class:`JobCancelled`.
    """
    spec = normalise_spec(spec)
    kind = spec["kind"]
    workers = resolve_jobs(jobs)
    cache_before = cache.counters()

    try:
        if kind == "metrics":
            outcome = _execute_metrics(
                spec, jobs, workers, ledger, progress, cancel, cache_before
            )
        elif kind == "fleet":
            outcome = _execute_fleet(spec, jobs, workers, ledger, progress, cancel)
        else:
            outcome = _execute_perf(spec, jobs, ledger, progress, cancel)
    except JobCancelled:
        raise
    except RunCancelled as error:
        raise JobCancelled(str(error)) from error
    return outcome


def _execute_metrics(
    spec, jobs, workers, ledger, progress, cancel, cache_before
) -> JobOutcome:
    from repro.experiments.fleet import deterministic_registry_dict
    from repro.experiments.parallel import SessionTask, merged_meter, run_tasks

    guarded = _guard(progress, cancel)
    if spec["batch"]:
        from repro.experiments.batch import BatchRunner
        from repro.experiments.fleet import lockstep_scenario

        configs = [
            lockstep_scenario(
                spec["scenario"],
                scheme=spec["scheme"],
                transport=spec["transport"],
                duration=spec["duration"],
                seed=spec["seed"] + index,
            )
            for index in range(spec["sessions"])
        ]
        runner = BatchRunner(jobs=jobs)
        effective = guarded
        heartbeat = None
        if ledger is not None:
            effective = ledger.progress(
                kind="session", workers=workers, inner=guarded
            )
            heartbeat = str(ledger.heartbeat_path)
        results, engine = runner.run_metered(
            configs,
            warmup=spec["warmup"],
            progress=effective,
            heartbeat_path=heartbeat,
        )
        fleet = merged_meter(
            results, workers=workers, cache_counters=_cache_delta(cache_before)
        )
        fleet.merge(engine)
        # Batched sessions carry no per-session meters (the engine
        # meter is cohort-level), so count them here instead.
        fleet.inc("fleet.sessions", float(len(results)))
    else:
        tasks = [
            SessionTask(
                scenario_name=spec["scenario"],
                scheme=spec["scheme"],
                transport=spec["transport"],
                duration=spec["duration"],
                warmup=spec["warmup"],
                seed=spec["seed"] + index,
                profile_name=spec["profile"],
                meter=True,
            )
            for index in range(spec["sessions"])
        ]
        effective = guarded
        if ledger is not None:
            effective = ledger.progress(
                kind="session", workers=workers, inner=guarded
            )
        results = run_tasks(tasks, jobs=jobs, progress=effective, cancel=cancel)
        fleet = merged_meter(
            results, workers=workers, cache_counters=_cache_delta(cache_before)
        )
    payload = {
        "kind": "metrics",
        "scenario": spec["scenario"],
        "scheme": spec["scheme"],
        "transport": spec["transport"],
        "sessions": spec["sessions"],
        "workers": workers,
        "registry": deterministic_registry_dict(fleet),
    }
    return JobOutcome(payload, registry=payload["registry"], meter=fleet)


def _execute_fleet(spec, jobs, workers, ledger, progress, cancel) -> JobOutcome:
    from repro.experiments.fleet import deterministic_registry_dict, fleet_sweep

    guarded = _guard(progress, cancel)
    effective = guarded
    heartbeat = None
    if ledger is not None:
        effective = ledger.progress(kind="cell", workers=workers, inner=guarded)
        if spec["batch"]:
            heartbeat = str(ledger.heartbeat_path)
    sweep = fleet_sweep(
        spec["scenario"],
        calls=spec["calls"],
        cells=spec["cells"],
        scheme=spec["scheme"],
        transport=spec["transport"],
        duration=spec["duration"],
        warmup=spec["warmup"],
        seed=spec["seed"],
        background_ues=spec["background_ues"],
        background_load=spec["background_load"],
        prb_budget=spec["prb_budget"],
        rotate_profiles=spec["rotate_profiles"],
        jobs=jobs,
        meter=True,
        batch=spec["batch"],
        progress=effective,
        heartbeat_path=heartbeat,
    )
    # The exact document ``repro360 fleet --json`` prints — key order
    # included, so a byte diff against the CLI passes by construction.
    payload = {
        "scenario": spec["scenario"],
        "scheme": spec["scheme"],
        "transport": spec["transport"],
        "cells": spec["cells"],
        "points": [point.to_dict() for point in sweep.points],
        "cell_jains": [
            [round(cell.jain, 6) for cell in group] for group in sweep.cells
        ],
    }
    registry = deterministic_registry_dict(sweep.meter)
    return JobOutcome(payload, registry=registry, meter=sweep.meter)


def _execute_perf(spec, jobs, ledger, progress, cancel) -> JobOutcome:
    from repro.experiments.perf import run_perf_bench

    if cancel is not None and cancel():
        raise JobCancelled("cancelled before the first leg")
    record = run_perf_bench(
        duration=spec["duration"],
        warmup=spec["warmup"],
        jobs=jobs if jobs is not None else 4,
        output=None,
        batch=spec["batch"],
        fleet_batch=spec["fleet_batch"],
        ledger=ledger,
    )
    return JobOutcome(record)


# ----------------------------------------------------------------------
# The job registry (queue + worker threads + telemetry)
# ----------------------------------------------------------------------

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a submission can still dedup against / a cancel can still hit.
ACTIVE_STATES = (QUEUED, RUNNING)


class Job:
    """One job record (mutable; guarded by the registry lock)."""

    def __init__(self, job_id: str, spec: dict, key: str):
        self.id = job_id
        self.spec = spec
        self.kind = spec["kind"]
        self.key = key
        self.state = QUEUED
        self.cache_hit = False
        self.submitted_wall = time.time()
        self.started_wall: Optional[float] = None
        self.ended_wall: Optional[float] = None
        self.done = 0
        self.total: Optional[int] = None
        self.run_dir: Optional[str] = None
        self.error: Optional[str] = None
        self.result: Optional[dict] = None
        self.cancel_event = threading.Event()
        self.finished = threading.Event()
        self.ledger: Optional[RunLedger] = None
        self._registry_meter: Optional[SessionMeter] = None

    def eta_s(self) -> Optional[float]:
        if (
            self.state != RUNNING
            or self.started_wall is None
            or not self.total
            or self.done <= 0
        ):
            return None
        elapsed = time.time() - self.started_wall
        return elapsed * (self.total - self.done) / self.done

    def to_dict(self, include_result: bool = False) -> dict:
        row = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "key": self.key,
            "cache_hit": self.cache_hit,
            "spec": self.spec,
            "submitted_wall": round(self.submitted_wall, 3),
            "started_wall": (
                None if self.started_wall is None else round(self.started_wall, 3)
            ),
            "ended_wall": (
                None if self.ended_wall is None else round(self.ended_wall, 3)
            ),
            "done": self.done,
            "total": self.total,
            "run_dir": self.run_dir,
            "error": self.error,
        }
        eta = self.eta_s()
        row["eta_s"] = None if eta is None else round(eta, 3)
        if include_result:
            row["result"] = self.result
        return row


class JobRegistry:
    """The service's job queue: worker threads over :func:`execute_job`.

    ``root`` is the run root every job's ledger lives under; ``workers``
    is the number of concurrent jobs (each job may additionally fan its
    tasks across ``jobs`` worker *processes* — threads queue jobs,
    processes run sessions).  All public methods are thread-safe.
    """

    def __init__(
        self,
        root,
        workers: int = 2,
        jobs: Optional[int] = None,
        recover: bool = True,
    ):
        self.root = Path(root)
        self.jobs = jobs
        self._t0 = time.time()
        self._lock = threading.RLock()
        self._meter = SessionMeter()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._ids = itertools.count(1)
        self._queue: List[str] = []
        self._available = threading.Condition(self._lock)
        self._closed = False
        if recover:
            self._recover()
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"repro-job-worker-{index}", daemon=True
            )
            for index in range(max(1, int(workers)))
        ]
        for thread in self._workers:
            thread.start()

    # ---------------------------------------------------------- submit

    def submit(self, spec: dict) -> Job:
        """Queue a job (or attach to / replay an identical one).

        Dedup ladder, all under one lock:

        1. an **active** job (queued/running) with the same key — the
           submission attaches to it (``service.jobs_deduped``);
        2. a **completed** job with the same key, in memory or persisted
           in the payload cache — a new job record completes instantly
           with ``cache_hit=true`` (``service.jobs_cache_hits``);
        3. otherwise a fresh job enters the queue.
        """
        spec = normalise_spec(spec)
        key = cache.payload_key(spec)
        with self._lock:
            if self._closed:
                raise RuntimeError("registry is closed")
            for job_id in reversed(self._order):
                other = self._jobs[job_id]
                if other.key == key and other.state in ACTIVE_STATES:
                    self._meter.inc("service.jobs_deduped")
                    return other
            replay: Optional[dict] = None
            for job_id in reversed(self._order):
                other = self._jobs[job_id]
                if other.key == key and other.state == DONE and other.result:
                    replay = other.result
                    break
            if replay is None:
                replay = cache.load_payload(key)
            job = Job(self._new_id(), spec, key)
            self._meter.inc("service.jobs_submitted")
            if replay is not None:
                job.state = DONE
                job.cache_hit = True
                job.result = replay
                job.run_dir = replay.get("run_dir")
                job.started_wall = job.ended_wall = job.submitted_wall
                job.total = job.done = 0
                job.finished.set()
                self._meter.inc("service.jobs_cache_hits")
                self._register(job)
                return job
            self._register(job)
            self._queue.append(job.id)
            self._available.notify()
            return job

    def _new_id(self) -> str:
        return f"job-{next(self._ids):06d}"

    def _register(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._order.append(job.id)

    # ----------------------------------------------------------- query

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> List[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True if the job was still active."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state not in ACTIVE_STATES:
                return False
            job.cancel_event.set()
            if job.state == QUEUED:
                # The worker will observe the event when it dequeues the
                # job and seal it as cancelled without running anything.
                self._available.notify_all()
            return True

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Optional[Job]:
        """Block until a job reaches a terminal state (tests, clients)."""
        job = self.get(job_id)
        if job is None:
            return None
        job.finished.wait(timeout)
        return job

    # ---------------------------------------------------------- workers

    def _worker(self) -> None:
        while True:
            with self._available:
                while not self._queue and not self._closed:
                    self._available.wait()
                if self._closed and not self._queue:
                    return
                job = self._jobs[self._queue.pop(0)]
                wait_s = max(0.0, time.time() - job.submitted_wall)
                self._meter.observe("service.queue_wait_s", wait_s)
                if job.cancel_event.is_set():
                    job.state = CANCELLED
                    job.ended_wall = time.time()
                    self._meter.inc("service.jobs_cancelled")
                    job.finished.set()
                    continue
                job.state = RUNNING
                job.started_wall = time.time()
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        ledger = RunLedger.open(
            job.kind,
            config={
                "spec": job.spec,
                "service": {"job": job.id, "key": job.key},
            },
            root=self.root,
            run_id=f"{new_run_id(job.kind)}-{job.id}",
        )
        with self._lock:
            job.ledger = ledger
            job.run_dir = str(ledger.run_dir)

        def _progress(done: int, total: int, _result) -> None:
            with self._lock:
                job.done = done
                job.total = total

        def _cancelled() -> bool:
            return job.cancel_event.is_set()

        # _LockedLedger serialises live-meter mutation (absorb from this
        # thread) with /metrics scrapes through the registry lock, so a
        # scrape never iterates a dict the sweep is resizing.
        try:
            outcome = execute_job(
                job.spec,
                jobs=self.jobs,
                ledger=_LockedLedger(ledger, self._lock),
                progress=_progress,
                cancel=_cancelled,
            )
        except JobCancelled as error:
            ledger.finish("cancelled", error=str(error))
            with self._lock:
                job.state = CANCELLED
                job.error = str(error)
                job.ended_wall = time.time()
                self._meter.inc("service.jobs_cancelled")
                job.finished.set()
            return
        except Exception as error:  # noqa: BLE001 - jobs must not kill workers
            if not ledger.finished:
                ledger.finish("error", error=repr(error))
            with self._lock:
                job.state = FAILED
                job.error = repr(error)
                job.ended_wall = time.time()
                self._meter.inc("service.jobs_failed")
                job.finished.set()
            return

        result = {
            "payload": outcome.payload,
            "registry": outcome.registry,
            "run_dir": str(ledger.run_dir),
        }
        (ledger.run_dir / RESULT_NAME).write_text(
            json.dumps(result, indent=1) + "\n"
        )
        ledger.write_cache_stats(cache.stats())
        ledger.finish("ok", meter=outcome.meter)
        cache.store_payload(job.key, result)
        with self._lock:
            job.state = DONE
            job.result = result
            job.ended_wall = time.time()
            self._meter.inc("service.jobs_completed")
            job.finished.set()

    # --------------------------------------------------------- recovery

    def _recover(self) -> None:
        """Re-register jobs from sealed run directories after a restart.

        Any run whose manifest config carries the ``service`` stamp was
        one of ours; its terminal status maps back onto a job state, and
        a ``result.json`` artifact restores the payload, so ``GET
        /jobs`` shows history and resubmissions replay instantly even
        when the payload cache was cleared.
        """
        highest = 0
        for info in list_runs(self.root):
            try:
                manifest = read_manifest(info.run_dir)
            except (OSError, json.JSONDecodeError):
                continue
            config = manifest.get("config") or {}
            stamp = config.get("service")
            if not isinstance(stamp, dict) or "job" not in stamp:
                continue
            spec = config.get("spec")
            try:
                spec = normalise_spec(spec)
            except ValueError:
                continue
            job = Job(str(stamp["job"]), spec, str(stamp.get("key", "")))
            try:
                highest = max(highest, int(job.id.rsplit("-", 1)[-1]))
            except ValueError:
                pass
            job.state = {
                "ok": DONE,
                "cancelled": CANCELLED,
                "error": FAILED,
            }.get(manifest.get("status"), FAILED)
            job.run_dir = str(info.run_dir)
            job.submitted_wall = float(manifest.get("started_wall", 0.0))
            job.started_wall = job.submitted_wall
            job.ended_wall = manifest.get("ended_wall")
            job.error = manifest.get("error")
            result_path = info.run_dir / RESULT_NAME
            if job.state == DONE and result_path.exists():
                try:
                    job.result = json.loads(result_path.read_text())
                except (OSError, ValueError):
                    job.result = None
            job.finished.set()
            if job.id not in self._jobs:
                self._register(job)
        self._ids = itertools.count(highest + 1)

    # -------------------------------------------------------- telemetry

    def count_request(self) -> None:
        """Meter one served HTTP request (called by the handler)."""
        with self._lock:
            self._meter.inc("service.requests")

    def service_meter(self) -> SessionMeter:
        """The service's own counters/histograms plus queue gauges."""
        meter = SessionMeter()
        with self._lock:
            meter.merge(self._meter)
            queued = sum(1 for j in self._jobs.values() if j.state == QUEUED)
            running = sum(1 for j in self._jobs.values() if j.state == RUNNING)
        meter.set_gauge("service.jobs_queued", float(queued))
        meter.set_gauge("service.jobs_running", float(running))
        meter.set_gauge("service.uptime_s", time.time() - self._t0)
        return meter

    def service_registry(self) -> SessionMeter:
        """The ``/metrics`` registry: service meter + every job's registry.

        Running jobs contribute their ledger's live registry (growing
        while the sweep runs); completed jobs contribute their sealed
        ``registry.json``, loaded lazily once and cached on the record.
        """
        meter = self.service_meter()
        with self._lock:
            jobs = [self._jobs[job_id] for job_id in self._order]
            for job in jobs:
                if job.state == RUNNING and job.ledger is not None:
                    meter.merge(job.ledger.live)
        for job in jobs:
            if job.state != DONE or job.cache_hit or job.run_dir is None:
                continue
            if job._registry_meter is None:
                from repro.obs.ledger import load_registry

                try:
                    job._registry_meter = load_registry(job.run_dir)
                except (OSError, ValueError, json.JSONDecodeError):
                    continue
            meter.merge(job._registry_meter)
        return meter

    # --------------------------------------------------------------- gc

    def gc(self, keep_days: float, dry_run: bool = False) -> List[str]:
        """Prune sealed run dirs older than ``keep_days`` (see gc_runs)."""
        removed, _kept = gc_runs(self.root, keep_days=keep_days, dry_run=dry_run)
        if removed and not dry_run:
            with self._lock:
                self._meter.inc("service.runs_gc_removed", float(len(removed)))
        return [str(info.run_dir) for info in removed]

    # ------------------------------------------------------------ close

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting work and join idle workers (running jobs finish)."""
        with self._lock:
            self._closed = True
            self._available.notify_all()
        for thread in self._workers:
            thread.join(timeout)


class _LockedLedger:
    """A ledger proxy serialising live-meter mutation with scrapes.

    Only the methods the execution path touches are proxied; ``progress``
    wraps the real callback so ``absorb``/``heartbeat``/``snapshot`` run
    under the registry lock, and attribute access falls through for
    everything else (``heartbeat_path``, ``run_dir``, ``live``...).
    """

    def __init__(self, ledger: RunLedger, lock: threading.RLock):
        self._ledger = ledger
        self._lock = lock

    def progress(self, kind: str = "session", workers: int = 1, inner=None):
        real = self._ledger.progress(kind=kind, workers=workers, inner=inner)

        def _locked(done: int, total: int, result) -> None:
            with self._lock:
                real(done, total, result)

        return _locked

    def __getattr__(self, name):
        return getattr(self._ledger, name)
