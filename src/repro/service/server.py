"""The HTTP face of the job queue: ``ThreadingHTTPServer`` + JSON.

Stdlib only — no web framework.  Endpoints (all JSON unless noted):

========  =======================  =========================================
method    path                     body / response
========  =======================  =========================================
GET       ``/healthz``             liveness: ``{"status": "ok", ...}``
GET       ``/jobs``                every job record, submission order
POST      ``/jobs``                submit a spec; 202 with the job record
GET       ``/jobs/<id>``           one record, including its result payload
POST      ``/jobs/<id>/cancel``    request cancellation
GET       ``/jobs/<id>/events``    heartbeat stream (NDJSON; ``?since=N``
                                   skips the first N records)
GET       ``/metrics``             OpenMetrics text: service + all jobs
========  =======================  =========================================

The server binds ``127.0.0.1`` by default — it runs simulations on
behalf of whoever can reach it, so exposure beyond the host is an
explicit operator decision (``--host``).  Request handling threads only
read registry state and enqueue work; all simulation happens on the
:class:`repro.service.jobs.JobRegistry` worker threads.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.jobs import JobRegistry

#: The content type OpenMetrics scrapers negotiate.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: Cap on accepted request bodies; a job spec is a few hundred bytes.
MAX_BODY_BYTES = 1 << 20


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes requests onto the server's :class:`JobRegistry`."""

    server_version = "repro360-serve/1"
    protocol_version = "HTTP/1.1"

    # The ThreadingHTTPServer instance carries the registry (see
    # ServiceServer) — fetch it per request.
    @property
    def registry(self) -> JobRegistry:
        return self.server.registry  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # ------------------------------------------------------- responses

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, code: int, payload) -> None:
        self._send(
            code,
            (json.dumps(payload, indent=1) + "\n").encode(),
            "application/json",
        )

    def _error(self, code: int, message: str) -> None:
        self._json(code, {"error": message})

    def _count(self) -> None:
        self.registry.count_request()

    # ---------------------------------------------------------- routing

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._count()
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if url.path == "/healthz":
            self._json(200, {"status": "ok", "jobs": len(self.registry.list())})
        elif url.path == "/metrics":
            from repro.metrics.export import metrics_to_openmetrics

            text = metrics_to_openmetrics(self.registry.service_registry())
            self._send(200, text.encode(), OPENMETRICS_CONTENT_TYPE)
        elif url.path == "/jobs":
            self._json(200, {"jobs": [job.to_dict() for job in self.registry.list()]})
        elif len(parts) == 2 and parts[0] == "jobs":
            job = self.registry.get(parts[1])
            if job is None:
                self._error(404, f"no such job: {parts[1]}")
            else:
                self._json(200, job.to_dict(include_result=True))
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
            self._events(parts[1], url.query)
        else:
            self._error(404, f"no such endpoint: {url.path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._count()
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if url.path == "/jobs":
            self._submit()
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
            job = self.registry.get(parts[1])
            if job is None:
                self._error(404, f"no such job: {parts[1]}")
            else:
                cancelled = self.registry.cancel(parts[1])
                self._json(200, {"id": parts[1], "cancelled": cancelled})
        else:
            self._error(404, f"no such endpoint: {url.path}")

    # --------------------------------------------------------- handlers

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            return None
        if length < 0 or length > MAX_BODY_BYTES:
            return None
        return self.rfile.read(length)

    def _submit(self) -> None:
        body = self._read_body()
        if body is None:
            self._error(400, "missing or oversized request body")
            return
        try:
            spec = json.loads(body or b"{}")
        except ValueError as error:
            self._error(400, f"request body is not JSON: {error}")
            return
        try:
            job = self.registry.submit(spec)
        except ValueError as error:
            self._error(400, str(error))
            return
        except RuntimeError as error:
            self._error(503, str(error))
            return
        self._json(202, job.to_dict())

    def _events(self, job_id: str, query: str) -> None:
        job = self.registry.get(job_id)
        if job is None:
            self._error(404, f"no such job: {job_id}")
            return
        since = 0
        params = parse_qs(query)
        if "since" in params:
            try:
                since = max(0, int(params["since"][0]))
            except ValueError:
                self._error(400, "since must be an integer record count")
                return
        lines: list = []
        if job.run_dir is not None:
            heartbeat = Path(job.run_dir) / "heartbeat.jsonl"
            try:
                raw = heartbeat.read_text()
            except OSError:
                raw = ""
            # Same tolerance as read_heartbeats: drop torn/partial lines
            # (the run may be appending while we read).
            for line in raw.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    json.loads(line)
                except ValueError:
                    continue
                lines.append(line)
        body = "\n".join(lines[since:])
        if body:
            body += "\n"
        self._send(200, body.encode(), "application/x-ndjson")


class ServiceServer:
    """Own one ``ThreadingHTTPServer`` + registry; start/stop cleanly.

    ``port=0`` binds an ephemeral port; read it back from :attr:`port`
    (``repro360 serve`` prints the resolved URL on stdout so scripts can
    capture it).
    """

    def __init__(
        self,
        registry: JobRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry
        self.httpd = ThreadingHTTPServer((host, port), ServiceHandler)
        self.httpd.registry = registry  # type: ignore[attr-defined]
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[0], self.httpd.server_address[1]

    @property
    def port(self) -> int:
        return self.address[1]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceServer":
        """Serve in a background thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro360 serve`` loop)."""
        self.httpd.serve_forever()

    def close(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
        self.registry.close()
