"""A stdlib (urllib) client for the job-queue server.

Used by the ``repro360 submit`` / ``repro360 jobs`` / ``repro360 watch
--url`` subcommands, the smoke harness (``tools/check_serve.py``) and
the test suite; any HTTP client speaks the same JSON, this one just
wraps the endpoints in typed methods and turns error responses into
:class:`ServiceError`.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import List, Optional

#: Terminal job states a ``wait`` call returns on.
TERMINAL_JOB_STATES = ("done", "failed", "cancelled")


class ServiceError(RuntimeError):
    """An error response (or transport failure) from the server."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class ServiceClient:
    """One server, addressed by base URL (``http://127.0.0.1:8360``)."""

    def __init__(self, url: str, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ----------------------------------------------------------- plumbing

    def _request(self, method: str, path: str, payload=None) -> bytes:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            detail = error.read().decode(errors="replace").strip()
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ServiceError(
                f"{method} {path}: {detail or error.reason}", status=error.code
            ) from error
        except urllib.error.URLError as error:
            raise ServiceError(f"{method} {path}: {error.reason}") from error

    def _json(self, method: str, path: str, payload=None) -> dict:
        return json.loads(self._request(method, path, payload))

    # ---------------------------------------------------------- endpoints

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def submit(self, spec: dict) -> dict:
        """Submit a job spec; returns the job record (maybe a replay)."""
        return self._json("POST", "/jobs", spec)

    def jobs(self) -> List[dict]:
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        """One job record, including its result payload when finished."""
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> bool:
        return bool(self._json("POST", f"/jobs/{job_id}/cancel")["cancelled"])

    def events(self, job_id: str, since: int = 0) -> List[dict]:
        """The job's heartbeat records from index ``since`` onward."""
        raw = self._request("GET", f"/jobs/{job_id}/events?since={int(since)}")
        return [
            json.loads(line)
            for line in raw.decode().splitlines()
            if line.strip()
        ]

    def metrics_text(self) -> str:
        """The raw ``/metrics`` OpenMetrics exposition."""
        return self._request("GET", "/metrics").decode()

    def metrics(self):
        """The ``/metrics`` scrape parsed back into a SessionMeter."""
        from repro.metrics.export import read_openmetrics

        return read_openmetrics(self.metrics_text())

    # -------------------------------------------------------------- wait

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_s: float = 0.25,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns the record.

        Raises :class:`ServiceError` on timeout — the job keeps running
        server-side; this only stops *watching* it.
        """
        deadline = None if timeout is None else time.time() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_JOB_STATES:
                return record
            if deadline is not None and time.time() > deadline:
                raise ServiceError(
                    f"timed out after {timeout:g}s waiting for {job_id} "
                    f"(state {record['state']}, {record['done']}/{record['total']})"
                )
            time.sleep(poll_s)
