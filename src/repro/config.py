"""Configuration dataclasses for every POI360 subsystem.

All knobs live here so a session can be described by one
:class:`SessionConfig` value, and so experiment harnesses can derive
scenario variants with :func:`dataclasses.replace`.  Units follow the
conventions in :mod:`repro.units` (seconds / bits-per-second / bytes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.units import kbytes, mbps, ms

# ---------------------------------------------------------------------------
# LTE substrate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChannelConfig:
    """Radio-environment model for the sender's LTE uplink.

    The received signal strength (RSS) follows ``rss_dbm`` plus
    Gauss-Markov shadow fading; RSS maps to CQI in :mod:`repro.lte.tbs`.
    Mobility raises the fading volatility and adds handover outages.
    """

    #: Mean received signal strength in dBm (paper: -115 weak, -82
    #: moderate, -73 strong, about -60 along the highway route).
    rss_dbm: float = -82.0
    #: Standard deviation of log-normal shadow fading (dB).
    shadow_sigma_db: float = 5.0
    #: Correlation time of the Gauss-Markov shadowing process (s) at a
    #: static position; mobility compresses it (see ChannelProcess).
    shadow_corr_time: float = 5.0
    #: Platform speed in miles per hour (0 = static).
    speed_mph: float = 0.0
    #: Mean number of handovers per minute at 30 mph (scaled by speed).
    handover_rate_per_min_at_30mph: float = 3.0
    #: Duration of the radio outage around a handover (s).
    handover_outage: float = 0.30
    #: Deep-fade events (passing obstructions, bursts of interference):
    #: Poisson rate per minute, mean extra attenuation (dB, exponential)
    #: and duration range (s).  These create the seconds-long bandwidth
    #: collapses that drive the paper's cellular freeze ratios.
    deep_fade_rate_per_min: float = 1.0
    deep_fade_depth_db: float = 9.0
    deep_fade_duration: Tuple[float, float] = (0.8, 2.5)
    #: How often the channel process is updated (s).
    update_interval: float = ms(20)


@dataclass(frozen=True)
class CellConfig:
    """Competing load inside the serving cell.

    Background load shrinks the PRB share our UE can win from the
    proportional-fair uplink scheduler and adds grant volatility.
    """

    #: Fraction of cell uplink resources consumed by other UEs, in [0, 1).
    background_load: float = 0.20
    #: Standard deviation of the load's Gauss-Markov fluctuation.
    load_sigma: float = 0.10
    #: Correlation time of load fluctuation (s).
    load_corr_time: float = 5.0
    #: When positive, replace the Gauss-Markov load abstraction with
    #: this many explicit on/off background UEs (burstier, heavier
    #: tails — see repro.lte.competitors).
    competitor_count: int = 0


@dataclass(frozen=True)
class LteConfig:
    """UE + eNodeB uplink model (see DESIGN.md §2 for the substitution).

    The proportional-fair grant model schedules the UE in a subframe with
    probability ``p = p_max * min(1, B_reported / pf_backlog_ref)``; a
    scheduled subframe carries ``min(backlog, prb_quota * bytes_per_prb(cqi))``
    bytes.  This reproduces the paper's Fig. 5: throughput grows linearly
    with the firmware buffer level and saturates past a knee.
    """

    channel: ChannelConfig = field(default_factory=ChannelConfig)
    cell: CellConfig = field(default_factory=CellConfig)
    #: Maximum per-subframe scheduling probability when deeply backlogged.
    p_max: float = 0.45
    #: Backlog (bytes) at which the PF scheduler grants the full share
    #: (the knee of the Fig. 5 curve).
    pf_backlog_ref: float = kbytes(10)
    #: Physical resource blocks granted to the UE when scheduled, before
    #: background load shrinks them.  Calibrated so a moderate-signal
    #: (-82 dBm) lightly-loaded cell saturates around 2.5-3 Mbps — the
    #: paper quotes a 2.2 Mbps median LTE uplink bandwidth [13].
    prb_quota: int = 10
    #: Mean burst length of the PF scheduler's service process, in
    #: subframes: the UE is served in multi-subframe bursts separated by
    #: idle gaps (other UEs' turns), not i.i.d. per subframe.
    scheduling_burst_subframes: float = 4.0
    #: Delay between the UE's buffer state and the eNodeB's view of it
    #: (scheduling request + BSR latency).
    bsr_delay: float = ms(6)
    #: One-way radio latency for a transmitted transport block (s).
    radio_latency: float = ms(4)
    #: Interval of the diagnostic-interface batches (MobileInsight reads
    #: per-subframe records every 40 ms on the paper's Nexus 5).
    diag_interval: float = ms(40)
    #: Hard cap on the firmware buffer (bytes); packets beyond it are
    #: dropped by the modem.  The paper's Fig. 6/15 observe levels up to
    #: ≈50 KByte on the Nexus 5 before drops set in.
    firmware_buffer_cap: float = kbytes(64)


@dataclass(frozen=True)
class DownlinkConfig:
    """The viewer's LTE downlink hop (eNodeB queue + bursty service).

    Downlinks carry much more capacity than uplinks (more PRBs, higher
    scheduling share) so this hop rarely bottlenecks a ~3 Mbps stream --
    its role is the arrival-process texture: bufferbloat-deep queues
    and serve-in-bursts jitter, both of which the receiver's adaptive
    playout buffer (and GCC's delay estimator) must live with.
    """

    channel: ChannelConfig = field(
        default_factory=lambda: ChannelConfig(rss_dbm=-80.0)
    )
    cell: CellConfig = field(default_factory=CellConfig)
    #: PRBs our flow gets when scheduled (downlinks are wide).
    prb_quota: int = 25
    #: Peak scheduling duty cycle for our flow.
    p_max: float = 0.75
    #: Mean service-burst length (subframes) and max idle gap.
    burst_subframes: float = 4.0
    max_idle_subframes: int = 40
    #: eNodeB per-bearer downlink buffer (bytes) -- bufferbloat-deep.
    queue_cap_bytes: float = kbytes(512)
    #: Radio latency for a served transport block (s).
    radio_latency: float = ms(3)


# ---------------------------------------------------------------------------
# Network path substrate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WirelineConfig:
    """Campus-wireline access used for the paper's wireline baseline."""

    rate_bps: float = mbps(20)
    one_way_delay: float = ms(8)
    jitter_std: float = ms(1.5)


@dataclass(frozen=True)
class PathConfig:
    """Everything between the sender's access link and the viewer.

    ``access`` selects the sender uplink: ``"lte"`` uses the full LTE
    substrate, ``"wireline"`` the campus model.  The rest of the path
    (Internet core + the viewer's downlink) is modelled as a stochastic
    latency/loss stage, and the reverse feedback path likewise (the
    feedback traffic is light, so its own queueing is negligible; its
    base latency differs between wireline and cellular viewers).
    """

    access: str = "lte"
    wireline: WirelineConfig = field(default_factory=WirelineConfig)
    #: When set (the default for LTE sessions built by repro.traces),
    #: the viewer's downlink is the full eNodeB-queue model instead of
    #: the stochastic latency stage; ``downlink_delay``/``jitter`` then
    #: cover only the remaining fixed components.
    downlink_lte: Optional[DownlinkConfig] = None
    #: One-way Internet core latency (s) — through the carrier's core
    #: network for cellular endpoints (§8: traffic goes to the Internet
    #: even when both ends camp on the same basestation).
    core_delay: float = ms(40)
    #: Lognormal jitter sigma applied to the core latency (relative).
    core_jitter_rel: float = 0.10
    #: Viewer downlink stochastic stage: base one-way latency (s) and
    #: jitter.  With ``downlink_lte`` set these shrink to the fixed
    #: residue (the LTE model supplies queueing and burst jitter).
    downlink_delay: float = ms(65)
    downlink_jitter_std: float = ms(22)
    random_loss: float = 0.001
    #: Base one-way latency of the reverse (viewer -> sender) feedback
    #: path (the viewer's LTE uplink carries only light feedback traffic,
    #: but still pays the scheduling-request/grant cycle).
    feedback_delay: float = ms(120)
    feedback_jitter_std: float = ms(35)

    @staticmethod
    def for_wireline() -> "PathConfig":
        """Both endpoints on the campus wireline network."""
        return PathConfig(
            access="wireline",
            core_delay=ms(6),
            core_jitter_rel=0.05,
            downlink_delay=ms(6),
            downlink_jitter_std=ms(1.5),
            random_loss=0.0002,
            feedback_delay=ms(8),
            feedback_jitter_std=ms(2),
        )


# ---------------------------------------------------------------------------
# Video substrate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VideoConfig:
    """4K equirectangular 360-degree source and encoder model."""

    width: int = 3840
    height: int = 1920
    fps: float = 30.0
    tiles_x: int = 12
    tiles_y: int = 8
    #: Bitrate of the full-quality (uncompressed-in-space) encoded stream;
    #: the paper's test video encodes at 12.65 Mbps.
    full_quality_bitrate: float = mbps(12.65)
    #: Rate-distortion anchor: PSNR achieved at the full-quality
    #: bits-per-pixel, and dB gained per doubling of bits-per-pixel.
    rd_anchor_psnr: float = 41.0
    rd_db_per_octave: float = 6.0
    #: Encoded PSNR is clamped into this range (encoder quality floor
    #: and ceiling, i.e. max/min quantiser).
    psnr_floor: float = 8.0
    psnr_ceiling: float = 43.5
    #: Spatial downscale distortion: PSNR of a tile upscaled from
    #: compression level ``l`` is ``scale_anchor - scale_db_per_octave*log2(l)``.
    scale_anchor_psnr: float = 46.0
    scale_db_per_octave: float = 7.0
    #: The encoder can burn bits past the quality-saturation point (min
    #: quantiser still costs bits): the per-frame bits ceiling is this
    #: factor times the bits needed to reach ``psnr_ceiling``.
    bits_ceiling_factor: float = 2.0
    #: Bits-per-pixel floor at the maximum quantiser: a frame cannot
    #: shrink below ``pixels * bpp_floor`` however low the target rate.
    #: This is why a conservative spatial profile (many pixels) keeps
    #: overloading a collapsing uplink while an aggressive one fits —
    #: the paper's Pyramid-vs-Conduit delay/freeze ordering (§6.1.1).
    bpp_floor: float = 0.016
    #: When a tile's compression level changes between consecutive
    #: frames (the matrix shifts with the ROI), temporal prediction for
    #: that tile breaks and it is intra-coded at roughly this many times
    #: the inter cost.  Sharp profiles (Conduit) pay a large burst on
    #: every ROI move; smooth profiles barely notice.
    intra_refresh_penalty: float = 3.0
    #: Half-width of the ROI *measurement* crop in tiles (§5 dumps the
    #: ROI region around the gaze for PSNR comparison): (2k+1)^2 tiles.
    roi_measure_halfwidth: int = 1
    #: Weight tiles by the solid angle they cover on the sphere when
    #: averaging ROI quality (equirectangular frames oversample the
    #: poles); off by default to match the paper's planar-crop PSNR.
    solid_angle_weighting: bool = False
    #: Base relative sigma of the encoder's per-frame size error, plus
    #: the extra sigma per unit of compressed-pixel ratio (rate control
    #: is noisier when more content must fit a low bits-per-pixel
    #: budget).
    size_sigma_base: float = 0.08
    size_sigma_per_pixel_ratio: float = 0.30
    #: Every ``keyframe_interval`` seconds a frame costs
    #: ``keyframe_factor`` times the budget (WebRTC keeps keyframes rare
    #: and small-ish).
    keyframe_interval: float = 10.0
    keyframe_factor: float = 2.5
    #: RTP payload size used when packetising a frame (bytes).
    rtp_payload: int = 1200
    #: Constant pipeline latencies (s): capture+encode and decode+render.
    encode_latency: float = ms(60)
    decode_latency: float = ms(45)
    #: Adaptive de-jitter/playout buffer at the receiver: the playout
    #: delay tracks ``jitter_multiplier`` times the RTP-style smoothed
    #: frame-arrival jitter, clamped into [playout_min, playout_max] —
    #: small on wireline, large on bursty LTE (as real WebRTC behaves).
    playout_min: float = ms(30)
    playout_max: float = ms(400)
    jitter_multiplier: float = 5.0


# ---------------------------------------------------------------------------
# Spatial compression
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompressionConfig:
    """Mode family of Eq. (1) and the adaptive selection rule of §4.2."""

    #: Number of pre-defined modes K (paper: 8).
    num_modes: int = 8
    #: ``C`` of the most aggressive mode F1 and the most conservative FK;
    #: paper: C is drawn from [1.1 .. 1.8], F1..FK ordered by decreasing
    #: aggressiveness, so F1 has C=1.8 and F8 has C=1.1.
    c_aggressive: float = 1.8
    c_conservative: float = 1.1
    #: M is bucketed by this much per mode step (paper: 200 ms).
    mode_bucket: float = ms(200)
    #: Sliding window over which the client averages frame-level M (s).
    mismatch_window: float = 2.0
    #: Compression level of the ROI centre (l_min).
    l_min: float = 1.0
    #: Full-quality plateau half-widths (tiles in x and y) of the mode
    #: family around the ROI centre, before the Eq. (1) decay starts.
    plateau_x: int = 1
    plateau_y: int = 1
    #: "Lowest possible quality" level used by Conduit outside the ROI.
    conduit_l_max: float = 64.0
    #: Fixed C used by the Pyramid baseline profile.
    pyramid_c: float = 1.25


# ---------------------------------------------------------------------------
# Rate control
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GccConfig:
    """Google Congestion Control (WebRTC's default) parameters."""

    start_rate: float = mbps(0.8)
    min_rate: float = mbps(0.15)
    max_rate: float = mbps(12)
    #: Packet-group horizon for arrival-time filtering (s).
    burst_interval: float = ms(5)
    #: Trendline window (packet groups) and gain.
    trendline_window: int = 20
    trendline_gain: float = 4.0
    #: Initial adaptive overuse threshold, in the *scaled dimensionless*
    #: units of the modified trend (slope × samples × gain), as in
    #: WebRTC's trendline estimator — not milliseconds.
    overuse_threshold: float = 12.5
    threshold_gain_up: float = 0.0087
    threshold_gain_down: float = 0.039
    #: Sustained-trend time before declaring overuse (s).
    overuse_time: float = ms(10)
    #: Multiplicative decrease factor applied to the incoming rate.
    beta: float = 0.85
    #: Multiplicative-increase rate per second in the Increase state.
    eta_per_second: float = 0.08
    #: Additive increase: packets per response time near convergence.
    additive_packets: float = 1.0
    #: REMB / transport feedback interval (s).
    feedback_interval: float = 1.0
    #: RTCP loss-report interval (s).
    loss_interval: float = 1.0
    #: Pacer speed-up over the target rate (WebRTC's pace multiplier):
    #: frame bursts are flushed promptly so backlog sits in the network
    #: (firmware buffer) where delay-based detection can see it, and the
    #: long-run RTP rate still equals R_v (the encoder's output rate).
    pacing_factor: float = 2.5


@dataclass(frozen=True)
class FbccConfig:
    """POI360's firmware-buffer-aware congestion control (§4.3)."""

    #: Consecutive per-subframe buffer increases required by Eq. (3).
    k_consecutive: int = 10
    #: EWMA time constant of the long-term buffer average Γ (s).
    gamma_time_constant: float = 10.0
    #: TBS averaging window W of Eq. (4), in subframes (1 ms each).
    tbs_window_subframes: int = 500
    #: Hold the Eq. (6) PHY-rate cap for this many RTTs after detection.
    hold_rtts: float = 2.0
    #: Target firmware buffer level B* of Eq. (7); ``None`` learns it
    #: online from (buffer level, TBS) history as in §4.3.2.
    target_buffer: Optional[float] = kbytes(10)
    #: Bounds for the learned/updated RTP rate (bps).
    rtp_min_rate: float = mbps(0.1)
    rtp_max_rate: float = mbps(20)
    #: Safety margin under the measured PHY rate when cutting the
    #: encoder bitrate.  Eq. (5)'s R_bw equals the throughput of the
    #: *saturated* uplink; cutting to exactly that rate freezes the
    #: built-up backlog in place, so a small margin is kept to drain it
    #: during the hold window.
    phy_rate_margin: float = 0.85


@dataclass(frozen=True)
class FecConfig:
    """Forward-error-correction protection (WebRTC's ULPFEC, paper [14]).

    One XOR parity packet per ``group_size`` media packets recovers any
    single loss in the group without a NACK round trip, at ~1/k
    bandwidth overhead.  Off by default (the paper's prototype relies on
    WebRTC defaults; the FEC-vs-NACK trade is an ablation here).
    """

    enabled: bool = False
    group_size: int = 10


# ---------------------------------------------------------------------------
# Viewer
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ViewerConfig:
    """Head-motion and viewport model for one HMD user."""

    #: Horizontal / vertical field of view of the HMD (degrees).
    fov_x_deg: float = 100.0
    fov_y_deg: float = 90.0
    #: Mean dwell time between saccades (s); per-user profiles scale it.
    dwell_mean: float = 2.2
    dwell_min: float = 0.4
    #: Mean/std of saccade angular velocity (deg/s, paper §8 quotes an
    #: average of 60 deg/s) and the acceleration cap (deg/s^2, <= 500).
    saccade_velocity_mean: float = 60.0
    saccade_velocity_std: float = 20.0
    max_acceleration: float = 500.0
    #: Std of the continuous small head drift (deg/s random walk rate).
    drift_deg_per_s: float = 5.0
    #: Smooth pursuit (tracking moving content): probability that a
    #: dwell is replaced by a pursuit segment, its yaw velocity range
    #: (deg/s) and duration range (s).
    pursuit_probability: float = 0.70
    pursuit_velocity_range: Tuple[float, float] = (10.0, 35.0)
    pursuit_duration_range: Tuple[float, float] = (1.5, 5.0)
    #: Saccade yaw magnitude distribution (deg): exponential mean, cap.
    saccade_yaw_mean: float = 70.0
    saccade_yaw_max: float = 180.0
    #: Pitch excursions are smaller (deg).
    saccade_pitch_std: float = 12.0
    pitch_limit: float = 55.0
    #: Head-pose sampling interval (s).
    update_interval: float = ms(10)
    #: When positive, the viewer feeds back a *predicted* ROI this many
    #: seconds ahead (linear motion extrapolation, §8) instead of the
    #: current one.  The paper argues this horizon cannot usefully
    #: exceed ~120 ms; the knob exists to measure that claim.
    roi_prediction_horizon: float = 0.0


# ---------------------------------------------------------------------------
# Session
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SessionConfig:
    """A full telephony run: one sender, one viewer, one network."""

    video: VideoConfig = field(default_factory=VideoConfig)
    compression: CompressionConfig = field(default_factory=CompressionConfig)
    lte: LteConfig = field(default_factory=LteConfig)
    path: PathConfig = field(default_factory=PathConfig)
    gcc: GccConfig = field(default_factory=GccConfig)
    fbcc: FbccConfig = field(default_factory=FbccConfig)
    fec: FecConfig = field(default_factory=FecConfig)
    viewer: ViewerConfig = field(default_factory=ViewerConfig)
    #: Spatial compression scheme: "poi360", "conduit" or "pyramid".
    scheme: str = "poi360"
    #: Transport rate control: "fbcc" or "gcc".
    transport: str = "gcc"
    #: Session length (paper micro-benchmarks run 300 s; FBCC runs 200 s).
    duration: float = 300.0
    #: Frame delay above which a frame counts as frozen (s, §6.1.1).
    freeze_threshold: float = ms(600)
    #: Master seed for all random streams.
    seed: int = 0

    def frame_interval(self) -> float:
        """Video frame interval in seconds."""
        return 1.0 / self.video.fps


# ---------------------------------------------------------------------------
# Fleet (multi-UE shared cell)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FleetConfig:
    """One shared eNodeB uplink cell carrying N POI360 callers.

    Consumed by :class:`repro.telephony.fleet.CellSession` /
    :class:`repro.lte.shared_cell.SharedCell`; the contention model and
    grant-splitting semantics are documented in docs/FLEET.md.
    """

    #: POI360 callers sharing the cell (each a full telephony session).
    ues: int = 4
    #: Uplink physical resource blocks the cell can grant per 1 ms
    #: subframe, shared by the callers and the scheduled background
    #: traffic (10 MHz LTE: 50 PRBs).
    prb_budget: int = 50
    #: Time constant (s) of the per-caller realized-share EWMA that
    #: feeds the proportional-fair coupling.
    share_time_constant: float = 0.25
    #: Exponent of the PF catch-up weight ``(mean_share/own_share)^k``:
    #: 0 disables the catch-up boost, 1 is classic proportional fair.
    pf_weight_exponent: float = 1.0
    #: The PF weight is clamped into ``[1/pf_weight_max, pf_weight_max]``.
    pf_weight_max: float = 4.0
    #: When positive, this many explicit on/off background UEs
    #: (:mod:`repro.lte.competitors`) are scheduled inside the cell and
    #: claim PRBs from the shared budget before the callers do.
    background_ues: int = 0
    #: Long-run fraction of the cell the background UEs aim to occupy.
    background_load: float = 0.0
    #: Seed of the cell-level random streams (background traffic only;
    #: each caller keeps its own :class:`SessionConfig.seed`).
    seed: int = 0


#: Compression scheme names accepted by :class:`SessionConfig`.
SCHEMES: Tuple[str, ...] = ("poi360", "conduit", "pyramid")

#: Transport names accepted by :class:`SessionConfig`.  "gcc" is the
#: paper-era receiver-side (REMB) flavour; "gcc_ss" the modern send-side
#: (transport-wide feedback) flavour.
TRANSPORTS: Tuple[str, ...] = ("fbcc", "gcc", "gcc_ss")
