"""Colored-block frame timestamping — the §5 measurement system.

The prototype embeds the sending timestamp inside each video frame as a
row of colored square blocks: each decimal digit of the millisecond
timestamp maps to one of 10 colors spread uniformly through RGB space.
The receiver averages the pixels in each block and maps back to the
nearest palette color.  We reproduce that pipeline, including the pixel
averaging noise and the NTP clock offset between the two endpoints.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

RgbBlock = Tuple[int, int, int]

#: Ten colors with wide mutual separation in the RGB cube, digit 0-9.
PALETTE: Tuple[RgbBlock, ...] = (
    (0, 0, 0),
    (255, 0, 0),
    (0, 255, 0),
    (0, 0, 255),
    (255, 255, 0),
    (255, 0, 255),
    (0, 255, 255),
    (255, 255, 255),
    (128, 128, 128),
    (255, 128, 0),
)

#: Digits encoded (ms resolution, wraps every ~28 hours).
NUM_DIGITS = 8

_MODULUS = 10**NUM_DIGITS

#: Palette as a float array, shaped for broadcasting against a batch of
#: observed blocks: (1, 10, 3).
_PALETTE_F = np.asarray(PALETTE, dtype=float)[np.newaxis, :, :]


def encode_timestamp(time_s: float) -> Tuple[RgbBlock, ...]:
    """Encode a timestamp (seconds) as colored blocks, ms resolution.

    >>> encode_timestamp(0.042)[-1]
    (0, 255, 0)
    """
    total_ms = int(round(time_s * 1000.0)) % _MODULUS
    digits = [(total_ms // 10**power) % 10 for power in range(NUM_DIGITS - 1, -1, -1)]
    return tuple(PALETTE[d] for d in digits)


def decode_timestamp(
    blocks: Sequence[RgbBlock],
    rng: Optional[np.random.Generator] = None,
    pixel_noise_std: float = 6.0,
) -> float:
    """Decode colored blocks back to seconds (nearest-palette match).

    ``pixel_noise_std`` models codec + averaging noise on the received
    block colors; the palette's wide separation makes decoding robust
    far beyond realistic noise levels.
    """
    observed = np.asarray(blocks, dtype=float)
    if observed.size == 0:
        return 0.0
    if rng is not None and pixel_noise_std > 0.0:
        # One batched draw; numpy fills the array in C order, so the
        # values (and the generator state afterwards) are identical to
        # one size-3 draw per block.
        observed = observed + rng.normal(
            0.0, pixel_noise_std, size=observed.shape
        )
    distances = ((_PALETTE_F - observed[:, np.newaxis, :]) ** 2).sum(axis=2)
    total = 0
    for digit in distances.argmin(axis=1):
        total = total * 10 + int(digit)
    return total / 1000.0
