"""POI360 sender pipeline (left half of Fig. 7).

Per captured frame: build the compression matrix from the current ROI
knowledge (adaptive mode under POI360), encode against the transport's
target bitrate, embed the colored-block timestamp, packetise into RTP
packets and hand them to the pacer.  Feedback from the viewer updates
the ROI knowledge, the mismatch-driven compression mode, the transport
(REMB / receiver reports) and serves NACK retransmissions.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from repro.compression.base import CompressionScheme
from repro.config import SessionConfig
from repro.metrics.summary import SessionLog
from repro.net.packet import Packet
from repro.net.path import ForwardPath
from repro.obs.bus import NULL_BUS
from repro.obs.meter import NULL_METER
from repro.rate_control.base import TransportController
from repro.rate_control.pacer import PacedSender
from repro.sim.engine import Simulation
from repro.telephony.timestamping import encode_timestamp
from repro.video.capture import VideoSource
from repro.video.encoder import FrameEncoder
from repro.video.frame import EncodedFrame, TileGrid

#: Retransmission history depth (packets).
HISTORY_DEPTH = 4096

#: Cadence of the Rv/Rrtp trace sampling (s).
RATE_SAMPLE_INTERVAL = 0.2


class PanoramicSender:
    """Capture → compress → encode → packetise → pace."""

    def __init__(
        self,
        sim: Simulation,
        config: SessionConfig,
        scheme: CompressionScheme,
        transport: TransportController,
        forward: ForwardPath,
        encoder: FrameEncoder,
        grid: TileGrid,
        log: SessionLog,
        trace=NULL_BUS,
        meter=NULL_METER,
    ):
        self._sim = sim
        self._trace = trace
        self._meter = meter
        self._config = config
        self._scheme = scheme
        self._transport = transport
        self._forward = forward
        self._encoder = encoder
        self._grid = grid
        self._log = log
        self.pacer = PacedSender(
            sim,
            forward.send,
            lambda: transport.pacing_rate,
            payload_size=config.video.rtp_payload,
            on_sent=self._record_sent,
        )
        #: Sender's (possibly stale) knowledge of the viewer ROI, r_s.
        self.roi_knowledge: Tuple[int, int] = (0, grid.tiles_y // 2)
        self._history: "OrderedDict[int, Packet]" = OrderedDict()
        if config.fec.enabled:
            from repro.rate_control.fec import FecEncoder

            self.fec = FecEncoder(
                config.fec.group_size, send_parity=self.pacer.enqueue_retransmit
            )
        else:
            self.fec = None
        self._source = VideoSource(sim, config.video, self._on_capture)
        sim.every(RATE_SAMPLE_INTERVAL, self._sample_rates)

    def _on_capture(self, index: int, now: float) -> None:
        meter = self._meter
        t0 = meter.span_start() if meter else 0.0
        target_rate = self._transport.video_rate
        if self.fec is not None:
            # Cede the parity overhead: media + FEC must fit the target.
            target_rate /= 1.0 + self.fec.overhead_ratio
        self._scheme.fit_to_rate(target_rate, self._encoder.floor_rate)
        matrix = self._scheme.matrix(self.roi_knowledge)
        frame = self._encoder.encode(matrix, self.roi_knowledge, target_rate, now)
        frame.timestamp_blocks = encode_timestamp(now)
        self._log.frames_sent += 1
        self._log.sent_bits += frame.size_bits
        if self._trace:
            self._trace.emit(
                "sender.frame", target_rate_bps=target_rate, size_bits=frame.size_bits
            )
        if meter:
            meter.inc("sender.frames")
            meter.observe("sender.frame_kbits", frame.size_bits / 1e3)
            meter.span_end("sender.encode", t0)
        self._sim.schedule(self._config.video.encode_latency, self._emit_frame, frame)

    def _emit_frame(self, frame: EncodedFrame) -> None:
        self.pacer.enqueue_frame(frame)

    def _record_sent(self, packet: Packet) -> None:
        """Keep sent packets for NACK retransmission (RTX history)."""
        if packet.payload.get("rtx") or packet.payload.get("fec"):
            return
        self._history[packet.payload["seq"]] = packet
        while len(self._history) > HISTORY_DEPTH:
            self._history.popitem(last=False)
        if self.fec is not None:
            self.fec.on_media(packet)

    def on_feedback(self, packet: Packet) -> None:
        """Entry point for viewer → sender data-channel messages."""
        message = packet.payload.get("message", {})
        kind = message.get("type")
        if kind == "roi":
            self.roi_knowledge = tuple(message["roi"])
            self._scheme.update_mismatch(message["mismatch"])
        elif kind == "nack":
            for seq in message["seqs"]:
                self._retransmit(seq)
        else:
            self._transport.on_feedback(message, self._sim.now)

    def _retransmit(self, seq: int) -> None:
        original = self._history.get(seq)
        if original is None:
            return  # aged out of the history; the frame will be lost
        if self._sim.now - original.created > 0.8:
            return  # stale media is superseded; do not waste uplink on it
        payload = {k: v for k, v in original.payload.items() if k != "sent"}
        payload["rtx"] = True
        copy = Packet(
            kind="video",
            size_bytes=original.size_bytes,
            created=original.created,
            payload=payload,
        )
        self.pacer.enqueue_retransmit(copy)

    def _sample_rates(self) -> None:
        self._log.rate_trace.append(
            (self._sim.now, self._transport.video_rate, self._transport.pacing_rate)
        )
        self._log.buffer_levels.append(
            (self._sim.now, self._forward.access_backlog_bytes)
        )
