"""Wires a full telephony session (Fig. 7) and runs it.

``run_session`` is the main public entry point of the library: give it a
:class:`repro.config.SessionConfig` (optionally with a user profile) and
it builds the whole stack — LTE uplink or wireline access, forward and
feedback paths, compression scheme, transport, encoder, viewer — runs
the call, and returns the per-frame logs plus the aggregate summary.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional

from repro.compression import make_scheme
from repro.config import SessionConfig
from repro.lte.diagnostics import DiagRecord
from repro.metrics.summary import SessionLog, SessionSummary
from repro.net.path import ForwardPath, ReversePath
from repro.obs.bus import NULL_BUS, TraceBus
from repro.obs.meter import SessionMeter, coerce_meter
from repro.rate_control.base import TransportController
from repro.rate_control.fbcc.controller import FbccTransport
from repro.rate_control.gcc.controller import GccReceiver, GccTransport
from repro.roi.head_motion import HeadMotion
from repro.roi.users import UserProfile
from repro.roi.viewport import Viewport
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry
from repro.telephony.receiver import PanoramicReceiver
from repro.telephony.sender import PanoramicSender
from repro.units import BITS_PER_BYTE
from repro.video.content import ContentModel
from repro.video.encoder import FrameEncoder
from repro.video.frame import TileGrid


@dataclass
class SessionResult:
    """Everything a session produced.

    ``trace`` is the session's :class:`repro.obs.TraceBus` when tracing
    was enabled (``run_session(..., trace=True)``), else ``None`` — the
    default keeps cached results and the parallel runner byte-identical
    to untraced runs.  ``meter`` is likewise the session's
    :class:`repro.obs.SessionMeter` (counters, histograms, spans) when
    metering was enabled (``run_session(..., meter=True)``), else
    ``None``.
    """

    config: SessionConfig
    summary: SessionSummary
    log: SessionLog
    trace: Optional[TraceBus] = None
    meter: Optional[SessionMeter] = None


class TelephonySession:
    """One sender + one viewer over one network, fully wired.

    ``head_trace`` (a :class:`repro.roi.traces.HeadTrace`) replaces the
    synthetic head-motion model with a recorded pose trace.
    """

    def __init__(
        self,
        config: SessionConfig,
        profile: Optional[UserProfile] = None,
        head_trace=None,
        trace=False,
        meter=False,
        sim: Optional[Simulation] = None,
        cell=None,
    ):
        if profile is not None:
            config = dataclasses.replace(config, viewer=profile.apply(config.viewer))
        self.config = config
        # ``sim`` lets a fleet cell (repro.telephony.fleet.CellSession)
        # co-locate several callers on one event queue; a session that
        # owns its simulation also owns the sim-level trace/meter hooks.
        self._owns_sim = sim is None
        self.sim = Simulation() if sim is None else sim
        self.rng = RngRegistry(config.seed)
        self.log = SessionLog()
        # ``trace`` is False (off), True (fresh bus), or a TraceBus the
        # caller built (custom capacity). Emissions only read component
        # state — never an RNG stream, never the event queue — so an
        # enabled bus cannot perturb the session.
        if trace is True:
            trace = TraceBus()
        elif not trace:
            trace = NULL_BUS
        if trace:
            trace.bind_clock(lambda: self.sim._now)
        self.trace = trace
        # ``meter`` is False (off), True (fresh SessionMeter), or a
        # SessionMeter the caller built (e.g. shared across sessions).
        # Like trace emissions, metric/span emissions only read component
        # state; span timings read the wall clock but never write
        # anything back into the simulation.
        meter = coerce_meter(meter)
        self.meter = meter
        if self._owns_sim:
            self.sim.trace = trace
            self.sim.meter = meter

        video = config.video
        self.grid = TileGrid(video.width, video.height, video.tiles_x, video.tiles_y)
        self.content = ContentModel(self.grid, self.rng.stream("content"))

        self.forward = ForwardPath(
            self.sim, config.path, config.lte, self.rng.stream("forward"),
            trace=trace, meter=meter,
        )
        self.reverse = ReversePath(self.sim, config.path, self.rng.stream("reverse"))
        if cell is not None:
            if self.forward.ue is None:
                raise ValueError(
                    "shared-cell membership needs LTE access "
                    "(config.path.access == 'lte')"
                )
            self.forward.ue.join_cell(cell)

        self.transport = self._build_transport()
        scheme = make_scheme(
            config.scheme, config.compression, self.grid, config.viewer,
            trace=trace, meter=meter,
        )
        self.scheme = scheme

        encoder = FrameEncoder(video, self.grid, self.content, self.rng.stream("encoder"))
        self.sender = PanoramicSender(
            self.sim, config, scheme, self.transport, self.forward, encoder, self.grid,
            self.log, trace=trace, meter=meter,
        )

        if head_trace is not None:
            from repro.roi.traces import TraceHeadMotion

            head = TraceHeadMotion(self.sim, config.viewer, head_trace)
        else:
            head = HeadMotion(self.sim, config.viewer, self.rng.stream("head"))
        self.head = head
        viewport = Viewport(self.grid, config.viewer, head)
        if config.transport.lower() == "gcc_ss":
            from repro.rate_control.gcc.sendside import TwccFeedbackGenerator

            gcc_receiver = TwccFeedbackGenerator(
                self.sim, config.gcc, send_feedback=self._send_transport_feedback
            )
        else:
            gcc_receiver = GccReceiver(
                self.sim, config.gcc, send_feedback=self._send_transport_feedback
            )
        self.gcc_receiver = gcc_receiver
        self.receiver = PanoramicReceiver(
            self.sim,
            config,
            self.grid,
            self.content,
            viewport,
            self.reverse,
            gcc_receiver,
            self.log,
            self.rng.stream("receiver"),
            trace=trace,
            meter=meter,
        )

        self.forward.set_receiver(self.receiver.on_media_packet)
        self.reverse.set_receiver(self.sender.on_feedback)
        if self.forward.ue is not None:
            self.forward.ue.diag.subscribe(self._on_diag_batch)
        self._diag_second_tbs = 0.0
        self._diag_second_levels: List[float] = []
        self._diag_second_start = 0.0
        self._baseline_dropped = 0
        self._baseline_lost = 0

    def _build_transport(self) -> TransportController:
        name = self.config.transport.lower()
        if name == "gcc":
            return GccTransport(self.config.gcc, trace=self.trace, meter=self.meter)
        if name == "gcc_ss":
            from repro.rate_control.gcc.sendside import SendSideGccTransport

            return SendSideGccTransport(self.sim, self.config.gcc)
        if name == "fbcc":
            if self.config.path.access != "lte":
                raise ValueError(
                    "FBCC needs the LTE diagnostic interface; "
                    "use transport='gcc' on wireline access"
                )
            return FbccTransport(
                self.sim, self.config.fbcc, self.config.gcc,
                self.config.lte.diag_interval, trace=self.trace, meter=self.meter,
            )
        raise ValueError(f"unknown transport: {name!r}")

    def _send_transport_feedback(self, message) -> None:
        self.receiver.send_transport_feedback(message)

    def _on_diag_batch(self, batch: List[DiagRecord]) -> None:
        """Feed FBCC and keep per-second (TBS rate, buffer) aggregates."""
        self.transport.on_diag(batch)
        for record in batch:
            self._diag_second_tbs += record.tbs_bytes
            self._diag_second_levels.append(record.buffer_bytes)
        if self.sim.now - self._diag_second_start >= 1.0:
            levels = self._diag_second_levels or [0.0]
            self.log.diag_seconds.append(
                (
                    self._diag_second_tbs * BITS_PER_BYTE,
                    sum(levels) / len(levels),
                )
            )
            self._diag_second_tbs = 0.0
            self._diag_second_levels = []
            self._diag_second_start = self.sim.now

    def run(
        self, duration: Optional[float] = None, warmup: float = 0.0
    ) -> SessionResult:
        """Run the call and return logs + summary.

        ``warmup`` seconds are simulated first and excluded from every
        metric — GCC needs tens of seconds to ramp from its start rate,
        and the paper reports steady telephony behaviour.
        """
        duration = duration if duration is not None else self.config.duration
        meter = self.meter
        t0 = meter.span_start() if meter else 0.0
        self._emit_start()
        if warmup > 0.0:
            self.sim.run(warmup)
            self._end_warmup()
        self.sim.run(duration)
        return self._finish(duration, t0)

    # The run() phases are factored out so a fleet cell
    # (repro.telephony.fleet.CellSession) can interleave them across all
    # member sessions sharing one simulation: emit every start, advance
    # the shared clock through warm-up, reset every log, advance through
    # the measured window, then finish each member.

    def _emit_start(self) -> None:
        if self.trace:
            self.trace.emit(
                "session.start",
                scheme=self.config.scheme,
                transport=self.config.transport,
                seed=self.config.seed,
            )

    def _end_warmup(self) -> None:
        """Discard warm-up measurements; measurement starts now."""
        self.log.reset()
        self.log.start_time = self.sim.now
        self._baseline_dropped = self.sender.pacer.dropped_frames
        self._baseline_lost = self.forward.lost_packets
        if self.trace:
            self.trace.emit("session.warmup_done")

    def _finish(self, duration: float, t0: float = 0.0) -> SessionResult:
        """Close out the run: counters, summary, meter, result."""
        meter = self.meter
        self._finalise_counters()
        summary = SessionSummary.from_log(
            self.log,
            scheme=self.config.scheme,
            transport=self.config.transport,
            duration=duration,
            freeze_threshold=self.config.freeze_threshold,
        )
        if meter:
            meter.inc("session.runs")
            meter.span_end("session.run", t0)
        return SessionResult(
            config=self.config,
            summary=summary,
            log=self.log,
            trace=self.trace if self.trace else None,
            meter=meter if meter else None,
        )

    def _finalise_counters(self) -> None:
        log = self.log
        log.mode_switches = getattr(self.scheme, "mode_switches", 0)
        if isinstance(self.transport, FbccTransport):
            log.congestion_events = self.transport.encoding.congestion_events
        log.packets_lost += self.forward.lost_packets - self._baseline_lost
        # Frames the pacer expired never reached the viewer: they are
        # skipped content and count against the freeze ratio.
        log.frames_lost += self.sender.pacer.dropped_frames - self._baseline_dropped


def run_session(
    config: SessionConfig,
    profile: Optional[UserProfile] = None,
    duration: Optional[float] = None,
    warmup: float = 0.0,
    trace=False,
    meter=False,
) -> SessionResult:
    """Build and run one telephony session.

    ``trace=True`` attaches a :class:`repro.obs.TraceBus` to every
    subsystem and returns it on ``SessionResult.trace`` (see
    docs/OBSERVABILITY.md); a :class:`~repro.obs.TraceBus` instance may
    be passed instead for a custom ring capacity.  ``meter=True``
    likewise attaches a :class:`repro.obs.SessionMeter` (counters,
    histograms, stage spans) returned on ``SessionResult.meter``; a
    :class:`~repro.obs.SessionMeter` instance may be passed to
    accumulate several sessions into one registry.
    """
    return TelephonySession(config, profile=profile, trace=trace, meter=meter).run(
        duration, warmup=warmup
    )
