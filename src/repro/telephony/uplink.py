"""The grid-aligned *uplink lockstep profile* and its scalar reference.

The batched engine (:mod:`repro.sim.batch`) advances N sessions in
lockstep on the shared 1 ms LTE subframe grid.  That only makes sense
for a session model whose every process sits on that grid, so this
module defines the **uplink lockstep profile**: a full sender-side
cellular telephony loop — FBCC rate control (Eq. 3-7), RTP pacing, the
firmware buffer, the PF grant scheduler, channel/cell dynamics, a fixed
downstream delay and a jitter-adaptive receiver — with every cadence an
integer number of subframes.

:class:`UplinkSession` here is the *scalar reference*: it runs the
profile one session at a time on the event-driven
:class:`~repro.sim.engine.Simulation` (one master event per subframe),
composing the production FBCC classes
(:class:`~repro.rate_control.fbcc.detector.CongestionDetector`,
:class:`~repro.rate_control.fbcc.bandwidth.TbsBandwidthEstimator`,
:class:`~repro.rate_control.fbcc.encoding.EncodingRateControl`,
:class:`~repro.rate_control.fbcc.rtp.RtpRateControl`) and the
production :class:`~repro.lte.firmware_buffer.FirmwareBuffer`.  The
batched engine must reproduce it **bit-for-bit** (same seeds → same
:class:`~repro.telephony.session.SessionResult` numbers); the
equivalence test in ``tests/test_batch.py`` enforces this.

Three design rules make that achievable (see docs/PERFORMANCE.md):

1. every random variate comes from a per-session *block stream*
   (:mod:`repro.sim.blocks`) with transcendentals applied block-wise;
2. all time is derived from the integer tick counter (``now = k *
   1e-3``), never from float-accumulated periods;
3. rare per-frame events (assembly, display, PSNR) run through
   *shared* scalar code (:class:`ReceiverState`) in both engines.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import FleetConfig, SessionConfig, VideoConfig
from repro.lte.cell import UPDATE_INTERVAL as CELL_UPDATE_INTERVAL
from repro.lte.cell import GridCellLoad
from repro.lte.channel import GridChannel
from repro.lte.diagnostics import DiagRecord
from repro.lte.firmware_buffer import FirmwareBuffer
from repro.lte.scheduler import GridScheduler
from repro.metrics.summary import SessionLog, SessionSummary
from repro.rate_control.fbcc.bandwidth import TbsBandwidthEstimator
from repro.rate_control.fbcc.batch import FallbackRamp
from repro.rate_control.fbcc.detector import CongestionDetector
from repro.rate_control.fbcc.encoding import EncodingRateControl
from repro.rate_control.fbcc.rtp import RtpRateControl
from repro.rate_control.pacer import (
    BURST_TICKS,
    MAX_QUEUE_SECONDS,
    MIN_BURST_BYTES,
    PACING_TICK,
)
from repro.sim.blocks import BlockStream, lognormal_transform
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry
from repro.telephony.session import SessionResult
from repro.units import BITS_PER_BYTE
from repro.video.quality import anchor_bpp, psnr_from_bpp

#: One lockstep tick (the LTE subframe).
MS = 1e-3

#: Rate/buffer traces are sampled every this many ticks (5 Hz).
SAMPLE_TICKS = 200

#: Per-session receiver clock offset sigma (s) — NTP-grade desync
#: between the two phones' wall clocks.
CLOCK_OFFSET_SIGMA = 0.003


def _ms_aligned(value: float) -> bool:
    return abs(value * 1000.0 - round(value * 1000.0)) < 1e-9


def _ticks(value: float) -> int:
    return int(round(value * 1000.0))


def batch_unsupported_reason(config: SessionConfig) -> Optional[str]:
    """Why ``config`` cannot run under the uplink lockstep profile.

    Returns ``None`` when the profile supports it.  The checks mirror
    the profile's structural assumptions; anything else (RSS, speed,
    load, seeds, rates, ...) may vary freely per session.
    """
    if config.path.access != "lte":
        return f"profile models the LTE uplink (access={config.path.access!r})"
    if config.lte.cell.competitor_count:
        return "explicit competitor UEs are event-driven"
    if config.fbcc.target_buffer is None:
        return "the online sweet-spot learner (target_buffer=None) is unsupported"
    if config.video.fps <= 0:
        return "fps must be positive"
    named = {
        "channel.update_interval": config.lte.channel.update_interval,
        "lte.diag_interval": config.lte.diag_interval,
        "lte.bsr_delay": config.lte.bsr_delay,
        "lte.radio_latency": config.lte.radio_latency,
        "path.core_delay": config.path.core_delay,
        "path.downlink_delay": config.path.downlink_delay,
        "video.encode_latency": config.video.encode_latency,
        "frame interval (1/fps)": 1.0 / config.video.fps,
    }
    for name, value in named.items():
        if not _ms_aligned(value):
            return f"{name}={value!r} is not on the 1 ms subframe grid"
    return None


def cell_batch_unsupported_reason(
    configs: Sequence[SessionConfig], fleet: FleetConfig
) -> Optional[str]:
    """Why this member list + fleet cannot run as one batched cell.

    The cell-homogeneity contract: every member must individually pass
    :func:`batch_unsupported_reason`, and all members must share the
    profile's grid cadences (per-member *parameters* — seeds, RSS,
    speed, rates — may vary freely, as may the per-cell fleet
    parameters across a batched block).
    """
    if not configs:
        return "a cell needs at least one member config"
    for config in configs:
        reason = batch_unsupported_reason(config)
        if reason is not None:
            return reason
    signatures = {UplinkProfile.from_config(c).signature() for c in configs}
    if len(signatures) > 1:
        return "cell members are not structurally homogeneous"
    if fleet.prb_budget < 1:
        return "fleet.prb_budget must be at least 1 PRB"
    return None


@dataclass(frozen=True)
class UplinkProfile:
    """Grid cadences + shared derived constants of the lockstep profile.

    Derived once from a :class:`SessionConfig` and used verbatim by the
    scalar reference and the batched engine, so both agree on every
    tick boundary and every shared float constant.
    """

    chan_ticks: int
    cell_ticks: int
    diag_ticks: int
    frame_ticks: int
    encode_ticks: int
    pacer_ticks: int
    bsr_depth: int
    deliver_ticks: int
    kf_frames: int
    k_consecutive: int
    tbs_window: int
    frame_interval: float
    diag_interval: float
    #: One-way-loop RTT constant the Eq. (6) hold uses (s).
    rtt: float
    #: ``hold_rtts * rtt`` — added to ``now`` on each detection.
    hold_delta: float
    #: Fallback-ramp multiplicative growth per diag batch.
    ramp_growth: float

    @staticmethod
    def from_config(config: SessionConfig) -> "UplinkProfile":
        reason = batch_unsupported_reason(config)
        if reason is not None:
            raise ValueError(f"config unsupported by the lockstep profile: {reason}")
        lte, path, video = config.lte, config.path, config.video
        frame_interval = 1.0 / video.fps
        frame_ticks = _ticks(frame_interval)
        rtt = path.core_delay + path.downlink_delay + lte.radio_latency + path.feedback_delay
        return UplinkProfile(
            chan_ticks=_ticks(lte.channel.update_interval),
            cell_ticks=_ticks(CELL_UPDATE_INTERVAL),
            diag_ticks=_ticks(lte.diag_interval),
            frame_ticks=frame_ticks,
            encode_ticks=_ticks(video.encode_latency),
            pacer_ticks=_ticks(PACING_TICK),
            bsr_depth=max(1, int(round(lte.bsr_delay / MS))),
            deliver_ticks=(
                _ticks(lte.radio_latency)
                + _ticks(path.core_delay)
                + _ticks(path.downlink_delay)
            ),
            kf_frames=max(1, int(round(video.keyframe_interval / frame_interval))),
            k_consecutive=config.fbcc.k_consecutive,
            tbs_window=config.fbcc.tbs_window_subframes,
            frame_interval=frame_interval,
            diag_interval=lte.diag_interval,
            rtt=rtt,
            hold_delta=config.fbcc.hold_rtts * rtt,
            ramp_growth=1.0 + config.gcc.eta_per_second * lte.diag_interval,
        )

    def signature(self) -> tuple:
        """Cohort-homogeneity key: sessions batched together must share
        every grid cadence (per-session *parameters* may differ)."""
        return (
            self.chan_ticks,
            self.cell_ticks,
            self.diag_ticks,
            self.frame_ticks,
            self.encode_ticks,
            self.pacer_ticks,
            self.bsr_depth,
            self.deliver_ticks,
            self.kf_frames,
            self.k_consecutive,
            self.tbs_window,
        )

    def cell_signature(self, members: int) -> tuple:
        """Cell-block homogeneity key: cells batched together must share
        every member cadence *and* the member count (per-cell fleet
        parameters — PRB budget, PF coupling, background — may
        differ)."""
        return self.signature() + (members,)


class ReceiverState:
    """Per-session viewer: jitter-adaptive playout + display accounting.

    This exact class runs in **both** engines (frame completions are
    rare — tens per second — so scalar Python here costs nothing and
    buys bit-identical jitter EWMAs, playout clamps and PSNR numbers).
    """

    __slots__ = (
        "_video",
        "_pixels",
        "_jitter",
        "_last_transit",
        "_heap",
        "_last_capture",
        "clock_offset",
        "_anchor_bpp",
        "_rd_anchor",
        "_rd_slope",
        "_psnr_floor",
        "_psnr_ceiling",
        "_playout_min",
        "_playout_max",
        "_jitter_mult",
        "_decode_latency",
        "_pending_sizes",
    )

    def __init__(self, video: VideoConfig, rng):
        self._video = video
        self._pixels = float(video.width * video.height)
        self._jitter = 0.0
        self._last_transit: Optional[float] = None
        self._heap: List[Tuple[float, float, float]] = []
        self._last_capture = -1.0
        self.clock_offset = float(rng.normal(0.0, CLOCK_OFFSET_SIGMA))
        # R-D constants hoisted out of the per-display path; the vector
        # pass in finalise() mirrors psnr_from_bpp at complexity 1.0
        # (bpp / max(1e-9, 1.0) == bpp, so the floats are identical).
        self._anchor_bpp = anchor_bpp(video)
        self._rd_anchor = float(video.rd_anchor_psnr)
        self._rd_slope = float(video.rd_db_per_octave)
        self._psnr_floor = float(video.psnr_floor)
        self._psnr_ceiling = float(video.psnr_ceiling)
        self._playout_min = float(video.playout_min)
        self._playout_max = float(video.playout_max)
        self._jitter_mult = float(video.jitter_multiplier)
        self._decode_latency = float(video.decode_latency)
        # Displayed-frame sizes staged for finalise(): the per-display
        # R-D math is deferred and vectorised there (≈120 np.log2 scalar
        # dispatches per session off the hot path).
        self._pending_sizes: List[float] = []

    def on_frame_complete(self, arrival: float, capture: float, size_bytes: float) -> None:
        """Last packet of an undamaged frame arrived at ``arrival``."""
        transit = arrival - capture
        if self._last_transit is not None:
            deviation = abs(transit - self._last_transit)
            self._jitter += (deviation - self._jitter) / 16.0
        self._last_transit = transit
        playout = min(
            self._playout_max,
            max(self._playout_min, self._jitter_mult * self._jitter),
        )
        display_time = arrival + self._decode_latency + playout
        heapq.heappush(self._heap, (display_time, capture, size_bytes))

    @property
    def next_display(self) -> float:
        """Earliest pending display instant (+inf when none pending)."""
        return self._heap[0][0] if self._heap else float("inf")

    def flush(self, now: float, log: SessionLog) -> None:
        """Display every frame whose playout deadline has passed."""
        heap = self._heap
        while heap and heap[0][0] <= now:
            display_time, capture, size_bytes = heapq.heappop(heap)
            delay = (display_time + self.clock_offset) - capture
            log.frame_delays.append(delay)
            if capture <= self._last_capture:
                continue  # superseded by a newer displayed frame
            self._last_capture = capture
            log.frames_displayed += 1
            log.display_times.append(display_time)
            self._pending_sizes.append(size_bytes)

    def reset_measurement(self) -> None:
        """Drop staged display sizes (end of a warm-up phase, paired
        with ``log.reset()``)."""
        self._pending_sizes.clear()

    def finalise(self, log: SessionLog) -> None:
        """Materialise ``roi_psnrs``/``roi_levels`` from the staged
        display sizes — one vector pass instead of one R-D evaluation
        per displayed frame.

        Bit-exact with the former inline arithmetic: scalar ``_log2``
        is the same numpy ufunc the array call dispatches to (the exact
        -equality property pinned by ``tests/test_kernels.py``), and
        ``np.minimum``/``np.maximum`` equal the scalar clamps
        elementwise.
        """
        sizes = self._pending_sizes
        self._pending_sizes = []
        if not sizes:
            return
        bpp = np.asarray(sizes, dtype=float) * BITS_PER_BYTE / self._pixels
        positive = bpp > 0.0
        safe_bpp = bpp if positive.all() else np.where(positive, bpp, 1.0)
        psnr = np.minimum(
            self._psnr_ceiling,
            np.maximum(
                self._psnr_floor,
                self._rd_anchor
                + self._rd_slope * np.log2(safe_bpp / self._anchor_bpp),
            ),
        )
        if safe_bpp is not bpp:
            psnr = np.where(positive, psnr, self._psnr_floor)
        log.roi_psnrs.extend(psnr.tolist())
        log.roi_levels.extend(
            (t, 1.0) for t in log.display_times[len(log.roi_levels) :]
        )


class _Pkt:
    """Lightweight RTP packet for the scalar reference (duck-typed for
    :class:`FirmwareBuffer`, which only reads ``size_bytes``)."""

    __slots__ = ("size_bytes", "frame_id", "last")

    def __init__(self, size_bytes: float, frame_id: int, last: bool):
        self.size_bytes = size_bytes
        self.frame_id = frame_id
        self.last = last


class _GridPacer:
    """Scalar mirror of :class:`~repro.rate_control.pacer.PacedSender`.

    Same token-bucket arithmetic, burst cap and stale-frame expiry, but
    clocked by the lockstep tick loop and emitting ``(frame_id, size,
    is_last)`` instead of full packet objects.
    """

    __slots__ = ("_payload", "_frames", "_budget", "_queued", "dropped_frames")

    def __init__(self, payload_size: int):
        self._payload = payload_size
        #: deque of ``[frame_id, remaining_bytes]``.
        self._frames: Deque[list] = deque()
        self._budget = 0.0
        self._queued = 0.0
        self.dropped_frames = 0

    def enqueue(self, frame_id: int, size_bytes: float) -> None:
        self._frames.append([frame_id, size_bytes])
        self._queued += size_bytes

    def tick(self, rate: float, emit) -> None:
        rate = max(0.0, rate)
        if rate > 0.0:
            max_bytes = rate * MAX_QUEUE_SECONDS / BITS_PER_BYTE
            while self._queued > max_bytes and len(self._frames) > 1:
                item = self._frames[1]
                del self._frames[1]
                self._queued -= item[1]
                self.dropped_frames += 1
        tick_budget = rate * PACING_TICK / BITS_PER_BYTE
        burst_cap = max(MIN_BURST_BYTES, BURST_TICKS * tick_budget)
        self._budget = min(self._budget + tick_budget, burst_cap)
        while self._frames and self._budget > 0:
            head = self._frames[0]
            size = min(self._payload, head[1])
            if size > self._budget:
                break
            self._budget -= size
            head[1] -= size
            self._queued -= size
            last = head[1] <= 0
            if last:
                self._frames.popleft()
            emit(head[0], size, last)


class UplinkSession:
    """Scalar reference engine for the uplink lockstep profile.

    One master event per 1 ms subframe on the event-driven
    :class:`Simulation`; every phase of the tick runs in a fixed order
    the batched engine replays with arrays (see the phase comments in
    :meth:`_tick`).
    """

    def __init__(self, config: SessionConfig):
        self.config = config
        self.profile = UplinkProfile.from_config(config)
        self.sim = Simulation()
        self.log = SessionLog()
        registry = RngRegistry(config.seed)
        stream = lambda name: registry.stream("batch." + name)  # noqa: E731

        profile = self.profile
        lte = config.lte
        self._channel = GridChannel(lte.channel, stream)
        self._cell = GridCellLoad(lte.cell, stream)
        self._sched = GridScheduler(lte, stream)
        self._fw = FirmwareBuffer(lte.firmware_buffer_cap)
        self._bsr: Deque[float] = deque([0.0] * profile.bsr_depth, maxlen=profile.bsr_depth)
        self._pacer = _GridPacer(config.video.rtp_payload)
        self._noise = BlockStream(
            stream("frame.noise"), lognormal_transform(config.video.size_sigma_base)
        )
        self._receiver = ReceiverState(config.video, stream("recv"))

        fbcc = config.fbcc
        self._bandwidth = TbsBandwidthEstimator(fbcc.tbs_window_subframes)
        self._detector = CongestionDetector(fbcc, report_interval=profile.diag_interval)
        self._ramp = FallbackRamp(
            config.gcc.start_rate,
            config.gcc.min_rate,
            config.gcc.max_rate,
            config.gcc.beta,
            profile.ramp_growth,
        )
        self._encoding = EncodingRateControl(
            fbcc, gcc_rate=lambda: self._ramp.rate, rtt=lambda: profile.rtt
        )
        self._rtp = RtpRateControl(
            fbcc,
            config.gcc.start_rate,
            profile.diag_interval,
            video_rate=lambda: self._encoding.rate(self._now),
        )

        #: frame_id -> [capture_s, size_bytes, damaged]
        self._frame_table: Dict[int, list] = {}
        self._next_frame_id = 0
        self._frame_index = 0
        #: (done_tick, frame_id, size_bytes) encoder pipeline FIFO.
        self._encoding_pipe: Deque[Tuple[int, int, float]] = deque()
        #: arrival_tick -> [(frame_id, size_bytes, is_last), ...]
        self._in_flight: Dict[int, List[Tuple[int, float, bool]]] = {}
        self._diag_records: List[DiagRecord] = []
        self._ramp_seen_drops = 0
        self._sec_tbs = 0.0
        self._sec_level_sum = 0.0
        self._sec_count = 0
        self._last_flush_k = 0
        self._baseline_fw_drops = 0
        self._baseline_pacer_drops = 0
        #: Cumulative post-grant drained bytes (the fleet fairness base).
        self.bytes_sent = 0.0
        self._baseline_bytes = 0.0
        #: Shared-cell membership (``GridCellMemberView``) when this
        #: session was attached to a :class:`~repro.lte.shared_cell.
        #: GridSharedCell` via :meth:`join_cell`; ``None`` runs the
        #: session's own independent cell-load model.
        self._cell_view = None
        self._k = 0
        self._now = 0.0
        self._total_ticks = 0
        self._warm_ticks = 0

    # -- packet emission (pacer -> firmware buffer) --------------------

    def _emit(self, frame_id: int, size: float, last: bool) -> None:
        if not self._fw.push(_Pkt(size, frame_id, last)):
            entry = self._frame_table[frame_id]
            if not entry[2]:
                entry[2] = True
                self.log.frames_lost += 1
            if last:
                self._frame_table.pop(frame_id, None)

    # -- the master tick ------------------------------------------------

    def _tick(self) -> None:
        profile = self.profile
        self._k = k = self._k + 1
        self._now = now = k * MS
        log = self.log

        # 1. packet arrivals scheduled deliver_ticks ago
        arrivals = self._in_flight.pop(k, None)
        if arrivals is not None:
            table = self._frame_table
            for frame_id, size, last in arrivals:
                log.arrivals.append((now, size))
                if last:
                    entry = table.pop(frame_id, None)
                    if entry is not None and not entry[2]:
                        self._receiver.on_frame_complete(now, entry[0], entry[1])

        # 2. display frames whose playout deadline passed
        if self._receiver.next_display <= now:
            self._receiver.flush(now, log)

        # 3./4. channel and cell dynamics
        if k % profile.chan_ticks == 0:
            self._channel.update(now)
        if k % profile.cell_ticks == 0:
            self._cell.update()

        # 5. diag batch delivery (before this tick's subframe record)
        if k % profile.diag_ticks == 0 and self._diag_records:
            self._deliver_diag(k, now)

        # 6. frames leaving the encoder join the pacer queue
        pipe = self._encoding_pipe
        while pipe and pipe[0][0] == k:
            _, frame_id, size_bytes = pipe.popleft()
            self._pacer.enqueue(frame_id, size_bytes)

        # 7. pacing tick
        if k % profile.pacer_ticks == 0:
            self._pacer.tick(self._rtp.rate, self._emit)

        # 8. LTE subframe: BSR, grant, drain, diag record
        fw = self._fw
        ring = self._bsr
        reported = ring[0]
        level = fw.level
        ring.append(level)
        view = self._cell_view
        load = self._cell.load if view is None else view.load
        grant = self._sched.grant_for_subframe(
            reported, level, self._channel.cqi(now), load
        )
        tbs = 0.0
        if grant > 0.0:
            completed = fw.drain(grant)
            tbs = level - fw.level
            self.bytes_sent += tbs
            if completed:
                slot = self._in_flight.setdefault(k + profile.deliver_ticks, [])
                for pkt in completed:
                    slot.append((pkt.frame_id, pkt.size_bytes, pkt.last))
            level = fw.level
        self._diag_records.append(DiagRecord(now, level, tbs))

        # 9. frame capture
        if k % profile.frame_ticks == 0:
            rate_v = self._encoding.rate(now)
            size = rate_v * profile.frame_interval * self._noise.next()
            if self._frame_index % profile.kf_frames == 0:
                size = size * self.config.video.keyframe_factor
            self._frame_index += 1
            size_bytes = size / BITS_PER_BYTE
            frame_id = self._next_frame_id
            self._next_frame_id += 1
            self._frame_table[frame_id] = [now, size_bytes, False]
            pipe.append((k + profile.encode_ticks, frame_id, size_bytes))
            log.frames_sent += 1
            log.sent_bits += size_bytes * BITS_PER_BYTE

        # 10. rate / buffer trace samples
        if k % SAMPLE_TICKS == 0:
            log.rate_trace.append((now, self._encoding.rate(now), self._rtp.rate))
            log.buffer_levels.append((now, fw.level))

        # 11. end of warm-up: drop everything measured so far
        if k == self._warm_ticks:
            log.reset()
            self._receiver.reset_measurement()
            log.start_time = now
            self._baseline_fw_drops = fw.dropped_packets
            self._baseline_pacer_drops = self._pacer.dropped_frames
            self._baseline_bytes = self.bytes_sent

        if k < self._total_ticks:
            self.sim.at((k + 1) * MS, self._tick)

    def _deliver_diag(self, k: int, now: float) -> None:
        batch = self._diag_records
        self._diag_records = []
        self._bandwidth.on_batch(batch)
        congested = self._detector.on_batch(batch)
        if congested:
            self._encoding.on_congestion(self._bandwidth.rate_bps, now)
        self._rtp.on_batch(batch, self._bandwidth.rate_bps)
        drops = self._fw.dropped_packets
        self._ramp.on_batch(
            drops - self._ramp_seen_drops, congested, self._encoding.held_rate
        )
        self._ramp_seen_drops = drops
        for record in batch:
            self._sec_tbs += record.tbs_bytes
            self._sec_level_sum += record.buffer_bytes
            self._sec_count += 1
        if k - self._last_flush_k >= 1000:
            mean_level = (
                self._sec_level_sum / self._sec_count if self._sec_count else 0.0
            )
            self.log.diag_seconds.append((self._sec_tbs * BITS_PER_BYTE, mean_level))
            self._sec_tbs = 0.0
            self._sec_level_sum = 0.0
            self._sec_count = 0
            self._last_flush_k = k

    # -- public API ------------------------------------------------------

    def join_cell(self, cell) -> None:
        """Attach this session to a :class:`~repro.lte.shared_cell.
        GridSharedCell`: its load view replaces the session's own
        cell-load model in the grant path and every PRB grant claims
        against the shared per-subframe budget (the grid counterpart of
        ``TelephonySession``'s ``cell=`` wiring)."""
        view = cell.add_member(self._cell)
        self._cell_view = view
        self._sched.attach_cell(view)

    def _finalise(self, duration: float) -> SessionResult:
        """Close the logs after the last tick (shared by :meth:`run`
        and the cell driver's external tick loop)."""
        log = self.log
        self._receiver.finalise(log)
        log.congestion_events = self._encoding.congestion_events
        log.packets_lost += self._fw.dropped_packets - self._baseline_fw_drops
        log.frames_lost += self._pacer.dropped_frames - self._baseline_pacer_drops
        summary = SessionSummary.from_log(
            log,
            scheme=self.config.scheme,
            transport=self.config.transport,
            duration=duration,
            freeze_threshold=self.config.freeze_threshold,
        )
        return SessionResult(config=self.config, summary=summary, log=log)

    def run(self, duration: Optional[float] = None, warmup: float = 0.0) -> SessionResult:
        """Run the profile and return logs + summary (reference engine)."""
        duration = duration if duration is not None else self.config.duration
        if not _ms_aligned(duration) or not _ms_aligned(warmup):
            raise ValueError("duration and warmup must be on the 1 ms grid")
        self._warm_ticks = _ticks(warmup)
        self._total_ticks = self._warm_ticks + _ticks(duration)
        if self._total_ticks > 0:
            self.sim.at(MS, self._tick)
            self.sim.run(self._total_ticks * MS)
        return self._finalise(duration)


def run_uplink_session(
    config: SessionConfig, duration: Optional[float] = None, warmup: float = 0.0
) -> SessionResult:
    """Build and run one scalar lockstep-profile session."""
    return UplinkSession(config).run(duration, warmup=warmup)


class UplinkCellSession:
    """Scalar reference engine for the *cell* lockstep profile.

    N :class:`UplinkSession` members joined onto one
    :class:`~repro.lte.shared_cell.GridSharedCell`, all clocked by a
    single external tick loop: each 1 ms tick the cell advances first
    (background crowd, share decay, PRB budget reset), then every
    member runs its full subframe in attach order, claiming grants from
    the shared budget.  This is the bit-exactness reference the batched
    :class:`repro.sim.batch_cell.BatchedCellSimulation` must reproduce
    (``tests/test_batch_cell.py``), exactly as :class:`UplinkSession`
    is the reference for :class:`repro.sim.batch.BatchedSimulation`;
    parity with the event-driven :func:`repro.telephony.fleet.run_cell`
    is statistical (same contention model, different clocking), not
    bitwise.
    """

    def __init__(
        self,
        configs: Sequence[SessionConfig],
        fleet: Optional[FleetConfig] = None,
    ):
        configs = list(configs)
        if fleet is None:
            fleet = FleetConfig(
                ues=len(configs), seed=configs[0].seed if configs else 0
            )
        reason = cell_batch_unsupported_reason(configs, fleet)
        if reason is not None:
            raise ValueError(f"cell unsupported by the lockstep profile: {reason}")
        from repro.lte.shared_cell import GridSharedCell

        self.fleet = fleet
        self.cell = GridSharedCell(fleet)
        self.members = [UplinkSession(config) for config in configs]
        for member in self.members:
            member.join_cell(self.cell)

    def run(self, duration: Optional[float] = None, warmup: float = 0.0):
        """Run the cell; returns a :class:`repro.telephony.fleet.CellResult`."""
        from repro.metrics.stats import jain_index
        from repro.telephony.fleet import CellResult
        from repro.video.quality import mos_score

        members = self.members
        duration = duration if duration is not None else members[0].config.duration
        if not _ms_aligned(duration) or not _ms_aligned(warmup):
            raise ValueError("duration and warmup must be on the 1 ms grid")
        warm_ticks = _ticks(warmup)
        total_ticks = warm_ticks + _ticks(duration)
        for member in members:
            member._warm_ticks = warm_ticks
            member._total_ticks = 0  # the cell loop clocks the ticks
        cell = self.cell
        for k in range(1, total_ticks + 1):
            cell.begin_tick(k, k * MS)
            for member in members:
                member._tick()
        results = [member._finalise(duration) for member in members]
        member_bytes = tuple(
            member.bytes_sent - member._baseline_bytes for member in members
        )
        member_mos = tuple(
            mos_score(result.summary.quality.mos_pdf) for result in results
        )
        return CellResult(
            fleet=self.fleet,
            results=results,
            jain=jain_index(member_bytes),
            member_bytes=member_bytes,
            member_mos=member_mos,
            meter=None,
        )


def run_uplink_cell(
    config: SessionConfig,
    ues: int = 4,
    fleet: Optional[FleetConfig] = None,
    duration: Optional[float] = None,
    warmup: float = 0.0,
):
    """Build and run one scalar lockstep cell of ``ues`` callers
    (the grid counterpart of :func:`repro.telephony.fleet.run_cell`)."""
    from repro.telephony.fleet import member_configs

    if fleet is None:
        fleet = FleetConfig(ues=ues, seed=config.seed)
    return UplinkCellSession(member_configs(config, ues), fleet=fleet).run(
        duration, warmup=warmup
    )
