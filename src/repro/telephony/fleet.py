"""N POI360 callers sharing one LTE cell (docs/FLEET.md).

``run_cell`` is the fleet counterpart of
:func:`repro.telephony.session.run_session`: it wires N full telephony
stacks — each with its own firmware buffer, channel, FBCC/GCC transport,
sender and viewer — onto **one** simulation clock and **one**
:class:`repro.lte.shared_cell.SharedCell`, so the callers' uplinks
contend for the same proportional-fair grants and PRB budget.

Every member keeps its own :class:`repro.sim.rng.RngRegistry` seeded
from its own config, so a member's random streams are independent of
how many neighbours it has; all coupling flows through the shared
cell's load/budget, which keeps the whole construction deterministic
and makes the 1-UE cell reproduce the solo session bit-exactly
(``tests/test_fleet.py``).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.config import FleetConfig, SessionConfig
from repro.lte.shared_cell import SharedCell
from repro.metrics.stats import jain_index
from repro.obs.bus import NULL_BUS, TraceBus
from repro.obs.meter import SessionMeter, coerce_meter
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry
from repro.telephony.session import SessionResult, TelephonySession
from repro.video.quality import mos_score

#: Seed stride between members of one cell — mirrors the per-user
#: stride of ``repro.experiments.runner`` so fleet members look like
#: distinct users of the same condition.
MEMBER_SEED_STRIDE = 1000


def member_configs(base: SessionConfig, ues: int) -> Tuple[SessionConfig, ...]:
    """N member configs from one base: member ``i`` gets seed
    ``base.seed + 1000*i`` (member 0 keeps the base seed, so a 1-UE
    cell is seed-identical to the solo session)."""
    if ues < 1:
        raise ValueError("a cell needs at least one member")
    return tuple(
        dataclasses.replace(base, seed=base.seed + MEMBER_SEED_STRIDE * index)
        for index in range(ues)
    )


@dataclass
class CellResult:
    """Everything one shared-cell run produced.

    ``results`` has one :class:`SessionResult` per member, in attach
    order; ``member_bytes`` are each member's post-warmup uplink grant
    bytes (the allocations Jain fairness is computed over) and
    ``member_mos`` the per-member expected MOS (Table 1 bands scored
    1-5).  ``meter`` is the cell's merged registry — cell-level
    ``fleet.*``/``sim.*`` metrics plus every member's meter folded in —
    when metering was enabled, else ``None``.
    """

    fleet: FleetConfig
    results: List[SessionResult]
    jain: float
    member_bytes: Tuple[float, ...]
    member_mos: Tuple[float, ...]
    meter: Optional[SessionMeter] = None

    @property
    def mean_mos(self) -> float:
        """Mean expected MOS across members (NaN members excluded)."""
        scores = [m for m in self.member_mos if not math.isnan(m)]
        if not scores:
            return float("nan")
        return sum(scores) / len(scores)


class CellSession:
    """One shared cell's worth of telephony sessions, run in lockstep.

    ``configs`` are the member session configs (see
    :func:`member_configs`); ``profiles`` optionally applies one
    :class:`repro.roi.users.UserProfile` per member.  ``fleet``
    parameterises the shared cell itself — PRB budget, PF coupling and
    the scheduled background population.
    """

    def __init__(
        self,
        configs: Sequence[SessionConfig],
        profiles: Optional[Sequence] = None,
        fleet: Optional[FleetConfig] = None,
        trace=False,
        meter=False,
    ):
        if not configs:
            raise ValueError("a cell needs at least one member config")
        if profiles is not None and len(profiles) != len(configs):
            raise ValueError("profiles must match configs one-to-one")
        fleet = fleet if fleet is not None else FleetConfig(ues=len(configs))
        self.fleet = fleet
        self.sim = Simulation()
        if trace is True:
            trace = TraceBus()
        elif not trace:
            trace = NULL_BUS
        if trace:
            trace.bind_clock(lambda: self.sim._now)
        self.trace = trace
        self.sim.trace = trace
        # The cell-level meter owns the shared event loop's ``sim.*``
        # counters and the ``fleet.*`` metrics; each member session gets
        # a private meter so per-UE totals stay separable (the CI smoke
        # asserts merged == cell + sum of members).
        meter = coerce_meter(meter)
        self.meter = meter
        self.sim.meter = meter
        background_rng = None
        if fleet.background_ues > 0:
            background_rng = RngRegistry(fleet.seed).stream("fleet.background")
        self.cell = SharedCell(self.sim, fleet, background_rng)
        self.sessions: List[TelephonySession] = []
        for index, config in enumerate(configs):
            self.sessions.append(
                TelephonySession(
                    config,
                    profile=profiles[index] if profiles is not None else None,
                    trace=trace,
                    meter=SessionMeter() if meter else False,
                    sim=self.sim,
                    cell=self.cell,
                )
            )

    def run(self, duration: Optional[float] = None, warmup: float = 0.0) -> CellResult:
        """Run every member through one shared clock; aggregate the cell.

        The member sessions' run phases are interleaved: all starts are
        emitted, the shared simulation advances through the warm-up
        once, every member's log resets, the measured window runs once,
        and each member is finished independently.
        """
        duration = (
            duration if duration is not None else self.sessions[0].config.duration
        )
        meter = self.meter
        t0 = meter.span_start() if meter else 0.0
        starts = []
        for session in self.sessions:
            starts.append(session.meter.span_start() if session.meter else 0.0)
            session._emit_start()
        if warmup > 0.0:
            self.sim.run(warmup)
            for session in self.sessions:
                session._end_warmup()
        baseline = [session.forward.ue.bytes_sent for session in self.sessions]
        self.sim.run(duration)
        results = [
            session._finish(duration, starts[index])
            for index, session in enumerate(self.sessions)
        ]
        member_bytes = tuple(
            session.forward.ue.bytes_sent - baseline[index]
            for index, session in enumerate(self.sessions)
        )
        jain = jain_index(member_bytes)
        member_mos = tuple(
            mos_score(result.summary.quality.mos_pdf) for result in results
        )
        if meter:
            meter.inc("fleet.cells")
            meter.observe("fleet.cell_members", float(len(self.sessions)))
            meter.observe("fleet.cell_jain", jain)
            for result, mos in zip(results, member_mos):
                if not math.isnan(mos):
                    meter.observe("fleet.member_mos", mos)
                rate = result.summary.throughput.mean / 1e6
                if not math.isnan(rate):
                    meter.observe("fleet.member_rate_mbps", rate)
            for result in results:
                if result.meter is not None:
                    meter.merge(result.meter)
            meter.span_end("fleet.cell_run", t0)
        return CellResult(
            fleet=self.fleet,
            results=results,
            jain=jain,
            member_bytes=member_bytes,
            member_mos=member_mos,
            meter=meter if meter else None,
        )


def run_cell(
    config: SessionConfig,
    ues: int = 4,
    fleet: Optional[FleetConfig] = None,
    profiles: Optional[Sequence] = None,
    duration: Optional[float] = None,
    warmup: float = 0.0,
    trace=False,
    meter=False,
) -> CellResult:
    """Build and run one shared cell of ``ues`` identical-condition callers.

    Member ``i`` runs ``config`` with seed ``config.seed + 1000*i``; the
    cell itself (PRB budget, PF coupling, scheduled background) comes
    from ``fleet``, defaulting to :class:`repro.config.FleetConfig` with
    ``ues`` members and no background.
    """
    fleet = fleet if fleet is not None else FleetConfig(ues=ues, seed=config.seed)
    return CellSession(
        member_configs(config, ues), profiles=profiles, fleet=fleet,
        trace=trace, meter=meter,
    ).run(duration, warmup=warmup)
