"""POI360 viewer/client (right half of Fig. 7).

Assembles frames from RTP packets (with NACK-based recovery), unfolds
them with the embedded compression matrix, renders the FoV region,
measures the §5 metrics — timestamp-decoded frame delay, ROI-region
PSNR (sender frame vs displayed ROI crop), displayed compression level
— runs the Eq. (2) mismatch estimator, and feeds ROI + M back to the
sender every frame interval over the data channel.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.compression.mismatch import MismatchEstimator
from repro.config import SessionConfig
from repro.metrics.summary import SessionLog
from repro.net.packet import Packet
from repro.net.path import ReversePath
from repro.obs.bus import NULL_BUS
from repro.obs.meter import NULL_METER
from repro.rate_control.gcc.controller import GccReceiver
from repro.roi.viewport import Viewport
from repro.sim.engine import Simulation
from repro.telephony.timestamping import decode_timestamp
from repro.video.content import ContentModel
from repro.video.frame import EncodedFrame, TileGrid
from repro.video.quality import (
    displayed_tile_psnr_array,
    mse_from_psnr_array,
    psnr_from_mse,
)


def roi_region_psnr(
    i: np.ndarray,
    j: np.ndarray,
    matrix: np.ndarray,
    bpp: float,
    capture_time: float,
    config,
    content: ContentModel,
    weights: Optional[np.ndarray],
) -> float:
    """MSE-domain PSNR over the ROI measurement crop — the §5 metric.

    ``(i, j)`` are the absolute tile coordinates of the crop (x already
    wrapped, y already clipped).  One array pass replaces the per-tile
    scalar loop: complexity gather, R-D kernel, and the (optionally
    solid-angle-weighted) MSE average all run on whole tile arrays.
    Exposed as a free function so the ``roi_quality`` microbenchmark
    times exactly what the receiver runs per displayed frame.
    """
    levels = matrix[i, j]
    complexity = content.complexity_tiles(i, j, capture_time)
    tile_mse = mse_from_psnr_array(
        displayed_tile_psnr_array(bpp, levels, config, complexity)
    )
    if weights is None:
        total_mse = float(tile_mse.sum())
        total_weight = float(len(tile_mse))
    else:
        w = weights[i, j]
        total_mse = float((w * tile_mse).sum())
        total_weight = float(w.sum())
    return psnr_from_mse(total_mse / max(1e-12, total_weight))

#: NACK retry cadence / limit and frame-abandon horizon.  Recovery is
#: deliberately short-fused: an interactive frame more than ~a second
#: late is superseded anyway, and retransmission storms during an uplink
#: dip only deepen the congestion.
NACK_RETRY_INTERVAL = 0.3
NACK_MAX_RETRIES = 2
NACK_GIVE_UP_AGE = 0.8
FRAME_ABANDON_AFTER = 1.2

#: Size of a data-channel feedback message (bytes on the wire).
FEEDBACK_BYTES = 80.0


@dataclass
class _Assembly:
    frame: EncodedFrame
    total: int
    got: Set[int] = field(default_factory=set)
    first_arrival: float = 0.0
    done: bool = False


@dataclass
class _MissingSeq:
    detected: float
    last_request: float
    retries: int = 0


class PanoramicReceiver:
    """Frame assembly, rendering metrics, ROI/M feedback."""

    def __init__(
        self,
        sim: Simulation,
        config: SessionConfig,
        grid: TileGrid,
        content: ContentModel,
        viewport: Viewport,
        reverse: ReversePath,
        gcc_receiver: GccReceiver,
        log: SessionLog,
        rng: np.random.Generator,
        trace=NULL_BUS,
        meter=NULL_METER,
    ):
        self._sim = sim
        self._trace = trace
        self._meter = meter
        self._config = config
        self._grid = grid
        self._content = content
        self._viewport = viewport
        self._reverse = reverse
        self._gcc = gcc_receiver
        self._log = log
        self._rng = rng
        self._mismatch = MismatchEstimator(
            config.compression.mismatch_window, l_min=config.compression.l_min
        )
        if config.video.solid_angle_weighting:
            from repro.video.projection import solid_angle_weights

            self._tile_weights = solid_angle_weights(grid)
        else:
            self._tile_weights = None
        if config.viewer.roi_prediction_horizon > 0.0:
            from repro.roi.prediction import MotionPredictor

            self._predictor = MotionPredictor()
        else:
            self._predictor = None
        if config.fec.enabled:
            from repro.rate_control.fec import FecDecoder

            self._fec = FecDecoder()
        else:
            self._fec = None
        self._assemblies: Dict[int, _Assembly] = {}
        self._expected_seq = 0
        self._missing: Dict[int, _MissingSeq] = {}
        self._last_displayed_capture = float("-inf")
        #: Recent frame delays; d_v of Eq. (2) is their median, which is
        #: robust to startup transients and isolated stragglers.
        self._recent_delays: Deque[float] = deque(maxlen=15)
        #: RTP-style interarrival jitter estimate driving the adaptive
        #: playout buffer (J += (|D| - J) / 16).
        self._jitter = 0.0
        self._last_complete: Optional[float] = None
        self._last_complete_capture = 0.0
        #: NTP sync error between the endpoints (§5).
        self._clock_offset = float(rng.normal(0.0, 0.003))
        #: Precomputed (dx, dy) offset arrays of the ROI measurement
        #: crop, in the canonical dx-major order of the §5 dump.
        half = config.video.roi_measure_halfwidth
        span = np.arange(-half, half + 1)
        self._roi_dx = np.repeat(span, len(span))
        self._roi_dy = np.tile(span, len(span))
        interval = config.frame_interval()
        sim.every(interval, self._send_roi_feedback)
        sim.every(NACK_RETRY_INTERVAL, self._service_recovery)

    # ------------------------------------------------------------------
    # Media path
    # ------------------------------------------------------------------

    def on_media_packet(self, packet: Packet) -> None:
        """Entry point for packets arriving from the forward path."""
        now = self._sim.now
        self._log.arrivals.append((now, packet.size_bytes))
        self._gcc.on_media_packet(packet)
        if packet.payload.get("fec"):
            if self._fec is not None:
                for recovered in self._fec.on_parity(packet):
                    self._accept_media(recovered, now)
            return
        self._accept_media(packet, now)
        if self._fec is not None:
            for recovered in self._fec.on_media(packet):
                self._accept_media(recovered, now)

    def _accept_media(self, packet: Packet, now: float) -> None:
        self._track_sequence(packet)
        self._assemble(packet, now)

    def _track_sequence(self, packet: Packet) -> None:
        seq = packet.payload.get("seq")
        if seq is None:
            return
        if packet.payload.get("rtx"):
            self._missing.pop(seq, None)
            return
        if seq >= self._expected_seq:
            gap = range(self._expected_seq, seq)
            if gap:
                now = self._sim.now
                for missing in gap:
                    self._missing[missing] = _MissingSeq(now, now)
                self._send_nack(list(gap))
            self._expected_seq = seq + 1
        else:
            self._missing.pop(seq, None)

    def _assemble(self, packet: Packet, now: float) -> None:
        frame: EncodedFrame = packet.payload["frame"]
        assembly = self._assemblies.get(frame.frame_id)
        if assembly is None:
            assembly = _Assembly(
                frame=frame, total=packet.payload["frame_packets"], first_arrival=now
            )
            self._assemblies[frame.frame_id] = assembly
        if assembly.done:
            return
        assembly.got.add(packet.payload["frame_seq"])
        if len(assembly.got) >= assembly.total:
            assembly.done = True
            self._update_jitter(frame, now)
            render_latency = self._config.video.decode_latency + self.playout_delay
            self._sim.schedule(render_latency, self._display, frame)

    def _update_jitter(self, frame: EncodedFrame, now: float) -> None:
        if self._last_complete is not None:
            transit_delta = (now - self._last_complete) - (
                frame.capture_time - self._last_complete_capture
            )
            self._jitter += (abs(transit_delta) - self._jitter) / 16.0
        self._last_complete = now
        self._last_complete_capture = frame.capture_time

    @property
    def frame_delay_estimate(self) -> float:
        """d_v of Eq. (2): median of recent one-way frame delays."""
        if not self._recent_delays:
            return 0.1
        ordered = sorted(self._recent_delays)
        return ordered[len(ordered) // 2]

    @property
    def playout_delay(self) -> float:
        """Current adaptive de-jitter buffering delay."""
        video = self._config.video
        return min(
            video.playout_max,
            max(video.playout_min, video.jitter_multiplier * self._jitter),
        )

    # ------------------------------------------------------------------
    # Rendering & measurement
    # ------------------------------------------------------------------

    def _display(self, frame: EncodedFrame) -> None:
        meter = self._meter
        t0 = meter.span_start() if meter else 0.0
        now = self._sim.now
        sent_time = decode_timestamp(frame.timestamp_blocks, self._rng)
        delay = (now + self._clock_offset) - sent_time
        self._log.frame_delays.append(delay)
        self._assemblies.pop(frame.frame_id, None)
        if frame.capture_time <= self._last_displayed_capture:
            return  # superseded by a newer frame already on screen
        self._last_displayed_capture = frame.capture_time
        self._recent_delays.append(min(2.0, max(0.0, delay)))

        roi_i, roi_j = self._roi_region_tiles()
        displayed_level = float(frame.matrix[roi_i, roi_j].mean())
        mismatch = self._mismatch.observe_frame(
            displayed_level,
            self.frame_delay_estimate,
            now,
            converged_level=self._converged_region_level(frame),
        )
        roi_psnr = roi_region_psnr(
            roi_i,
            roi_j,
            frame.matrix,
            frame.bpp,
            frame.capture_time,
            self._config.video,
            self._content,
            self._tile_weights,
        )
        self._log.mismatches.append(mismatch)
        self._log.roi_levels.append((now, displayed_level))
        self._log.roi_psnrs.append(roi_psnr)
        self._log.display_times.append(now)
        self._log.frames_displayed += 1
        if self._trace:
            self._trace.emit(
                "receiver.frame",
                delay_s=delay,
                psnr_db=roi_psnr,
                roi_level=displayed_level,
                mismatch_s=mismatch,
            )
            if delay > self._config.freeze_threshold:
                self._trace.emit("receiver.freeze", delay_s=delay)
        if meter:
            meter.inc("receiver.frames")
            meter.observe("receiver.delay_s", delay)
            meter.observe("receiver.psnr_db", roi_psnr)
            meter.observe("receiver.mismatch_s", mismatch)
            if delay > self._config.freeze_threshold:
                meter.inc("receiver.freezes")
            meter.span_end("receiver.display", t0)

    def _region_tiles(self, center: Tuple[int, int]):
        """Absolute (i, j) index arrays of the measurement crop around
        ``center`` — x wrapped, off-grid y rows clipped away."""
        i_star, j_star = center
        j = j_star + self._roi_dy
        valid = (j >= 0) & (j < self._grid.tiles_y)
        i = (i_star + self._roi_dx[valid]) % self._grid.tiles_x
        return i, j[valid]

    def _roi_region_tiles(self):
        return self._region_tiles(self._viewport.roi_center)

    def _roi_region_level(self, frame: EncodedFrame) -> float:
        """Mean compression level displayed in the ROI region (Fig. 12)."""
        i, j = self._roi_region_tiles()
        return float(frame.matrix[i, j].mean())

    def _converged_region_level(self, frame: EncodedFrame) -> float:
        """Region level the frame's own mode gives at a *fresh* ROI.

        By symmetry this is the region level around the matrix's own
        centre (the sender embeds mode + ROI knowledge in each frame,
        so the client can evaluate it, §5).
        """
        i, j = self._region_tiles(frame.sender_roi)
        return float(frame.matrix[i, j].mean())

    # ------------------------------------------------------------------
    # Feedback path
    # ------------------------------------------------------------------

    def _feedback(self, message: Dict) -> None:
        packet = Packet(
            kind="feedback",
            size_bytes=FEEDBACK_BYTES,
            created=self._sim.now,
            payload={"message": message},
        )
        self._reverse.send(packet)

    def send_transport_feedback(self, message: Dict) -> None:
        """Used by the GCC receiver to emit REMB / receiver reports."""
        self._feedback(message)

    def _send_roi_feedback(self) -> None:
        roi = self._viewport.roi_center
        self._mismatch.observe_roi(roi, self._sim.now)
        reported = roi
        if self._predictor is not None:
            reported = self._predicted_roi(fallback=roi)
        self._feedback(
            {"type": "roi", "roi": reported, "mismatch": self._mismatch.average()}
        )

    def _predicted_roi(self, fallback):
        """§8 extension: report where the gaze will be, not where it is."""
        yaw, pitch = self._viewport.pose
        # Unwrap yaw against the previous sample so velocity estimation
        # survives the 360° seam.
        if self._predictor._poses:
            last_yaw = self._predictor._poses[-1][1]
            while yaw - last_yaw > 180.0:
                yaw -= 360.0
            while yaw - last_yaw < -180.0:
                yaw += 360.0
        self._predictor.observe(self._sim.now, yaw, pitch)
        predicted = self._predictor.predict(
            self._config.viewer.roi_prediction_horizon
        )
        if predicted is None:
            return fallback
        return self._grid.tile_of_angles(predicted[0], predicted[1])

    def _send_nack(self, seqs: List[int]) -> None:
        if self._trace:
            self._trace.emit("receiver.nack", count=len(seqs))
        if self._meter:
            self._meter.inc("receiver.nacks", len(seqs))
        self._feedback({"type": "nack", "seqs": seqs})

    def _service_recovery(self) -> None:
        now = self._sim.now
        retry: List[int] = []
        for seq, state in list(self._missing.items()):
            expired = (
                state.retries >= NACK_MAX_RETRIES
                or now - state.detected > NACK_GIVE_UP_AGE
            )
            if expired:
                self._missing.pop(seq)
                self._log.packets_lost += 1
                continue
            if now - state.last_request >= NACK_RETRY_INTERVAL:
                state.retries += 1
                state.last_request = now
                retry.append(seq)
        if retry:
            self._send_nack(retry)
        for frame_id, assembly in list(self._assemblies.items()):
            if not assembly.done and now - assembly.first_arrival > FRAME_ABANDON_AFTER:
                self._assemblies.pop(frame_id)
                self._log.frames_lost += 1

    @property
    def mismatch_average(self) -> float:
        """Current sliding-window M (exposed for tests)."""
        return self._mismatch.average()
