"""Full POI360 telephony system: sender, receiver, session wiring."""

from repro.telephony.receiver import PanoramicReceiver
from repro.telephony.sender import PanoramicSender
from repro.telephony.session import SessionResult, TelephonySession, run_session
from repro.telephony.timestamping import decode_timestamp, encode_timestamp

__all__ = [
    "PanoramicReceiver",
    "PanoramicSender",
    "SessionResult",
    "TelephonySession",
    "run_session",
    "encode_timestamp",
    "decode_timestamp",
]
