"""FBCC pieces for the lockstep engines (:mod:`repro.sim.batch`).

Two kinds of code live here:

- :class:`FallbackRamp` — the *shared scalar* rate controller that
  stands in for GCC in the lockstep uplink profile.  The full GCC
  trendline estimator is event-driven and receiver-clocked; the profile
  replaces it with a deliberately simple AIMD ramp driven by the same
  40 ms diag batches FBCC already consumes, so both engines see one
  rate-control code path per session.
- ``*Array`` mirrors of the per-batch FBCC state machines
  (:class:`~repro.rate_control.fbcc.detector.CongestionDetector`,
  :class:`~repro.rate_control.fbcc.bandwidth.TbsBandwidthEstimator`,
  :class:`~repro.rate_control.fbcc.encoding.EncodingRateControl`,
  :class:`~repro.rate_control.fbcc.rtp.RtpRateControl`).  Each mirror
  performs the **same float64 operations in the same order** as the
  scalar class it twins, so a cohort-of-1 batched run is bit-identical
  to the scalar reference (see tests/test_batch.py).
"""

from __future__ import annotations

import numpy as np

from repro.rate_control.fbcc.detector import (
    GAMMA_CAP,
    HARD_OVERUSE_LEVEL,
    HOT_REPORTS,
    HOT_RUN,
    INCREASE_FRACTION,
    LEVEL_EPSILON,
    MIN_NET_GROWTH,
)
from repro.rate_control.fbcc.rtp import RtpRateControl
from repro.units import BITS_PER_BYTE


class FallbackRamp:
    """Diag-clocked AIMD fallback rate for the lockstep uplink profile.

    Per 40 ms diag batch: a modem packet drop multiplies the rate by
    ``beta``; a congestion detection clamps it under the Eq. (6) held
    PHY rate; an uneventful batch grows it multiplicatively.  Both
    lockstep engines use these exact update rules (the batched engine
    mirrors them with masked array ops in the same order).
    """

    __slots__ = ("rate", "_min", "_max", "_beta", "_growth")

    def __init__(
        self,
        start_rate: float,
        min_rate: float,
        max_rate: float,
        beta: float,
        growth: float,
    ):
        self.rate = start_rate
        self._min = min_rate
        self._max = max_rate
        self._beta = beta
        self._growth = growth

    def on_batch(self, drops_delta: int, congested: bool, held_rate: float) -> None:
        if drops_delta > 0:
            self.rate = max(self._min, self.rate * self._beta)
        if congested:
            self.rate = max(self._min, min(self.rate, held_rate))
        elif drops_delta == 0:
            self.rate = min(self._max, self.rate * self._growth)


class RampArray:
    """``(n_sessions,)`` vectorised twin of :class:`FallbackRamp`."""

    def __init__(self, start, min_rate, max_rate, beta, growth):
        self.rate = start.copy()
        self._min = min_rate
        self._max = max_rate
        self._beta = beta
        self._growth = growth

    def on_batch(
        self, drops_delta: np.ndarray, congested: np.ndarray, held: np.ndarray
    ) -> None:
        rate = self.rate
        dropped = drops_delta > 0
        if dropped.any():
            rate[dropped] = np.maximum(self._min, rate * self._beta)[dropped]
        if congested.any():
            rate[congested] = np.maximum(self._min, np.minimum(rate, held))[congested]
        grow = ~congested & (drops_delta == 0)
        if grow.any():
            rate[grow] = np.minimum(self._max, rate * self._growth)[grow]


class DetectorArray:
    """Vectorised twin of :class:`CongestionDetector`.

    The level history is kept right-aligned in a ``(n, K+1)`` window —
    every report shifts left and writes column ``-1`` — so the Eq. (3)
    run check always reads the trailing columns and a post-detection
    "clear to one entry" is just ``hlen = 1``.  ``K`` (and the diag
    cadence driving ``alpha``'s numerator) must be cohort-homogeneous;
    ``gamma_time_constant`` may vary per session.
    """

    def __init__(self, n: int, k_consecutive: int, alphas: np.ndarray):
        self._k = k_consecutive
        self._alpha = alphas
        self._hist = np.zeros((n, k_consecutive + 1))
        self._hlen = np.zeros(n, dtype=np.int64)
        self._gamma = np.zeros(n)
        self._initialised = False
        self._hot_left = np.zeros(n, dtype=np.int64)
        self.detections = np.zeros(n, dtype=np.int64)

    def on_report_level(self, level: np.ndarray) -> np.ndarray:
        if not self._initialised:
            self._gamma = level.copy()
            self._initialised = True
        else:
            self._gamma = self._gamma + self._alpha * (level - self._gamma)
        hist = self._hist
        hist[:, :-1] = hist[:, 1:]
        hist[:, -1] = level
        self._hlen = np.minimum(self._hlen + 1, self._k + 1)
        self._hot_left = np.maximum(0, self._hot_left - 1)
        gamma_capped = np.minimum(GAMMA_CAP, self._gamma)
        fired = (level > HARD_OVERUSE_LEVEL) & (level > gamma_capped)
        run_needed = np.where(self._hot_left > 0, HOT_RUN, self._k)
        eligible = (
            ~fired & (self._hlen > run_needed) & (level > gamma_capped)
        )
        if eligible.any():
            deltas = hist[:, 1:] - hist[:, :-1]
            for run in (HOT_RUN, self._k):
                check = eligible & (run_needed == run)
                if not check.any():
                    continue
                increases = (deltas[:, -run:] > LEVEL_EPSILON).sum(axis=1)
                net_growth = hist[:, -1] - hist[:, -(run + 1)]
                min_growth = MIN_NET_GROWTH * run / self._k
                cond = (increases >= INCREASE_FRACTION * run) & (
                    net_growth > min_growth
                )
                fired = fired | (check & cond)
        if fired.any():
            self.detections[fired] += 1
            self._hot_left[fired] = HOT_REPORTS
            self._hlen[fired] = 1
        return fired


class TbsWindowArray:
    """Vectorised twin of :class:`TbsBandwidthEstimator`.

    Fed one record per subframe (the lockstep engines deliver records
    as they happen; the scalar estimator replays the same chronological
    sequence at batch time, so the running sums are float-identical).
    """

    def __init__(self, n: int, window: int):
        self._window = window
        self._ring = np.zeros((n, window))
        self._sum = np.zeros(n)
        self._len = 0
        self._pos = 0

    def on_record(self, tbs: np.ndarray) -> None:
        if self._len == self._window:
            pos = self._pos
            self._sum -= self._ring[:, pos]
            self._ring[:, pos] = tbs
            self._sum += tbs
            self._pos = pos + 1 if pos + 1 < self._window else 0
        else:
            self._ring[:, self._len] = tbs
            self._sum += tbs
            self._len += 1

    def rate_bps(self) -> np.ndarray:
        if self._len == 0:
            return np.zeros_like(self._sum)
        return self._sum * BITS_PER_BYTE / (self._len * 1e-3)


class EncodingHoldArray:
    """Vectorised twin of :class:`EncodingRateControl` (Eq. 6)."""

    def __init__(self, n: int, margins: np.ndarray, hold_deltas: np.ndarray):
        self._margin = margins
        self._hold_delta = hold_deltas
        self.held = np.zeros(n)
        self._hold_until = np.full(n, float("-inf"))
        self.congestion_events = np.zeros(n, dtype=np.int64)

    def on_congestion(self, idx: np.ndarray, phy_rates: np.ndarray, now: float) -> None:
        self.held[idx] = phy_rates * self._margin[idx]
        self._hold_until[idx] = now + self._hold_delta[idx]
        self.congestion_events[idx] += 1

    def rate(self, now: float, fallback: np.ndarray) -> np.ndarray:
        return np.where(now <= self._hold_until, self.held, fallback)


class RtpRateArray:
    """Vectorised twin of :class:`RtpRateControl` (Eq. 7).

    Only the fixed-``target_buffer`` mode is supported — the online
    sweet-spot learner is history-dependent in a way the batched engine
    does not replicate (``batch_unsupported_reason`` gates on it).
    """

    def __init__(
        self,
        initial: np.ndarray,
        targets: np.ndarray,
        interval: float,
        min_rates: np.ndarray,
        max_rates: np.ndarray,
    ):
        self.rate = initial.copy()
        self._target = targets
        self._interval = interval
        self._min = min_rates
        self._max = max_rates

    def on_batch(self, last_level: np.ndarray, video_rate: np.ndarray) -> None:
        correction = (self._target - last_level) / self._interval * BITS_PER_BYTE
        self.rate = self.rate + correction
        floor = np.maximum(self._min, RtpRateControl.VIDEO_RATE_FLOOR * video_rate)
        self.rate = np.minimum(self._max, np.maximum(floor, self.rate))
