"""Uplink congestion detector — Eq. (3) of §4.3.1.

Congestion is declared when the firmware-buffer level (i) increases for
K consecutive reports and (ii) exceeds its long-term average Γ (an
online EWMA).  Δt in Eq. (3) is the *report interval* of the buffer
occupancy from the chipset — 40 ms on the paper's test device (§4.3.2)
— so K = 10 means roughly 400 ms of sustained growth: long enough to
ride out the radio scheduler's burst-and-idle service pattern, and
still several times faster than an end-to-end RTT-based detection over
a bufferbloated cellular path.

Each report is summarised by the mean level over its per-subframe
records, which is robust to where inside the 40 ms window a paced frame
burst lands.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional

from repro.config import FbccConfig
from repro.lte.diagnostics import DiagRecord

#: Level changes smaller than this (bytes) count as "not increasing".
LEVEL_EPSILON = 64.0

#: Fraction of the K inter-report deltas that must be increases: the
#: radio scheduler's bursty service makes a few non-monotone reports
#: inevitable even during steady overload.
INCREASE_FRACTION = 0.7

#: Net growth across the K-report window must exceed this many bytes
#: (a couple of MTUs) to count as sustained overload.
MIN_NET_GROWTH = 3000.0

#: Γ is capped near the scheduling knee: a long spell in the overuse
#: region must not teach the detector that congestion is normal.
GAMMA_CAP = 16 * 1024.0

#: A buffer level this far past the knee is congestion by itself — no
#: need to wait for a full K-report growth run.
HARD_OVERUSE_LEVEL = 28 * 1024.0

#: After a detection the detector stays "hot" for this many reports
#: (~3 s): renewed growth re-triggers after only HOT_RUN reports, so a
#: persistent fade is tracked with short rate-spike gaps instead of a
#: full K-report blind window (the Eq. (6) hold expires into a still-
#: congested uplink otherwise).
HOT_REPORTS = 75
HOT_RUN = 3


class CongestionDetector:
    """Stateful Eq. (3) evaluation over 40 ms diag reports."""

    def __init__(self, config: FbccConfig, report_interval: float = 0.040):
        self._config = config
        self._levels: Deque[float] = deque(maxlen=config.k_consecutive + 1)
        self._gamma: Optional[float] = None
        self._alpha = report_interval / config.gamma_time_constant
        self._hot_left = 0
        self.detections = 0

    @property
    def gamma(self) -> float:
        """Long-term average buffer level Γ (bytes, capped at the knee)."""
        if self._gamma is None:
            return 0.0
        return min(GAMMA_CAP, self._gamma)

    def on_report_level(self, level: float) -> bool:
        """Feed one report's buffer level; True when Eq. (3) fires."""
        if self._gamma is None:
            self._gamma = level
        else:
            self._gamma += self._alpha * (level - self._gamma)
        self._levels.append(level)
        self._hot_left = max(0, self._hot_left - 1)
        if level > HARD_OVERUSE_LEVEL and level > self.gamma:
            return self._fire(level)
        run_needed = HOT_RUN if self._hot_left > 0 else self._config.k_consecutive
        if len(self._levels) <= run_needed:
            return False
        if level <= self.gamma:
            return False
        window = list(self._levels)[-(run_needed + 1):]
        deltas = [later - earlier for earlier, later in zip(window, window[1:])]
        increases = sum(1 for d in deltas if d > LEVEL_EPSILON)
        net_growth = window[-1] - window[0]
        min_growth = MIN_NET_GROWTH * run_needed / self._config.k_consecutive
        if increases >= INCREASE_FRACTION * len(deltas) and net_growth > min_growth:
            return self._fire(level)
        return False

    def _fire(self, level: float) -> bool:
        self.detections += 1
        self._hot_left = HOT_REPORTS
        # Require a fresh growth run before firing again.
        self._levels.clear()
        self._levels.append(level)
        return True

    def on_batch(self, batch: Iterable[DiagRecord]) -> bool:
        """Feed one 40 ms diag batch (mean of its per-subframe levels)."""
        records = list(batch)
        if not records:
            return False
        mean_level = sum(r.buffer_bytes for r in records) / len(records)
        return self.on_report_level(mean_level)
