"""Cellular-link-informed RTP rate control — Eq. (7) of §4.3.2.

Because the LTE proportional-fair scheduler serves a UE faster when its
firmware buffer is fuller (Fig. 5), leaving the buffer empty wastes
grantable bandwidth (Fig. 6).  FBCC therefore steers the RTP sending
rate so the buffer sits at a "sweet spot" B*: every diag interval Dp,

    R_rtp(t) = R_rtp(t - Dp) + (B* - B(t)) / Dp          (Eq. 7)

(the correction term is bytes/s and is converted to bps).  We apply the
update symmetrically — above B* the same formula *reduces* the rate —
but never below a floor proportional to the current video encoding
bitrate: pacing slower than the encoder would merely relocate the
overload into the application-layer queue where neither the modem's
diag reports nor the Eq. (3) detector can see it (the queuing-location
argument the paper makes at the end of §4.3.1, applied in reverse).

``SweetSpotLearner`` implements the paper's remark that B* "can be
learnt from previous transmissions": it bins (buffer level → observed
TBS rate) and places B* just past the smallest level that achieves the
plateau throughput.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import FbccConfig
from repro.lte.diagnostics import DiagRecord
from repro.units import BITS_PER_BYTE


class SweetSpotLearner:
    """Online (buffer level → throughput) profile and B* placement."""

    #: Bin width for buffer levels (bytes).
    BIN_BYTES = 1024.0
    #: Number of bins tracked (covers 0..64 KB).
    NUM_BINS = 64
    #: A level "achieves the plateau" at this fraction of the max rate.
    PLATEAU_FRACTION = 0.90
    #: Safety factor past the knee.
    MARGIN = 1.2
    #: EWMA weight for per-bin rate updates.
    ALPHA = 0.05

    def __init__(self) -> None:
        self._rates: List[Optional[float]] = [None] * self.NUM_BINS

    def observe(self, buffer_bytes: float, tbs_rate_bps: float) -> None:
        index = min(self.NUM_BINS - 1, int(buffer_bytes / self.BIN_BYTES))
        current = self._rates[index]
        if current is None:
            self._rates[index] = tbs_rate_bps
        else:
            self._rates[index] = current + self.ALPHA * (tbs_rate_bps - current)

    def target(self, default: float) -> float:
        """Learned B* (bytes); ``default`` until enough bins are filled."""
        known = [(i, r) for i, r in enumerate(self._rates) if r is not None]
        if len(known) < 4:
            return default
        peak = max(r for _, r in known)
        for index, rate in known:
            if rate >= self.PLATEAU_FRACTION * peak:
                return (index + 0.5) * self.BIN_BYTES * self.MARGIN
        return default


class RtpRateControl:
    """Eq. (7) sweet-spot steering of the RTP sending rate."""

    #: Fallback B* when neither config nor learner provides one (bytes).
    DEFAULT_TARGET = 10 * 1024.0

    #: R_rtp never drops below this multiple of the encoding bitrate, so
    #: overload always surfaces in the (observable) firmware buffer.
    VIDEO_RATE_FLOOR = 1.2

    def __init__(
        self,
        config: FbccConfig,
        initial_rate: float,
        interval: float,
        video_rate=None,
    ):
        self._config = config
        self._interval = interval
        self.rate = initial_rate
        self._video_rate = video_rate or (lambda: 0.0)
        self._learner = SweetSpotLearner() if config.target_buffer is None else None

    @property
    def target_buffer(self) -> float:
        """Current B* (bytes)."""
        if self._config.target_buffer is not None:
            return self._config.target_buffer
        assert self._learner is not None
        return self._learner.target(self.DEFAULT_TARGET)

    def on_batch(self, batch: List[DiagRecord], tbs_rate_bps: float) -> float:
        """Apply Eq. (7) once per diag batch; returns the new R_rtp."""
        if not batch:
            return self.rate
        level = batch[-1].buffer_bytes
        if self._learner is not None:
            self._learner.observe(level, tbs_rate_bps)
        correction = (self.target_buffer - level) / self._interval * BITS_PER_BYTE
        self.rate += correction
        floor = max(
            self._config.rtp_min_rate, self.VIDEO_RATE_FLOOR * self._video_rate()
        )
        self.rate = min(self._config.rtp_max_rate, max(floor, self.rate))
        return self.rate
