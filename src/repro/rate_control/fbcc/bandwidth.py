"""Windowed-TBS uplink bandwidth estimator — Eq. (4)/(5) of §4.3.1.

``R_phy = (Σ_w TBS_w) / W`` over a window of W one-millisecond
subframes.  While the uplink is saturated (congestion detected), this
throughput *is* the available uplink bandwidth, which is what FBCC cuts
the encoder to.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable

from repro.lte.diagnostics import DiagRecord
from repro.units import BITS_PER_BYTE

#: Subframe length (s).
SUBFRAME = 1e-3


class TbsBandwidthEstimator:
    """Running Σ TBS over the last W subframes."""

    def __init__(self, window_subframes: int):
        if window_subframes <= 0:
            raise ValueError("window must be positive")
        self._window = window_subframes
        self._tbs: Deque[float] = deque(maxlen=window_subframes)
        self._sum = 0.0

    def on_record(self, record: DiagRecord) -> None:
        if len(self._tbs) == self._window:
            self._sum -= self._tbs[0]
        self._tbs.append(record.tbs_bytes)
        self._sum += record.tbs_bytes

    def on_batch(self, batch: Iterable[DiagRecord]) -> None:
        for record in batch:
            self.on_record(record)

    @property
    def rate_bps(self) -> float:
        """Eq. (4): PHY throughput over the window (bps)."""
        if not self._tbs:
            return 0.0
        return self._sum * BITS_PER_BYTE / (len(self._tbs) * SUBFRAME)
