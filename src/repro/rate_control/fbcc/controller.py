"""The combined FBCC transport (§4.3).

Wires the Eq. (3) detector, Eq. (4)/(5) bandwidth estimator, Eq. (6)
encoding-rate control and Eq. (7) RTP-rate control to the diagnostic
interface, while keeping a full legacy GCC sender underneath for the
"congestion elsewhere" fallback and the RTT estimate.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.config import FbccConfig, GccConfig
from repro.lte.diagnostics import DiagRecord
from repro.rate_control.base import TransportController
from repro.rate_control.fbcc.bandwidth import TbsBandwidthEstimator
from repro.rate_control.fbcc.detector import CongestionDetector
from repro.rate_control.fbcc.encoding import EncodingRateControl
from repro.rate_control.fbcc.rtp import RtpRateControl
from repro.rate_control.gcc.controller import GccSenderControl
from repro.obs.bus import NULL_BUS
from repro.obs.meter import NULL_METER
from repro.sim.engine import Simulation


class FbccTransport(TransportController):
    """POI360's firmware-buffer-aware congestion control."""

    name = "fbcc"

    def __init__(
        self,
        sim: Simulation,
        fbcc_config: FbccConfig,
        gcc_config: GccConfig,
        diag_interval: float,
        trace=NULL_BUS,
        meter=NULL_METER,
    ):
        self._sim = sim
        self._config = fbcc_config
        self._trace = trace
        self._meter = meter
        self.gcc = GccSenderControl(gcc_config, trace=trace, meter=meter)
        self.detector = CongestionDetector(fbcc_config)
        self.bandwidth = TbsBandwidthEstimator(fbcc_config.tbs_window_subframes)
        self.encoding = EncodingRateControl(
            fbcc_config, gcc_rate=lambda: self.gcc.rate, rtt=lambda: self.gcc.rtt.rtt
        )
        self.rtp = RtpRateControl(
            fbcc_config,
            initial_rate=gcc_config.start_rate,
            interval=diag_interval,
            video_rate=lambda: self.video_rate,
        )

    @property
    def video_rate(self) -> float:
        """R_v per Eq. (6)."""
        return self.encoding.rate(self._sim.now)

    @property
    def pacing_rate(self) -> float:
        """R_rtp per Eq. (7)."""
        return self.rtp.rate

    def on_feedback(self, message: Dict[str, Any], now: float) -> None:
        self.gcc.on_feedback(message, now)

    def on_diag(self, batch: List[DiagRecord]) -> None:
        """Consume one 40 ms diagnostic batch from the modem."""
        meter = self._meter
        t0 = meter.span_start() if meter else 0.0
        self.bandwidth.on_batch(batch)
        congested = self.detector.on_batch(batch)
        if congested:
            self.encoding.on_congestion(self.bandwidth.rate_bps, self._sim.now)
            if self._trace:
                self._trace.emit(
                    "fbcc.congestion",
                    phy_rate_bps=self.bandwidth.rate_bps,
                    held_rate_bps=self.encoding.held_rate,
                    gamma_bytes=self.detector.gamma,
                )
        self.rtp.on_batch(batch, self.bandwidth.rate_bps)
        if self._trace:
            self._trace.emit(
                "fbcc.rate",
                video_rate_bps=self.video_rate,
                rtp_rate_bps=self.rtp.rate,
                bw_est_bps=self.bandwidth.rate_bps,
                target_buffer_bytes=self.rtp.target_buffer,
            )
        if meter:
            meter.inc("fbcc.ticks")
            if congested:
                meter.inc("fbcc.congestion_events")
            meter.observe("fbcc.video_rate_mbps", self.video_rate / 1e6)
            meter.span_end("rate_control.tick", t0)
