"""Firmware-Buffer-aware Congestion Control — POI360's transport (§4.3)."""

from repro.rate_control.fbcc.detector import CongestionDetector
from repro.rate_control.fbcc.bandwidth import TbsBandwidthEstimator
from repro.rate_control.fbcc.encoding import EncodingRateControl
from repro.rate_control.fbcc.rtp import RtpRateControl, SweetSpotLearner
from repro.rate_control.fbcc.controller import FbccTransport

__all__ = [
    "CongestionDetector",
    "TbsBandwidthEstimator",
    "EncodingRateControl",
    "RtpRateControl",
    "SweetSpotLearner",
    "FbccTransport",
]
