"""Encoding-bitrate control — Eq. (6) of §4.3.1.

On an uplink congestion detection at t*, the video encoding bitrate is
pinned to the PHY-measured uplink bandwidth (Eq. 5) for two RTTs — long
enough that GCC's delayed reaction to the same event cannot cause a
second, redundant rate cut — and otherwise follows the legacy GCC rate,
which keeps handling congestion elsewhere on the path.

The PHY rate is frozen at its detection-time value: Eq. (5) only equals
the available bandwidth while the uplink is saturated, and holding the
cap causes the buffer to drain, after which the live TBS sum would
under-report the bandwidth.
"""

from __future__ import annotations

from typing import Callable

from repro.config import FbccConfig


class EncodingRateControl:
    """R_v(t) per Eq. (6)."""

    def __init__(self, config: FbccConfig, gcc_rate: Callable[[], float], rtt: Callable[[], float]):
        self._config = config
        self._gcc_rate = gcc_rate
        self._rtt = rtt
        self._hold_until = float("-inf")
        self._held_rate = 0.0
        self.congestion_events = 0

    def on_congestion(self, phy_rate_bps: float, now: float) -> None:
        """Congestion detected at ``now`` with measured PHY rate (Eq. 5)."""
        self._held_rate = phy_rate_bps * self._config.phy_rate_margin
        self._hold_until = now + self._config.hold_rtts * self._rtt()
        self.congestion_events += 1

    @property
    def held_rate(self) -> float:
        """The pinned rate of the most recent Eq. (6) hold (bps)."""
        return self._held_rate

    def holding(self, now: float) -> bool:
        """True while the Eq. (6) first branch is active."""
        return now <= self._hold_until

    def rate(self, now: float) -> float:
        """Current target encoding bitrate R_v (bps)."""
        if self.holding(now):
            return self._held_rate
        return self._gcc_rate()
