"""RTP packet pacer over a frame-level media queue.

Encoded frames queue at the application layer; the pacer packetises
them into RTP packets as budget allows and hands them to the access hop
(the LTE firmware buffer or the wireline link).  Transport sequence
numbers are assigned **as packets leave** — WebRTC's pacer drops stale
*frames* before packetisation, so a sender-side drop never occupies
sequence space and is invisible to the receiver's loss accounting
(unlike a genuine network loss).

Retransmissions (NACKed packets, which already carry their original
sequence number) jump the queue.  The pacer is the boundary between the
two buffers of the paper's Fig. 9 model: what it does not send waits in
the application layer, what it sends waits in the firmware buffer.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Optional

from repro.net.packet import Packet
from repro.sim.engine import Simulation
from repro.units import BITS_PER_BYTE, ms
from repro.video.frame import EncodedFrame

PacketSink = Callable[[Packet], None]

#: Pacing tick (WebRTC uses 5 ms).
PACING_TICK = ms(5)

#: Unused budget carries over at most this many ticks' worth (burst cap),
#: but never less than one MTU so low rates still make progress.
BURST_TICKS = 2.0
MIN_BURST_BYTES = 1500.0

#: Media older than this many seconds of queue is dropped from the head
#: (WebRTC's pacer expires stale frames rather than shipping a slideshow).
MAX_QUEUE_SECONDS = 1.0


class _QueuedFrame:
    __slots__ = ("frame", "payload_size", "total_packets", "next_index", "remaining")

    def __init__(self, frame: EncodedFrame, payload_size: int):
        self.frame = frame
        self.payload_size = payload_size
        self.total_packets = max(1, math.ceil(frame.size_bytes / payload_size))
        self.next_index = 0
        self.remaining = frame.size_bytes


class PacedSender:
    """Token-bucket pacer that packetises frames as they leave."""

    def __init__(
        self,
        sim: Simulation,
        sink: PacketSink,
        rate_fn: Callable[[], float],
        payload_size: int = 1200,
        on_sent: Optional[PacketSink] = None,
    ):
        self._sim = sim
        self._sink = sink
        self._rate_fn = rate_fn
        self._payload_size = payload_size
        self._on_sent = on_sent
        self._frames: Deque[_QueuedFrame] = deque()
        self._retransmits: Deque[Packet] = deque()
        self._budget_bytes = 0.0
        self._queued_bytes = 0.0
        self._seq = 0
        self.bytes_paced = 0.0
        self.dropped_frames = 0
        sim.every(PACING_TICK, self._tick)

    def enqueue_frame(self, frame: EncodedFrame) -> None:
        """Queue a freshly encoded frame for packetisation."""
        item = _QueuedFrame(frame, self._payload_size)
        self._frames.append(item)
        self._queued_bytes += item.remaining

    def enqueue_retransmit(self, packet: Packet) -> None:
        """Queue a retransmission (keeps its original sequence number)."""
        self._retransmits.append(packet)

    @property
    def queued_bytes(self) -> float:
        """Application-layer media backlog in bytes (fresh frames only)."""
        return self._queued_bytes

    @property
    def queued_frames(self) -> int:
        return len(self._frames)

    @property
    def next_seq(self) -> int:
        return self._seq

    def _send(self, packet: Packet) -> None:
        packet.payload["sent"] = self._sim.now
        self.bytes_paced += packet.size_bytes
        if self._on_sent is not None:
            self._on_sent(packet)
        self._sink(packet)

    def _emit_next_media_packet(self) -> Packet:
        item = self._frames[0]
        size = min(self._payload_size, item.remaining)
        packet = Packet(
            kind="video",
            size_bytes=size,
            created=item.frame.capture_time,
            payload={
                "frame": item.frame,
                "frame_seq": item.next_index,
                "frame_packets": item.total_packets,
                "seq": self._seq,
            },
        )
        self._seq += 1
        item.next_index += 1
        item.remaining -= size
        self._queued_bytes -= size
        if item.remaining <= 0:
            self._frames.popleft()
        return packet

    def _tick(self) -> None:
        rate = max(0.0, self._rate_fn())
        self._expire_stale(rate)
        tick_budget = rate * PACING_TICK / BITS_PER_BYTE
        burst_cap = max(MIN_BURST_BYTES, BURST_TICKS * tick_budget)
        self._budget_bytes = min(self._budget_bytes + tick_budget, burst_cap)
        while self._retransmits and self._retransmits[0].size_bytes <= self._budget_bytes:
            packet = self._retransmits.popleft()
            self._budget_bytes -= packet.size_bytes
            self._send(packet)
        while self._frames and self._budget_bytes > 0:
            head = self._frames[0]
            size = min(self._payload_size, head.remaining)
            if size > self._budget_bytes:
                break
            self._budget_bytes -= size
            self._send(self._emit_next_media_packet())

    def _expire_stale(self, rate: float) -> None:
        """Drop the oldest not-yet-started frames beyond the queue cap.

        The head frame may be partially on the wire and must complete
        (the receiver is already assembling it); everything behind it is
        droppable, oldest first — stale media is superseded anyway.
        """
        if rate <= 0.0:
            return
        max_bytes = rate * MAX_QUEUE_SECONDS / BITS_PER_BYTE
        while self._queued_bytes > max_bytes and len(self._frames) > 1:
            item = self._frames[1]
            del self._frames[1]
            self._queued_bytes -= item.remaining
            self.dropped_frames += 1


# ----------------------------------------------------------------------
# Lockstep twin (batched engine, repro.sim.batch)
# ----------------------------------------------------------------------

import numpy as np

#: Frame slots per session in the batched pacer ring.  The 1 s queue
#: cap bounds the backlog to ~25 frames at the lockstep profile's frame
#: rates; a pathological overflow trips the explicit check.
_FRAME_SLOTS = 128


class PacedSenderArray:
    """``(n_sessions,)`` vectorised twin of the lockstep pacer
    (:class:`repro.telephony.uplink._GridPacer`).

    Frames wait in per-session circular rings; :meth:`tick` replays the
    scalar token-bucket loop in *rounds*, each round emitting at most
    one packet per session, so budgets, remainders and the
    size-vs-budget break are float-identical per session.  Stale-frame
    expiry is a rare per-session scalar loop (it only runs under heavy
    congestion).
    """

    def __init__(self, payloads: np.ndarray):
        n = payloads.shape[0]
        self._payload = payloads.astype(np.float64)
        self._rows = np.arange(n)
        self._fid = np.full((n, _FRAME_SLOTS), -1, dtype=np.int64)
        self._rem = np.zeros((n, _FRAME_SLOTS))
        self._head = np.zeros(n, dtype=np.int64)
        self._count = np.zeros(n, dtype=np.int64)
        self._budget = np.zeros(n)
        self._queued = np.zeros(n)
        self.dropped_frames = np.zeros(n, dtype=np.int64)

    def enqueue_all(self, frame_id: int, sizes: np.ndarray) -> None:
        """Every session queues its copy of frame ``frame_id`` (the
        lockstep profile captures frames on a shared cadence)."""
        if (self._count >= _FRAME_SLOTS).any():
            raise RuntimeError("pacer frame ring overflow")
        cols = (self._head + self._count) % _FRAME_SLOTS
        self._fid[self._rows, cols] = frame_id
        self._rem[self._rows, cols] = sizes
        self._count += 1
        self._queued = self._queued + sizes

    def _expire(self, rate: np.ndarray, max_bytes: np.ndarray) -> None:
        mask = (rate > 0.0) & (self._queued > max_bytes) & (self._count > 1)
        if not mask.any():
            return
        stale = np.nonzero(mask)[0]
        for s in stale.tolist():
            head = int(self._head[s])
            count = int(self._count[s])
            queued = self._queued[s]
            cap = max_bytes[s]
            dropped = 0
            # Frames behind the head are dropped oldest-first; the head
            # may be partially on the wire and must complete.
            while queued > cap and count - dropped > 1:
                col = (head + 1 + dropped) % _FRAME_SLOTS
                queued = queued - self._rem[s, col]
                dropped += 1
            if dropped:
                new_head = (head + dropped) % _FRAME_SLOTS
                self._fid[s, new_head] = self._fid[s, head]
                self._rem[s, new_head] = self._rem[s, head]
                self._head[s] = new_head
                self._count[s] = count - dropped
                self._queued[s] = queued
                self.dropped_frames[s] += dropped

    def tick(self, rates: np.ndarray):
        """One pacing tick; returns emission rounds.

        Each round is ``(rows, frame_ids, sizes, last)`` — parallel 1-D
        arrays, one packet per listed session.  Per-session packet
        order across rounds matches the scalar emit loop.
        """
        rate = np.maximum(0.0, rates)
        max_bytes = rate * MAX_QUEUE_SECONDS / BITS_PER_BYTE
        self._expire(rate, max_bytes)
        tick_budget = rate * PACING_TICK / BITS_PER_BYTE
        burst_cap = np.maximum(MIN_BURST_BYTES, BURST_TICKS * tick_budget)
        self._budget = np.minimum(self._budget + tick_budget, burst_cap)
        emissions = []
        live = np.nonzero((self._count > 0) & (self._budget > 0))[0]
        while live.size:
            heads = self._head[live]
            size = np.minimum(self._payload[live], self._rem[live, heads])
            fits = size <= self._budget[live]
            rows = live[fits]
            if not rows.size:
                break
            heads = heads[fits]
            size = size[fits]
            self._budget[rows] -= size
            remaining = self._rem[rows, heads] - size
            self._rem[rows, heads] = remaining
            self._queued[rows] -= size
            last = remaining <= 0
            done = rows[last]
            if done.size:
                self._head[done] = (heads[last] + 1) % _FRAME_SLOTS
                self._count[done] -= 1
            emissions.append((rows, self._fid[rows, heads], size, last))
            live = rows[(self._count[rows] > 0) & (self._budget[rows] > 0)]
        return emissions
