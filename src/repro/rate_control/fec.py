"""Forward error correction (ULPFEC-style), the paper's [14].

POI360 defers packet-loss handling to "WebRTC's builtin mechanisms";
besides NACK retransmission (implemented in the receiver), WebRTC
protects media with XOR parity packets.  One parity packet per group of
``group_size`` media packets recovers any *single* loss in that group
without waiting a NACK round-trip — which matters on LTE where the
round trip is a large fraction of the frame budget.

The simulation-level equivalent: the parity packet carries its group's
packet metadata; when the group is complete-but-one and the parity has
arrived, the decoder synthesises the missing packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.net.packet import Packet

#: Groups older than this many newer groups are abandoned.
GROUP_HISTORY = 64


@dataclass
class _GroupState:
    """Receiver-side bookkeeping for one FEC group."""

    metadata: Optional[List[dict]] = None  # from the parity packet
    received: Set[int] = field(default_factory=set)
    recovered: bool = False


def _packet_meta(packet: Packet) -> dict:
    """Metadata the parity packet carries for one protected packet."""
    return {
        "seq": packet.payload["seq"],
        "size": packet.size_bytes,
        "frame": packet.payload.get("frame"),
        "frame_seq": packet.payload.get("frame_seq"),
        "frame_packets": packet.payload.get("frame_packets"),
    }


class FecEncoder:
    """Sender side: tags media packets and emits one parity per group."""

    def __init__(self, group_size: int, send_parity: Callable[[Packet], None]):
        if group_size < 2:
            raise ValueError("FEC group size must be at least 2")
        self.group_size = group_size
        self._send_parity = send_parity
        self._group_index = 0
        self._members: List[dict] = []
        self._max_size = 0.0
        self._newest_created = 0.0
        self.parity_sent = 0

    def on_media(self, packet: Packet) -> None:
        """Observe a just-sent media packet; may emit a parity packet."""
        packet.payload["fec_group"] = self._group_index
        self._members.append(_packet_meta(packet))
        self._max_size = max(self._max_size, packet.size_bytes)
        self._newest_created = max(self._newest_created, packet.created)
        if len(self._members) >= self.group_size:
            self._emit_parity()

    def _emit_parity(self) -> None:
        parity = Packet(
            kind="fec",
            # XOR parity is as large as the largest protected packet.
            size_bytes=self._max_size,
            created=self._newest_created,
            payload={
                "fec": True,
                "fec_group": self._group_index,
                "group_members": self._members,
                "seq": None,  # parity rides outside the media seq space
            },
        )
        self._send_parity(parity)
        self.parity_sent += 1
        self._group_index += 1
        self._members = []
        self._max_size = 0.0

    @property
    def overhead_ratio(self) -> float:
        """Nominal bandwidth overhead of the protection (≈ 1/k)."""
        return 1.0 / self.group_size


class FecDecoder:
    """Receiver side: recovers single losses from complete-but-one groups."""

    def __init__(self) -> None:
        self._groups: Dict[int, _GroupState] = {}
        self.recovered_packets = 0

    def _state(self, group: int) -> _GroupState:
        state = self._groups.get(group)
        if state is None:
            state = self._groups[group] = _GroupState()
            self._trim()
        return state

    def _trim(self) -> None:
        while len(self._groups) > GROUP_HISTORY:
            self._groups.pop(min(self._groups))

    def on_media(self, packet: Packet) -> List[Packet]:
        """Feed a protected media packet; returns any recovered packets."""
        group = packet.payload.get("fec_group")
        if group is None:
            return []
        state = self._state(group)
        state.received.add(packet.payload["seq"])
        return self._try_recover(group, state)

    def on_parity(self, packet: Packet) -> List[Packet]:
        """Feed a parity packet; returns any recovered packets."""
        group = packet.payload["fec_group"]
        state = self._state(group)
        state.metadata = packet.payload["group_members"]
        return self._try_recover(group, state)

    def _try_recover(self, group: int, state: _GroupState) -> List[Packet]:
        if state.recovered or state.metadata is None:
            return []
        missing = [m for m in state.metadata if m["seq"] not in state.received]
        if len(missing) != 1:
            if not missing:
                state.recovered = True  # nothing to do, group complete
            return []
        state.recovered = True
        self.recovered_packets += 1
        meta = missing[0]
        rebuilt = Packet(
            kind="video",
            size_bytes=meta["size"],
            created=0.0,
            payload={
                "seq": meta["seq"],
                "frame": meta["frame"],
                "frame_seq": meta["frame_seq"],
                "frame_packets": meta["frame_packets"],
                # Recovered packets behave like retransmissions for the
                # congestion estimator (stale timing, no loss credit).
                "rtx": True,
                "fec_recovered": True,
            },
        )
        return [rebuilt]
