"""GCC receiver- and sender-side controllers and the GCC transport.

The receiver runs the delay-based estimation on incoming media packets
and returns its remote-rate estimate to the sender as REMB messages
(periodically, plus immediately after every decrease).  The sender
combines REMB with its loss-based rate; the GCC transport then sets the
paper's Fig. 9 model rates to ``Rrtp = Rv = R_gcc`` — WebRTC's default
behaviour that POI360's §3.3 analysis criticises.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from repro.config import GccConfig
from repro.net.packet import Packet
from repro.obs.bus import NULL_BUS
from repro.obs.meter import NULL_METER
from repro.rate_control.base import RttEstimator, TransportController
from repro.rate_control.gcc.aimd import AimdRateControl
from repro.rate_control.gcc.arrival import InterGroupFilter, TrendlineEstimator
from repro.rate_control.gcc.loss import LossBasedControl
from repro.rate_control.gcc.overuse import OveruseDetector
from repro.sim.engine import Simulation
from repro.units import BITS_PER_BYTE

FeedbackSender = Callable[[Dict[str, Any]], None]

#: Sliding window for the incoming-rate measurement (s).
RATE_WINDOW = 0.5


class GccReceiver:
    """Viewer-side delay-based estimation + feedback generation."""

    def __init__(self, sim: Simulation, config: GccConfig, send_feedback: FeedbackSender):
        self._sim = sim
        self._config = config
        self._send_feedback = send_feedback
        self._filter = InterGroupFilter(config.burst_interval)
        self._trendline = TrendlineEstimator(config.trendline_window, config.trendline_gain)
        self._detector = OveruseDetector(config)
        self.aimd = AimdRateControl(config)
        self._window: Deque[Tuple[float, float]] = deque()
        self._window_bytes = 0.0
        self._last_echo: Optional[Tuple[float, float]] = None
        self._max_seq: Optional[int] = None
        self._expected = 0
        self._received = 0
        self._last_remb_rate: Optional[float] = None
        sim.every(config.feedback_interval, self._send_remb)
        sim.every(config.loss_interval, self._send_receiver_report)

    def on_media_packet(self, packet: Packet) -> None:
        """Feed one arrived RTP packet into the estimator."""
        now = self._sim.now
        sent = packet.payload.get("sent", packet.created)
        self._last_echo = (sent, now)
        self._track_rate(now, packet.size_bytes)
        self._track_loss(packet)
        if packet.payload.get("rtx"):
            return  # retransmissions carry stale send times
        result = self._filter.on_packet(sent, now, packet.size_bytes)
        if result is None:
            return
        delta, arrival = result
        trend = self._trendline.update(delta, arrival)
        state = self._detector.update(trend, now)
        before = self.aimd.rate
        rate = self.aimd.update(state, self.incoming_rate(), now)
        if rate < before * 0.97:
            self._send_remb()  # immediate feedback on decrease

    def incoming_rate(self) -> float:
        """Received media rate over the last half second (bps)."""
        self._evict(self._sim.now)
        return self._window_bytes * BITS_PER_BYTE / RATE_WINDOW

    def _track_rate(self, now: float, size_bytes: float) -> None:
        self._window.append((now, size_bytes))
        self._window_bytes += size_bytes
        self._evict(now)

    def _evict(self, now: float) -> None:
        horizon = now - RATE_WINDOW
        while self._window and self._window[0][0] < horizon:
            _, size = self._window.popleft()
            self._window_bytes -= size

    def _track_loss(self, packet: Packet) -> None:
        seq = packet.payload.get("seq")
        if seq is None or packet.payload.get("rtx"):
            # Retransmissions ride a separate stream in WebRTC (RTX
            # ssrc); counting them here would mask real loss.
            return
        if self._max_seq is None:
            self._max_seq = seq
            self._expected += 1
        elif seq > self._max_seq:
            self._expected += seq - self._max_seq
            self._max_seq = seq
        self._received += 1

    def _echo_fields(self) -> Dict[str, Any]:
        if self._last_echo is None:
            return {}
        sent, received_at = self._last_echo
        return {"echo_send": sent, "echo_hold": self._sim.now - received_at}

    def _send_remb(self) -> None:
        if abs(self.aimd.rate - (self._last_remb_rate or -1.0)) < 1.0:
            pass  # REMB repeats are cheap; always send for robustness
        self._last_remb_rate = self.aimd.rate
        message = {"type": "remb", "rate": self.aimd.rate}
        message.update(self._echo_fields())
        self._send_feedback(message)

    def _send_receiver_report(self) -> None:
        loss = 0.0
        if self._expected > 0:
            loss = max(0.0, 1.0 - self._received / self._expected)
        self._expected = 0
        self._received = 0
        message = {"type": "rr", "loss": loss}
        message.update(self._echo_fields())
        self._send_feedback(message)


class GccSenderControl:
    """Sender-side GCC: loss-based rate ∧ delay-based REMB, plus RTT."""

    def __init__(self, config: GccConfig, trace=NULL_BUS, meter=NULL_METER):
        self._config = config
        self._loss_based = LossBasedControl(config)
        self._remb: Optional[float] = None
        self.rtt = RttEstimator()
        self._trace = trace
        self._meter = meter

    def on_feedback(self, message: Dict[str, Any], now: float) -> None:
        meter = self._meter
        t0 = meter.span_start() if meter else 0.0
        if "echo_send" in message:
            self.rtt.on_echo(message["echo_send"], message.get("echo_hold", 0.0), now)
        kind = message.get("type")
        if kind == "remb":
            self._remb = message["rate"]
        elif kind == "rr":
            self._loss_based.on_receiver_report(message["loss"])
        if kind in ("remb", "rr"):
            if self._trace:
                self._trace.emit("gcc.rate", rate_bps=self.rate, kind=kind)
            if meter:
                meter.inc("gcc.updates")
                meter.span_end("rate_control.tick", t0)

    @property
    def rate(self) -> float:
        """R_gcc: min(loss-based, delay-based REMB), bps."""
        rate = self._loss_based.rate
        if self._remb is not None:
            rate = min(rate, self._remb)
        return max(self._config.min_rate, rate)


class GccTransport(TransportController):
    """WebRTC default: encoder and pacer both follow R_gcc (§3.3)."""

    name = "gcc"

    def __init__(self, config: GccConfig, trace=NULL_BUS, meter=NULL_METER):
        self._config = config
        self.sender = GccSenderControl(config, trace=trace, meter=meter)

    @property
    def video_rate(self) -> float:
        return self.sender.rate

    @property
    def pacing_rate(self) -> float:
        return self.sender.rate * self._config.pacing_factor

    def on_feedback(self, message: Dict[str, Any], now: float) -> None:
        self.sender.on_feedback(message, now)
