"""AIMD remote-rate controller (receiver side of GCC).

State machine: overuse → Decrease, underuse → Hold, normal → Increase.
Increase is multiplicative (≈8%/s) far from the estimated link capacity
and additive (about one packet per response time) near it; Decrease sets
the rate to β times the *measured incoming rate* and records a link
capacity estimate.  This probe-up / sharp-cut shape is what produces
GCC's characteristic throughput sawtooth (paper Fig. 16a).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.config import GccConfig


class AimdRateControl:
    """Remote bandwidth estimate updated per overuse-detector output."""

    def __init__(self, config: GccConfig):
        self._config = config
        self.rate = config.start_rate
        self.state = "hold"
        self._last_update: Optional[float] = None
        self._last_decrease: float = float("-inf")
        #: Link-capacity estimate built from rates seen at decrease time.
        self._capacity_mean: Optional[float] = None
        self._capacity_var = 0.0
        self.decreases = 0
        #: Minimum spacing between multiplicative decreases — one rate
        #: cut per expected response interval, as in WebRTC's AIMD.
        self.response_interval = 0.25

    def update(self, detector_state: str, incoming_rate: float, now: float) -> float:
        """Advance the state machine and return the new target rate."""
        if detector_state == "overuse":
            self.state = "decrease"
        elif detector_state == "underuse":
            self.state = "hold"
        else:
            if self.state != "increase":
                self.state = "increase" if self.state == "hold" else "increase"

        dt = 0.0
        if self._last_update is not None:
            dt = min(1.0, now - self._last_update)
        self._last_update = now

        if self.state == "decrease":
            if now - self._last_decrease >= self.response_interval:
                self.rate = min(
                    self.rate,
                    self._config.beta * max(incoming_rate, self._config.min_rate),
                )
                self._update_capacity(incoming_rate)
                self.decreases += 1
                self._last_decrease = now
            # One decrease per response interval; park in hold until the
            # detector returns to normal.
            self.state = "hold"
        elif self.state == "increase":
            if self._near_capacity(incoming_rate):
                self.rate += self._additive_increase_per_second() * dt
            else:
                self.rate *= math.pow(1.0 + self._config.eta_per_second, dt)

        # Never run away from what is actually getting through.
        if incoming_rate > 0.0:
            self.rate = min(self.rate, 1.5 * incoming_rate + 10_000.0)
        self.rate = min(self._config.max_rate, max(self._config.min_rate, self.rate))
        return self.rate

    def _update_capacity(self, incoming_rate: float) -> None:
        if self._capacity_mean is None:
            self._capacity_mean = incoming_rate
            self._capacity_var = (0.15 * incoming_rate) ** 2
            return
        alpha = 0.05
        delta = incoming_rate - self._capacity_mean
        self._capacity_mean += alpha * delta
        self._capacity_var = (1 - alpha) * (self._capacity_var + alpha * delta * delta)

    def _near_capacity(self, incoming_rate: float) -> bool:
        if self._capacity_mean is None:
            return False
        spread = 3.0 * math.sqrt(max(self._capacity_var, 1.0))
        return abs(incoming_rate - self._capacity_mean) <= spread

    def _additive_increase_per_second(self) -> float:
        #: ~one avg packet per response time (assume 1200 B, 200 ms).
        response_time = 0.2
        return max(
            1_000.0, self._config.additive_packets * 1200.0 * 8.0 / response_time
        )
