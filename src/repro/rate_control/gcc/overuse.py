"""Overuse detector with adaptive threshold.

Compares the modified delay trend against a threshold γ that adapts to
the trend magnitude (fast down, slow up) so GCC is not starved by
concurrent TCP flows.  Overuse is only signalled after the trend stays
above γ for a sustained time and is not decreasing — exactly the
hysteresis that makes GCC's congestion detection take "at least one RTT
(and often much longer)" in the paper's words.
"""

from __future__ import annotations

from typing import Optional

from repro.config import GccConfig

#: γ is clamped into this range (scaled dimensionless trend units, as in
#: WebRTC's trendline detector).
THRESHOLD_MIN = 6.0
THRESHOLD_MAX = 600.0

#: Ignore threshold adaptation for wildly outlying trends.
OUTLIER_FACTOR = 15.0


class OveruseDetector:
    """Maps a modified-trend series to {'normal', 'overuse', 'underuse'}."""

    def __init__(self, config: GccConfig):
        self._config = config
        self._threshold = config.overuse_threshold
        self._last_update: Optional[float] = None
        self._overuse_start: Optional[float] = None
        self._previous_trend = 0.0
        self.state = "normal"

    def update(self, trend: float, now: float) -> str:
        """Feed one modified-trend sample; returns the detector state."""
        self._adapt_threshold(trend, now)
        if trend > self._threshold:
            if self._overuse_start is None:
                self._overuse_start = now
            sustained = now - self._overuse_start >= self._config.overuse_time
            if sustained and trend >= self._previous_trend:
                self.state = "overuse"
        elif trend < -self._threshold:
            self._overuse_start = None
            self.state = "underuse"
        else:
            self._overuse_start = None
            self.state = "normal"
        self._previous_trend = trend
        return self.state

    def _adapt_threshold(self, trend: float, now: float) -> None:
        if self._last_update is None:
            self._last_update = now
            return
        dt = min(0.1, now - self._last_update)
        self._last_update = now
        magnitude = abs(trend)
        if magnitude > self._threshold + OUTLIER_FACTOR * THRESHOLD_MIN:
            return
        gain = (
            self._config.threshold_gain_down
            if magnitude < self._threshold
            else self._config.threshold_gain_up
        )
        self._threshold += dt * gain * (magnitude - self._threshold) * 1000.0
        self._threshold = min(THRESHOLD_MAX, max(THRESHOLD_MIN, self._threshold))

    @property
    def threshold(self) -> float:
        return self._threshold
