"""Google Congestion Control — WebRTC's default rate control (baseline).

A faithful reimplementation of the RMCAT draft GCC used as the paper's
transport baseline (§2, §6.1.2): receiver-side delay-gradient estimation
(packet grouping → trendline slope → adaptive-threshold overuse
detector → AIMD remote rate), REMB feedback, and the sender-side
loss-based controller.  Its structural sluggishness — probing up slowly
and learning about congestion one RTT late — is what FBCC beats.
"""

from repro.rate_control.gcc.arrival import InterGroupFilter, TrendlineEstimator
from repro.rate_control.gcc.overuse import OveruseDetector
from repro.rate_control.gcc.aimd import AimdRateControl
from repro.rate_control.gcc.loss import LossBasedControl
from repro.rate_control.gcc.controller import GccReceiver, GccSenderControl, GccTransport

__all__ = [
    "InterGroupFilter",
    "TrendlineEstimator",
    "OveruseDetector",
    "AimdRateControl",
    "LossBasedControl",
    "GccReceiver",
    "GccSenderControl",
    "GccTransport",
]
