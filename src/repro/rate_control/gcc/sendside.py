"""Send-side bandwidth estimation (transport-wide CC).

The paper's prototype modifies 2017-era WebRTC, whose delay-based
estimator ran at the *receiver* and fed REMB messages back.  Modern
WebRTC moved the whole estimator to the sender: the receiver only
echoes per-packet arrival times (transport-wide feedback), and the
sender runs grouping/trendline/AIMD locally — one config knob instead
of a remote code path, and the sender can react the moment feedback
lands rather than waiting for the receiver's decision.

This variant exists to measure how much of FBCC's advantage survives
against a newer baseline (``benchmarks/test_ablation_sendside.py``).
Select it with ``SessionConfig.transport = "gcc_ss"``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.config import GccConfig
from repro.net.packet import Packet
from repro.rate_control.base import RttEstimator, TransportController
from repro.rate_control.gcc.aimd import AimdRateControl
from repro.rate_control.gcc.arrival import InterGroupFilter, TrendlineEstimator
from repro.rate_control.gcc.loss import LossBasedControl
from repro.rate_control.gcc.overuse import OveruseDetector
from repro.sim.engine import Simulation
from repro.units import BITS_PER_BYTE

FeedbackSender = Callable[[Dict[str, Any]], None]

#: Transport-wide feedback cadence (WebRTC sends every 50-250 ms).
FEEDBACK_INTERVAL = 0.1


class TwccFeedbackGenerator:
    """Viewer side: echo (send time, arrival, size) for every packet.

    Duck-typed to :class:`GccReceiver` (``on_media_packet`` plus
    periodic feedback emission) so the telephony receiver can host
    either.
    """

    def __init__(self, sim: Simulation, config: GccConfig, send_feedback: FeedbackSender):
        self._sim = sim
        self._config = config
        self._send_feedback = send_feedback
        self._pending: List[Tuple[float, float, float]] = []
        self._max_seq: Optional[int] = None
        self._expected = 0
        self._received = 0
        self._last_echo: Optional[Tuple[float, float]] = None
        sim.every(FEEDBACK_INTERVAL, self._send_batch)
        sim.every(config.loss_interval, self._send_receiver_report)

    def on_media_packet(self, packet: Packet) -> None:
        now = self._sim.now
        sent = packet.payload.get("sent", packet.created)
        self._last_echo = (sent, now)
        if not packet.payload.get("rtx"):
            self._track_loss(packet)
            self._pending.append((sent, now, packet.size_bytes))

    def _track_loss(self, packet: Packet) -> None:
        seq = packet.payload.get("seq")
        if seq is None:
            return
        if self._max_seq is None:
            self._max_seq = seq
            self._expected += 1
        elif seq > self._max_seq:
            self._expected += seq - self._max_seq
            self._max_seq = seq
        self._received += 1

    def _echo_fields(self) -> Dict[str, Any]:
        if self._last_echo is None:
            return {}
        sent, received_at = self._last_echo
        return {"echo_send": sent, "echo_hold": self._sim.now - received_at}

    def _send_batch(self) -> None:
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        message = {"type": "twcc", "packets": batch}
        message.update(self._echo_fields())
        self._send_feedback(message)

    def _send_receiver_report(self) -> None:
        loss = 0.0
        if self._expected > 0:
            loss = max(0.0, 1.0 - self._received / self._expected)
        self._expected = 0
        self._received = 0
        message = {"type": "rr", "loss": loss}
        message.update(self._echo_fields())
        self._send_feedback(message)


class SendSideBwe:
    """Sender side: the full delay-based pipeline over echoed timings."""

    def __init__(self, sim: Simulation, config: GccConfig):
        self._sim = sim
        self._filter = InterGroupFilter(config.burst_interval)
        self._trendline = TrendlineEstimator(config.trendline_window, config.trendline_gain)
        self._detector = OveruseDetector(config)
        self.aimd = AimdRateControl(config)
        #: Incoming rate estimated from acknowledged bytes.
        self._acked: List[Tuple[float, float]] = []

    def on_packet_report(self, sent: float, arrival: float, size_bytes: float) -> None:
        self._acked.append((arrival, size_bytes))
        result = self._filter.on_packet(sent, arrival, size_bytes)
        if result is None:
            return
        delta, group_arrival = result
        trend = self._trendline.update(delta, group_arrival)
        state = self._detector.update(trend, self._sim.now)
        self.aimd.update(state, self.acked_rate(), now=self._sim.now)

    def acked_rate(self, window: float = 0.5) -> float:
        """Acknowledged throughput over the last ``window`` seconds."""
        if not self._acked:
            return 0.0
        horizon = self._acked[-1][0] - window
        self._acked = [(t, s) for t, s in self._acked if t >= horizon]
        return sum(s for _, s in self._acked) * BITS_PER_BYTE / window

    @property
    def rate(self) -> float:
        return self.aimd.rate


class SendSideGccTransport(TransportController):
    """GCC with sender-local estimation over transport-wide feedback."""

    name = "gcc_ss"

    def __init__(self, sim: Simulation, config: GccConfig):
        self._config = config
        self.bwe = SendSideBwe(sim, config)
        self._loss_based = LossBasedControl(config)
        self.rtt = RttEstimator()

    @property
    def video_rate(self) -> float:
        return max(
            self._config.min_rate, min(self._loss_based.rate, self.bwe.rate)
        )

    @property
    def pacing_rate(self) -> float:
        return self.video_rate * self._config.pacing_factor

    def on_feedback(self, message: Dict[str, Any], now: float) -> None:
        if "echo_send" in message:
            self.rtt.on_echo(message["echo_send"], message.get("echo_hold", 0.0), now)
        kind = message.get("type")
        if kind == "twcc":
            for sent, arrival, size in message["packets"]:
                self.bwe.on_packet_report(sent, arrival, size)
        elif kind == "rr":
            self._loss_based.on_receiver_report(message["loss"])
