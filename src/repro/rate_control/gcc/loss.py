"""Sender-side loss-based controller of GCC.

Per receiver report: more than 10% loss shrinks the rate, under 2%
grows it 5%, in between holds.  The sender's final GCC rate is the
minimum of this and the delay-based REMB from the receiver.
"""

from __future__ import annotations

from repro.config import GccConfig


class LossBasedControl:
    """A_s(t) update from RTCP receiver-report loss fractions."""

    def __init__(self, config: GccConfig):
        self._config = config
        self.rate = config.start_rate

    def on_receiver_report(self, loss_fraction: float) -> float:
        """Update and return the loss-based rate."""
        loss = min(1.0, max(0.0, loss_fraction))
        if loss > 0.10:
            self.rate *= 1.0 - 0.5 * loss
        elif loss < 0.02:
            self.rate *= 1.05
        self.rate = min(self._config.max_rate, max(self._config.min_rate, self.rate))
        return self.rate
