"""Packet grouping and delay-gradient (trendline) estimation.

GCC groups packets sent within a short burst interval, computes the
inter-group delay variation ``d(i) = Δarrival - Δsend``, and estimates
the queuing-delay *trend* as the least-squares slope of the smoothed
accumulated delay over a sliding window of groups.  A positive trend
means queues are building somewhere on the path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple


@dataclass
class _Group:
    first_send: float
    last_send: float
    last_arrival: float
    size_bytes: float


class InterGroupFilter:
    """Groups packets by send time and emits inter-group deltas.

    Mirrors WebRTC's ``InterArrival``: a packet joins the current group
    either when it was *sent* within the burst interval of the group's
    first packet, or when it *arrives* in a burst — back-to-back with
    the group's last packet while having queued behind it (negative
    propagation delta).  The latter absorbs the radio scheduler's
    serve-in-bursts pattern that would otherwise read as huge delay
    gradients.
    """

    def __init__(self, burst_interval: float):
        self._burst_interval = burst_interval
        self._current: Optional[_Group] = None
        self._previous: Optional[_Group] = None

    def _belongs_to_burst(self, send_time: float, arrival_time: float) -> bool:
        assert self._current is not None
        arrival_delta = arrival_time - self._current.last_arrival
        propagation_delta = arrival_delta - (send_time - self._current.last_send)
        return arrival_delta <= self._burst_interval and propagation_delta < 0

    def on_packet(
        self, send_time: float, arrival_time: float, size_bytes: float
    ) -> Optional[Tuple[float, float]]:
        """Feed one packet; returns (delay_delta, arrival_time) when a
        group completes, else None."""
        if self._current is None:
            self._current = _Group(send_time, send_time, arrival_time, size_bytes)
            return None
        in_send_burst = send_time - self._current.first_send <= self._burst_interval
        if in_send_burst or self._belongs_to_burst(send_time, arrival_time):
            self._current.last_send = max(self._current.last_send, send_time)
            self._current.last_arrival = max(self._current.last_arrival, arrival_time)
            self._current.size_bytes += size_bytes
            return None
        completed = self._current
        self._current = _Group(send_time, send_time, arrival_time, size_bytes)
        if self._previous is None:
            self._previous = completed
            return None
        delta_send = completed.last_send - self._previous.last_send
        delta_arrival = completed.last_arrival - self._previous.last_arrival
        self._previous = completed
        return (delta_arrival - delta_send, completed.last_arrival)


class TrendlineEstimator:
    """Least-squares slope of smoothed accumulated delay vs time."""

    #: Smoothing coefficient of the accumulated delay.
    SMOOTHING = 0.9
    #: The modified trend multiplies the slope by min(samples, CAP) * gain.
    SAMPLE_CAP = 60

    def __init__(self, window: int, gain: float):
        self._window = window
        self._gain = gain
        self._accumulated = 0.0
        self._smoothed = 0.0
        self._first_arrival: Optional[float] = None
        self._points: Deque[Tuple[float, float]] = deque(maxlen=window)
        self._num_deltas = 0

    def update(self, delay_delta: float, arrival_time: float) -> float:
        """Feed one inter-group delta; returns the modified trend (s)."""
        if self._first_arrival is None:
            self._first_arrival = arrival_time
        self._num_deltas += 1
        self._accumulated += delay_delta
        self._smoothed = (
            self.SMOOTHING * self._smoothed
            + (1.0 - self.SMOOTHING) * self._accumulated
        )
        self._points.append((arrival_time - self._first_arrival, self._smoothed))
        slope = self._slope()
        scale = min(self._num_deltas, self.SAMPLE_CAP) * self._gain
        return slope * scale

    def _slope(self) -> float:
        n = len(self._points)
        if n < 2:
            return 0.0
        mean_x = sum(x for x, _ in self._points) / n
        mean_y = sum(y for _, y in self._points) / n
        num = sum((x - mean_x) * (y - mean_y) for x, y in self._points)
        den = sum((x - mean_x) ** 2 for x, _ in self._points)
        if den == 0.0:
            return 0.0
        return num / den
