"""Interfaces shared by the GCC and FBCC transports."""

from __future__ import annotations

import abc
from typing import Any, Dict, List

from repro.lte.diagnostics import DiagRecord


class TransportController(abc.ABC):
    """Sender-side transport logic.

    Exposes the two rates of the paper's Fig. 9 model: the video
    encoding bitrate ``Rv`` handed to the encoder and the RTP sending
    rate ``Rrtp`` enforced by the pacer.
    """

    name: str = "base"

    @property
    @abc.abstractmethod
    def video_rate(self) -> float:
        """Target encoding bitrate Rv (bps)."""

    @property
    @abc.abstractmethod
    def pacing_rate(self) -> float:
        """RTP sending rate Rrtp (bps)."""

    @abc.abstractmethod
    def on_feedback(self, message: Dict[str, Any], now: float) -> None:
        """Consume a feedback message (REMB / receiver report) from the viewer."""

    def on_diag(self, batch: List[DiagRecord]) -> None:
        """Consume a diagnostic batch (no-op for end-to-end controllers)."""


class RttEstimator:
    """EWMA round-trip-time estimate from feedback echoes.

    Every feedback message echoes the send timestamp of the most recent
    media packet plus how long the viewer held it before reporting; the
    sender subtracts both from its clock.
    """

    def __init__(self, initial: float = 0.15, alpha: float = 0.2):
        self._rtt = initial
        self._alpha = alpha
        self.samples = 0

    def on_echo(self, echoed_send_time: float, hold_time: float, now: float) -> None:
        sample = now - echoed_send_time - hold_time
        if sample <= 0.0:
            return
        self._rtt = (1.0 - self._alpha) * self._rtt + self._alpha * sample
        self.samples += 1

    @property
    def rtt(self) -> float:
        """Current smoothed RTT estimate (s)."""
        return self._rtt
