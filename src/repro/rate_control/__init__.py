"""Transport-layer rate control: WebRTC's GCC and POI360's FBCC."""

from repro.rate_control.base import RttEstimator, TransportController
from repro.rate_control.pacer import PacedSender
from repro.rate_control.gcc.controller import GccReceiver, GccSenderControl, GccTransport
from repro.rate_control.fbcc.controller import FbccTransport

__all__ = [
    "RttEstimator",
    "TransportController",
    "PacedSender",
    "GccReceiver",
    "GccSenderControl",
    "GccTransport",
    "FbccTransport",
]
