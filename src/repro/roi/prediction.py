"""Motion-based ROI prediction — the §8 discussion, as an extension.

The paper argues linear head-motion prediction only works at short
horizons: at ≈60 deg/s average velocity and up to 500 deg/s² bursts,
the head position 120 ms out is effectively unpredictable, which is why
POI360 adapts the *compression profile* instead of betting on a
predicted ROI.  This module implements the predictor so the claim can
be measured (see ``benchmarks/test_ablation_prediction.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple


class MotionPredictor:
    """Constant-velocity extrapolation of the yaw/pitch trace."""

    def __init__(self, history: int = 8):
        self._poses: Deque[Tuple[float, float, float]] = deque(maxlen=history)

    def observe(self, now: float, yaw: float, pitch: float) -> None:
        """Record a pose sample (yaw unwrapped by the caller)."""
        self._poses.append((now, yaw, pitch))

    def velocity(self) -> Optional[Tuple[float, float]]:
        """Least-squares (yaw, pitch) velocity over the history (deg/s)."""
        if len(self._poses) < 2:
            return None
        times = [t for t, _, _ in self._poses]
        mean_t = sum(times) / len(times)
        den = sum((t - mean_t) ** 2 for t in times)
        if den == 0.0:
            return None
        mean_yaw = sum(y for _, y, _ in self._poses) / len(self._poses)
        yaw_vel = sum((t - mean_t) * (y - mean_yaw) for t, y, _ in self._poses) / den
        mean_pitch = sum(p for _, _, p in self._poses) / len(self._poses)
        pitch_vel = sum((t - mean_t) * (p - mean_pitch) for t, _, p in self._poses) / den
        return (yaw_vel, pitch_vel)

    def predict(self, horizon: float) -> Optional[Tuple[float, float]]:
        """Predicted (yaw, pitch) ``horizon`` seconds past the last sample."""
        if not self._poses:
            return None
        velocity = self.velocity()
        _, yaw, pitch = self._poses[-1]
        if velocity is None:
            return (yaw, pitch)
        return (yaw + velocity[0] * horizon, pitch + velocity[1] * horizon)
