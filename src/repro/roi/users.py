"""The five viewer profiles of the paper's experiments (§6).

The paper recruits 5 users, each watching a different 360° video so
that ROI behaviour does not overfit one content item.  Here each profile
perturbs the head-motion statistics (dwell, saccade speed/size, drift)
and each session pairs the profile with an independently-seeded
synthetic content model — the analogue of "a different video per user".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Tuple

from repro.config import ViewerConfig


@dataclass(frozen=True)
class UserProfile:
    """Head-motion personality of one study participant."""

    name: str
    dwell_mean: float
    saccade_velocity_mean: float
    saccade_yaw_mean: float
    drift_deg_per_s: float

    def apply(self, base: ViewerConfig) -> ViewerConfig:
        """Overlay this profile on a base viewer configuration."""
        return dataclasses.replace(
            base,
            dwell_mean=self.dwell_mean,
            saccade_velocity_mean=self.saccade_velocity_mean,
            saccade_yaw_mean=self.saccade_yaw_mean,
            drift_deg_per_s=self.drift_deg_per_s,
        )


#: Five personalities spanning calm to restless viewing.
USER_PROFILES: Tuple[UserProfile, ...] = (
    UserProfile("user1-calm", dwell_mean=4.5, saccade_velocity_mean=50.0,
                saccade_yaw_mean=55.0, drift_deg_per_s=2.5),
    UserProfile("user2-typical", dwell_mean=3.0, saccade_velocity_mean=60.0,
                saccade_yaw_mean=70.0, drift_deg_per_s=4.0),
    UserProfile("user3-explorer", dwell_mean=2.0, saccade_velocity_mean=70.0,
                saccade_yaw_mean=90.0, drift_deg_per_s=5.0),
    UserProfile("user4-restless", dwell_mean=1.5, saccade_velocity_mean=80.0,
                saccade_yaw_mean=80.0, drift_deg_per_s=6.0),
    UserProfile("user5-steady", dwell_mean=3.8, saccade_velocity_mean=55.0,
                saccade_yaw_mean=60.0, drift_deg_per_s=3.0),
)


def profile_by_name(name: str) -> UserProfile:
    """Look a profile up by its name."""
    for profile in USER_PROFILES:
        if profile.name == name:
            return profile
    raise KeyError(f"unknown user profile: {name!r}")
