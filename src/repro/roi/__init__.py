"""Viewer substrate: head motion, user profiles, viewport mapping."""

from repro.roi.head_motion import HeadMotion
from repro.roi.prediction import MotionPredictor
from repro.roi.users import USER_PROFILES, UserProfile
from repro.roi.viewport import Viewport

__all__ = ["HeadMotion", "MotionPredictor", "USER_PROFILES", "UserProfile", "Viewport"]
