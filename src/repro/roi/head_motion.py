"""Saccade-and-dwell head-motion model for an HMD viewer.

Replaces the paper's five human participants.  The model alternates:

- **dwell** — the gaze stays put apart from a small continuous drift
  (an Ornstein-Uhlenbeck velocity), which matters because razor-sharp
  compression profiles (Conduit) are exposed even by small head motion;
- **pursuit** — smooth tracking of moving content at a few-to-tens of
  deg/s for seconds at a time; this is what keeps the ROI crossing tile
  boundaries during a 360° video call and makes laggy ROI updates hurt;
- **saccade** — the head turns to a new target with an
  acceleration-capped velocity profile using the Oculus-reported
  statistics the paper quotes in §8 (average ≈60 deg/s, acceleration up
  to 500 deg/s²).

Yaw is unbounded (wraps at rendering time); pitch is clamped.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import ViewerConfig
from repro.sim.engine import Simulation


class HeadMotion:
    """Continuous (yaw, pitch) head pose process."""

    def __init__(self, sim: Simulation, config: ViewerConfig, rng: np.random.Generator):
        self._sim = sim
        self._config = config
        self._rng = rng
        self.yaw = float(rng.uniform(0.0, 360.0))
        self.pitch = 0.0
        self._velocity = 0.0          # current saccade yaw velocity (deg/s)
        self._drift_velocity = 0.0    # OU drift velocity (deg/s)
        self._pursuit_pitch_velocity = 0.0
        self._target_yaw = self.yaw
        self._target_pitch = 0.0
        self._peak_velocity = config.saccade_velocity_mean
        self._saccading = False
        self._pursuit_velocity = 0.0
        self._pursuit_until = float("-inf")
        self._next_saccade = sim.now + self._draw_dwell()
        self.saccades = 0
        self.pursuits = 0
        sim.every(config.update_interval, self._update)

    def _draw_dwell(self) -> float:
        return max(
            self._config.dwell_min, self._rng.exponential(self._config.dwell_mean)
        )

    def _start_saccade(self) -> None:
        config = self._config
        magnitude = min(
            config.saccade_yaw_max, self._rng.exponential(config.saccade_yaw_mean)
        )
        direction = 1.0 if self._rng.random() < 0.5 else -1.0
        self._target_yaw = self.yaw + direction * magnitude
        limit = config.pitch_limit
        self._target_pitch = min(
            limit, max(-limit, float(self._rng.normal(0.0, config.saccade_pitch_std)))
        )
        self._peak_velocity = max(
            10.0,
            self._rng.normal(config.saccade_velocity_mean, config.saccade_velocity_std),
        )
        self._saccading = True
        self.saccades += 1

    def _start_pursuit(self) -> None:
        config = self._config
        low, high = config.pursuit_velocity_range
        speed = float(self._rng.uniform(low, high))
        direction = 1.0 if self._rng.random() < 0.5 else -1.0
        self._pursuit_velocity = direction * speed
        #: Tracked objects rarely move along the horizon exactly.
        self._pursuit_pitch_velocity = float(self._rng.normal(0.0, 0.3 * speed))
        dur_low, dur_high = config.pursuit_duration_range
        self._pursuit_until = self._sim.now + float(self._rng.uniform(dur_low, dur_high))
        self.pursuits += 1

    def _update(self) -> None:
        dt = self._config.update_interval
        if self._saccading:
            self._advance_saccade(dt)
            return
        if self._sim.now <= self._pursuit_until:
            self.yaw += self._pursuit_velocity * dt
            limit = self._config.pitch_limit
            self.pitch = min(
                limit, max(-limit, self.pitch + self._pursuit_pitch_velocity * dt)
            )
            return
        self._advance_drift(dt)
        if self._sim.now >= self._next_saccade:
            if self._rng.random() < self._config.pursuit_probability:
                self._start_pursuit()
                self._next_saccade = self._sim.now + self._draw_dwell()
            else:
                self._start_saccade()

    def _advance_saccade(self, dt: float) -> None:
        config = self._config
        remaining = self._target_yaw - self.yaw
        direction = math.copysign(1.0, remaining) if remaining else 1.0
        # Accelerate toward the peak, decelerate when close to target
        # (kinematic braking distance at the acceleration cap).
        braking = self._velocity**2 / (2.0 * config.max_acceleration)
        if abs(remaining) <= braking:
            desired = direction * max(10.0, abs(self._velocity) - config.max_acceleration * dt)
        else:
            desired = direction * self._peak_velocity
        cap = config.max_acceleration * dt
        self._velocity += min(cap, max(-cap, desired - self._velocity))
        step = self._velocity * dt
        pitch_step = (self._target_pitch - self.pitch) * min(1.0, 3.0 * dt)
        self.pitch += pitch_step
        if abs(step) >= abs(remaining):
            self.yaw = self._target_yaw
            self.pitch = self._target_pitch
            self._velocity = 0.0
            self._saccading = False
            self._next_saccade = self._sim.now + self._draw_dwell()
        else:
            self.yaw += step

    def _advance_drift(self, dt: float) -> None:
        config = self._config
        tau = 0.5
        decay = math.exp(-dt / tau)
        sigma = config.drift_deg_per_s
        self._drift_velocity = self._drift_velocity * decay + sigma * math.sqrt(
            max(0.0, 1.0 - decay * decay)
        ) * self._rng.normal()
        self.yaw += self._drift_velocity * dt
        limit = config.pitch_limit
        self.pitch = min(
            limit, max(-limit, self.pitch + 0.3 * self._drift_velocity * dt)
        )

    @property
    def angular_velocity(self) -> float:
        """Instantaneous yaw velocity (deg/s), saccade + drift."""
        return self._velocity if self._saccading else self._drift_velocity

    @property
    def in_saccade(self) -> bool:
        return self._saccading
