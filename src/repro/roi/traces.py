"""Head-pose trace recording and replay.

The synthetic head-motion model stands in for the paper's human users;
when a real HMD trace is available (e.g. exported from a headset), this
module plugs it in: :class:`HeadTrace` stores timestamped (yaw, pitch)
samples with CSV round-tripping, :func:`record_trace` captures a trace
from the synthetic model, and :class:`TraceHeadMotion` replays any
trace inside a session (duck-typed to :class:`HeadMotion`, so
``TelephonySession(..., head_trace=...)`` swaps it in transparently).
"""

from __future__ import annotations

import csv
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple, Union

from repro.config import ViewerConfig
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry

PathLike = Union[str, Path]


@dataclass(frozen=True)
class HeadTrace:
    """Timestamped head poses: (time s, yaw deg unwrapped, pitch deg)."""

    samples: Tuple[Tuple[float, float, float], ...]

    def __post_init__(self) -> None:
        times = [t for t, _, _ in self.samples]
        if len(times) < 2:
            raise ValueError("a trace needs at least two samples")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("trace timestamps must be strictly increasing")

    @property
    def duration(self) -> float:
        return self.samples[-1][0] - self.samples[0][0]

    def pose_at(self, t: float) -> Tuple[float, float]:
        """Linearly interpolated (yaw, pitch) at time ``t`` (clamped)."""
        times = [s[0] for s in self.samples]
        t = min(max(t, times[0]), times[-1])
        index = bisect_right(times, t)
        if index >= len(times):
            _, yaw, pitch = self.samples[-1]
            return (yaw, pitch)
        if index == 0:
            _, yaw, pitch = self.samples[0]
            return (yaw, pitch)
        t0, yaw0, pitch0 = self.samples[index - 1]
        t1, yaw1, pitch1 = self.samples[index]
        f = (t - t0) / (t1 - t0)
        return (yaw0 + f * (yaw1 - yaw0), pitch0 + f * (pitch1 - pitch0))

    def save_csv(self, path: PathLike) -> None:
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time_s", "yaw_deg", "pitch_deg"])
            for t, yaw, pitch in self.samples:
                writer.writerow([f"{t:.6f}", f"{yaw:.4f}", f"{pitch:.4f}"])

    @staticmethod
    def load_csv(path: PathLike) -> "HeadTrace":
        samples: List[Tuple[float, float, float]] = []
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            for row in reader:
                samples.append(
                    (float(row["time_s"]), float(row["yaw_deg"]), float(row["pitch_deg"]))
                )
        return HeadTrace(samples=tuple(samples))


def record_trace(
    config: ViewerConfig,
    duration: float,
    seed: int = 0,
    sample_interval: float = 0.02,
) -> HeadTrace:
    """Run the synthetic head-motion model and capture its trace."""
    from repro.roi.head_motion import HeadMotion

    sim = Simulation()
    head = HeadMotion(sim, config, RngRegistry(seed).stream("head"))
    samples: List[Tuple[float, float, float]] = []
    sim.every(sample_interval, lambda: samples.append((sim.now, head.yaw, head.pitch)))
    sim.run(duration)
    return HeadTrace(samples=tuple(samples))


class TraceHeadMotion:
    """Replays a :class:`HeadTrace` (loops when the session outlives it).

    Duck-typed to :class:`repro.roi.head_motion.HeadMotion`: exposes
    ``yaw`` / ``pitch`` updated on the viewer cadence, which is all
    :class:`repro.roi.viewport.Viewport` needs.
    """

    def __init__(self, sim: Simulation, config: ViewerConfig, trace: HeadTrace):
        self._sim = sim
        self._trace = trace
        self._t0 = trace.samples[0][0]
        self.yaw, self.pitch = trace.pose_at(self._t0)
        sim.every(config.update_interval, self._update)

    def _update(self) -> None:
        offset = self._sim.now % max(1e-9, self._trace.duration)
        self.yaw, self.pitch = self._trace.pose_at(self._t0 + offset)

    @property
    def in_saccade(self) -> bool:
        return False  # unknown for recorded traces

    @property
    def angular_velocity(self) -> float:
        now = self._sim.now % max(1e-9, self._trace.duration)
        before = self._trace.pose_at(self._t0 + max(0.0, now - 0.02))
        after = self._trace.pose_at(self._t0 + now)
        return (after[0] - before[0]) / 0.02
