"""Viewport: head pose → ROI tile, plus the FoV region around it."""

from __future__ import annotations

from typing import List, Tuple

from repro.compression.matrix import fov_tile_offsets, roi_region_tiles
from repro.config import ViewerConfig
from repro.roi.head_motion import HeadMotion
from repro.video.frame import TileGrid


class Viewport:
    """Maps a :class:`HeadMotion` pose onto the tile grid."""

    def __init__(self, grid: TileGrid, viewer_config: ViewerConfig, head: HeadMotion):
        self._grid = grid
        self._head = head
        self._offsets = fov_tile_offsets(grid, viewer_config)

    @property
    def roi_center(self) -> Tuple[int, int]:
        """Tile the gaze currently points at — (i*_c, j*_c) of §4.1."""
        return self._grid.tile_of_angles(self._head.yaw, self._head.pitch)

    def fov_tiles(self) -> List[Tuple[int, int]]:
        """Tiles currently inside the HMD field of view."""
        return roi_region_tiles(self._grid, self.roi_center, self._offsets)

    @property
    def pose(self) -> Tuple[float, float]:
        """(yaw, pitch) in degrees."""
        return (self._head.yaw % 360.0, self._head.pitch)
