"""Command-line interface: ``python -m repro.cli`` (or ``repro360``).

Subcommands:

- ``run``       one telephony session, metrics to stdout (optionally
                exporting the raw per-frame trace);
- ``trace``     one session with structured event tracing enabled —
                dumps/filters the ``repro.obs`` trace (JSONL by
                default; see docs/OBSERVABILITY.md);
- ``metrics``   a metered sweep of sessions — merges per-session
                registries into one fleet registry and prints a summary
                table, histogram sketches and span timings (or exports
                OpenMetrics / JSON with ``--format``); ``--batch`` runs
                the sweep as lockstep cohorts, ``--from-run`` renders a
                completed run directory's final registry instead;
- ``fleet``     multi-UE shared-cell capacity sweep — calls-per-cell
                vs. MOS/rate/delay plus per-cell Jain fairness, whole
                cells sharded across workers (see docs/FLEET.md);
- ``sweep``     every (scheme, transport) combination on one scenario;
- ``scenarios`` list the named scenarios;
- ``report``    the full paper-vs-measured report (delegates to
                :mod:`repro.experiments.report`);
- ``cache``     inspect or clear the persistent session-result cache;
- ``profile``   cProfile one session and print the hot functions;
- ``perf``      the perf microbenchmark — times the Fig. 11-14
                micro-grid serial vs parallel and writes
                ``BENCH_perf.json``;
- ``watch``     inspect (or ``--follow``) a run-ledger directory — the
                manifest, the live heartbeat streams and the latest
                OpenMetrics snapshot (docs/OBSERVABILITY.md); with
                ``--url`` it follows a job on a ``serve`` instance
                instead;
- ``serve``     the long-running job-queue server: submit
                metrics/fleet/perf specs over HTTP, watch them run,
                scrape ``/metrics`` (docs/OBSERVABILITY.md, Service
                mode);
- ``submit``    client for ``serve``: queue one job (``--wait`` to
                block until it finishes);
- ``jobs``      client for ``serve``: list/show/cancel jobs;
- ``runs``      run-ledger maintenance — list every run under a root
                (status/age/size) or ``gc`` sealed runs past
                ``--keep-days``.

``--jobs N`` (or ``REPRO_JOBS``) fans independent sessions across ``N``
worker processes wherever a command runs experiment grids.  ``--run-dir
DIR`` (or ``REPRO_RUN_DIR``) makes ``metrics``/``fleet``/``perf`` open
a **run ledger** — a per-run artifact directory streaming a heartbeat
JSONL and periodic OpenMetrics snapshots while the command runs
(:mod:`repro.obs.ledger`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.config import SCHEMES, TRANSPORTS
from repro.metrics import export
from repro.plotting import bar_chart
from repro.telephony.session import run_session
from repro.traces.scenarios import SCENARIOS, scenario
from repro.video.quality import MOS_ORDER


def _add_session_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", default="cellular", choices=sorted(SCENARIOS))
    parser.add_argument("--duration", type=float, default=90.0)
    parser.add_argument("--warmup", type=float, default=20.0)
    parser.add_argument("--seed", type=int, default=1)


def _run_one(args, scheme: str, transport: str):
    config = scenario(
        args.scenario,
        scheme=scheme,
        transport=transport,
        duration=args.duration,
        seed=args.seed,
    )
    return run_session(config, warmup=args.warmup)


def cmd_run(args) -> int:
    if args.transport == "fbcc" and args.scenario == "wireline":
        print("error: FBCC needs the LTE diagnostic interface", file=sys.stderr)
        return 2
    result = _run_one(args, args.scheme, args.transport)
    summary = result.summary
    if args.json:
        print(json.dumps(export.summary_to_dict(summary), indent=1))
    else:
        print(f"scenario={args.scenario} scheme={args.scheme} transport={args.transport}")
        for key, value in summary.to_dict().items():
            print(f"  {key:<22} {value}")
        pdf = summary.quality.mos_pdf
        print(bar_chart(list(MOS_ORDER), [pdf.get(b, 0.0) for b in MOS_ORDER]))
    if args.export:
        export.write_json(args.export, result.log, summary)
        print(f"trace written to {args.export}")
    if args.export_csv:
        rows = export.write_frames_csv(args.export_csv, result.log)
        print(f"{rows} frame rows written to {args.export_csv}")
    return 0


def cmd_trace(args) -> int:
    from repro.obs import EVENT_CATALOGUE, EVENT_NAMES, TraceBus
    from repro.telephony.session import TelephonySession

    if args.transport == "fbcc" and args.scenario == "wireline":
        print("error: FBCC needs the LTE diagnostic interface", file=sys.stderr)
        return 2
    wanted = None
    if args.events:
        wanted = [name.strip() for name in args.events.split(",") if name.strip()]
        unknown = sorted(set(wanted) - set(EVENT_CATALOGUE))
        if unknown:
            print(
                f"error: unknown event(s) {', '.join(unknown)}; "
                f"known: {', '.join(EVENT_NAMES)}",
                file=sys.stderr,
            )
            return 2
    config = scenario(
        args.scenario,
        scheme=args.scheme,
        transport=args.transport,
        duration=args.duration,
        seed=args.seed,
    )
    bus = TraceBus(capacity=args.capacity) if args.capacity else TraceBus()
    session = TelephonySession(config, trace=bus)
    session.run(args.duration, warmup=args.warmup)
    selected = list(bus.select(names=wanted, since=args.since, until=args.until))

    handle = open(args.output, "w", newline="") if args.output else sys.stdout
    try:
        if args.format == "jsonl":
            export.dump_trace_jsonl(handle, selected)
        elif args.format == "csv":
            rows = list(export.trace_to_dicts(selected))
            fields = sorted({k for row in rows for k in row} - {"t", "event"})
            import csv as _csv

            writer = _csv.DictWriter(
                handle, fieldnames=["t", "event"] + fields, extrasaction="ignore"
            )
            writer.writeheader()
            writer.writerows(rows)
        elif args.format == "table":
            for event in selected:
                fields = " ".join(f"{k}={v}" for k, v in event.fields.items())
                handle.write(f"{event.time:12.6f}  {event.name:<20} {fields}\n")
        else:  # summary
            for subsystem, names in sorted(bus.counters_by_subsystem().items()):
                handle.write(f"{subsystem}\n")
                for name, count in names.items():
                    handle.write(f"  {name:<20} {count}\n")
    finally:
        if handle is not sys.stdout:
            handle.close()
    print(
        f"{len(selected)} event(s) dumped "
        f"({sum(bus.counters.values())} emitted, {bus.dropped} evicted)",
        file=sys.stderr,
    )
    return 0


def _open_ledger(args, command: str):
    """Open a run ledger when ``--run-dir``/``REPRO_RUN_DIR`` opted in.

    Returns None otherwise.  The manifest's config snapshot is the full
    parsed argument namespace (JSON-safe plain values only).
    """
    from repro.obs.ledger import RunLedger, resolve_run_root

    root = resolve_run_root(getattr(args, "run_dir", None))
    if root is None:
        return None
    config = {
        key: value
        for key, value in sorted(vars(args).items())
        if isinstance(value, (str, int, float, bool, type(None)))
    }
    ledger = RunLedger.open(command, config=config, root=root)
    print(f"run ledger: {ledger.run_dir}", file=sys.stderr)
    return ledger


def _finish_ledger(ledger, meter=None) -> None:
    """Seal a ledgered run: cache-stats copy, then the final manifest."""
    if ledger is None:
        return
    from repro.experiments import cache

    ledger.write_cache_stats(cache.stats())
    ledger.finish("ok", meter=meter)
    print(f"run ledger sealed: {ledger.manifest_path}", file=sys.stderr)


def _render_metrics(args, fleet, header: str) -> None:
    """Render a fleet registry to ``--output``/stdout in ``--format``."""
    from repro.obs.metrics import METRIC_CATALOGUE

    handle = open(args.output, "w") if args.output else sys.stdout
    try:
        if args.format == "openmetrics":
            handle.write(export.metrics_to_openmetrics(fleet))
        elif args.format == "json":
            handle.write(json.dumps(export.metrics_to_dict(fleet), indent=1) + "\n")
        else:  # summary
            handle.write(header)
            handle.write("counters\n")
            for subsystem, names in sorted(
                fleet.metrics.counters_by_subsystem().items()
            ):
                handle.write(f"  {subsystem}\n")
                for name, value in names.items():
                    handle.write(f"    {name:<28} {value:g}\n")
            if fleet.metrics.gauges:
                handle.write("gauges\n")
                for name, value in sorted(fleet.metrics.gauges.items()):
                    handle.write(f"  {name:<30} {value:g}\n")
            for name, hist in sorted(fleet.metrics.histograms().items()):
                unit = METRIC_CATALOGUE[name].unit if name in METRIC_CATALOGUE else ""
                unit_txt = f" ({unit})" if unit else ""
                handle.write(
                    f"{name}{unit_txt}: count={hist.count} "
                    f"mean={hist.sum / hist.count if hist.count else 0.0:.3g}\n"
                )
                labels = [f"<={bound:g}" for bound in hist.buckets] + ["+Inf"]
                handle.write(bar_chart(labels, [float(c) for c in hist.counts]))
                handle.write("\n")
            spans = fleet.spans.as_dict()
            if spans:
                handle.write("spans (wall clock)\n")
                for name, stats in spans.items():
                    handle.write(
                        f"  {name:<22} count={stats['count']:<8} "
                        f"mean={stats['mean_s'] * 1e3:8.3f} ms  "
                        f"max={stats['max_s'] * 1e3:8.3f} ms  "
                        f"total={stats['total_s']:.3f} s\n"
                    )
    finally:
        if handle is not sys.stdout:
            handle.close()
    if args.output:
        print(f"metrics written to {args.output}", file=sys.stderr)


def cmd_metrics(args) -> int:
    from repro.experiments.parallel import resolve_jobs
    from repro.service.jobs import execute_job, normalise_spec

    if args.from_run:
        from repro.obs.ledger import load_registry

        try:
            fleet = load_registry(args.from_run)
        except (OSError, json.JSONDecodeError, ValueError) as error:
            print(f"error: cannot load run registry: {error}", file=sys.stderr)
            return 2
        _render_metrics(args, fleet, header=f"run={args.from_run}\n")
        return 0
    try:
        spec = normalise_spec(
            {
                "kind": "metrics",
                "scenario": args.scenario,
                "duration": args.duration,
                "warmup": args.warmup,
                "seed": args.seed,
                "scheme": args.scheme,
                "transport": args.transport,
                "profile": args.profile,
                "sessions": args.sessions,
                "batch": args.batch,
            }
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    workers = resolve_jobs(args.jobs)
    ledger = _open_ledger(args, "metrics")

    unit = "cohort" if args.batch else "session"

    def _stderr_progress(done: int, total: int, _result) -> None:
        print(f"  {unit} {done}/{total} done", file=sys.stderr)

    inner = _stderr_progress if args.progress else None
    try:
        outcome = execute_job(spec, jobs=args.jobs, ledger=ledger, progress=inner)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        if ledger is not None and not ledger.finished:
            ledger.finish("error", error=str(error))
        return 2
    except BaseException:
        if ledger is not None and not ledger.finished:
            ledger.finish("error")
        raise
    fleet = outcome.meter
    _render_metrics(
        args, fleet, header=f"sessions={args.sessions} workers={workers}\n"
    )
    _finish_ledger(ledger, meter=fleet)
    return 0


def cmd_fleet(args) -> int:
    from repro.experiments.parallel import resolve_jobs
    from repro.service.jobs import execute_job, normalise_spec

    try:
        spec = normalise_spec(
            {
                "kind": "fleet",
                "scenario": args.scenario,
                "scheme": args.scheme,
                "transport": args.transport,
                "duration": args.duration,
                "warmup": args.warmup,
                "seed": args.seed,
                "calls": args.calls,
                "cells": args.cells,
                "prb_budget": args.prb_budget,
                "background_ues": args.background_ues,
                "background_load": args.background_load,
                "rotate_profiles": args.rotate_profiles,
                "batch": args.batch,
            }
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    ledger = _open_ledger(args, "fleet")

    unit = "cell block" if args.batch else "cell"

    def _stderr_progress(done: int, total: int, _result) -> None:
        print(f"  {unit} {done}/{total} done", file=sys.stderr)

    inner = _stderr_progress if args.progress else None
    try:
        outcome = execute_job(spec, jobs=args.jobs, ledger=ledger, progress=inner)
    except BaseException:
        if ledger is not None and not ledger.finished:
            ledger.finish("error")
        raise
    payload = outcome.payload
    rows = payload["points"]
    if args.json:
        print(json.dumps(payload, indent=1))
    else:
        print(
            f"scenario={args.scenario} scheme={args.scheme} "
            f"transport={args.transport} cells={args.cells} "
            f"prb_budget={args.prb_budget} "
            f"background={args.background_ues}@{args.background_load:g} "
            f"workers={resolve_jobs(args.jobs)}"
        )
        keys = list(rows[0].keys())
        widths = {k: max(len(k), max(len(str(r[k])) for r in rows)) for k in keys}
        print("  ".join(k.ljust(widths[k]) for k in keys))
        for row in rows:
            print("  ".join(str(row[k]).ljust(widths[k]) for k in keys))
        print("\nper-cell Jain fairness")
        for row, jains in zip(rows, payload["cell_jains"]):
            text = " ".join(f"{jain:.4f}" for jain in jains)
            print(f"  calls={row['calls_per_cell']:<4} {text}")
        print("\ncalls-per-cell vs mean MOS")
        mos = [row["mos_mean"] for row in rows]
        print(
            bar_chart(
                [str(row["calls_per_cell"]) for row in rows],
                [0.0 if value != value else value for value in mos],
            )
        )
    if args.metrics_output:
        with open(args.metrics_output, "w") as handle:
            json.dump(outcome.registry, handle, indent=1)
            handle.write("\n")
        print(f"fleet registry written to {args.metrics_output}", file=sys.stderr)
    _finish_ledger(ledger, meter=outcome.meter)
    return 0


def cmd_sweep(args) -> int:
    rows = []
    for scheme in SCHEMES:
        for transport in TRANSPORTS:
            if transport == "fbcc" and args.scenario == "wireline":
                continue
            summary = _run_one(args, scheme, transport).summary
            rows.append(summary.to_dict())
    if args.json:
        print(json.dumps(rows, indent=1))
        return 0
    keys = list(rows[0].keys())
    widths = {k: max(len(k), max(len(str(r[k])) for r in rows)) for k in keys}
    print("  ".join(k.ljust(widths[k]) for k in keys))
    for row in rows:
        print("  ".join(str(row[k]).ljust(widths[k]) for k in keys))
    return 0


def cmd_scenarios(_args) -> int:
    for name in sorted(SCENARIOS):
        config = scenario(name)
        if config.path.access == "lte":
            channel = config.lte.channel
            detail = (
                f"LTE, rss {channel.rss_dbm:g} dBm, load "
                f"{config.lte.cell.background_load:g}, {channel.speed_mph:g} mph"
            )
        else:
            detail = f"wireline, {config.path.wireline.rate_bps / 1e6:g} Mbps"
        print(f"  {name:<16} {detail}")
    return 0


def cmd_report(args) -> int:
    from repro.experiments import report
    from repro.experiments.parallel import set_default_jobs

    if args.jobs is not None:
        set_default_jobs(args.jobs)
    argv = ["--scale", args.scale]
    if args.only:
        argv += ["--only", args.only]
    return report.main(argv)


def cmd_cache(args) -> int:
    from repro.experiments import cache

    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached condition(s) from {cache.cache_dir()}")
        return 0
    info = cache.stats()
    print(f"path            {info['path']}")
    print(f"code salt       {info['code_salt']}")
    print(f"current entries {info['current_entries']}")
    print(f"stale entries   {info['stale_entries']}")
    print(f"total size      {info['total_bytes'] / 1e6:.2f} MB")
    print(f"entry hits      {info['entry_hits']}")
    print(f"entry misses    {info['entry_misses']}")
    print(f"session hits    {info['session_hits']}")
    print(f"sessions stored {info['sessions_stored']}")
    return 0


def cmd_profile(args) -> int:
    import cProfile
    import pstats

    config = scenario(
        args.scenario,
        scheme=args.scheme,
        transport=args.transport,
        duration=args.duration,
        seed=args.seed,
    )
    profiler = cProfile.Profile()
    profiler.enable()
    run_session(config, warmup=args.warmup)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats(args.sort).print_stats(args.limit)
    if args.output:
        stats.dump_stats(args.output)
        print(f"profile data written to {args.output} (open with snakeviz/pstats)")
    return 0


def cmd_perf(args) -> int:
    from repro.experiments.perf import run_perf_bench

    ledger = _open_ledger(args, "perf")
    try:
        record = run_perf_bench(
            duration=args.duration,
            warmup=args.warmup,
            jobs=args.jobs,
            output=args.output,
            batch=args.batch,
            fleet_batch=args.fleet_batch,
            ledger=ledger,
        )
    except BaseException:
        if ledger is not None and not ledger.finished:
            ledger.finish("error")
        raise
    print(json.dumps(record, indent=1))
    _finish_ledger(ledger)
    return 0


def cmd_serve(args) -> int:
    import threading as _threading

    from repro.obs.ledger import DEFAULT_RUN_ROOT, resolve_run_root
    from repro.service.jobs import JobRegistry
    from repro.service.server import ServiceServer

    root = resolve_run_root(args.run_root)
    if root is None:
        from pathlib import Path

        root = Path(DEFAULT_RUN_ROOT)
    registry = JobRegistry(root, workers=args.workers, jobs=args.jobs)
    server = ServiceServer(registry, host=args.host, port=args.port)
    # The URL is the machine interface (scripts capture it to find the
    # ephemeral port); everything else goes to stderr.
    print(server.url, flush=True)
    print(
        f"serving jobs from {root} "
        f"({args.workers} worker thread(s), jobs={args.jobs})",
        file=sys.stderr,
    )
    if args.gc_keep_days is not None:
        from time import sleep as _sleep

        def _gc_loop() -> None:
            while True:
                _sleep(args.gc_interval)
                removed = registry.gc(args.gc_keep_days)
                if removed:
                    print(
                        f"gc: removed {len(removed)} sealed run(s)",
                        file=sys.stderr,
                    )

        _threading.Thread(
            target=_gc_loop, name="repro-serve-gc", daemon=True
        ).start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.close()
    return 0


def _parse_spec(args) -> dict:
    """Build a job spec from ``repro360 submit`` arguments."""
    if args.spec:
        spec = json.loads(args.spec)
        if not isinstance(spec, dict):
            raise ValueError("--spec must be a JSON object")
    elif args.kind:
        spec = {"kind": args.kind}
    else:
        raise ValueError("give a job KIND or --spec JSON")
    for pair in args.set or []:
        key, sep, raw = pair.partition("=")
        if not sep:
            raise ValueError(f"--set needs key=value, got {pair!r}")
        try:
            spec[key] = json.loads(raw)
        except ValueError:
            spec[key] = raw  # bare strings (scenario names, schemes...)
    return spec


def cmd_submit(args) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        spec = _parse_spec(args)
        job = client.submit(spec)
        if args.wait and job["state"] not in ("done", "failed", "cancelled"):
            job = client.wait(job["id"], timeout=args.timeout)
    except (ValueError, ServiceError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(job, indent=1))
    else:
        hit = " (cache hit)" if job.get("cache_hit") else ""
        print(f"{job['id']} {job['state']}{hit}")
        if job.get("run_dir"):
            print(f"  run dir: {job['run_dir']}")
        if job.get("error"):
            print(f"  error: {job['error']}")
    return 0 if job["state"] in ("queued", "running", "done") else 1


def cmd_jobs(args) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.action == "cancel":
            if not args.id:
                print("error: cancel needs a job id", file=sys.stderr)
                return 2
            cancelled = client.cancel(args.id)
            print(f"{args.id} {'cancelled' if cancelled else 'not active'}")
            return 0
        if args.action == "show":
            if not args.id:
                print("error: show needs a job id", file=sys.stderr)
                return 2
            print(json.dumps(client.job(args.id), indent=1))
            return 0
        rows = client.jobs()
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(rows, indent=1))
        return 0
    if not rows:
        print("no jobs")
        return 0
    for job in rows:
        progress = ""
        if job.get("total"):
            progress = f" {job['done']}/{job['total']}"
            if job.get("eta_s") is not None:
                progress += f" eta {job['eta_s']:g}s"
        hit = " cache-hit" if job.get("cache_hit") else ""
        print(f"  {job['id']}  {job['kind']:<8} {job['state']:<10}{hit}{progress}")
    return 0


def cmd_runs(args) -> int:
    from pathlib import Path

    from repro.obs.ledger import (
        DEFAULT_RUN_ROOT,
        DEFAULT_STALE_AFTER_S,
        gc_runs,
        list_runs,
        resolve_run_root,
    )

    root = resolve_run_root(args.root)
    if root is None:
        root = Path(DEFAULT_RUN_ROOT)
    stale = (
        args.stale_after if args.stale_after is not None else DEFAULT_STALE_AFTER_S
    )
    if args.runs_command == "gc":
        removed, kept = gc_runs(
            root,
            keep_days=args.keep_days,
            dry_run=args.dry_run,
            stale_after_s=stale,
        )
        verb = "would remove" if args.dry_run else "removed"
        for info in removed:
            print(f"  {verb} {info.run_dir} ({info.status})")
        print(
            f"{verb} {len(removed)} run(s), kept {len(kept)} "
            f"(cutoff {args.keep_days:g} day(s))"
        )
        return 0
    runs = list_runs(root, stale_after_s=stale)
    if args.json:
        print(json.dumps([info.to_dict() for info in runs], indent=1))
        return 0
    if not runs:
        print(f"no runs under {root}")
        return 0
    for info in runs:
        age = info.age_s
        span = (
            f"{age:.0f}s" if age < 120 else
            f"{age / 60:.0f}m" if age < 7200 else
            f"{age / 3600:.1f}h"
        )
        print(
            f"  {info.run_id:<44} {info.status:<10} age {span:>6}  "
            f"{info.size_bytes / 1e3:8.1f} kB  {info.heartbeats} beat(s)"
        )
    return 0


def _watch_render(run_dir) -> str:
    """One full ``repro360 watch`` report of a run directory."""
    from repro.obs.ledger import (
        read_heartbeats,
        read_manifest,
        snapshot_paths,
    )

    manifest = read_manifest(run_dir)
    beats = read_heartbeats(run_dir)
    snapshots = snapshot_paths(run_dir)
    lines = [
        f"run {manifest.get('run_id')}  command={manifest.get('command')}  "
        f"status={manifest.get('status')}",
        f"  started {manifest.get('started_iso')}"
        + (
            f"  finished after {manifest['elapsed_s']:g} s"
            if "elapsed_s" in manifest
            else ""
        ),
    ]
    if manifest.get("code_salt"):
        lines.append(f"  code salt {manifest['code_salt']}")
    # Last parent-side record per stream kind (session/cell/leg beats
    # carry done/total/eta; cohort beats are keyed per (pid, cohort)).
    parents = {}
    cohorts = {}
    for record in beats:
        kind = record.get("kind")
        if kind == "cohort":
            cohorts[(record.get("pid"), record.get("cohort"))] = record
        else:
            parents[kind] = record
    lines.append(f"heartbeats: {len(beats)} record(s)")
    for kind, record in sorted(parents.items()):
        done, total = record.get("done"), record.get("total")
        eta = record.get("eta_s")
        detail = "" if done is None else f" {done}/{total}"
        if record.get("leg"):
            detail += f" leg={record['leg']}"
        if eta is not None:
            detail += f" eta {eta:g} s"
        lines.append(f"  {kind:<8}{detail}  (elapsed {record.get('elapsed_s')} s)")
    for (pid, label), record in sorted(
        cohorts.items(), key=lambda item: (str(item[0][0]), str(item[0][1]))
    ):
        eta = record.get("eta_s")
        eta_txt = "" if eta is None else f" eta {eta:g} s"
        lines.append(
            f"  cohort pid={pid} label={label} tick {record.get('tick')}/"
            f"{record.get('ticks')} x{record.get('sessions')} sessions{eta_txt}"
        )
    if snapshots:
        lines.append(f"snapshots: {len(snapshots)} (latest {snapshots[-1].name})")
        lines.append("  headline counters (latest snapshot)")
        for raw in snapshots[-1].read_text().splitlines():
            if raw.startswith("#") or not raw.strip():
                continue
            name, _, value = raw.partition(" ")
            if name.endswith("_total") and name.startswith(
                ("repro_fleet_", "repro_batch_", "repro_session_")
            ):
                lines.append(f"    {name:<34} {value}")
    else:
        lines.append("snapshots: none yet")
    return "\n".join(lines)


def _watch_remote(args) -> int:
    """``repro360 watch --url``: follow a server job instead of a dir."""
    import time as _time

    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    seen = 0
    try:
        while True:
            job = client.job(args.run_dir)
            progress = ""
            if job.get("total"):
                progress = f" {job['done']}/{job['total']}"
                if job.get("eta_s") is not None:
                    progress += f" eta {job['eta_s']:g}s"
            print(f"{job['id']} {job['kind']} {job['state']}{progress}")
            for record in client.events(args.run_dir, since=seen):
                seen += 1
                print(f"  {json.dumps(record, sort_keys=True)}")
            if job["state"] in ("done", "failed", "cancelled") or not args.follow:
                if job.get("error"):
                    print(f"error: {job['error']}", file=sys.stderr)
                return 0 if job["state"] in ("done", "queued", "running") else 1
            _time.sleep(args.interval)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def cmd_watch(args) -> int:
    import time as _time
    from pathlib import Path

    from repro.obs.ledger import MANIFEST_NAME, read_manifest

    if args.url:
        return _watch_remote(args)
    run_dir = Path(args.run_dir)
    if not (run_dir / MANIFEST_NAME).exists():
        print(f"error: no {MANIFEST_NAME} in {run_dir}", file=sys.stderr)
        return 2
    if not args.follow:
        print(_watch_render(run_dir))
        return 0
    while True:
        print(_watch_render(run_dir))
        print()
        if read_manifest(run_dir).get("status") != "running":
            return 0
        _time.sleep(args.interval)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro360", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one telephony session")
    _add_session_args(run_parser)
    run_parser.add_argument("--scheme", default="poi360", choices=SCHEMES)
    run_parser.add_argument("--transport", default="fbcc", choices=TRANSPORTS)
    run_parser.add_argument("--json", action="store_true")
    run_parser.add_argument("--export", metavar="FILE.json", default=None)
    run_parser.add_argument("--export-csv", metavar="FILE.csv", default=None)
    run_parser.set_defaults(func=cmd_run)

    trace_parser = sub.add_parser(
        "trace", help="run one session with event tracing and dump the trace"
    )
    trace_parser.add_argument("--scenario", default="cellular", choices=sorted(SCENARIOS))
    trace_parser.add_argument("--duration", type=float, default=30.0)
    trace_parser.add_argument(
        "--warmup",
        type=float,
        default=0.0,
        help="seconds simulated before t=0 of the trace window (default 0: "
        "trace the whole run, including convergence)",
    )
    trace_parser.add_argument("--seed", type=int, default=1)
    trace_parser.add_argument("--scheme", default="poi360", choices=SCHEMES)
    trace_parser.add_argument("--transport", default="fbcc", choices=TRANSPORTS)
    trace_parser.add_argument(
        "--events",
        default=None,
        metavar="NAME[,NAME...]",
        help="only these catalogue events (default: all)",
    )
    trace_parser.add_argument("--since", type=float, default=None, metavar="SECONDS")
    trace_parser.add_argument("--until", type=float, default=None, metavar="SECONDS")
    trace_parser.add_argument(
        "--format", choices=("jsonl", "csv", "table", "summary"), default="jsonl"
    )
    trace_parser.add_argument("--output", metavar="FILE", default=None)
    trace_parser.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="trace ring size in events (default: repro.obs.DEFAULT_CAPACITY)",
    )
    trace_parser.set_defaults(func=cmd_trace)

    metrics_parser = sub.add_parser(
        "metrics", help="metered sweep: fleet metrics registry + span timings"
    )
    metrics_parser.add_argument(
        "--scenario", default="cellular", choices=sorted(SCENARIOS)
    )
    metrics_parser.add_argument("--duration", type=float, default=30.0)
    metrics_parser.add_argument("--warmup", type=float, default=0.0)
    metrics_parser.add_argument("--seed", type=int, default=1)
    metrics_parser.add_argument("--scheme", default="poi360", choices=SCHEMES)
    metrics_parser.add_argument("--transport", default="fbcc", choices=TRANSPORTS)
    metrics_parser.add_argument(
        "--profile",
        default="user2-typical",
        help="user profile applied to every session (see repro.roi.users)",
    )
    metrics_parser.add_argument(
        "--sessions",
        type=int,
        default=1,
        help="number of sessions to run (seeds seed..seed+N-1)",
    )
    metrics_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the sweep (0 = all cores; "
        "default: REPRO_JOBS or serial)",
    )
    metrics_parser.add_argument(
        "--format", choices=("summary", "openmetrics", "json"), default="summary"
    )
    metrics_parser.add_argument("--output", metavar="FILE", default=None)
    metrics_parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-session completion lines to stderr",
    )
    metrics_parser.add_argument(
        "--batch",
        action="store_true",
        help="run the sweep as lockstep cohorts on the batched engine "
        "(scenario coerced to the 1 ms grid; registry comes from the "
        "engine's live cohort meters)",
    )
    metrics_parser.add_argument(
        "--run-dir",
        metavar="DIR",
        default=None,
        help="open a run ledger under DIR (or REPRO_RUN_DIR): manifest, "
        "live heartbeat stream, periodic OpenMetrics snapshots "
        "(docs/OBSERVABILITY.md)",
    )
    metrics_parser.add_argument(
        "--from-run",
        metavar="RUN_DIR",
        default=None,
        help="skip running: render the final registry artifact of a "
        "completed run directory instead",
    )
    metrics_parser.set_defaults(func=cmd_metrics)

    fleet_parser = sub.add_parser(
        "fleet", help="multi-UE shared-cell capacity sweep (docs/FLEET.md)"
    )
    fleet_parser.add_argument(
        "--scenario", default="cellular", choices=sorted(SCENARIOS)
    )
    fleet_parser.add_argument("--scheme", default="poi360", choices=SCHEMES)
    fleet_parser.add_argument("--transport", default="fbcc", choices=TRANSPORTS)
    fleet_parser.add_argument("--duration", type=float, default=30.0)
    fleet_parser.add_argument("--warmup", type=float, default=5.0)
    fleet_parser.add_argument("--seed", type=int, default=1)
    fleet_parser.add_argument(
        "--calls",
        default="1,2,4,8",
        metavar="N[,N...]",
        help="calls-per-cell values to sweep (default 1,2,4,8)",
    )
    fleet_parser.add_argument(
        "--cells",
        type=int,
        default=1,
        help="independent cells per calls-per-cell value (default 1)",
    )
    fleet_parser.add_argument(
        "--prb-budget",
        type=int,
        default=50,
        help="PRBs one cell can grant per 1 ms subframe (default 50; "
        "smaller models a narrower carrier)",
    )
    fleet_parser.add_argument(
        "--background-ues",
        type=int,
        default=0,
        help="scheduled background UEs sharing each cell (default 0)",
    )
    fleet_parser.add_argument(
        "--background-load",
        type=float,
        default=0.2,
        help="long-run load fraction of the background population "
        "(only with --background-ues > 0)",
    )
    fleet_parser.add_argument(
        "--rotate-profiles",
        action="store_true",
        help="rotate the named user profiles across a cell's members "
        "(default: identical callers; incompatible with --batch)",
    )
    fleet_parser.add_argument(
        "--batch",
        action="store_true",
        help="run the sweep on the batched cell engine (whole cell "
        "blocks per lockstep tick; scenario coerced to the 1 ms grid "
        "at 25 fps — see docs/FLEET.md)",
    )
    fleet_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes; whole cells shard (0 = all cores; "
        "default: REPRO_JOBS or serial)",
    )
    fleet_parser.add_argument("--json", action="store_true")
    fleet_parser.add_argument(
        "--meter",
        action="store_true",
        help="attach per-cell/per-member meters (implied by --metrics-output)",
    )
    fleet_parser.add_argument(
        "--metrics-output",
        metavar="FILE.json",
        default=None,
        help="write the merged fleet registry (counters + histograms "
        "only — deterministic, serial == sharded) as JSON",
    )
    fleet_parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-cell completion lines to stderr",
    )
    fleet_parser.add_argument(
        "--run-dir",
        metavar="DIR",
        default=None,
        help="open a run ledger under DIR (or REPRO_RUN_DIR); implies "
        "--meter (docs/OBSERVABILITY.md)",
    )
    fleet_parser.set_defaults(func=cmd_fleet)

    sweep_parser = sub.add_parser("sweep", help="all scheme/transport combos")
    _add_session_args(sweep_parser)
    sweep_parser.add_argument("--json", action="store_true")
    sweep_parser.set_defaults(func=cmd_sweep)

    list_parser = sub.add_parser("scenarios", help="list named scenarios")
    list_parser.set_defaults(func=cmd_scenarios)

    report_parser = sub.add_parser("report", help="paper-vs-measured report")
    report_parser.add_argument("--scale", choices=("quick", "paper"), default="quick")
    report_parser.add_argument("--only", default=None)
    report_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for session fan-out (0 = all cores; "
        "default: REPRO_JOBS or serial)",
    )
    report_parser.set_defaults(func=cmd_report)

    cache_parser = sub.add_parser("cache", help="persistent result cache")
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    cache_sub.add_parser("stats", help="entry count, size, code salt")
    cache_sub.add_parser("clear", help="delete every cached condition")
    cache_parser.set_defaults(func=cmd_cache)

    profile_parser = sub.add_parser("profile", help="cProfile one session")
    _add_session_args(profile_parser)
    profile_parser.add_argument("--scheme", default="poi360", choices=SCHEMES)
    profile_parser.add_argument("--transport", default="gcc", choices=TRANSPORTS)
    profile_parser.add_argument(
        "--sort", default="cumulative", choices=("cumulative", "tottime", "ncalls")
    )
    profile_parser.add_argument("--limit", type=int, default=25)
    profile_parser.add_argument("--output", metavar="FILE.prof", default=None)
    profile_parser.set_defaults(func=cmd_profile)

    perf_parser = sub.add_parser("perf", help="perf microbenchmark -> BENCH_perf.json")
    perf_parser.add_argument(
        "--duration",
        type=float,
        default=30.0,
        help="per-session duration (s) for the micro-grid legs",
    )
    perf_parser.add_argument("--warmup", type=float, default=10.0)
    perf_parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker count for the parallel leg (0 = all cores)",
    )
    perf_parser.add_argument(
        "--batch",
        action="store_true",
        help="also bench the batched lockstep engine (cohort throughput "
        "vs the serial engine)",
    )
    perf_parser.add_argument(
        "--fleet-batch",
        action="store_true",
        help="also bench the batched shared-cell engine (C cells x N "
        "members per tick vs the scalar cell reference)",
    )
    perf_parser.add_argument("--output", metavar="FILE.json", default="BENCH_perf.json")
    perf_parser.add_argument(
        "--run-dir",
        metavar="DIR",
        default=None,
        help="open a run ledger under DIR (or REPRO_RUN_DIR); each "
        "finished leg appends a heartbeat record",
    )
    perf_parser.set_defaults(func=cmd_perf)

    watch_parser = sub.add_parser(
        "watch", help="inspect (or tail) a run-ledger directory or server job"
    )
    watch_parser.add_argument(
        "run_dir",
        metavar="RUN_DIR_OR_JOB",
        help="a run directory holding manifest.json (or, with --url, a "
        "server job id)",
    )
    watch_parser.add_argument(
        "--follow",
        action="store_true",
        help="re-render every --interval seconds until the run finishes",
    )
    watch_parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between --follow renders (default 2)",
    )
    watch_parser.add_argument(
        "--url",
        metavar="URL",
        default=None,
        help="watch a job on a repro360 serve instance instead of a "
        "local run directory (positional becomes the job id)",
    )
    watch_parser.set_defaults(func=cmd_watch)

    serve_parser = sub.add_parser(
        "serve",
        help="long-running job-queue server with live telemetry "
        "(docs/OBSERVABILITY.md, Service mode)",
    )
    serve_parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1; exposing the simulator "
        "beyond the host is an explicit choice)",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8360,
        help="TCP port (0 = ephemeral; the resolved URL is printed on "
        "stdout either way)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrent jobs (worker threads; default 2)",
    )
    serve_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes *per job* for session fan-out (0 = all "
        "cores; default: REPRO_JOBS or serial)",
    )
    serve_parser.add_argument(
        "--run-root",
        metavar="DIR",
        default=None,
        help="run root for job ledgers (default: REPRO_RUN_DIR or "
        ".repro_runs)",
    )
    serve_parser.add_argument(
        "--gc-keep-days",
        type=float,
        default=None,
        metavar="DAYS",
        help="prune sealed job runs older than DAYS in the background "
        "(default: never)",
    )
    serve_parser.add_argument(
        "--gc-interval",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="seconds between background GC passes (default 3600)",
    )
    serve_parser.set_defaults(func=cmd_serve)

    submit_parser = sub.add_parser(
        "submit", help="submit a job to a repro360 serve instance"
    )
    submit_parser.add_argument(
        "kind",
        nargs="?",
        choices=("metrics", "fleet", "perf"),
        help="job kind (omit when giving the full --spec)",
    )
    submit_parser.add_argument(
        "--url", required=True, help="server base URL (repro360 serve output)"
    )
    submit_parser.add_argument(
        "--spec",
        metavar="JSON",
        default=None,
        help='full job spec as JSON, e.g. \'{"kind": "fleet", "calls": [1, 2]}\'',
    )
    submit_parser.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="override one spec field (VALUE parsed as JSON, else "
        "string); repeatable",
    )
    submit_parser.add_argument(
        "--wait",
        action="store_true",
        help="block until the job reaches a terminal state",
    )
    submit_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up --wait after SECONDS (job keeps running server-side)",
    )
    submit_parser.add_argument(
        "--json", action="store_true", help="print the full job record"
    )
    submit_parser.set_defaults(func=cmd_submit)

    jobs_parser = sub.add_parser(
        "jobs", help="list/show/cancel jobs on a repro360 serve instance"
    )
    jobs_parser.add_argument(
        "action",
        nargs="?",
        default="list",
        choices=("list", "show", "cancel"),
    )
    jobs_parser.add_argument("id", nargs="?", default=None, help="job id")
    jobs_parser.add_argument(
        "--url", required=True, help="server base URL (repro360 serve output)"
    )
    jobs_parser.add_argument("--json", action="store_true")
    jobs_parser.set_defaults(func=cmd_jobs)

    runs_parser = sub.add_parser(
        "runs", help="list or prune run-ledger directories"
    )
    runs_sub = runs_parser.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser(
        "list", help="every run under the root: status, age, size"
    )
    runs_gc = runs_sub.add_parser(
        "gc", help="prune sealed (or stale) runs older than --keep-days"
    )
    for sub_parser in (runs_list, runs_gc):
        sub_parser.add_argument(
            "--root",
            metavar="DIR",
            default=None,
            help="run root (default: REPRO_RUN_DIR or .repro_runs)",
        )
        sub_parser.add_argument(
            "--stale-after",
            type=float,
            default=None,
            metavar="SECONDS",
            help="age beyond which a 'running' run counts as abandoned "
            "(default 900)",
        )
    runs_list.add_argument("--json", action="store_true")
    runs_gc.add_argument(
        "--keep-days",
        type=float,
        default=7.0,
        metavar="DAYS",
        help="retention window for sealed runs (default 7)",
    )
    runs_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without deleting",
    )
    runs_parser.set_defaults(func=cmd_runs)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
