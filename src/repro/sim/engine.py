"""A small discrete-event simulation engine.

The engine combines a classic heap-based event queue with convenience
helpers for **periodic processes** (LTE subframes every 1 ms, diag reports
every 40 ms, video frames every 1/30 s, …).  Components never busy-wait:
everything is a scheduled callback, so simulated seconds cost nothing when
nothing happens.

Determinism: events scheduled for the same instant fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a run
is fully reproducible given the RNG seed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple


class CancelledError(RuntimeError):
    """Raised when interacting with a cancelled event handle."""


class EventHandle:
    """Handle returned by :meth:`Simulation.schedule`; supports cancel()."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (safe to call multiple times)."""
        self.cancelled = True


class Simulation:
    """Event-driven simulation clock.

    Example
    -------
    >>> sim = Simulation()
    >>> hits = []
    >>> sim.every(0.010, lambda: hits.append(sim.now))
    <repro.sim.engine.EventHandle object at ...>
    >>> sim.run(0.035)
    >>> len(hits)
    3
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._queue: List[Tuple[float, int, EventHandle, Callable[..., Any], tuple]] = []
        self._sequence = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` seconds (>= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay!r})")
        if not math.isfinite(delay):
            raise ValueError(f"delay must be finite (delay={delay!r})")
        handle = EventHandle()
        heapq.heappush(
            self._queue, (self._now + delay, next(self._sequence), handle, callback, args)
        )
        return handle

    def at(self, when: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute time ``when``."""
        return self.schedule(when - self._now, callback, *args)

    def every(
        self,
        period: float,
        callback: Callable[..., Any],
        *args: Any,
        phase: float = 0.0,
    ) -> EventHandle:
        """Run ``callback(*args)`` every ``period`` seconds.

        The first invocation happens at ``now + phase + period`` unless a
        ``phase`` of zero is given, in which case the first invocation is
        one full period from now.  The returned handle cancels the whole
        periodic process.
        """
        if period <= 0:
            raise ValueError(f"period must be positive (period={period!r})")
        handle = EventHandle()

        def tick() -> None:
            if handle.cancelled:
                return
            callback(*args)
            if not handle.cancelled:
                heapq.heappush(
                    self._queue,
                    (self._now + period, next(self._sequence), handle, tick, ()),
                )

        heapq.heappush(
            self._queue,
            (self._now + phase + period, next(self._sequence), handle, tick, ()),
        )
        return handle

    def run(self, duration: Optional[float] = None) -> None:
        """Process events until the queue is empty or ``duration`` elapses.

        With a ``duration``, the clock always advances to exactly
        ``start + duration`` even if the queue empties earlier.
        """
        deadline = None if duration is None else self._now + duration
        self._running = True
        try:
            while self._queue:
                when, _seq, handle, callback, args = self._queue[0]
                if deadline is not None and when > deadline:
                    break
                heapq.heappop(self._queue)
                if handle.cancelled:
                    continue
                self._now = when
                callback(*args)
        finally:
            self._running = False
        if deadline is not None:
            self._now = deadline

    def step(self) -> bool:
        """Process a single event; return False when the queue is empty."""
        while self._queue:
            when, _seq, handle, callback, args = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = when
            callback(*args)
            return True
        return False

    def pending(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for _, _, handle, _, _ in self._queue if not handle.cancelled)
