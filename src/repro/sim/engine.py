"""A small discrete-event simulation engine.

The engine combines a classic heap-based event queue with convenience
helpers for **periodic processes** (LTE subframes every 1 ms, diag reports
every 40 ms, video frames every 1/30 s, …).  Components never busy-wait:
everything is a scheduled callback, so simulated seconds cost nothing when
nothing happens.

Periodic processes that are idle most of the time (an LTE uplink with an
empty firmware buffer, a downlink with an empty queue) can avoid paying
for their idle ticks with :meth:`Simulation.every_while`: the callback
returns a falsy value to pause itself, and a producer wakes it with
:meth:`PeriodicHandle.wake` — ticks stay on the original time grid, so
the process is indistinguishable from one that ticked all along.

Determinism: events scheduled for the same instant fire in scheduling
order (a monotonically increasing sequence number breaks ties), so a run
is fully reproducible given the RNG seed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional, Tuple

from repro.obs.bus import NULL_BUS
from repro.obs.meter import NULL_METER

#: Compact the heap only when at least this many cancelled entries are
#: buried in it (avoids rebuilding tiny queues over and over).
_COMPACT_MIN_DEAD = 64


class CancelledError(RuntimeError):
    """Raised when interacting with a cancelled event handle."""


class EventHandle:
    """Handle returned by :meth:`Simulation.schedule`; supports cancel().

    The handle participates in the engine's live-event accounting: the
    owning :class:`Simulation` keeps an O(1) count of queued,
    non-cancelled events, and cancelling a handle immediately removes
    its queued entries from that count (the heap entries themselves are
    dropped lazily).
    """

    __slots__ = ("cancelled", "_sim", "_queued")

    def __init__(self, sim: Optional["Simulation"] = None) -> None:
        self.cancelled = False
        self._sim = sim
        #: Number of entries currently sitting in the owning queue.
        self._queued = 0

    def cancel(self) -> None:
        """Prevent the event from firing (safe to call multiple times)."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None and self._queued:
            sim._live -= self._queued
            sim._maybe_compact()


class PeriodicHandle(EventHandle):
    """Handle of an :meth:`Simulation.every_while` periodic process.

    Besides ``cancel()`` it supports event-driven idling:

    - the process *pauses* when its callback returns a falsy value — no
      further ticks are scheduled and the heap stays clean;
    - :meth:`wake` resumes ticking on the original time grid (tick
      times are the same float-accumulated instants the process would
      have ticked at had it never paused);
    - while paused, :attr:`next_time` is the instant of the next
      not-yet-taken tick, and :meth:`skip` marks that tick as consumed
      (used by components that backfill bookkeeping for idle ticks).
    """

    __slots__ = ("period", "next_time", "paused", "_callback", "_args")

    def __init__(
        self,
        sim: "Simulation",
        period: float,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        super().__init__(sim)
        self.period = period
        self.next_time = 0.0
        self.paused = False
        self._callback = callback
        self._args = args

    def _fire(self) -> None:
        if self.cancelled:
            return
        keep = self._callback(*self._args)
        sim = self._sim
        self.next_time = sim._now + self.period
        if self.cancelled:
            return
        if keep:
            sim._push(self.next_time, self, self._fire, ())
        else:
            self.paused = True

    def skip(self) -> None:
        """Consume the next pending tick without running it (paused only)."""
        self.next_time += self.period

    def wake(self) -> None:
        """Resume a paused process at its next on-grid tick.

        Ticks whose instant already passed are silently skipped (the
        process was idle for them); a tick landing exactly on the
        current instant fires within this instant, after the currently
        running callback returns.
        """
        if self.cancelled or not self.paused:
            return
        sim = self._sim
        now = sim._now
        nxt = self.next_time
        period = self.period
        while nxt < now:
            nxt += period
        self.next_time = nxt
        self.paused = False
        sim._push(nxt, self, self._fire, ())


class Simulation:
    """Event-driven simulation clock.

    Example
    -------
    >>> sim = Simulation()
    >>> hits = []
    >>> sim.every(0.010, lambda: hits.append(sim.now))
    <repro.sim.engine.EventHandle object at ...>
    >>> sim.run(0.035)
    >>> len(hits)
    3
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._queue: List[Tuple[float, int, EventHandle, Callable[..., Any], tuple]] = []
        self._sequence = itertools.count()
        self._running = False
        #: Queued entries whose handle is not cancelled (O(1) pending()).
        self._live = 0
        #: Observability bus (``repro.obs``); the falsy NULL_BUS unless a
        #: session enables tracing. Only ``run()`` boundaries emit — the
        #: per-event dispatch loop stays untouched.
        self.trace = NULL_BUS
        #: Metrics meter (``repro.obs.meter``); the falsy NULL_METER
        #: unless a session enables metering. ``run()`` selects a
        #: counting dispatch loop only when the meter is live, so the
        #: unmetered hot loop is byte-for-byte the historical one.
        self.meter = NULL_METER

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Queue plumbing
    # ------------------------------------------------------------------

    def _push(
        self,
        when: float,
        handle: EventHandle,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        heapq.heappush(self._queue, (when, next(self._sequence), handle, callback, args))
        handle._queued += 1
        self._live += 1

    def _maybe_compact(self) -> None:
        """Drop cancelled entries when they dominate the heap.

        Cancelled events are normally discarded lazily on pop; a
        workload that cancels many far-future events (timeouts, NACK
        timers) would otherwise keep them resident until their deadline.
        """
        dead = len(self._queue) - self._live
        if dead < _COMPACT_MIN_DEAD or dead * 2 < len(self._queue):
            return
        kept = [entry for entry in self._queue if not entry[2].cancelled]
        for entry in self._queue:
            if entry[2].cancelled:
                entry[2]._queued -= 1
        self._queue = kept
        heapq.heapify(self._queue)

    # ------------------------------------------------------------------
    # Scheduling API
    # ------------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` seconds (>= 0)."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay!r})")
        if not math.isfinite(delay):
            raise ValueError(f"delay must be finite (delay={delay!r})")
        handle = EventHandle(self)
        self._push(self._now + delay, handle, callback, args)
        return handle

    def at(self, when: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute time ``when``."""
        return self.schedule(when - self._now, callback, *args)

    def every(
        self,
        period: float,
        callback: Callable[..., Any],
        *args: Any,
        phase: float = 0.0,
    ) -> EventHandle:
        """Run ``callback(*args)`` every ``period`` seconds.

        The first invocation happens at ``now + phase + period`` unless a
        ``phase`` of zero is given, in which case the first invocation is
        one full period from now.  The returned handle cancels the whole
        periodic process.
        """
        if period <= 0:
            raise ValueError(f"period must be positive (period={period!r})")
        handle = EventHandle(self)

        def tick() -> None:
            if handle.cancelled:
                return
            callback(*args)
            if not handle.cancelled:
                self._push(self._now + period, handle, tick, ())

        self._push(self._now + phase + period, handle, tick, ())
        return handle

    def every_while(
        self,
        period: float,
        callback: Callable[..., Any],
        *args: Any,
        phase: float = 0.0,
    ) -> PeriodicHandle:
        """Periodic process with event-driven idling.

        Like :meth:`every`, but the callback's return value steers the
        process: truthy keeps ticking, falsy pauses it until
        :meth:`PeriodicHandle.wake` is called.  While ticking, the
        schedule is identical to :meth:`every` (same float-accumulated
        tick instants); waking resumes on that same grid.
        """
        if period <= 0:
            raise ValueError(f"period must be positive (period={period!r})")
        handle = PeriodicHandle(self, period, callback, args)
        handle.next_time = self._now + phase + period
        self._push(handle.next_time, handle, handle._fire, ())
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, duration: Optional[float] = None) -> None:
        """Process events until the queue is empty or ``duration`` elapses.

        With a ``duration``, the clock always advances to exactly
        ``start + duration`` even if the queue empties earlier.

        Deadline boundary: events scheduled for exactly ``start +
        duration`` **do fire** during this call — including events a
        callback schedules *at* the deadline while the run is draining —
        and the clock ends at exactly the deadline.  Events strictly
        beyond the deadline stay queued for a later ``run()``.
        """
        deadline = math.inf if duration is None else self._now + duration
        if self.trace:
            self.trace.emit("sim.run_begin", deadline=deadline, pending=self._live)
        queue = self._queue
        pop = heapq.heappop
        meter = self.meter
        dispatched = 0
        self._running = True
        try:
            if meter:
                while queue:
                    entry = queue[0]
                    when = entry[0]
                    if when > deadline:
                        break
                    pop(queue)
                    handle = entry[2]
                    handle._queued -= 1
                    if handle.cancelled:
                        continue
                    self._live -= 1
                    self._now = when
                    dispatched += 1
                    entry[3](*entry[4])
            else:
                while queue:
                    entry = queue[0]
                    when = entry[0]
                    if when > deadline:
                        break
                    pop(queue)
                    handle = entry[2]
                    handle._queued -= 1
                    if handle.cancelled:
                        continue
                    self._live -= 1
                    self._now = when
                    entry[3](*entry[4])
        finally:
            self._running = False
        if deadline is not math.inf:
            self._now = deadline
        if meter:
            meter.inc("sim.runs")
            meter.inc("sim.events", dispatched)
        if self.trace:
            self.trace.emit("sim.run_end", pending=self._live)

    def step(self) -> bool:
        """Process a single event; return False when the queue is empty.

        Metering matches :meth:`run`: every dispatched event increments
        the ``sim.events`` counter when a meter is attached.  ``sim.runs``
        still counts only :meth:`run` invocations — single-stepping a
        simulation is not a run, but the events it dispatches are events.
        """
        while self._queue:
            when, _seq, handle, callback, args = heapq.heappop(self._queue)
            handle._queued -= 1
            if handle.cancelled:
                continue
            self._live -= 1
            self._now = when
            if self.meter:
                self.meter.inc("sim.events")
            callback(*args)
            return True
        return False

    def pending(self) -> int:
        """Number of queued (non-cancelled) events — O(1)."""
        return self._live
