"""Seeded random-number streams, one per simulation component.

Every stochastic component (channel fading, head motion, encoder size
jitter, …) draws from its own :class:`numpy.random.Generator` derived from
a single session seed.  This keeps repetitions independent while making
every experiment exactly reproducible, and — crucially — means adding a
new random component does not perturb the draws seen by existing ones.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RngRegistry:
    """Factory of named, independently-seeded random generators.

    Parameters
    ----------
    seed:
        Session master seed.  Streams are derived by hashing the stream
        name together with this seed, so ``stream("channel")`` is stable
        across runs and independent of ``stream("head_motion")``.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            seed_seq = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(_stable_hash(name),)
            )
            self._streams[name] = np.random.default_rng(seed_seq)
        return self._streams[name]

    def spawn(self, offset: int) -> "RngRegistry":
        """Derive a registry for an independent repetition/run."""
        return RngRegistry(seed=self.seed * 1_000_003 + int(offset) + 1)


_HASH_MEMO: Dict[str, int] = {}


def _stable_hash(name: str) -> int:
    """A process-stable 32-bit hash of ``name`` (``hash()`` is salted)."""
    cached = _HASH_MEMO.get(name)
    if cached is not None:
        return cached
    value = 2166136261
    for char in name.encode("utf-8"):
        value = (value ^ char) * 16777619 % (1 << 32)
    if len(_HASH_MEMO) < 4096:
        _HASH_MEMO[name] = value
    return value
