"""Discrete-time simulation engine used by every POI360 substrate."""

from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry

__all__ = ["Simulation", "RngRegistry"]
