"""Batched lockstep execution: N sessions per 1 ms subframe step.

The event-driven engine (:mod:`repro.sim.engine`) pays Python's
per-event price for every subframe of every session.  But the uplink
lockstep profile (:mod:`repro.telephony.uplink`) puts *every* cadence on
the shared 1 ms LTE subframe grid, so a whole cohort of sessions can be
advanced one tick at a time with per-session state held in
``(n_sessions,)`` numpy arrays — one set of array ops per tick instead
of ``n`` event dispatches.  That is what :class:`BatchedSimulation`
does, and it is the repo's answer to fleet-scale sweeps: aggregate
sessions/sec grows ~linearly with the cohort size until the arrays
dominate (see docs/PERFORMANCE.md, "Batched lockstep engine").

Equivalence contract
--------------------

A cohort of one MUST reproduce :class:`~repro.telephony.uplink.UplinkSession`
**bit-for-bit** — same seeds, same :class:`SessionResult` numbers — and
a cohort of N must equal N scalar runs.  tests/test_batch.py enforces
both.  The machinery making that possible:

- per-session block-drawn RNG streams (:mod:`repro.sim.blocks`) with
  transforms applied block-wise in both engines;
- ``*Array`` twins that perform the scalar classes' float64 ops in the
  same order (:class:`~repro.lte.ue.UeUplinkArray`,
  :class:`~repro.rate_control.fbcc.batch.DetectorArray`, ...);
- rare per-frame events (assembly, jitter, display, PSNR) routed
  through the *same* scalar code both engines share
  (:class:`~repro.telephony.uplink.ReceiverState`).

Cohorts must be *structurally* homogeneous — same grid cadences, same
detector window, same TBS window (see
:meth:`~repro.telephony.uplink.UplinkProfile.signature`).  Everything
parametric (RSS, speed, load, seeds, rates, margins, targets) may vary
per session; :func:`repro.experiments.batch.run_batched_sessions`
slices arbitrary sweep grids into valid cohorts.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SessionConfig
from repro.lte.ue import UeUplinkArray
from repro.metrics.summary import SessionLog, SessionSummary
from repro.obs.meter import coerce_meter
from repro.rate_control.fbcc.batch import (
    DetectorArray,
    EncodingHoldArray,
    RampArray,
    RtpRateArray,
    TbsWindowArray,
)
from repro.rate_control.pacer import PacedSenderArray
from repro.sim.blocks import BlockStreamArray, lognormal_transform
from repro.sim.rng import RngRegistry
from repro.telephony.session import SessionResult
from repro.telephony.uplink import (
    MS,
    SAMPLE_TICKS,
    ReceiverState,
    UplinkProfile,
    _ms_aligned,
    _ticks,
)
from repro.units import BITS_PER_BYTE


def _session_streams(config: SessionConfig):
    registry = RngRegistry(config.seed)
    return lambda name: registry.stream("batch." + name)


#: Grid ticks between ``progress`` callbacks (5000 ticks = 5 s of
#: simulated time) — frequent enough for live heartbeats, rare enough
#: to stay invisible next to the tick body.
DEFAULT_PROGRESS_TICKS = 5000


class BatchedSimulation:
    """Advance a homogeneous cohort of sessions in 1 ms lockstep."""

    def __init__(self, configs: Sequence[SessionConfig]):
        if not configs:
            raise ValueError("empty cohort")
        profiles = [UplinkProfile.from_config(c) for c in configs]
        signature = profiles[0].signature()
        for config, profile in zip(configs[1:], profiles[1:]):
            if profile.signature() != signature:
                raise ValueError(
                    "cohort is not structurally homogeneous: "
                    f"{profile.signature()} != {signature} "
                    "(slice the grid with run_batched_sessions)"
                )
        self.configs = list(configs)
        self.profile = profiles[0]
        n = self.n = len(self.configs)
        streams = [_session_streams(c) for c in self.configs]

        self._ue = UeUplinkArray([c.lte for c in self.configs], streams)
        self._pacer = PacedSenderArray(
            np.array([float(c.video.rtp_payload) for c in self.configs])
        )
        self._noise = BlockStreamArray(
            [streams[s]("frame.noise") for s in range(n)],
            [lognormal_transform(c.video.size_sigma_base) for c in self.configs],
            aligned=True,
        )
        self._receivers = [
            ReceiverState(c.video, streams[s]("recv"))
            for s, c in enumerate(self.configs)
        ]
        self.logs = [SessionLog() for _ in range(n)]

        fbcc = [c.fbcc for c in self.configs]
        diag_interval = self.profile.diag_interval
        self._bandwidth = TbsWindowArray(n, self.profile.tbs_window)
        self._detector = DetectorArray(
            n,
            self.profile.k_consecutive,
            np.array([diag_interval / f.gamma_time_constant for f in fbcc]),
        )
        self._encoding = EncodingHoldArray(
            n,
            np.array([f.phy_rate_margin for f in fbcc]),
            np.array([p.hold_delta for p in profiles]),
        )
        self._ramp = RampArray(
            np.array([c.gcc.start_rate for c in self.configs]),
            np.array([c.gcc.min_rate for c in self.configs]),
            np.array([c.gcc.max_rate for c in self.configs]),
            np.array([c.gcc.beta for c in self.configs]),
            np.array([p.ramp_growth for p in profiles]),
        )
        self._rtp = RtpRateArray(
            np.array([c.gcc.start_rate for c in self.configs]),
            np.array([f.target_buffer for f in fbcc]),
            diag_interval,
            np.array([f.rtp_min_rate for f in fbcc]),
            np.array([f.rtp_max_rate for f in fbcc]),
        )
        self._kf_factor = np.array([c.video.keyframe_factor for c in self.configs])

        #: frame_id -> (capture_s, per-session size_bytes, damaged flags)
        #: — one cohort-wide entry per frame (capture is lockstep, so
        #: the capture instant is shared by the whole cohort).
        self._frames: Dict[int, Tuple[float, List[float], List[bool]]] = {}
        self._next_fid = 0
        self._frame_index = 0
        self._frames_sent = 0
        self._sent_bits = np.zeros(n)
        #: Staged packet-arrival logging: (now, rows, sizes) per drain
        #: round, materialised into per-session (t, bytes) tuple lists
        #: once at the end of the run (a stable sort by session keeps
        #: each session's arrival order).
        self._arrival_stage: List[Tuple[float, np.ndarray, np.ndarray]] = []
        #: (done_tick, frame_id, per-session size_bytes array).
        self._pipe: Deque[Tuple[int, int, np.ndarray]] = deque()
        #: arrival_tick -> [(rows, frame_ids, last, sizes), ...].
        self._in_flight: Dict[int, List[tuple]] = {}
        self._seen_drops = np.zeros(n, dtype=np.int64)
        self._last_level = np.zeros(n)
        self._batch_level_sum = np.zeros(n)
        self._batch_count = 0
        self._sec_tbs = np.zeros(n)
        self._sec_level_sum = np.zeros(n)
        self._sec_count = 0
        self._last_flush_k = 0
        self._baseline_fw_drops = np.zeros(n, dtype=np.int64)
        self._baseline_pacer_drops = np.zeros(n, dtype=np.int64)
        self._baseline_bytes = np.zeros(n)
        #: Per-session earliest pending display instant, plus its scalar
        #: min — the gate that keeps the flush phase off the hot path.
        self._next_display = np.full(n, float("inf"))
        self._next_flush = float("inf")

    # -- tick phases (numbered as in UplinkSession._tick) ---------------

    def _arrivals(self, k: int, now: float) -> None:
        packets = self._in_flight.pop(k, None)
        if packets is None:
            return
        stage = self._arrival_stage
        receivers = self._receivers
        next_display = self._next_display
        for rows, frame_ids, last, sizes in packets:
            stage.append((now, rows, sizes))
            n_last = int(last.sum())
            if not n_last:
                continue
            if n_last == last.size:
                lrows, lfids = rows, frame_ids
            else:
                lrows, lfids = rows[last], frame_ids[last]
            frames = self._frames
            for s, fid in zip(lrows.tolist(), lfids.tolist()):
                capture, frame_sizes, damaged = frames[fid]
                if not damaged[s]:
                    receiver = receivers[s]
                    receiver.on_frame_complete(now, capture, frame_sizes[s])
                    when = receiver.next_display
                    next_display[s] = when
                    if when < self._next_flush:
                        self._next_flush = when

    def _flush_displays(self, now: float) -> None:
        due = np.nonzero(self._next_display <= now)[0]
        for s in due.tolist():
            receiver = self._receivers[s]
            receiver.flush(now, self.logs[s])
            self._next_display[s] = receiver.next_display
        self._next_flush = float(self._next_display.min())

    def _deliver_diag(self, k: int, now: float) -> None:
        mean_level = self._batch_level_sum / self._batch_count
        congested = self._detector.on_report_level(mean_level)
        fired = np.nonzero(congested)[0]
        if fired.size:
            self._encoding.on_congestion(fired, self._bandwidth.rate_bps()[fired], now)
        video_rate = self._encoding.rate(now, self._ramp.rate)
        self._rtp.on_batch(self._last_level, video_rate)
        drops = self._ue.buffer.dropped_packets
        self._ramp.on_batch(drops - self._seen_drops, congested, self._encoding.held)
        self._seen_drops = drops.copy()
        self._batch_level_sum = np.zeros(self.n)
        self._batch_count = 0
        if k - self._last_flush_k >= 1000:
            if self._sec_count:
                means = self._sec_level_sum / self._sec_count
            else:
                means = np.zeros(self.n)
            tbs_bits = self._sec_tbs * BITS_PER_BYTE
            for s, log in enumerate(self.logs):
                log.diag_seconds.append((float(tbs_bits[s]), float(means[s])))
            self._sec_tbs = np.zeros(self.n)
            self._sec_level_sum = np.zeros(self.n)
            self._sec_count = 0
            self._last_flush_k = k

    def _pace(self) -> None:
        logs = self.logs
        for rows, frame_ids, sizes, last in self._pacer.tick(self._rtp.rate):
            accepted = self._ue.buffer.push(rows, sizes, frame_ids, last)
            if accepted.all():
                continue
            rejected = ~accepted
            for s, frame_id in zip(
                rows[rejected].tolist(), frame_ids[rejected].tolist()
            ):
                damaged = self._frames[frame_id][2]
                if not damaged[s]:
                    damaged[s] = True
                    logs[s].frames_lost += 1

    def _capture(self, k: int, now: float) -> None:
        profile = self.profile
        rate_v = self._encoding.rate(now, self._ramp.rate)
        size = rate_v * profile.frame_interval * self._noise.take_all()
        if self._frame_index % profile.kf_frames == 0:
            size = size * self._kf_factor
        self._frame_index += 1
        size_bytes = size / BITS_PER_BYTE
        bits = size_bytes * BITS_PER_BYTE
        frame_id = self._next_fid
        self._next_fid += 1
        # Python lists: the completion path reads these per-row, where
        # list indexing (and plain-float math downstream) beats numpy
        # scalar extraction.
        self._frames[frame_id] = (now, size_bytes.tolist(), [False] * self.n)
        # frames_sent is lockstep-uniform; sent_bits accumulates the
        # same per-capture float adds as the scalar log, as one vector.
        self._frames_sent += 1
        self._sent_bits += bits
        self._pipe.append((k + profile.encode_ticks, frame_id, size_bytes))

    def _tick(self, k: int, warm_ticks: int) -> None:
        profile = self.profile
        now = k * MS

        # 1. in-flight packet arrivals
        if self._in_flight:
            self._arrivals(k, now)
        # 2. due displays
        if self._next_flush <= now:
            self._flush_displays(now)
        # 3./4. channel and cell dynamics
        if k % profile.chan_ticks == 0:
            self._ue.channel.update(now)
        if k % profile.cell_ticks == 0:
            self._ue.cell.update()
        # 5. diag batch delivery
        if k % profile.diag_ticks == 0 and self._batch_count:
            self._deliver_diag(k, now)
        # 6. frames leaving the encoder
        pipe = self._pipe
        while pipe and pipe[0][0] == k:
            _, frame_id, size_bytes = pipe.popleft()
            self._pacer.enqueue_all(frame_id, size_bytes)
        # 7. pacing tick
        if k % profile.pacer_ticks == 0:
            self._pace()
        # 8. LTE subframe
        tbs, rounds = self._subframe(k, now)
        if rounds:
            self._in_flight.setdefault(k + profile.deliver_ticks, []).extend(rounds)
        self._bandwidth.on_record(tbs)
        level = self._ue.buffer.level
        self._batch_level_sum += level
        self._batch_count += 1
        self._sec_tbs += tbs
        self._sec_level_sum += level
        self._sec_count += 1
        # The RTP controller needs the last pre-diag level (Eq. 7 reads
        # batch[-1]); snapshot it only on the tick before a delivery.
        if (k + 1) % profile.diag_ticks == 0:
            self._last_level = level.copy()
        # 9. frame capture
        if k % profile.frame_ticks == 0:
            self._capture(k, now)
        # 10. rate / buffer traces
        if k % SAMPLE_TICKS == 0:
            rates = self._encoding.rate(now, self._ramp.rate).tolist()
            rtp_rates = self._rtp.rate.tolist()
            levels = self._ue.buffer.level.tolist()
            for s, log in enumerate(self.logs):
                log.rate_trace.append((now, rates[s], rtp_rates[s]))
                log.buffer_levels.append((now, levels[s]))
        # 11. end of warm-up
        if k == warm_ticks:
            self._arrival_stage.clear()
            self._frames_sent = 0
            self._sent_bits = np.zeros(self.n)
            for log, receiver in zip(self.logs, self._receivers):
                log.reset()
                receiver.reset_measurement()
                log.start_time = now
            self._baseline_fw_drops = self._ue.buffer.dropped_packets.copy()
            self._baseline_pacer_drops = self._pacer.dropped_frames.copy()
            self._baseline_bytes = self._ue.bytes_sent.copy()

    def _subframe(self, k: int, now: float):
        """Phase-8 grant pass; the cell-coupled engine
        (:class:`repro.sim.batch_cell.BatchedCellSimulation`) overrides
        this to advance the shared cells and route grants through their
        budgets."""
        return self._ue.subframe(now)

    def _materialise_arrivals(self) -> None:
        """Turn the staged (now, rows, sizes) drain rounds into each
        session's ``log.arrivals``.  The stable sort keeps every
        session's rounds in staging (= arrival) order, so the rows are
        identical to the scalar engine's live appends — but they are
        handed over as ``(m, 2)`` float64 views into one shared array
        (arrivals dominate the log at ~100 packets/s per session, and
        ``from_log`` converts to an array anyway)."""
        stage = self._arrival_stage
        if not stage:
            return
        rows_all = np.concatenate([rows for _, rows, _ in stage])
        sizes_all = np.concatenate([sizes for _, _, sizes in stage])
        counts = np.fromiter(
            (rows.size for _, rows, _ in stage), dtype=np.int64, count=len(stage)
        )
        times_all = np.repeat(
            np.fromiter(
                (when for when, _, _ in stage), dtype=np.float64, count=len(stage)
            ),
            counts,
        )
        order = np.argsort(rows_all, kind="stable")
        rows_sorted = rows_all[order]
        bounds = np.searchsorted(rows_sorted, np.arange(self.n + 1))
        pairs = np.column_stack((times_all[order], sizes_all[order]))
        for s, log in enumerate(self.logs):
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            if hi > lo:
                log.arrivals = pairs[lo:hi]
        self._arrival_stage = []

    # -- public API ------------------------------------------------------

    #: Span name the run records (the cell-coupled engine overrides it).
    _RUN_SPAN = "batch.run"

    #: True while a metered run's tick loop is live — subclass tick
    #: hooks may accumulate telemetry observations behind this flag.
    _metering = False

    def run(
        self,
        duration: Optional[float] = None,
        warmup: float = 0.0,
        meter=None,
        progress=None,
        progress_every: int = DEFAULT_PROGRESS_TICKS,
    ) -> List[SessionResult]:
        """Run the cohort and return one :class:`SessionResult` each.

        ``meter`` (same coercion as ``run_session``) receives the
        cohort-level batch counters and the :data:`_RUN_SPAN` wall-clock
        span.  ``progress`` is an optional live callback invoked as
        ``progress(tick, total_ticks, n_sessions)`` every
        ``progress_every`` grid ticks plus once at the final tick (see
        :func:`repro.obs.ledger.cohort_heartbeat_callback`).  Both only
        *read* engine state, so a metered/observed run stays
        byte-identical to a plain one.
        """
        if duration is None:
            durations = {c.duration for c in self.configs}
            if len(durations) != 1:
                raise ValueError("mixed config durations; pass duration explicitly")
            duration = durations.pop()
        if not _ms_aligned(duration) or not _ms_aligned(warmup):
            raise ValueError("duration and warmup must be on the 1 ms grid")
        meter = coerce_meter(meter)
        self._metering = bool(meter)
        t0 = meter.span_start() if meter else 0.0
        warm_ticks = _ticks(warmup)
        total_ticks = warm_ticks + _ticks(duration)
        if progress is not None:
            stride = max(1, int(progress_every))
            for k in range(1, total_ticks + 1):
                self._tick(k, warm_ticks)
                if k % stride == 0 or k == total_ticks:
                    progress(k, total_ticks, self.n)
        else:
            for k in range(1, total_ticks + 1):
                self._tick(k, warm_ticks)
        if meter:
            self._record_meter(meter, total_ticks, t0)
        fw_drops = self._ue.buffer.dropped_packets - self._baseline_fw_drops
        pacer_drops = self._pacer.dropped_frames - self._baseline_pacer_drops
        congestion = self._encoding.congestion_events
        self._materialise_arrivals()
        results = []
        for s, (config, log) in enumerate(zip(self.configs, self.logs)):
            self._receivers[s].finalise(log)
            log.frames_sent = self._frames_sent
            log.sent_bits = float(self._sent_bits[s])
            log.congestion_events = int(congestion[s])
            log.packets_lost += int(fw_drops[s])
            log.frames_lost += int(pacer_drops[s])
            summary = SessionSummary.from_log(
                log,
                scheme=config.scheme,
                transport=config.transport,
                duration=duration,
                freeze_threshold=config.freeze_threshold,
            )
            results.append(SessionResult(config=config, summary=summary, log=log))
        return results

    def _record_meter(self, meter, total_ticks: int, t0: float) -> None:
        """Fold this run's cohort-level telemetry into ``meter``.

        Every value is a pure function of the cohort (sessions, grid
        ticks), so the counters are identical however a sweep is sliced
        into cohorts of equal total size; the span records wall clock
        and, like every span, never enters deterministic snapshots.
        """
        meter.inc("batch.cohorts")
        meter.inc("batch.sessions", float(self.n))
        meter.inc("batch.subframes", float(self.n * total_ticks))
        meter.span_end(self._RUN_SPAN, t0)


def run_batched(
    configs: Sequence[SessionConfig],
    duration: Optional[float] = None,
    warmup: float = 0.0,
    meter=None,
    progress=None,
) -> List[SessionResult]:
    """Build and run one lockstep cohort."""
    return BatchedSimulation(configs).run(
        duration, warmup=warmup, meter=meter, progress=progress
    )
