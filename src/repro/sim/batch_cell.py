"""Batched shared-cell engine: C cells × N members per lockstep tick.

:class:`BatchedCellSimulation` extends the independent-cohort
:class:`repro.sim.batch.BatchedSimulation` with the cell coupling of
docs/FLEET.md: the flat cohort is the cell-major concatenation of C
cells' member lists, and one :class:`repro.lte.shared_cell.
SharedCellArray` holds every cell's realized-share EWMAs as a ``(C, N)``
array, computes all members' PF-coupled effective loads row-wise, and
clips every PRB grant against the per-cell per-subframe budgets in a
single order-preserving claim pass.

Bit-exactness contract (``tests/test_batch_cell.py``):

- a **C=1** batched cell reproduces the scalar reference
  :class:`repro.telephony.uplink.UplinkCellSession` to the bit — logs,
  summaries, member bytes, Jain index;
- an **N=1** batched cell degenerates to the independent-cohort path —
  the shared-cell arithmetic is an exact no-op (peer share 0.0 adds
  bitwise-neutrally, the PF weight branch is skipped, the default
  budget covers the largest solo grant), so results equal
  :class:`~repro.sim.batch.BatchedSimulation` on the same configs.

Parity with the event-driven :func:`repro.telephony.fleet.run_cell` is
statistical (same contention model, different clocking) — the
convergence test asserts Jain/MOS agreement, not bitwise equality.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.config import FleetConfig, SessionConfig
from repro.lte.shared_cell import SharedCellArray
from repro.metrics.stats import jain_index
from repro.obs.meter import SessionMeter
from repro.sim.batch import BatchedSimulation
from repro.telephony.fleet import CellResult, member_configs
from repro.telephony.uplink import UplinkProfile, cell_batch_unsupported_reason
from repro.video.quality import mos_score


def _cell_fleets(
    cells: Sequence[Sequence[SessionConfig]],
    fleets,
) -> List[FleetConfig]:
    """Normalise ``fleets`` to one :class:`FleetConfig` per cell."""
    if fleets is None:
        return [
            FleetConfig(ues=len(members), seed=members[0].seed if members else 0)
            for members in cells
        ]
    if isinstance(fleets, FleetConfig):
        return [fleets] * len(cells)
    fleets = list(fleets)
    if len(fleets) != len(cells):
        raise ValueError(
            f"{len(fleets)} fleet configs for {len(cells)} cells"
        )
    return fleets


class BatchedCellSimulation(BatchedSimulation):
    """Advance a homogeneous block of C shared cells in 1 ms lockstep.

    ``cells`` is a sequence of per-cell member-config lists; every cell
    must have the same member count and every member the same grid
    cadences (:meth:`UplinkProfile.cell_signature`), while per-member
    parameters and per-cell fleet parameters (PRB budget, PF coupling,
    background population) may vary freely.  ``fleets`` is one
    :class:`FleetConfig` per cell (a single instance is replicated; note
    that replication also replicates the background rng seed).
    """

    def __init__(
        self,
        cells: Sequence[Sequence[SessionConfig]],
        fleets=None,
    ):
        cells = [list(members) for members in cells]
        if not cells:
            raise ValueError("empty cell block")
        fleet_list = _cell_fleets(cells, fleets)
        for members, fleet in zip(cells, fleet_list):
            reason = cell_batch_unsupported_reason(members, fleet)
            if reason is not None:
                raise ValueError(
                    f"cell unsupported by the batched cell engine: {reason}"
                )
        signature = UplinkProfile.from_config(cells[0][0]).cell_signature(
            len(cells[0])
        )
        for members in cells[1:]:
            other = UplinkProfile.from_config(members[0]).cell_signature(
                len(members)
            )
            if other != signature:
                raise ValueError(
                    "cell block is not structurally homogeneous: "
                    f"{other} != {signature} "
                    "(group cells with plan_cell_blocks)"
                )
        self.cells = cells
        self.fleets = fleet_list
        self.members_per_cell = len(cells[0])
        flat = [config for members in cells for config in members]
        super().__init__(flat)
        self._cells = SharedCellArray(
            fleet_list, self.members_per_cell, self._ue.cell
        )
        #: Per-cell count of subframes that ended with the PRB budget
        #: exhausted — telemetry only, accumulated behind the metering
        #: flag and never read by the simulation.
        self._prb_exhausted = np.zeros(len(self.cells), dtype=np.int64)

    #: The cohort span is the whole cell block here.
    _RUN_SPAN = "batch.cell_run"

    def _subframe(self, k: int, now: float):
        loads = self._cells.member_loads(k, now)
        result = self._ue.subframe(now, loads=loads, cells=self._cells)
        if self._metering:
            self._prb_exhausted += self._cells.budget_left < 1.0
        return result

    def _record_meter(self, meter, total_ticks: int, t0: float) -> None:
        # The block-level counters live on the per-cell meters instead
        # (run_cells) so merged fleet registries stay partition-
        # invariant however cells are sharded into blocks; the engine
        # meter carries only the block's wall-clock span.
        self._total_ticks = total_ticks
        meter.span_end(self._RUN_SPAN, t0)

    def run_cells(
        self,
        duration: Optional[float] = None,
        warmup: float = 0.0,
        meter: bool = False,
        progress=None,
    ) -> List[CellResult]:
        """Run the block; one :class:`CellResult` per cell, in order.

        With ``meter=True`` every cell gets a **live** engine meter: the
        ``fleet.*`` cell observations plus the batched-engine counters
        (``batch.sessions``, ``batch.subframes``,
        ``fleet.cell_prb_exhausted``) accumulated during the tick loop —
        all pure functions of the cell, so merged registries are
        byte-equal for any block partition.  The block's
        ``batch.cell_run`` wall-clock span rides the first cell's meter
        (spans never enter deterministic snapshots).  ``progress``
        passes through to :meth:`~repro.sim.batch.BatchedSimulation.run`.
        """
        engine = SessionMeter() if meter else None
        results = self.run(duration, warmup=warmup, meter=engine, progress=progress)
        bytes_sent = self._ue.bytes_sent - self._baseline_bytes
        n = self.members_per_cell
        cell_results = []
        for index, fleet in enumerate(self.fleets):
            members = results[index * n : (index + 1) * n]
            member_bytes = tuple(
                float(value) for value in bytes_sent[index * n : (index + 1) * n]
            )
            member_mos = tuple(
                mos_score(result.summary.quality.mos_pdf) for result in members
            )
            cell_results.append(
                CellResult(
                    fleet=fleet,
                    results=members,
                    jain=jain_index(member_bytes),
                    member_bytes=member_bytes,
                    member_mos=member_mos,
                    meter=self._one_cell_meter(index, cell_results=members)
                    if meter
                    else None,
                )
            )
        if meter and cell_results:
            cell_results[0].meter.merge(engine)
        return cell_results

    def _one_cell_meter(self, index: int, cell_results) -> SessionMeter:
        """The live per-cell registry (see :meth:`run_cells`)."""
        n = self.members_per_cell
        bytes_sent = self._ue.bytes_sent - self._baseline_bytes
        member_bytes = [
            float(value) for value in bytes_sent[index * n : (index + 1) * n]
        ]
        meter = SessionMeter()
        meter.inc("fleet.cells")
        meter.observe("fleet.cell_members", float(n))
        meter.observe("fleet.cell_jain", jain_index(member_bytes))
        for result in cell_results:
            mos = mos_score(result.summary.quality.mos_pdf)
            if not math.isnan(mos):
                meter.observe("fleet.member_mos", mos)
            rate = result.summary.throughput.mean / 1e6
            if not math.isnan(rate):
                meter.observe("fleet.member_rate_mbps", rate)
        meter.inc("batch.sessions", float(n))
        meter.inc("batch.subframes", float(n * self._total_ticks))
        meter.inc("fleet.cell_prb_exhausted", float(self._prb_exhausted[index]))
        return meter


def run_batched_cells(
    cells: Sequence[Sequence[SessionConfig]],
    fleets=None,
    duration: Optional[float] = None,
    warmup: float = 0.0,
    meter: bool = False,
    progress=None,
) -> List[CellResult]:
    """Build and run one batched cell block."""
    return BatchedCellSimulation(cells, fleets=fleets).run_cells(
        duration, warmup=warmup, meter=meter, progress=progress
    )


def run_batched_cell(
    config: SessionConfig,
    ues: int = 4,
    fleet: Optional[FleetConfig] = None,
    duration: Optional[float] = None,
    warmup: float = 0.0,
) -> CellResult:
    """Single-cell convenience mirroring
    :func:`repro.telephony.uplink.run_uplink_cell` (and, statistically,
    :func:`repro.telephony.fleet.run_cell`)."""
    if fleet is None:
        fleet = FleetConfig(ues=ues, seed=config.seed)
    return run_batched_cells(
        [member_configs(config, ues)], fleets=[fleet], duration=duration,
        warmup=warmup,
    )[0]
