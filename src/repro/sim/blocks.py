"""Block-drawn random streams shared by the scalar and batched engines.

The batched lockstep engine (:mod:`repro.sim.batch`) must reproduce its
scalar reference (:mod:`repro.telephony.uplink`) **bit-for-bit**.  Two
things threaten that:

1. *Draw granularity* — a vectorised engine wants whole arrays of
   variates, a scalar one draws one value at a time; ``Generator``
   state would diverge immediately.
2. *Transcendental ULPs* — numpy may evaluate ``np.exp``/``np.log``
   through different code paths (SIMD vs scalar) for arrays and Python
   floats, so ``exp(x)`` computed per-element and ``exp(array)[i]`` can
   differ in the last ulp.

Both are solved the same way: every stream pre-draws a *block* of
variates and applies its transform (``exp``, ``-log``, affine) **to the
whole block** at refill time.  The scalar engine then consumes the block
one value at a time through :class:`BlockStream`; the batched engine
holds one block per session in :class:`BlockStreamArray` and gathers by
cursor.  Given the same per-session generator and transform, both read
the exact same float64 sequence.

Transforms receive ``(generator, size)`` and return a float64 array —
the constructors below build the common ones.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

#: Default variates per refill.  Large enough that the (vector-wide)
#: refill cost amortises away, small enough not to waste draws on short
#: sessions.
DEFAULT_BLOCK = 4096

#: Transform signature: ``fn(rng, size) -> np.ndarray`` of float64.
BlockTransform = Callable[[np.random.Generator, int], np.ndarray]


def uniform_transform() -> BlockTransform:
    """Raw uniforms in [0, 1)."""
    return lambda rng, size: rng.random(size)


def normal_transform() -> BlockTransform:
    """Raw standard normals."""
    return lambda rng, size: rng.standard_normal(size)


def lognormal_transform(sigma: float) -> BlockTransform:
    """``exp(sigma * z)`` applied block-wise (per-grant fast fading)."""
    return lambda rng, size: np.exp(sigma * rng.standard_normal(size))


def neglog_uniform_transform() -> BlockTransform:
    """``-log(max(1e-12, u))`` block-wise (geometric burst lengths)."""
    return lambda rng, size: -np.log(np.maximum(1e-12, rng.random(size)))


def exponential_transform(scale: float) -> BlockTransform:
    """Inverse-transform exponential: ``scale * -log(1 - u)``.

    ``u`` in [0, 1) keeps the argument in (0, 1] so the log is finite;
    ``u == 0`` maps to exactly 0.0.
    """
    return lambda rng, size: scale * -np.log(1.0 - rng.random(size))


def uniform_range_transform(low: float, high: float) -> BlockTransform:
    """Inverse-transform uniform on [low, high): ``low + (high-low)*u``."""
    span = high - low
    return lambda rng, size: low + span * rng.random(size)


class BlockStream:
    """Scalar consumer of one block-transformed stream."""

    __slots__ = ("_rng", "_transform", "_block", "_values", "_cursor")

    def __init__(
        self,
        rng: np.random.Generator,
        transform: BlockTransform,
        block: int = DEFAULT_BLOCK,
    ):
        self._rng = rng
        self._transform = transform
        self._block = int(block)
        self._values = transform(rng, self._block)
        self._cursor = 0

    def next(self) -> float:
        """The next variate (refills transparently)."""
        if self._cursor >= self._block:
            self._values = self._transform(self._rng, self._block)
            self._cursor = 0
        value = float(self._values[self._cursor])
        self._cursor += 1
        return value


class BlockStreamArray:
    """Per-session blocks of one stream, gathered by cursor.

    ``take(idx)`` returns one variate per listed session and advances
    only those sessions' cursors — exactly mirroring data-dependent
    scalar consumption.  ``aligned=True`` asserts all sessions consume
    in lockstep (e.g. the channel's every-update normal draw) and keeps
    a single shared cursor, which makes :meth:`take_all` a plain column
    read.
    """

    def __init__(
        self,
        rngs: Sequence[np.random.Generator],
        transforms: Sequence[BlockTransform],
        block: int = DEFAULT_BLOCK,
        aligned: bool = False,
    ):
        if len(rngs) != len(transforms):
            raise ValueError("one transform per session required")
        self._rngs: List[np.random.Generator] = list(rngs)
        self._transforms: List[BlockTransform] = list(transforms)
        self._block = int(block)
        self._n = len(self._rngs)
        self._aligned = bool(aligned)
        self._values = np.empty((self._n, self._block), dtype=np.float64)
        for s in range(self._n):
            self._values[s] = self._transforms[s](self._rngs[s], self._block)
        if aligned:
            self._cursor = 0
        else:
            self._cursors = np.zeros(self._n, dtype=np.int64)

    def take_all(self) -> np.ndarray:
        """One variate for every session (aligned streams only)."""
        if not self._aligned:
            raise RuntimeError("take_all() requires an aligned stream")
        if self._cursor >= self._block:
            for s in range(self._n):
                self._values[s] = self._transforms[s](self._rngs[s], self._block)
            self._cursor = 0
        column = self._values[:, self._cursor].copy()
        self._cursor += 1
        return column

    def take(self, idx: np.ndarray) -> np.ndarray:
        """One variate per session in ``idx`` (unaligned streams)."""
        if self._aligned:
            raise RuntimeError("take() requires an unaligned stream")
        if idx.size == 0:
            return np.empty(0, dtype=np.float64)
        cursors = self._cursors
        c = cursors[idx]
        if (c >= self._block).any():
            for s in idx[c >= self._block].tolist():
                self._values[s] = self._transforms[s](self._rngs[s], self._block)
                cursors[s] = 0
            c = cursors[idx]
        out = self._values[idx, c]
        cursors[idx] = c + 1
        return out
