"""Rate-controlled frame encoder model (WebRTC's VP8 stage, §4).

The encoder receives the spatially-compressed frame (described by its
compression matrix) and a target bitrate ``Rv``, and emits a frame whose
size tracks ``Rv / fps`` with realistic imperfections:

- **size noise** — rate control is lognormally noisy, and noisier the
  more compressed pixels must share a low bits-per-pixel budget (more
  macroblocks → more quantiser-adaptation lag);
- **keyframes** — periodic frames cost a multiple of the budget;
- **quality ceiling** — a frame cannot usefully absorb more bits than
  its pixel count at the minimum quantiser allows, so small (aggressively
  compressed) frames undershoot large targets.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.config import VideoConfig
from repro.video.content import ContentModel
from repro.video.frame import EncodedFrame, TileGrid
from repro.video.quality import anchor_bpp


class FrameEncoder:
    """Produces :class:`EncodedFrame` records from compression matrices."""

    #: Per-matrix aggregate memo entries kept (FIFO eviction).
    MATRIX_MEMO_MAX = 256

    def __init__(
        self,
        config: VideoConfig,
        grid: TileGrid,
        content: ContentModel,
        rng: np.random.Generator,
        reference: bool = False,
    ):
        self._config = config
        self._grid = grid
        self._content = content
        self._rng = rng
        self._frame_counter = 0
        self._last_keyframe = float("-inf")
        #: Cumulative over/undershoot vs target (a VBV-style debt the
        #: rate control works off so long-run output tracks the target).
        self._debt_bits = 0.0
        self._previous_matrix: np.ndarray = np.array([])
        #: ``reference=True`` disables the per-matrix caches below — the
        #: "before" leg of the ``encoder_alloc`` microbenchmark.
        self._reference = reference
        #: ``id(matrix) -> (matrix, compressed pixels)`` for the
        #: read-only matrices the compression schemes share across
        #: frames.  Identity-keyed with a strong reference (same pattern
        #: as the R-D config memo), so a hit returns exactly the value
        #: computed from that array — bit-identical to recomputing.
        self._pixels_memo: dict = {}
        #: Bits per pixel the encoder can usefully spend: the quality
        #: saturation point times the min-quantiser waste factor.
        self._bpp_ceiling = config.bits_ceiling_factor * anchor_bpp(config) * 2.0 ** (
            (config.psnr_ceiling - config.rd_anchor_psnr) / config.rd_db_per_octave
        )

    def compressed_pixels(self, matrix: np.ndarray) -> float:
        """Pixels in the frame after spatial compression by ``matrix``.

        Memoised by matrix identity for the shared read-only matrices
        the mode-matrix cache hands out (a writable matrix may be
        mutated in place, so it is never cached).
        """
        entry = self._pixels_memo.get(id(matrix))
        if entry is not None and entry[0] is matrix:
            return entry[1]
        value = float((self._grid.tile_pixels / matrix).sum())
        if not self._reference and not matrix.flags.writeable:
            while len(self._pixels_memo) >= self.MATRIX_MEMO_MAX:
                self._pixels_memo.pop(next(iter(self._pixels_memo)))
            self._pixels_memo[id(matrix)] = (matrix, value)
        return value

    def floor_rate(self, matrix: np.ndarray) -> float:
        """Minimum sustainable bitrate (bps) for frames under ``matrix``.

        The max-quantiser floor means a spatial profile with many
        pixels simply cannot be encoded below this rate — the quantity
        the adaptive scheme consults before picking a conservative mode
        on a starving uplink.
        """
        pixels = self.compressed_pixels(matrix)
        return pixels * self._config.bpp_floor * self._config.fps

    def _intra_fraction(self, matrix: np.ndarray, pixels: float) -> float:
        """Pixel-weighted intra-coding need caused by level changes.

        A tile whose compression level moved relative to the previous
        frame loses temporal prediction in proportion to how far it
        moved (its source resolution changed): the weight is
        ``min(1, |log2(l_new / l_old)|)`` per tile.  A binary crop shift
        (Conduit) re-encodes whole columns from scratch; a one-step mode
        change (POI360) costs almost nothing.
        """
        if self._previous_matrix.shape != matrix.shape:
            return 1.0  # first frame: everything is intra
        if matrix is self._previous_matrix and not self._reference:
            # Shared cached matrix, unchanged since the last frame: every
            # per-tile weight is |log2(1)| = 0, so the fraction is
            # exactly 0.0 — the common steady-ROI case, skipped outright.
            return 0.0
        weight = np.minimum(
            1.0, np.abs(np.log2(matrix / self._previous_matrix))
        )
        changed_pixels = float((weight * self._grid.tile_pixels / matrix).sum())
        return changed_pixels / max(1.0, pixels)

    def encode(
        self,
        matrix: np.ndarray,
        sender_roi: Tuple[int, int],
        target_rate_bps: float,
        now: float,
    ) -> EncodedFrame:
        """Encode one frame against ``target_rate_bps`` at time ``now``."""
        config = self._config
        pixels = self.compressed_pixels(matrix)
        pixel_ratio = pixels / self._grid.total_pixels
        nominal = max(1.0, target_rate_bps / config.fps)
        budget = min(2.0 * nominal, max(0.25 * nominal, nominal - 0.5 * self._debt_bits))

        keyframe = now - self._last_keyframe >= config.keyframe_interval
        if keyframe:
            self._last_keyframe = now
            budget *= config.keyframe_factor

        complexity = self._content.mean_complexity(now)
        ceiling_bits = pixels * self._bpp_ceiling * complexity
        floor_bits = pixels * config.bpp_floor * complexity
        sigma = config.size_sigma_base + config.size_sigma_per_pixel_ratio * pixel_ratio
        noise = math.exp(self._rng.normal(0.0, sigma))
        intra = 1.0 + config.intra_refresh_penalty * self._intra_fraction(matrix, pixels)
        size_bits = max(floor_bits, min(budget, ceiling_bits)) * noise * intra
        self._debt_bits = 0.95 * self._debt_bits + (size_bits - nominal)
        self._previous_matrix = matrix

        frame = EncodedFrame(
            frame_id=self._frame_counter,
            capture_time=now,
            send_start=now + config.encode_latency,
            matrix=matrix,
            sender_roi=sender_roi,
            size_bits=size_bits,
            bpp=size_bits / pixels,
            pixel_ratio=pixel_ratio,
            keyframe=keyframe,
        )
        self._frame_counter += 1
        return frame
