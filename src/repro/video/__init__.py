"""360-degree video substrate: frames, tiles, content, R-D model, encoder."""

from repro.video.frame import EncodedFrame, TileGrid
from repro.video.content import ContentModel
from repro.video.encoder import FrameEncoder
from repro.video.quality import (
    MOS_BANDS,
    combine_psnr_mse,
    displayed_tile_psnr,
    displayed_tile_psnr_array,
    mos_band,
    mse_from_psnr,
    mse_from_psnr_array,
    psnr_from_bpp,
    psnr_from_bpp_array,
    psnr_from_mse,
    psnr_from_mse_array,
    reference_kernels,
    scale_psnr,
    scale_psnr_array,
    set_reference_kernels,
)

__all__ = [
    "EncodedFrame",
    "TileGrid",
    "ContentModel",
    "FrameEncoder",
    "MOS_BANDS",
    "combine_psnr_mse",
    "displayed_tile_psnr",
    "displayed_tile_psnr_array",
    "mos_band",
    "mse_from_psnr",
    "mse_from_psnr_array",
    "psnr_from_bpp",
    "psnr_from_bpp_array",
    "psnr_from_mse",
    "psnr_from_mse_array",
    "reference_kernels",
    "scale_psnr",
    "scale_psnr_array",
    "set_reference_kernels",
]
