"""360-degree video substrate: frames, tiles, content, R-D model, encoder."""

from repro.video.frame import EncodedFrame, TileGrid
from repro.video.content import ContentModel
from repro.video.encoder import FrameEncoder
from repro.video.quality import (
    MOS_BANDS,
    combine_psnr_mse,
    mos_band,
    mse_from_psnr,
    psnr_from_bpp,
    psnr_from_mse,
    scale_psnr,
)

__all__ = [
    "EncodedFrame",
    "TileGrid",
    "ContentModel",
    "FrameEncoder",
    "MOS_BANDS",
    "combine_psnr_mse",
    "mos_band",
    "mse_from_psnr",
    "psnr_from_bpp",
    "psnr_from_mse",
    "scale_psnr",
]
