"""Virtual 360-degree webcam.

Stands in for the paper's v4l2loopback virtual webcam (§6) that replays
the same 4K panorama for repeatable traffic: fires a capture callback at
the configured frame rate with strictly increasing frame timestamps.
"""

from __future__ import annotations

from typing import Callable

from repro.config import VideoConfig
from repro.sim.engine import Simulation

CaptureCallback = Callable[[int, float], None]


class VideoSource:
    """Emits (frame index, capture time) at ``fps``."""

    def __init__(self, sim: Simulation, config: VideoConfig, on_frame: CaptureCallback):
        self._sim = sim
        self._on_frame = on_frame
        self._index = 0
        sim.every(1.0 / config.fps, self._capture)

    def _capture(self) -> None:
        self._on_frame(self._index, self._sim.now)
        self._index += 1

    @property
    def frames_captured(self) -> int:
        return self._index
