"""Synthetic 360-degree content model.

Stands in for the paper's five real 4K test videos (one per user, §6):
each tile has a base texture/motion complexity drawn once per video,
plus a slow temporal modulation (scene activity moving around the
panorama).  Complexity scales the bits a tile needs for a given quality
in :func:`repro.video.quality.psnr_from_bpp`.
"""

from __future__ import annotations

import math

import numpy as np

import repro.video.quality as quality
from repro.video.frame import TileGrid

#: Spread of per-tile base complexity (lognormal sigma).
BASE_SIGMA = 0.25

#: Amplitude and period of the travelling activity wave.
WAVE_AMPLITUDE = 0.20
WAVE_PERIOD = 25.0

_TWO_PI = 2.0 * math.pi


class ContentModel:
    """Per-tile, time-varying content complexity (mean ≈ 1)."""

    def __init__(self, grid: TileGrid, rng: np.random.Generator):
        self._grid = grid
        base = np.exp(rng.normal(0.0, BASE_SIGMA, size=(grid.tiles_x, grid.tiles_y)))
        self._base = base / base.mean()
        self._phase = rng.uniform(0.0, 2.0 * math.pi)
        #: Row means of the base field — ``mean_complexity`` only needs
        #: the per-column aggregate because the wave is constant in j.
        self._base_row_mean = self._base.mean(axis=1)
        #: Precomputed ``i / tiles_x`` spatial phase of the wave.
        self._i_frac = np.arange(grid.tiles_x) / grid.tiles_x

    def complexity(self, i: int, j: int, t: float) -> float:
        """Complexity of tile (i, j) at time ``t``.

        The wave term goes through the ``np.sin`` ufunc (not
        ``math.sin``) so the scalar value is bit-identical to one
        element of :meth:`complexity_tiles`.
        """
        wave = 1.0 + WAVE_AMPLITUDE * float(
            np.sin(_TWO_PI * (t / WAVE_PERIOD + i / self._grid.tiles_x) + self._phase)
        )
        return float(self._base[i, j] * wave)

    def complexity_tiles(self, i: np.ndarray, j: np.ndarray, t: float) -> np.ndarray:
        """Complexity of the tiles ``(i[k], j[k])`` at time ``t``.

        The vectorised twin of :meth:`complexity` — bit-identical
        element-wise, and the per-frame gather the receiver's ROI
        quality kernel runs on.
        """
        i = np.asarray(i)
        if quality.reference_kernels():
            return np.array(
                [self.complexity(int(a), int(b), t) for a, b in zip(i, np.asarray(j))]
            )
        wave = 1.0 + WAVE_AMPLITUDE * np.sin(
            _TWO_PI * (t / WAVE_PERIOD + i / self._grid.tiles_x) + self._phase
        )
        return self._base[i, j] * wave

    def complexity_map(self, t: float) -> np.ndarray:
        """Complexity of every tile at time ``t`` (tiles_x × tiles_y)."""
        i = np.arange(self._grid.tiles_x)[:, None]
        wave = 1.0 + WAVE_AMPLITUDE * np.sin(
            _TWO_PI * (t / WAVE_PERIOD + i / self._grid.tiles_x) + self._phase
        )
        return self._base * wave

    def mean_complexity(self, t: float) -> float:
        """Frame-average complexity at time ``t``.

        Uses the precomputed base row means: the wave only varies along
        i, so the full-map reduction collapses to ``tiles_x`` terms and
        one dot product — the encoder calls this every frame.
        """
        wave = 1.0 + WAVE_AMPLITUDE * np.sin(
            _TWO_PI * (t / WAVE_PERIOD + self._i_frac) + self._phase
        )
        return float(self._base_row_mean @ wave) / self._grid.tiles_x
