"""Synthetic 360-degree content model.

Stands in for the paper's five real 4K test videos (one per user, §6):
each tile has a base texture/motion complexity drawn once per video,
plus a slow temporal modulation (scene activity moving around the
panorama).  Complexity scales the bits a tile needs for a given quality
in :func:`repro.video.quality.psnr_from_bpp`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.video.frame import TileGrid

#: Spread of per-tile base complexity (lognormal sigma).
BASE_SIGMA = 0.25

#: Amplitude and period of the travelling activity wave.
WAVE_AMPLITUDE = 0.20
WAVE_PERIOD = 25.0


class ContentModel:
    """Per-tile, time-varying content complexity (mean ≈ 1)."""

    def __init__(self, grid: TileGrid, rng: np.random.Generator):
        self._grid = grid
        base = np.exp(rng.normal(0.0, BASE_SIGMA, size=(grid.tiles_x, grid.tiles_y)))
        self._base = base / base.mean()
        self._phase = rng.uniform(0.0, 2.0 * math.pi)

    def complexity(self, i: int, j: int, t: float) -> float:
        """Complexity of tile (i, j) at time ``t``."""
        wave = 1.0 + WAVE_AMPLITUDE * math.sin(
            2.0 * math.pi * (t / WAVE_PERIOD + i / self._grid.tiles_x) + self._phase
        )
        return float(self._base[i, j] * wave)

    def complexity_map(self, t: float) -> np.ndarray:
        """Complexity of every tile at time ``t`` (tiles_x × tiles_y)."""
        i = np.arange(self._grid.tiles_x)[:, None]
        wave = 1.0 + WAVE_AMPLITUDE * np.sin(
            2.0 * math.pi * (t / WAVE_PERIOD + i / self._grid.tiles_x) + self._phase
        )
        return self._base * wave

    def mean_complexity(self, t: float) -> float:
        """Frame-average complexity at time ``t``."""
        return float(self.complexity_map(t).mean())
