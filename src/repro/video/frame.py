"""360-degree frame geometry and the encoded-frame record.

A raw 360° frame is an equirectangular projection split into a
``tiles_x x tiles_y`` grid (12x8 in the paper's prototype, §5).  The
x-axis wraps (yaw is periodic); the y-axis does not.  Tile distances —
the ``(i - i*, j - j*)`` of Eq. (1) — are therefore cyclic in x and
plain absolute in y.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Tuple

import numpy as np


@dataclass(frozen=True)
class TileGrid:
    """Geometry of the tile grid over an equirectangular frame."""

    width: int
    height: int
    tiles_x: int
    tiles_y: int

    def __post_init__(self) -> None:
        if self.width % self.tiles_x or self.height % self.tiles_y:
            raise ValueError("frame dimensions must be divisible by tile counts")

    @property
    def tile_width(self) -> int:
        return self.width // self.tiles_x

    @property
    def tile_height(self) -> int:
        return self.height // self.tiles_y

    @property
    def tile_pixels(self) -> int:
        """Pixels per (uncompressed) tile."""
        return self.tile_width * self.tile_height

    @property
    def total_pixels(self) -> int:
        return self.width * self.height

    @property
    def num_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    def tiles(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all (i, j) tile coordinates."""
        for i in range(self.tiles_x):
            for j in range(self.tiles_y):
                yield (i, j)

    def dx(self, i: int, i_star: int) -> int:
        """Cyclic x-distance between tile columns (yaw wraps)."""
        raw = abs(i - i_star) % self.tiles_x
        return min(raw, self.tiles_x - raw)

    def dy(self, j: int, j_star: int) -> int:
        """Absolute y-distance between tile rows (pitch does not wrap)."""
        return abs(j - j_star)

    def tile_of_angles(self, yaw_deg: float, pitch_deg: float) -> Tuple[int, int]:
        """Tile containing a gaze direction (yaw in degrees, pitch in
        [-90, 90] with 0 = horizon)."""
        yaw = yaw_deg % 360.0
        i = int(yaw / 360.0 * self.tiles_x) % self.tiles_x
        fraction = (min(90.0, max(-90.0, pitch_deg)) + 90.0) / 180.0
        j = min(self.tiles_y - 1, int(fraction * self.tiles_y))
        return (i, j)

    def degrees_per_tile(self) -> Tuple[float, float]:
        """Angular span of one tile (x span, y span) in degrees."""
        return (360.0 / self.tiles_x, 180.0 / self.tiles_y)


@dataclass
class EncodedFrame:
    """One spatially-compressed, encoded 360° frame in flight.

    ``matrix`` is the compression matrix L (level per tile) the sender
    used; the receiver unfolds the frame with it (the prototype embeds
    the mode inside the frame, §5).  ``bpp`` is the bits spent per
    *compressed* pixel — the quantity the R-D model turns into encoded
    PSNR.
    """

    frame_id: int
    capture_time: float
    send_start: float
    matrix: np.ndarray
    sender_roi: Tuple[int, int]
    size_bits: float
    bpp: float
    pixel_ratio: float
    keyframe: bool = False
    #: Embedded colored-block timestamp digits (§5 measurement system).
    timestamp_blocks: Tuple[Tuple[int, int, int], ...] = field(default_factory=tuple)

    @property
    def size_bytes(self) -> float:
        return self.size_bits / 8.0
