"""Sphere-to-plane projection geometry (§2 background).

360° frames are captured on a sphere and mapped to a planar format.
The paper's prototype uses the equirectangular projection; cubemap and
pyramid projections are the alternatives it cites ([8], [10]).  This
module provides the geometry those formats share:

- angle ↔ unit-vector conversions,
- per-tile **solid-angle weights** for an equirectangular tile grid —
  equirectangular frames heavily oversample the poles, so a
  perceptually honest quality average weights each tile by the solid
  angle it actually covers on the sphere (optional in the receiver's
  ROI-quality measurement, ``VideoConfig.solid_angle_weighting``),
- cubemap face mapping (direction → face/u/v and back), enough to
  resample an equirectangular tile layout onto a cube.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.video.frame import TileGrid

#: Cubemap face names in the conventional +x..-z order.
CUBE_FACES = ("+x", "-x", "+y", "-y", "+z", "-z")


def angles_to_vector(yaw_deg: float, pitch_deg: float) -> Tuple[float, float, float]:
    """Unit view vector for (yaw, pitch) in degrees.

    Yaw 0 looks along +x, yaw grows toward +y; pitch 0 is the horizon,
    +90 the zenith (+z).

    >>> angles_to_vector(0.0, 0.0)
    (1.0, 0.0, 0.0)
    """
    yaw = math.radians(yaw_deg)
    pitch = math.radians(pitch_deg)
    x = math.cos(pitch) * math.cos(yaw)
    y = math.cos(pitch) * math.sin(yaw)
    z = math.sin(pitch)
    return (round(x, 15), round(y, 15), round(z, 15))


def vector_to_angles(x: float, y: float, z: float) -> Tuple[float, float]:
    """Inverse of :func:`angles_to_vector`: (yaw, pitch) in degrees."""
    norm = math.sqrt(x * x + y * y + z * z)
    if norm == 0.0:
        raise ValueError("zero vector has no direction")
    x, y, z = x / norm, y / norm, z / norm
    yaw = math.degrees(math.atan2(y, x)) % 360.0
    pitch = math.degrees(math.asin(max(-1.0, min(1.0, z))))
    return (yaw, pitch)


def tile_solid_angle(grid: TileGrid, j: int) -> float:
    """Solid angle (steradians) covered by any tile in row ``j``.

    An equirectangular row spans pitch ``[p0, p1]``; its band covers
    ``2π (sin p1 - sin p0)`` steradians, split evenly among the row's
    ``tiles_x`` tiles (every column is equivalent).
    """
    if not 0 <= j < grid.tiles_y:
        raise ValueError(f"row {j} outside grid")
    p0 = math.radians(-90.0 + 180.0 * j / grid.tiles_y)
    p1 = math.radians(-90.0 + 180.0 * (j + 1) / grid.tiles_y)
    band = 2.0 * math.pi * (math.sin(p1) - math.sin(p0))
    return band / grid.tiles_x


def solid_angle_weights(grid: TileGrid) -> np.ndarray:
    """Per-tile solid-angle weights, normalised to mean 1.

    >>> g = TileGrid(3840, 1920, 12, 8)
    >>> w = solid_angle_weights(g)
    >>> round(float(w.mean()), 6)
    1.0
    """
    weights = np.empty((grid.tiles_x, grid.tiles_y))
    for j in range(grid.tiles_y):
        weights[:, j] = tile_solid_angle(grid, j)
    return weights / weights.mean()


def oversampling_factor(grid: TileGrid, j: int) -> float:
    """How many times more pixels row ``j`` gets than its solid angle
    deserves (1 at the equator for fine grids, → ∞ at the poles)."""
    pixel_share = 1.0 / grid.num_tiles
    angle_share = tile_solid_angle(grid, j) / (4.0 * math.pi)
    return pixel_share / angle_share


def direction_to_cube_face(x: float, y: float, z: float) -> Tuple[str, float, float]:
    """Map a direction to (face, u, v) with u, v in [-1, 1]."""
    ax, ay, az = abs(x), abs(y), abs(z)
    if ax >= ay and ax >= az:
        face = "+x" if x > 0 else "-x"
        major, u, v = x, y, z
    elif ay >= ax and ay >= az:
        face = "+y" if y > 0 else "-y"
        major, u, v = y, x, z
    else:
        face = "+z" if z > 0 else "-z"
        major, u, v = z, x, y
    if major == 0.0:
        raise ValueError("zero vector has no direction")
    return (face, u / abs(major), v / abs(major))


def cube_face_to_direction(face: str, u: float, v: float) -> Tuple[float, float, float]:
    """Inverse of :func:`direction_to_cube_face` (unnormalised)."""
    if face == "+x":
        return (1.0, u, v)
    if face == "-x":
        return (-1.0, u, v)
    if face == "+y":
        return (u, 1.0, v)
    if face == "-y":
        return (u, -1.0, v)
    if face == "+z":
        return (u, v, 1.0)
    if face == "-z":
        return (u, v, -1.0)
    raise ValueError(f"unknown cube face: {face!r}")


def equirect_to_cube_face(yaw_deg: float, pitch_deg: float) -> Tuple[str, float, float]:
    """Which cubemap face (and where on it) a gaze direction lands."""
    return direction_to_cube_face(*angles_to_vector(yaw_deg, pitch_deg))
