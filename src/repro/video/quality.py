"""Rate-distortion and perceptual-quality models.

Two distortion sources are modelled and combined in the MSE domain:

1. **Encoding distortion** — a logarithmic R-D curve: PSNR grows by a
   fixed number of dB per doubling of bits-per-pixel, anchored at the
   full-quality operating point of the paper's 12.65 Mbps test video.
2. **Spatial downscale distortion** — a tile compressed to level ``l``
   (area shrunk ``l``-fold, Eq. 1) and upscaled for display loses high
   frequencies: its PSNR cost is logarithmic in ``l``.

MOS bands follow the paper's Table 1 (the PSNR→MOS mapping of Sen et
al., SIGCOMM'10).

The per-tile helpers exist twice: as scalars (the reference
implementation) and as ``*_array`` kernels operating on whole tile
arrays at once.  Both route their transcendentals through the same
numpy ufuncs, so a kernel output is **bit-identical** to mapping its
scalar twin over the array — the property tests in
``tests/test_kernels.py`` enforce element-wise equality, and setting
``REPRO_REFERENCE_KERNELS=1`` (or :func:`set_reference_kernels`) makes
every kernel fall back to the scalar loop for end-to-end A/B runs.
"""

from __future__ import annotations

import os
from typing import Tuple

import numpy as np

from repro.config import VideoConfig

#: Table 1 of the paper: (band name, inclusive lower PSNR bound).
MOS_BANDS: Tuple[Tuple[str, float], ...] = (
    ("excellent", 37.0),
    ("good", 31.0),
    ("fair", 25.0),
    ("poor", 20.0),
    ("bad", float("-inf")),
)

#: Order used when reporting MOS PDFs (worst → best, as in Fig. 11c/d).
MOS_ORDER: Tuple[str, ...] = ("bad", "poor", "fair", "good", "excellent")

_PEAK_SQUARED = 255.0 * 255.0

#: When true, every ``*_array`` kernel (here and in
#: :mod:`repro.video.content`) loops its scalar reference instead of
#: vectorising — the "before" leg of the kernel microbenchmarks and of
#: the byte-identical pre/post session test.
_REFERENCE_KERNELS = os.environ.get("REPRO_REFERENCE_KERNELS", "") not in ("", "0")


def set_reference_kernels(enabled: bool) -> bool:
    """Force (or release) the scalar reference path; returns the old flag."""
    global _REFERENCE_KERNELS
    previous = _REFERENCE_KERNELS
    _REFERENCE_KERNELS = bool(enabled)
    return previous


def reference_kernels() -> bool:
    """Whether the scalar reference path is currently forced."""
    return _REFERENCE_KERNELS


def _log2(x: float) -> float:
    """``log2`` via the numpy ufunc so scalar and array paths agree
    bit-for-bit (``math.log2`` differs from ``np.log2`` in the last ulp
    on SIMD builds)."""
    return float(np.log2(x))


def _log10(x: float) -> float:
    return float(np.log10(x))


def _pow10(x: float) -> float:
    return float(np.power(10.0, x))


def mse_from_psnr(psnr_db: float) -> float:
    """Mean squared error corresponding to a PSNR (8-bit peak)."""
    return _PEAK_SQUARED / _pow10(psnr_db / 10.0)


def psnr_from_mse(mse: float) -> float:
    """PSNR (dB) for a mean squared error (8-bit peak)."""
    if mse <= 0.0:
        return float("inf")
    return 10.0 * _log10(_PEAK_SQUARED / mse)


#: Per-config memo for the hot R-D helpers, keyed by object identity —
#: hashing a frozen dataclass on every per-tile call costs more than the
#: arithmetic it saves.  The entry keeps a strong reference to the
#: config so its id cannot be recycled; the memo is bounded (FIFO
#: eviction past ``_CONFIG_MEMO_MAX``) so long sweeps over many configs
#: cannot leak them.
_CONFIG_MEMO: dict = {}
_CONFIG_MEMO_MAX = 16


def _config_memo(config: VideoConfig) -> tuple:
    entry = _CONFIG_MEMO.get(id(config))
    if entry is None or entry[0] is not config:
        bits_per_frame = config.full_quality_bitrate / config.fps
        anchor = bits_per_frame / (config.width * config.height)
        entry = (config, anchor, {})
        while len(_CONFIG_MEMO) >= _CONFIG_MEMO_MAX:
            _CONFIG_MEMO.pop(next(iter(_CONFIG_MEMO)))
        _CONFIG_MEMO[id(config)] = entry
    return entry


def anchor_bpp(config: VideoConfig) -> float:
    """Bits-per-pixel of the full-quality encoded stream."""
    return _config_memo(config)[1]


def psnr_from_bpp(bpp: float, config: VideoConfig, complexity: float = 1.0) -> float:
    """Encoded PSNR for ``bpp`` bits per pixel of ``complexity``-hard content.

    ``complexity`` scales the bits needed for a given quality: a tile
    twice as complex needs twice the bits for the same PSNR.
    """
    if bpp <= 0.0:
        return config.psnr_floor
    effective = bpp / max(1e-9, complexity)
    psnr = config.rd_anchor_psnr + config.rd_db_per_octave * _log2(
        effective / anchor_bpp(config)
    )
    return min(config.psnr_ceiling, max(config.psnr_floor, psnr))


def scale_psnr(level: float, config: VideoConfig) -> float:
    """PSNR cost of downscaling a tile to compression level ``level``.

    Level 1 (no downscale) is lossless — returned as +inf so that the
    MSE-domain combination adds nothing.  Levels come from the small
    per-mode set, so the value is memoised per config.
    """
    cache = _config_memo(config)[2]
    value = cache.get(level)
    if value is None:
        if level <= 1.0:
            value = float("inf")
        else:
            value = config.scale_anchor_psnr - config.scale_db_per_octave * _log2(level)
        cache[level] = value
    return value


def combine_psnr_mse(*psnrs: float) -> float:
    """Combine independent distortion stages by adding their MSEs."""
    total = 0.0
    for psnr in psnrs:
        if psnr != float("inf"):
            total += mse_from_psnr(psnr)
    return psnr_from_mse(total)


def displayed_tile_psnr(
    bpp: float, level: float, config: VideoConfig, complexity: float = 1.0
) -> float:
    """PSNR of a displayed tile: encoding ⊕ downscale distortion.

    ``bpp`` is bits per *compressed* pixel for the tile, ``level`` its
    compression level in the frame's matrix.
    """
    encoded = psnr_from_bpp(bpp, config, complexity)
    return combine_psnr_mse(encoded, scale_psnr(level, config))


# ----------------------------------------------------------------------
# Array kernels (bit-identical to mapping the scalar twins)
# ----------------------------------------------------------------------


def mse_from_psnr_array(psnr_db: np.ndarray) -> np.ndarray:
    """:func:`mse_from_psnr` over an array (+inf PSNR → 0 MSE)."""
    psnr_db = np.asarray(psnr_db, dtype=float)
    if _REFERENCE_KERNELS:
        return np.array([mse_from_psnr(p) for p in psnr_db.ravel()]).reshape(
            psnr_db.shape
        )
    return _PEAK_SQUARED / np.power(10.0, psnr_db / 10.0)


def psnr_from_mse_array(mse: np.ndarray) -> np.ndarray:
    """:func:`psnr_from_mse` over an array (MSE ≤ 0 → +inf)."""
    mse = np.asarray(mse, dtype=float)
    if _REFERENCE_KERNELS:
        return np.array([psnr_from_mse(m) for m in mse.ravel()]).reshape(mse.shape)
    # where-safe input instead of errstate: the context manager costs
    # more than the whole 9-tile kernel on the per-frame path.
    safe = np.where(mse <= 0.0, 1.0, mse)
    psnr = 10.0 * np.log10(_PEAK_SQUARED / safe)
    return np.where(mse <= 0.0, np.inf, psnr)


def psnr_from_bpp_array(
    bpp, config: VideoConfig, complexity=1.0
) -> np.ndarray:
    """:func:`psnr_from_bpp` over arrays (``bpp``/``complexity`` broadcast)."""
    if _REFERENCE_KERNELS:
        bpp, complexity = np.broadcast_arrays(
            np.asarray(bpp, dtype=float), np.asarray(complexity, dtype=float)
        )
        return np.array(
            [
                psnr_from_bpp(b, config, c)
                for b, c in zip(bpp.ravel(), complexity.ravel())
            ]
        ).reshape(bpp.shape)
    bpp = np.asarray(bpp, dtype=float)
    complexity = np.asarray(complexity, dtype=float)
    effective = bpp / np.maximum(1e-9, complexity)
    # where-safe input keeps log2 off zero/negative operands (errstate
    # is too slow for the per-frame path); masked lanes are overwritten.
    safe = np.where(bpp <= 0.0, 1.0, effective)
    psnr = config.rd_anchor_psnr + config.rd_db_per_octave * np.log2(
        safe / anchor_bpp(config)
    )
    clamped = np.minimum(config.psnr_ceiling, np.maximum(config.psnr_floor, psnr))
    return np.where(bpp <= 0.0, config.psnr_floor, clamped)


def scale_psnr_array(levels, config: VideoConfig) -> np.ndarray:
    """:func:`scale_psnr` over a level array (level ≤ 1 → +inf)."""
    levels = np.asarray(levels, dtype=float)
    if _REFERENCE_KERNELS:
        return np.array([scale_psnr(l, config) for l in levels.ravel()]).reshape(
            levels.shape
        )
    safe = np.where(levels <= 1.0, 2.0, levels)
    psnr = config.scale_anchor_psnr - config.scale_db_per_octave * np.log2(safe)
    return np.where(levels <= 1.0, np.inf, psnr)


def displayed_tile_psnr_array(
    bpp, levels, config: VideoConfig, complexity=1.0
) -> np.ndarray:
    """:func:`displayed_tile_psnr` over whole tile arrays.

    The hot receiver-side kernel: one call covers every tile of the ROI
    measurement crop instead of ~9 scalar calls per displayed frame.
    """
    levels = np.asarray(levels, dtype=float)
    if _REFERENCE_KERNELS:
        bpp_b, levels_b, complexity_b = np.broadcast_arrays(
            np.asarray(bpp, dtype=float), levels, np.asarray(complexity, dtype=float)
        )
        return np.array(
            [
                displayed_tile_psnr(b, l, config, c)
                for b, l, c in zip(bpp_b.ravel(), levels_b.ravel(), complexity_b.ravel())
            ]
        ).reshape(levels_b.shape)
    encoded = psnr_from_bpp_array(bpp, config, complexity)
    total_mse = mse_from_psnr_array(encoded) + mse_from_psnr_array(
        scale_psnr_array(levels, config)
    )
    return psnr_from_mse_array(total_mse)


def mos_band(psnr_db: float) -> str:
    """Map a frame PSNR to the paper's Table 1 MOS band.

    >>> mos_band(40.0)
    'excellent'
    >>> mos_band(18.0)
    'bad'
    """
    for name, lower in MOS_BANDS:
        if psnr_db > lower:
            return name
    return "bad"


#: Numeric score of each Table 1 band on the standard 1-5 MOS scale.
MOS_SCORES = {name: float(score) for score, name in enumerate(MOS_ORDER, start=1)}


def mos_score(pdf) -> float:
    """Expected MOS (1-5) of a band PDF like ``QualityStats.mos_pdf``.

    Bands are scored ``bad=1 … excellent=5``; missing bands count as
    probability zero, so a partial PDF still scores.

    >>> mos_score({"good": 0.5, "excellent": 0.5})
    4.5
    >>> mos_score({"bad": 1.0})
    1.0
    >>> mos_score({})
    nan
    """
    total = 0.0
    weight = 0.0
    for name, fraction in pdf.items():
        total += MOS_SCORES[name] * fraction
        weight += fraction
    if weight <= 0.0:
        return float("nan")
    return total / weight
