"""Rate-distortion and perceptual-quality models.

Two distortion sources are modelled and combined in the MSE domain:

1. **Encoding distortion** — a logarithmic R-D curve: PSNR grows by a
   fixed number of dB per doubling of bits-per-pixel, anchored at the
   full-quality operating point of the paper's 12.65 Mbps test video.
2. **Spatial downscale distortion** — a tile compressed to level ``l``
   (area shrunk ``l``-fold, Eq. 1) and upscaled for display loses high
   frequencies: its PSNR cost is logarithmic in ``l``.

MOS bands follow the paper's Table 1 (the PSNR→MOS mapping of Sen et
al., SIGCOMM'10).
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.config import VideoConfig

#: Table 1 of the paper: (band name, inclusive lower PSNR bound).
MOS_BANDS: Tuple[Tuple[str, float], ...] = (
    ("excellent", 37.0),
    ("good", 31.0),
    ("fair", 25.0),
    ("poor", 20.0),
    ("bad", float("-inf")),
)

#: Order used when reporting MOS PDFs (worst → best, as in Fig. 11c/d).
MOS_ORDER: Tuple[str, ...] = ("bad", "poor", "fair", "good", "excellent")

_PEAK_SQUARED = 255.0 * 255.0


def mse_from_psnr(psnr_db: float) -> float:
    """Mean squared error corresponding to a PSNR (8-bit peak)."""
    return _PEAK_SQUARED / (10.0 ** (psnr_db / 10.0))


def psnr_from_mse(mse: float) -> float:
    """PSNR (dB) for a mean squared error (8-bit peak)."""
    if mse <= 0.0:
        return float("inf")
    return 10.0 * math.log10(_PEAK_SQUARED / mse)


#: Per-config memo for the hot R-D helpers, keyed by object identity —
#: hashing a frozen dataclass on every per-tile call costs more than the
#: arithmetic it saves.  The entry keeps a strong reference to the
#: config so its id cannot be recycled.
_CONFIG_MEMO: dict = {}


def _config_memo(config: VideoConfig) -> tuple:
    entry = _CONFIG_MEMO.get(id(config))
    if entry is None or entry[0] is not config:
        bits_per_frame = config.full_quality_bitrate / config.fps
        anchor = bits_per_frame / (config.width * config.height)
        entry = (config, anchor, {})
        _CONFIG_MEMO[id(config)] = entry
    return entry


def anchor_bpp(config: VideoConfig) -> float:
    """Bits-per-pixel of the full-quality encoded stream."""
    return _config_memo(config)[1]


def psnr_from_bpp(bpp: float, config: VideoConfig, complexity: float = 1.0) -> float:
    """Encoded PSNR for ``bpp`` bits per pixel of ``complexity``-hard content.

    ``complexity`` scales the bits needed for a given quality: a tile
    twice as complex needs twice the bits for the same PSNR.
    """
    if bpp <= 0.0:
        return config.psnr_floor
    effective = bpp / max(1e-9, complexity)
    psnr = config.rd_anchor_psnr + config.rd_db_per_octave * math.log2(
        effective / anchor_bpp(config)
    )
    return min(config.psnr_ceiling, max(config.psnr_floor, psnr))


def scale_psnr(level: float, config: VideoConfig) -> float:
    """PSNR cost of downscaling a tile to compression level ``level``.

    Level 1 (no downscale) is lossless — returned as +inf so that the
    MSE-domain combination adds nothing.  Levels come from the small
    per-mode set, so the value is memoised per config.
    """
    cache = _config_memo(config)[2]
    value = cache.get(level)
    if value is None:
        if level <= 1.0:
            value = float("inf")
        else:
            value = config.scale_anchor_psnr - config.scale_db_per_octave * math.log2(level)
        cache[level] = value
    return value


def combine_psnr_mse(*psnrs: float) -> float:
    """Combine independent distortion stages by adding their MSEs."""
    total = 0.0
    for psnr in psnrs:
        if psnr != float("inf"):
            total += mse_from_psnr(psnr)
    return psnr_from_mse(total)


def displayed_tile_psnr(
    bpp: float, level: float, config: VideoConfig, complexity: float = 1.0
) -> float:
    """PSNR of a displayed tile: encoding ⊕ downscale distortion.

    ``bpp`` is bits per *compressed* pixel for the tile, ``level`` its
    compression level in the frame's matrix.
    """
    encoded = psnr_from_bpp(bpp, config, complexity)
    return combine_psnr_mse(encoded, scale_psnr(level, config))


def mos_band(psnr_db: float) -> str:
    """Map a frame PSNR to the paper's Table 1 MOS band.

    >>> mos_band(40.0)
    'excellent'
    >>> mos_band(18.0)
    'bad'
    """
    for name, lower in MOS_BANDS:
        if psnr_db > lower:
            return name
    return "bad"
