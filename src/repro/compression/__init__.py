"""ROI-based spatial compression: POI360's adaptive scheme and baselines."""

from repro.compression.base import CompressionScheme
from repro.compression.conduit import ConduitCompression
from repro.compression.matrix import build_mode_matrix, fov_tile_offsets, roi_region_tiles
from repro.compression.mismatch import MismatchEstimator
from repro.compression.modes import ModeFamily
from repro.compression.poi360 import AdaptiveCompression
from repro.compression.pyramid import PyramidCompression

__all__ = [
    "CompressionScheme",
    "ConduitCompression",
    "PyramidCompression",
    "AdaptiveCompression",
    "ModeFamily",
    "MismatchEstimator",
    "build_mode_matrix",
    "fov_tile_offsets",
    "roi_region_tiles",
]


def make_scheme(name, config, grid, viewer, trace=None, meter=None):
    """Factory mapping a scheme name to its implementation.

    Parameters mirror what every scheme needs: the
    :class:`repro.config.CompressionConfig`, the tile grid, and the
    viewer config (for FoV-sized regions).  ``trace`` is an optional
    :class:`repro.obs.TraceBus` and ``meter`` an optional
    :class:`repro.obs.SessionMeter`; only the adaptive scheme emits
    (``mode_switch`` / ``mode.mismatch`` events,
    ``compression.*`` metrics).
    """
    from repro.obs.bus import NULL_BUS
    from repro.obs.meter import NULL_METER

    name = name.lower()
    if name == "poi360":
        return AdaptiveCompression(
            config, grid, trace=trace or NULL_BUS, meter=meter or NULL_METER
        )
    if name == "conduit":
        return ConduitCompression(config, grid, viewer)
    if name == "pyramid":
        return PyramidCompression(config, grid)
    if name == "pyramid_geo":
        from repro.compression.pyramid_geo import GeometricPyramidCompression

        return GeometricPyramidCompression(config, grid)
    raise ValueError(f"unknown compression scheme: {name!r}")
