"""Client-side ROI-mismatch-time (M) measurement — Eq. (2) of §4.2.

M captures how long the sender and viewer hold inconsistent ROI
knowledge.  The client measures it per displayed frame by watching the
compression level at its *actual* ROI centre:

- if that level is still ``l_min`` the ROI is consistent, and M is just
  the one-way frame delay ``dv`` (any future change would take at least
  that long to show up);
- otherwise the viewer is looking at a not-yet-updated region: M is the
  time since the ROI change was detected (``t - t0``), floored at ``dv``.

Frame-level values are averaged over a sliding window and fed back to
the sender each frame interval.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple


class MismatchEstimator:
    """Sliding-window average of the frame-level mismatch time."""

    def __init__(self, window_s: float, l_min: float = 1.0, tolerance: float = 1e-6):
        self._window = window_s
        self._l_min = l_min
        self._tolerance = tolerance
        self._samples: Deque[Tuple[float, float]] = deque()
        self._roi_change_time: Optional[float] = None
        self._last_roi: Optional[Tuple[int, int]] = None

    def observe_roi(self, roi: Tuple[int, int], now: float) -> None:
        """Track the viewer's ROI; a change starts the mismatch clock."""
        if self._last_roi is not None and roi != self._last_roi:
            if self._roi_change_time is None:
                self._roi_change_time = now
        self._last_roi = roi

    def observe_frame(
        self,
        displayed_level: float,
        frame_delay: float,
        now: float,
        converged_level: Optional[float] = None,
    ) -> float:
        """Record one displayed frame; returns its frame-level M.

        ``displayed_level`` is the compression level shown in the
        viewer's ROI; ``converged_level`` is what that level would be if
        the sender's ROI knowledge were current (the client can compute
        it because the sender embeds its compression mode in the frame,
        §5).  When omitted, the Eq. (2) literal ``l_min`` check is used.
        """
        reference = self._l_min if converged_level is None else converged_level
        converged = displayed_level <= reference * 1.05 + self._tolerance
        if converged:
            # Quality in the (possibly new) ROI has converged: stop the
            # clock and fall back to the frame-delay floor.
            self._roi_change_time = None
            mismatch = frame_delay
        elif self._roi_change_time is not None:
            mismatch = max(now - self._roi_change_time, frame_delay)
        else:
            # Looking at a compressed region without a recorded ROI
            # change (e.g. session start): count from now.
            self._roi_change_time = now
            mismatch = frame_delay
        self._samples.append((now, mismatch))
        self._evict(now)
        return mismatch

    def _evict(self, now: float) -> None:
        horizon = now - self._window
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def average(self) -> float:
        """Sliding-window average M (0 when no samples yet)."""
        if not self._samples:
            return 0.0
        return sum(m for _, m in self._samples) / len(self._samples)
