"""Geometric pyramid encoding — Facebook's projection, done on the sphere.

The paper's Pyramid baseline ([7]/[10]) re-projects the sphere onto a
pyramid whose base is the viewport: full resolution inside the base,
resolution falling linearly along the side faces toward the apex (the
point diametrically opposite the view).  :class:`PyramidCompression`
approximates this with the Eq. (1) tile-distance formula; this variant
computes each tile's compression level from actual sphere geometry —
the angle between the tile-centre direction and the ROI direction —
which is faithful to the projection (e.g. the tile *behind* the viewer
is equally compressed whether it differs in yaw or pitch).

Registered as scheme name ``"pyramid_geo"``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.compression.base import CompressionScheme
from repro.config import CompressionConfig
from repro.video.frame import TileGrid
from repro.video.projection import angles_to_vector

#: Angular radius of the full-resolution pyramid base (degrees).
BASE_ANGLE_DEG = 50.0

#: Per-dimension downscale at the apex (the direction opposite the ROI);
#: level = scale^2.  6 gives a pixel budget comparable to Facebook's
#: reported ~80% reduction.
APEX_SCALE = 6.0


def _tile_center_angles(grid: TileGrid, i: int, j: int) -> Tuple[float, float]:
    yaw = (i + 0.5) * 360.0 / grid.tiles_x
    pitch = -90.0 + (j + 0.5) * 180.0 / grid.tiles_y
    return (yaw, pitch)


def level_for_angle(theta_deg: float) -> float:
    """Compression level for a tile ``theta`` degrees off the ROI axis.

    >>> level_for_angle(0.0)
    1.0
    >>> level_for_angle(180.0) == APEX_SCALE ** 2
    True
    """
    if theta_deg <= BASE_ANGLE_DEG:
        return 1.0
    fraction = (theta_deg - BASE_ANGLE_DEG) / (180.0 - BASE_ANGLE_DEG)
    scale = 1.0 + (APEX_SCALE - 1.0) * fraction
    return scale * scale


class GeometricPyramidCompression(CompressionScheme):
    """Fixed pyramid-projection profile from true sphere angles."""

    name = "pyramid_geo"

    def __init__(self, config: CompressionConfig, grid: TileGrid):
        self._config = config
        self._grid = grid
        #: Unit direction of every tile centre, precomputed.
        self._directions = np.empty((grid.tiles_x, grid.tiles_y, 3))
        for i in range(grid.tiles_x):
            for j in range(grid.tiles_y):
                yaw, pitch = _tile_center_angles(grid, i, j)
                self._directions[i, j] = angles_to_vector(yaw, pitch)

    def matrix(self, sender_roi: Tuple[int, int]) -> np.ndarray:
        roi_direction = self._directions[sender_roi[0], sender_roi[1]]
        cosines = np.clip(self._directions @ roi_direction, -1.0, 1.0)
        thetas = np.degrees(np.arccos(cosines))
        levels = np.vectorize(level_for_angle)(thetas)
        # The ROI tile itself is always lossless, whatever the grid's
        # quantisation does to its centre angle.
        levels[sender_roi[0], sender_roi[1]] = self._config.l_min
        return levels
