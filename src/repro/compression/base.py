"""Interface every spatial compression scheme implements."""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np


class CompressionScheme(abc.ABC):
    """Maps the sender's ROI knowledge to a compression matrix.

    ``update_mismatch`` receives the viewer's averaged ROI-mismatch-time
    feedback; fixed schemes (Conduit, Pyramid) ignore it, POI360 adapts
    its mode with it.
    """

    #: Human-readable scheme name (used in experiment tables).
    name: str = "base"

    @abc.abstractmethod
    def matrix(self, sender_roi: Tuple[int, int]) -> np.ndarray:
        """Compression matrix for the sender's current ROI knowledge."""

    def update_mismatch(self, mismatch_s: float) -> None:
        """Consume the viewer's averaged M feedback (default: ignore)."""

    def fit_to_rate(self, rate_bps: float, floor_rate) -> None:
        """Ensure the chosen profile can be encoded at ``rate_bps``.

        ``floor_rate`` maps a compression matrix to the encoder's
        minimum sustainable bitrate for it.  Fixed schemes ignore this;
        POI360 steps to more aggressive modes when a conservative
        profile cannot fit the starving uplink (§6.1.1: it "can switch
        to more aggressive compression modes than Conduit under bad
        network condition").
        """

    @property
    def l_min(self) -> float:
        """Compression level at the ROI centre."""
        return 1.0
