"""Conduit baseline (Patel & Rose 2015, as benchmarked in §6.1.1).

Conduit crops the ROI region from the panorama and streams only the
crop; following the paper's benchmark setup, the non-ROI region is still
sent but "with the lowest possible quality".  It is the extreme
aggressive mode: two quality levels, razor-sharp spatial transition, so
any ROI staleness drops the viewer straight into the bottom level.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.compression.base import CompressionScheme
from repro.compression.matrix import fov_tile_offsets, roi_region_tiles
from repro.config import CompressionConfig, ViewerConfig
from repro.video.frame import TileGrid


class ConduitCompression(CompressionScheme):
    """Binary crop: l_min inside the FoV region, l_max outside."""

    name = "conduit"

    def __init__(self, config: CompressionConfig, grid: TileGrid, viewer: ViewerConfig):
        self._config = config
        self._grid = grid
        self._offsets = fov_tile_offsets(grid, viewer)
        #: Crop matrices per ROI centre — the crop pattern is a pure
        #: function of the ROI, and sharing one read-only array per ROI
        #: lets the encoder's per-matrix caches hit across frames.
        self._matrix_cache: dict = {}

    def matrix(self, sender_roi: Tuple[int, int]) -> np.ndarray:
        key = (sender_roi[0] % self._grid.tiles_x, sender_roi[1])
        cached = self._matrix_cache.get(key)
        if cached is not None:
            return cached
        matrix = np.full(
            (self._grid.tiles_x, self._grid.tiles_y), self._config.conduit_l_max
        )
        for i, j in roi_region_tiles(self._grid, sender_roi, self._offsets):
            matrix[i, j] = self._config.l_min
        matrix.flags.writeable = False
        self._matrix_cache[key] = matrix
        return matrix
