"""Compression-matrix construction and ROI-region geometry.

The compression matrix ``L`` assigns every tile its compression level
``l_ij`` (size ratio before/after).  Eq. (1) of the paper defines the
mode family ``l_ij = C^(dx + dy)`` around the ROI centre, with ``dx``
cyclic (yaw wraps) and ``dy`` absolute.  When the ROI centre shifts,
rebuilding the matrix is exactly the paper's "cyclic shift".

Because ``dx`` is cyclic, the matrix for ROI ``(i*, j*)`` is the matrix
for ``(0, j*)`` rolled ``i*`` rows along the x axis — so the module
keeps a **mode-matrix cache**: one template per ``(grid, C, plateau,
j*)``, rolled (and also cached) per ``i*``.  Cached matrices are marked
read-only and shared between frames; they are bit-identical to a fresh
:func:`build_mode_matrix_reference` build, which property tests enforce.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import List, Tuple

import numpy as np

from repro.config import ViewerConfig
from repro.video.frame import TileGrid

#: Rolled-matrix cache entries kept (per process).  A full family on the
#: paper's grid is 9 modes x 8 j* x 12 i* = 864 matrices of 96 floats,
#: so the cap is generous headroom, not a working-set limit.
_MATRIX_CACHE_MAX = 4096

#: ``(tiles_x, tiles_y, c, px, py, j*) ->`` template matrix at ``i* = 0``.
_TEMPLATE_CACHE: "OrderedDict[tuple, np.ndarray]" = OrderedDict()

#: ``template key + (i*,) ->`` rolled read-only matrix.
_MATRIX_CACHE: "OrderedDict[tuple, np.ndarray]" = OrderedDict()

#: ``id(matrix) -> (matrix, ratio)`` for read-only (cached) matrices.
_RATIO_CACHE: "OrderedDict[int, tuple]" = OrderedDict()


def clear_matrix_cache() -> None:
    """Drop every cached template, rolled matrix, and pixel ratio."""
    _TEMPLATE_CACHE.clear()
    _MATRIX_CACHE.clear()
    _RATIO_CACHE.clear()


def _evict_oldest(cache: OrderedDict, cap: int) -> None:
    while len(cache) >= cap:
        cache.popitem(last=False)


def build_mode_matrix_reference(
    grid: TileGrid,
    roi: Tuple[int, int],
    c: float,
    plateau: Tuple[int, int] = (0, 0),
) -> np.ndarray:
    """Eq. (1) computed directly (no cache) — the reference the cached
    path is property-tested against, and the "before" leg of the
    ``matrix_build`` microbenchmark."""
    i_star, j_star = roi
    i = np.arange(grid.tiles_x)
    raw = np.abs(i - i_star) % grid.tiles_x
    dx = np.minimum(raw, grid.tiles_x - raw)
    dy = np.abs(np.arange(grid.tiles_y) - j_star)
    px, py = plateau
    dx = np.maximum(0, dx - px)
    dy = np.maximum(0, dy - py)
    return np.power(c, dx[:, None] + dy[None, :]).astype(float)


def build_mode_matrix(
    grid: TileGrid,
    roi: Tuple[int, int],
    c: float,
    plateau: Tuple[int, int] = (0, 0),
) -> np.ndarray:
    """Eq. (1): ``L[i, j] = C^(dx(i,i*) + dy(j,j*))`` (cached).

    ``plateau`` keeps a full-quality core of ``±plateau`` tiles around
    the ROI centre before the exponential decay starts — the ROI the
    viewer actually looks at spans several tiles, and compressing the
    tile right next to the gaze defeats the point of ROI streaming.
    Distances are reduced by the plateau half-widths (floored at 0).

    The returned matrix is a cached, **read-only** array shared by every
    frame with the same ``(grid, C, plateau, roi)`` — the exponents of
    Eq. (1) are cyclic in x, so it is the ``(0, j*)`` template rolled
    ``i*`` rows, bit-identical to an uncached build.

    >>> import repro.video.frame as f
    >>> g = f.TileGrid(width=12, height=8, tiles_x=12, tiles_y=8)
    >>> m = build_mode_matrix(g, (0, 0), 1.5)
    >>> float(m[0, 0])
    1.0
    >>> float(m[6, 0]) == 1.5 ** 6
    True
    """
    i_star, j_star = roi
    i_star %= grid.tiles_x
    px, py = plateau
    template_key = (grid.tiles_x, grid.tiles_y, float(c), px, py, j_star)
    matrix_key = template_key + (i_star,)
    matrix = _MATRIX_CACHE.get(matrix_key)
    if matrix is not None:
        return matrix
    template = _TEMPLATE_CACHE.get(template_key)
    if template is None:
        template = build_mode_matrix_reference(grid, (0, j_star), c, plateau)
        template.flags.writeable = False
        _evict_oldest(_TEMPLATE_CACHE, _MATRIX_CACHE_MAX)
        _TEMPLATE_CACHE[template_key] = template
    if i_star == 0:
        matrix = template
    else:
        matrix = np.roll(template, i_star, axis=0)
        matrix.flags.writeable = False
    _evict_oldest(_MATRIX_CACHE, _MATRIX_CACHE_MAX)
    _MATRIX_CACHE[matrix_key] = matrix
    return matrix


def pixel_ratio(matrix: np.ndarray) -> float:
    """Compressed-to-raw pixel ratio of a frame under ``matrix``.

    For the read-only matrices handed out by :func:`build_mode_matrix`
    the value is memoised by matrix identity (it only depends on the
    mode and ``j*`` — rolling permutes tiles, not their levels — but the
    memo keys the exact array so the cached value is always the one
    computed from that array's own element order, i.e. bit-identical to
    an uncached call).
    """
    entry = _RATIO_CACHE.get(id(matrix))
    if entry is not None and entry[0] is matrix:
        return entry[1]
    value = float((1.0 / matrix).mean())
    if not matrix.flags.writeable:
        _evict_oldest(_RATIO_CACHE, _MATRIX_CACHE_MAX)
        _RATIO_CACHE[id(matrix)] = (matrix, value)
    return value


def fov_tile_offsets(grid: TileGrid, viewer: ViewerConfig) -> List[Tuple[int, int]]:
    """Tile offsets (dx, dy) whose centres fall inside the HMD's FoV.

    Used both by Conduit's crop and by the receiver-side ROI-region
    quality measurement (§5: "the users only care about the quality
    within ROI").
    """
    span_x, span_y = grid.degrees_per_tile()
    half_x = int(math.floor((viewer.fov_x_deg / 2.0) / span_x))
    half_y = int(math.floor((viewer.fov_y_deg / 2.0) / span_y))
    return [
        (dx, dy)
        for dx in range(-half_x, half_x + 1)
        for dy in range(-half_y, half_y + 1)
    ]


def roi_region_tiles(
    grid: TileGrid, roi: Tuple[int, int], offsets: List[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Absolute tile coordinates of the FoV region around ``roi``.

    x wraps; tiles whose y falls off the top/bottom are clipped away.
    """
    i_star, j_star = roi
    tiles = []
    for dx, dy in offsets:
        j = j_star + dy
        if 0 <= j < grid.tiles_y:
            tiles.append(((i_star + dx) % grid.tiles_x, j))
    return tiles
