"""Compression-matrix construction and ROI-region geometry.

The compression matrix ``L`` assigns every tile its compression level
``l_ij`` (size ratio before/after).  Eq. (1) of the paper defines the
mode family ``l_ij = C^(dx + dy)`` around the ROI centre, with ``dx``
cyclic (yaw wraps) and ``dy`` absolute.  When the ROI centre shifts,
rebuilding the matrix is exactly the paper's "cyclic shift".
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.config import ViewerConfig
from repro.video.frame import TileGrid


def build_mode_matrix(
    grid: TileGrid,
    roi: Tuple[int, int],
    c: float,
    plateau: Tuple[int, int] = (0, 0),
) -> np.ndarray:
    """Eq. (1): ``L[i, j] = C^(dx(i,i*) + dy(j,j*))``.

    ``plateau`` keeps a full-quality core of ``±plateau`` tiles around
    the ROI centre before the exponential decay starts — the ROI the
    viewer actually looks at spans several tiles, and compressing the
    tile right next to the gaze defeats the point of ROI streaming.
    Distances are reduced by the plateau half-widths (floored at 0).

    >>> import repro.video.frame as f
    >>> g = f.TileGrid(width=12, height=8, tiles_x=12, tiles_y=8)
    >>> m = build_mode_matrix(g, (0, 0), 1.5)
    >>> float(m[0, 0])
    1.0
    >>> float(m[6, 0]) == 1.5 ** 6
    True
    """
    i_star, j_star = roi
    i = np.arange(grid.tiles_x)
    raw = np.abs(i - i_star) % grid.tiles_x
    dx = np.minimum(raw, grid.tiles_x - raw)
    dy = np.abs(np.arange(grid.tiles_y) - j_star)
    px, py = plateau
    dx = np.maximum(0, dx - px)
    dy = np.maximum(0, dy - py)
    return np.power(c, dx[:, None] + dy[None, :]).astype(float)


def pixel_ratio(matrix: np.ndarray) -> float:
    """Compressed-to-raw pixel ratio of a frame under ``matrix``."""
    return float((1.0 / matrix).mean())


def fov_tile_offsets(grid: TileGrid, viewer: ViewerConfig) -> List[Tuple[int, int]]:
    """Tile offsets (dx, dy) whose centres fall inside the HMD's FoV.

    Used both by Conduit's crop and by the receiver-side ROI-region
    quality measurement (§5: "the users only care about the quality
    within ROI").
    """
    span_x, span_y = grid.degrees_per_tile()
    half_x = int(math.floor((viewer.fov_x_deg / 2.0) / span_x))
    half_y = int(math.floor((viewer.fov_y_deg / 2.0) / span_y))
    return [
        (dx, dy)
        for dx in range(-half_x, half_x + 1)
        for dy in range(-half_y, half_y + 1)
    ]


def roi_region_tiles(
    grid: TileGrid, roi: Tuple[int, int], offsets: List[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Absolute tile coordinates of the FoV region around ``roi``.

    x wraps; tiles whose y falls off the top/bottom are clipped away.
    """
    i_star, j_star = roi
    tiles = []
    for dx, dy in offsets:
        j = j_star + dy
        if 0 <= j < grid.tiles_y:
            tiles.append(((i_star + dx) % grid.tiles_x, j))
    return tiles
