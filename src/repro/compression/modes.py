"""The K pre-defined compression modes of §4.2.

``F_1 .. F_K`` are ordered by *decreasing* aggressiveness: F1 uses the
largest ``C`` (sharpest quality drop away from the ROI, smallest
traffic), F_K the smallest ``C`` (smoothest profile, safest under laggy
ROI feedback).  The paper uses K = 8 with C drawn from [1.1 .. 1.8] and
selects the mode index as ``ceil(M / 200 ms)`` clamped to [1, K] (its
printed ``max(8, ...)`` is a typo for the clamp — see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.config import CompressionConfig
from repro.compression.matrix import build_mode_matrix
from repro.video.frame import TileGrid


@dataclass(frozen=True)
class Mode:
    """One compression mode F_k."""

    index: int
    c: float
    plateau: Tuple[int, int] = (0, 0)

    def matrix(self, grid: TileGrid, roi: Tuple[int, int]) -> np.ndarray:
        return build_mode_matrix(grid, roi, self.c, self.plateau)


class ModeFamily:
    """The ordered family F_1 (aggressive) .. F_K (conservative)."""

    def __init__(self, config: CompressionConfig):
        self._config = config
        count = config.num_modes
        if count < 2:
            raise ValueError("need at least two modes")
        cs = np.linspace(config.c_aggressive, config.c_conservative, count)
        plateau = (config.plateau_x, config.plateau_y)
        self.modes = tuple(
            Mode(index=k + 1, c=float(c), plateau=plateau) for k, c in enumerate(cs)
        )

    def __len__(self) -> int:
        return len(self.modes)

    def __getitem__(self, index: int) -> Mode:
        """1-based mode access (F_1 .. F_K)."""
        return self.modes[index - 1]

    def emergency_mode(self) -> Mode:
        """A crop-like profile below F1: maximum C, no plateau.

        Used only when even F1's encoder bits floor exceeds the uplink
        bandwidth (§6.1.1: POI360 "can switch to more aggressive
        compression modes than Conduit under bad network condition").
        """
        return Mode(index=0, c=self._config.c_aggressive, plateau=(0, 0))

    def mode_for_mismatch(self, mismatch_s: float) -> Mode:
        """Select F_{i_m}, i_m = clamp(ceil(M / bucket), 1, K).

        >>> from repro.config import CompressionConfig
        >>> fam = ModeFamily(CompressionConfig())
        >>> fam.mode_for_mismatch(0.05).index
        1
        >>> fam.mode_for_mismatch(10.0).index
        8
        """
        bucket = self._config.mode_bucket
        index = math.ceil(max(0.0, mismatch_s) / bucket)
        index = max(1, min(len(self.modes), index))
        return self[index]
