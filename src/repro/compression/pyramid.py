"""Pyramid-encoding baseline (Facebook's 360 pyramid, as used in §6.1.1).

A fixed conservative profile: the frame is centred at the ROI with the
highest quality at the centre and progressively stronger compression
toward the corners.  In the paper's system model this is a single
non-adaptive mode with a smooth quality-distribution curve.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.compression.base import CompressionScheme
from repro.compression.matrix import build_mode_matrix
from repro.config import CompressionConfig
from repro.video.frame import TileGrid


class PyramidCompression(CompressionScheme):
    """Fixed smooth profile ``l_ij = pyramid_c^(dx + dy)``."""

    name = "pyramid"

    def __init__(self, config: CompressionConfig, grid: TileGrid):
        self._config = config
        self._grid = grid

    def matrix(self, sender_roi: Tuple[int, int]) -> np.ndarray:
        return build_mode_matrix(self._grid, sender_roi, self._config.pyramid_c)
