"""POI360's adaptive spatial compression (§4.2 — the core contribution).

The viewer feeds back the sliding-window average of the ROI mismatch
time M each frame interval; the sender switches to the mode whose
aggressiveness fits the current end-to-end ROI-update responsiveness:
small M → F1 (C=1.8, crop-like traffic savings), large M → F8 (C=1.1,
smooth quality profile that keeps the new ROI watchable while stale).

Two forces pick the *effective* mode:

- the **desired** mode follows M (Eq. 2 feedback) with a small
  hysteresis so M hovering at a bucket boundary does not flap the mode
  (every switch costs intra-refresh bits at the encoder);
- a **rate cap** from the uplink: a conservative mode carries more
  compressed pixels than the encoder's max-quantiser floor can fit in a
  starving uplink, so the sender clamps to the most conservative mode
  that still fits — down to a crop-like emergency mode below F1 when
  even F1 does not ("POI360 can switch to more aggressive compression
  modes than Conduit under bad network condition", §6.1.1).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.compression.base import CompressionScheme
from repro.compression.modes import Mode, ModeFamily
from repro.config import CompressionConfig
from repro.obs.bus import NULL_BUS
from repro.obs.meter import NULL_METER
from repro.video.frame import TileGrid


class AdaptiveCompression(CompressionScheme):
    """Mode-switching ROI compression driven by the M feedback."""

    name = "poi360"

    #: A switch requires M to sit this fraction of a bucket past the
    #: boundary.
    HYSTERESIS = 0.15

    #: A mode fits the uplink when its encoder bits floor stays below
    #: this fraction of the target rate.
    RATE_FIT_MARGIN = 0.85

    def __init__(
        self, config: CompressionConfig, grid: TileGrid, trace=NULL_BUS, meter=NULL_METER
    ):
        self._config = config
        self._grid = grid
        self._trace = trace
        self._meter = meter
        self._family = ModeFamily(config)
        #: Start conservative until the first M feedback arrives.
        self._desired_index = len(self._family)
        #: Most conservative mode index the uplink currently sustains
        #: (0 = only the emergency crop fits).
        self._cap_index = len(self._family)
        self._last_effective = self._effective_index()
        self._floor_cache: dict = {}
        self.mode_switches = 0
        self.rate_clamp_events = 0

    def _effective_index(self) -> int:
        return min(self._desired_index, self._cap_index)

    @property
    def current_mode(self) -> Mode:
        index = self._effective_index()
        if index == 0:
            return self._family.emergency_mode()
        return self._family[index]

    def _note_switch(self) -> None:
        effective = self._effective_index()
        if effective != self._last_effective:
            self.mode_switches += 1
            if self._trace:
                self._trace.emit(
                    "mode_switch",
                    from_index=self._last_effective,
                    to_index=effective,
                    desired_index=self._desired_index,
                    cap_index=self._cap_index,
                )
            if self._meter:
                self._meter.inc("compression.mode_switches")
            self._last_effective = effective

    def update_mismatch(self, mismatch_s: float) -> None:
        bucket = self._config.mode_bucket
        margin = self.HYSTERESIS * bucket
        current = self._desired_index
        target = self._family.mode_for_mismatch(mismatch_s).index
        if target > current:
            # Moving conservative: require M clearly past the boundary.
            target = max(
                current, self._family.mode_for_mismatch(mismatch_s - margin).index
            )
        elif target < current:
            # Moving aggressive: require M clearly below the boundary.
            target = min(
                current, self._family.mode_for_mismatch(mismatch_s + margin).index
            )
        self._desired_index = target
        if self._trace:
            self._trace.emit("mode.mismatch", m_s=mismatch_s, desired_index=target)
        if self._meter:
            self._meter.observe("compression.desired_index", target)
        self._note_switch()

    def fit_to_rate(self, rate_bps: float, floor_rate) -> None:
        """Recompute the rate cap: the most conservative fitting mode."""
        reference_roi = (0, self._grid.tiles_y // 2)
        cap = 0
        for index in range(len(self._family), 0, -1):
            floor = self._floor_cache.get(index)
            if floor is None:
                matrix = self._family[index].matrix(self._grid, reference_roi)
                floor = floor_rate(matrix)
                self._floor_cache[index] = floor
            if floor <= self.RATE_FIT_MARGIN * rate_bps:
                cap = index
                break
        if cap < min(self._desired_index, len(self._family)) and cap < self._cap_index:
            self.rate_clamp_events += 1
        self._cap_index = cap
        self._note_switch()

    def matrix(self, sender_roi: Tuple[int, int]) -> np.ndarray:
        return self.current_mode.matrix(self._grid, sender_roi)
