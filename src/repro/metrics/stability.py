"""Short-term ROI quality stability (Fig. 12).

The paper characterises stability as the standard deviation of the
compression level *displayed at the viewer's ROI* inside a 2-second
sliding window.  ``stability_series`` slides that window along the
session and returns the per-window std values whose CDF is Fig. 12.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def stability_series(
    samples: Sequence[Tuple[float, float]],
    window_s: float = 2.0,
    step_s: float = 0.5,
) -> List[float]:
    """Sliding-window std of (time, ROI compression level) samples.

    >>> stability_series([(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)])
    [0.0]
    """
    if not len(samples):
        return []
    pairs = np.asarray(samples, dtype=float)
    times = pairs[:, 0]
    levels = pairs[:, 1]
    stds: List[float] = []
    end = times[-1]
    # Display times arrive sorted, so each window is a contiguous slice
    # found by bisection; ``std`` over the slice equals ``std`` over the
    # boolean-mask copy bit-for-bit (same values, same order). Unsorted
    # input keeps the mask path.
    is_sorted = times.size < 2 or bool((times[1:] >= times[:-1]).all())
    if is_sorted:
        # One bisection call for every window bound; the float-
        # accumulated window starts are built by the same repeated
        # addition as the loop below.
        edges: List[float] = []
        window_start = float(times[0])
        while window_start + window_s <= end + 1e-9:
            edges.append(window_start)
            edges.append(window_start + window_s)
            window_start += step_s
        bounds = np.searchsorted(times, edges, side="left").tolist()
        for i in range(0, len(bounds), 2):
            lo, hi = bounds[i], bounds[i + 1]
            if hi - lo >= 2:
                stds.append(float(levels[lo:hi].std()))
        return stds
    window_start = times[0]
    while window_start + window_s <= end + 1e-9:
        mask = (times >= window_start) & (times < window_start + window_s)
        if mask.sum() >= 2:
            stds.append(float(levels[mask].std()))
        window_start += step_s
    return stds
