"""Short-term ROI quality stability (Fig. 12).

The paper characterises stability as the standard deviation of the
compression level *displayed at the viewer's ROI* inside a 2-second
sliding window.  ``stability_series`` slides that window along the
session and returns the per-window std values whose CDF is Fig. 12.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def stability_series(
    samples: Sequence[Tuple[float, float]],
    window_s: float = 2.0,
    step_s: float = 0.5,
) -> List[float]:
    """Sliding-window std of (time, ROI compression level) samples.

    >>> stability_series([(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)])
    [0.0]
    """
    if not samples:
        return []
    times = np.asarray([t for t, _ in samples], dtype=float)
    levels = np.asarray([v for _, v in samples], dtype=float)
    stds: List[float] = []
    start = times[0]
    end = times[-1]
    window_start = start
    while window_start + window_s <= end + 1e-9:
        mask = (times >= window_start) & (times < window_start + window_s)
        if mask.sum() >= 2:
            stds.append(float(levels[mask].std()))
        window_start += step_s
    return stds
