"""Session-trace export/import (JSON, JSONL and CSV).

The paper's measurement system dumps per-frame records for offline
comparison (§5); these helpers do the same for simulated sessions so
results can be analysed outside Python (spreadsheets, gnuplot, R) and
archived alongside EXPERIMENTS.md.

Three families live here:

- the **per-frame log** exporters (``write_json`` / ``write_frames_csv``)
  over :class:`repro.metrics.summary.SessionLog`;
- the **structured event trace** exporters
  (``write_trace_jsonl`` / ``read_trace_jsonl`` / ``write_trace_csv`` /
  ``read_trace_csv``) over a :class:`repro.obs.TraceBus` — one JSON
  object per line with reserved keys ``t`` (simulated time) and
  ``event`` (catalogue name), every other key an event field;
- the **metrics** exporters (``metrics_to_dict`` /
  ``write_metrics_json`` / ``meter_from_dict`` /
  ``metrics_to_openmetrics`` / ``write_metrics_openmetrics`` /
  ``read_openmetrics``) over a :class:`repro.obs.SessionMeter` — JSON
  snapshots for tooling and the OpenMetrics/Prometheus text exposition
  format for scrapers (with a catalogue-driven parser so a ``/metrics``
  scrape round-trips back into a meter), validated by
  ``tools/check_metrics.py``.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import IO, Iterable, Iterator, List, Optional, Union

from repro.metrics.summary import SessionLog, SessionSummary
from repro.obs.bus import TraceEvent
from repro.obs.metrics import METRIC_CATALOGUE, MetricSpec
from repro.obs.spans import SPAN_CATALOGUE

PathLike = Union[str, Path]

#: Format version written into every export.
EXPORT_VERSION = 1


def summary_to_dict(summary: SessionSummary) -> dict:
    """Full (JSON-safe) dict of a session summary."""
    return {
        "scheme": summary.scheme,
        "transport": summary.transport,
        "duration_s": summary.duration,
        "delay": {
            "mean_s": summary.delay.mean,
            "median_s": summary.delay.median,
            "p90_s": summary.delay.p90,
            "p99_s": summary.delay.p99,
            "count": summary.delay.count,
        },
        "freeze_ratio": summary.freeze_ratio,
        "quality": {
            "mean_psnr_db": summary.quality.mean_psnr,
            "std_psnr_db": summary.quality.std_psnr,
            "mos_pdf": summary.quality.mos_pdf,
        },
        "stability_level_std_mean": summary.stability_mean,
        "stability_psnr_std_mean": summary.quality_stability_mean,
        "throughput_bps": {
            "mean": summary.throughput.mean,
            "std": summary.throughput.std,
        },
        "mean_mismatch_s": summary.mean_mismatch,
        "frames_displayed": summary.frames_displayed,
        "frames_lost": summary.frames_lost,
        "mode_switches": summary.mode_switches,
        "congestion_events": summary.congestion_events,
        "sent_rate_mean_bps": summary.sent_rate_mean,
    }


def log_to_dict(log: SessionLog) -> dict:
    """JSON-safe dict of the raw per-frame log."""
    return {
        "version": EXPORT_VERSION,
        "start_time_s": log.start_time,
        "frame_delays_s": list(log.frame_delays),
        "roi_psnrs_db": list(log.roi_psnrs),
        "display_times_s": list(log.display_times),
        "roi_levels": [[t, level] for t, level in log.roi_levels],
        "mismatches_s": list(log.mismatches),
        "buffer_levels": [[t, level] for t, level in log.buffer_levels],
        "diag_seconds": [[rate, level] for rate, level in log.diag_seconds],
        "rate_trace": [[t, rv, rrtp] for t, rv, rrtp in log.rate_trace],
        "counters": {
            "frames_sent": log.frames_sent,
            "frames_displayed": log.frames_displayed,
            "frames_lost": log.frames_lost,
            "packets_lost": log.packets_lost,
            "mode_switches": log.mode_switches,
            "congestion_events": log.congestion_events,
            "sent_bits": log.sent_bits,
        },
    }


def log_from_dict(data: dict) -> SessionLog:
    """Rebuild a :class:`SessionLog` from :func:`log_to_dict` output."""
    if data.get("version") != EXPORT_VERSION:
        raise ValueError(f"unsupported export version: {data.get('version')!r}")
    log = SessionLog()
    log.start_time = data["start_time_s"]
    log.frame_delays.extend(data["frame_delays_s"])
    log.roi_psnrs.extend(data["roi_psnrs_db"])
    log.display_times.extend(data["display_times_s"])
    log.roi_levels.extend((t, level) for t, level in data["roi_levels"])
    log.mismatches.extend(data["mismatches_s"])
    log.buffer_levels.extend((t, level) for t, level in data["buffer_levels"])
    log.diag_seconds.extend((rate, level) for rate, level in data["diag_seconds"])
    log.rate_trace.extend(tuple(row) for row in data["rate_trace"])
    counters = data["counters"]
    log.frames_sent = counters["frames_sent"]
    log.frames_displayed = counters["frames_displayed"]
    log.frames_lost = counters["frames_lost"]
    log.packets_lost = counters["packets_lost"]
    log.mode_switches = counters["mode_switches"]
    log.congestion_events = counters["congestion_events"]
    log.sent_bits = counters["sent_bits"]
    return log


def write_json(path: PathLike, log: SessionLog, summary: SessionSummary) -> None:
    """Write one session (raw log + summary) as a JSON file."""
    payload = {"summary": summary_to_dict(summary), "log": log_to_dict(log)}
    Path(path).write_text(json.dumps(payload, indent=1))


def read_json(path: PathLike) -> SessionLog:
    """Load the raw log back from a :func:`write_json` file."""
    payload = json.loads(Path(path).read_text())
    return log_from_dict(payload["log"])


def trace_to_dicts(events: Iterable[TraceEvent]) -> Iterator[dict]:
    """One JSON-safe dict per event: ``{"t": ..., "event": ..., **fields}``."""
    for event in events:
        row = {"t": event.time, "event": event.name}
        row.update(event.fields)
        yield row


def trace_from_dicts(rows: Iterable[dict]) -> List[TraceEvent]:
    """Rebuild :class:`TraceEvent` tuples from :func:`trace_to_dicts` rows."""
    events = []
    for row in rows:
        fields = {k: v for k, v in row.items() if k not in ("t", "event")}
        events.append(TraceEvent(float(row["t"]), str(row["event"]), fields))
    return events


def dump_trace_jsonl(handle: IO[str], events: Iterable[TraceEvent]) -> int:
    """Stream events as JSON Lines to an open text handle (e.g. stdout)."""
    count = 0
    for row in trace_to_dicts(events):
        handle.write(json.dumps(row, separators=(",", ":")))
        handle.write("\n")
        count += 1
    return count


def write_trace_jsonl(path: PathLike, events: Iterable[TraceEvent]) -> int:
    """Write events as JSON Lines; returns the number of lines written.

    ``events`` is any event iterable — ``bus.events`` for a full dump or
    ``bus.select(...)`` for a filtered one.
    """
    with open(path, "w") as handle:
        return dump_trace_jsonl(handle, events)


def read_trace_jsonl(path: PathLike) -> List[TraceEvent]:
    """Load a :func:`write_trace_jsonl` file back into events."""
    with open(path) as handle:
        rows = [json.loads(line) for line in handle if line.strip()]
    return trace_from_dicts(rows)


def write_trace_csv(
    path: PathLike,
    events: Iterable[TraceEvent],
    columns: Optional[List[str]] = None,
) -> int:
    """Write events as CSV; returns the row count.

    The column set is ``t, event`` plus the union of every field name
    seen (alphabetical), unless ``columns`` pins an explicit field list.
    Events missing a column leave it empty — mixing event types in one
    file stays loadable by spreadsheet tools.
    """
    rows = list(trace_to_dicts(events))
    if columns is None:
        field_names = sorted({k for row in rows for k in row} - {"t", "event"})
    else:
        field_names = list(columns)
    header = ["t", "event"] + field_names
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=header, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def _coerce_cell(text: str):
    """Undo CSV stringification: int if it parses, else float, else str."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def read_trace_csv(path: PathLike) -> List[TraceEvent]:
    """Load a :func:`write_trace_csv` file back into events.

    Empty cells (columns another event type owns) are dropped, and cell
    values are coerced int → float → str, so a JSONL → CSV → load chain
    preserves event order, field sets and numeric values exactly
    (``str(float)`` round-trips in Python).
    """
    events: List[TraceEvent] = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            fields = {
                key: _coerce_cell(value)
                for key, value in row.items()
                if key not in ("t", "event") and value != ""
            }
            events.append(TraceEvent(float(row["t"]), row["event"], fields))
    return events


# ----------------------------------------------------------------------
# Metrics registry exporters (JSON + OpenMetrics text format)
# ----------------------------------------------------------------------


def metrics_to_dict(meter) -> dict:
    """JSON-safe snapshot of a :class:`repro.obs.SessionMeter`."""
    payload = {"version": EXPORT_VERSION}
    payload.update(meter.as_dict())
    return payload


def write_metrics_json(path: PathLike, meter) -> None:
    """Write a meter snapshot as an indented JSON file."""
    Path(path).write_text(json.dumps(metrics_to_dict(meter), indent=1) + "\n")


def meter_from_dict(payload: dict):
    """Rebuild a :class:`repro.obs.SessionMeter` from a snapshot dict.

    Inverse of :func:`metrics_to_dict`, used to reload a run ledger's
    final ``registry.json`` artifact (``repro360 metrics --from-run``).
    Counter/gauge/histogram state round-trips exactly; span statistics
    round-trip their accumulators (count, total, min, max).
    """
    from repro.obs.meter import SessionMeter
    from repro.obs.metrics import Histogram
    from repro.obs.spans import SpanStats

    version = payload.get("version")
    if version != EXPORT_VERSION:
        raise ValueError(f"unsupported export version: {version!r}")
    meter = SessionMeter()
    meter.metrics.counters.update(
        {name: float(value) for name, value in payload.get("counters", {}).items()}
    )
    meter.metrics.gauges.update(
        {name: float(value) for name, value in payload.get("gauges", {}).items()}
    )
    for name, data in payload.get("histograms", {}).items():
        hist = Histogram(tuple(data["buckets"]))
        hist.counts = [int(count) for count in data["counts"]]
        hist.sum = float(data["sum"])
        hist.count = int(data["count"])
        meter.metrics._hists[name] = hist
    for name, data in payload.get("spans", {}).items():
        stats = SpanStats()
        stats.count = int(data["count"])
        stats.total_s = float(data["total_s"])
        stats.min_s = float(data["min_s"]) if stats.count else float("inf")
        stats.max_s = float(data["max_s"])
        meter.spans.stats[name] = stats
    return meter


def openmetrics_family(name: str, unit: str = "") -> str:
    """Map a catalogue metric/span name to its OpenMetrics family name.

    ``.`` becomes ``_``, the ``repro_`` namespace prefix is added, and a
    trailing ``_s`` of seconds-valued metrics is spelled out as
    ``_seconds`` (the Prometheus base-unit convention).
    """
    family = "repro_" + name.replace(".", "_")
    if unit == "s" and family.endswith("_s"):
        family = family[:-2] + "_seconds"
    return family


def _om_number(value: float) -> str:
    """Render a sample value the OpenMetrics way (integers without .0)."""
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _om_spec(name: str) -> Optional[MetricSpec]:
    return METRIC_CATALOGUE.get(name)


def metrics_to_openmetrics(meter) -> str:
    """Render a meter in the OpenMetrics text exposition format.

    Counters become ``<family>_total``, gauges bare samples, histograms
    cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count``,
    and wall-clock spans summary families (``_sum``/``_count`` in
    seconds).  The output ends with ``# EOF`` and parses cleanly in
    ``tools/check_metrics.py``.
    """
    lines: List[str] = []

    def _head(family: str, kind: str, help_text: str) -> None:
        lines.append(f"# TYPE {family} {kind}")
        if help_text:
            lines.append(f"# HELP {family} {help_text}")

    metrics = meter.metrics
    for name in sorted(metrics.counters):
        spec = _om_spec(name)
        family = openmetrics_family(name, spec.unit if spec else "")
        _head(family, "counter", spec.description if spec else "")
        lines.append(f"{family}_total {_om_number(metrics.counters[name])}")
    for name in sorted(metrics.gauges):
        spec = _om_spec(name)
        family = openmetrics_family(name, spec.unit if spec else "")
        _head(family, "gauge", spec.description if spec else "")
        lines.append(f"{family} {_om_number(metrics.gauges[name])}")
    for name, hist in sorted(metrics.histograms().items()):
        spec = _om_spec(name)
        family = openmetrics_family(name, spec.unit if spec else "")
        _head(family, "histogram", spec.description if spec else "")
        cumulative = hist.cumulative()
        for bound, running in zip(hist.buckets, cumulative):
            lines.append(
                f'{family}_bucket{{le="{_om_number(bound)}"}} {running}'
            )
        lines.append(f'{family}_bucket{{le="+Inf"}} {cumulative[-1]}')
        lines.append(f"{family}_sum {_om_number(hist.sum)}")
        lines.append(f"{family}_count {hist.count}")
    for name, stats in meter.spans.as_dict().items():
        spec = SPAN_CATALOGUE.get(name)
        family = openmetrics_family("span." + name) + "_seconds"
        _head(family, "summary", spec.description if spec else "")
        lines.append(f"{family}_sum {repr(float(stats['total_s']))}")
        lines.append(f"{family}_count {stats['count']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_metrics_openmetrics(path: PathLike, meter) -> None:
    """Write a meter in the OpenMetrics text format."""
    Path(path).write_text(metrics_to_openmetrics(meter))


def _om_reverse_table() -> dict:
    """Family name -> ("metric"|"span", catalogue name) for every
    catalogue entry, built from the same :func:`openmetrics_family`
    mapping the exporter uses so the two can never drift."""
    table = {}
    for name, spec in METRIC_CATALOGUE.items():
        table[openmetrics_family(name, spec.unit)] = ("metric", name)
    for name in SPAN_CATALOGUE:
        table[openmetrics_family("span." + name) + "_seconds"] = ("span", name)
    return table


def _om_parse_sample(line: str):
    """Split one exposition sample line into (name, le_label, value_text).

    ``le_label`` is the ``le="..."`` value for histogram bucket samples,
    else None.  The exporter never emits other labels, so anything else
    inside ``{}`` is a parse error.
    """
    name, _, rest = line.partition(" ")
    label = None
    if "{" in name:
        name, _, label_part = name.partition("{")
        label_part = label_part.rstrip("}")
        if not label_part.startswith('le="') or not label_part.endswith('"'):
            raise ValueError(f"unsupported label set: {line!r}")
        label = label_part[len('le="'):-1]
    value_text = rest.split()[0] if rest.split() else ""
    if not value_text:
        raise ValueError(f"sample line without a value: {line!r}")
    return name, label, value_text


def read_openmetrics(text: str, strict: bool = True):
    """Parse :func:`metrics_to_openmetrics` output back into a meter.

    The inverse of the exporter for everything the text format can
    carry: counters, gauges and histograms round-trip **exactly** (a
    parse → re-export cycle is byte-identical); spans round-trip their
    ``sum``/``count`` accumulators but lose ``min_s``/``max_s``, which
    the summary exposition does not encode (re-export is still
    byte-identical, since only ``_sum``/``_count`` are emitted).

    Family names resolve through the metric/span catalogues — the same
    :func:`openmetrics_family` mapping the exporter uses.  An unknown
    family raises :class:`ValueError` under ``strict`` (the default) and
    is skipped otherwise, so a scrape from a newer server can still be
    loaded by an older client with ``strict=False``.
    """
    from repro.obs.meter import SessionMeter
    from repro.obs.metrics import Histogram
    from repro.obs.spans import SpanStats

    table = _om_reverse_table()
    meter = SessionMeter()
    types: dict = {}
    # family -> {"bounds": [...], "cumulative": [...], "sum": x, "count": n}
    partial: dict = {}
    saw_eof = False

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if saw_eof:
            raise ValueError(f"content after # EOF: {line!r}")
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                types[parts[2]] = parts[3].split()[0] if len(parts) > 3 else ""
            continue
        sample, le_label, value_text = _om_parse_sample(line)

        # Resolve the owning family: exact match first (gauges), then
        # the exporter's suffixes, longest first so ``_bucket`` does not
        # shadow a hypothetical metric ending in "bucket".
        family, suffix = None, ""
        if sample in types:
            family, suffix = sample, ""
        else:
            for candidate in ("_bucket", "_total", "_count", "_sum"):
                if sample.endswith(candidate) and sample[: -len(candidate)] in types:
                    family, suffix = sample[: -len(candidate)], candidate
                    break
        if family is None:
            raise ValueError(f"sample before its # TYPE line: {line!r}")
        resolved = table.get(family)
        if resolved is None:
            if strict:
                raise ValueError(f"family not in any catalogue: {family!r}")
            continue
        domain, name = resolved
        kind = types[family]

        if kind == "counter":
            meter.metrics.counters[name] = float(value_text)
        elif kind == "gauge":
            meter.metrics.gauges[name] = float(value_text)
        elif kind == "histogram":
            state = partial.setdefault(
                family, {"bounds": [], "cumulative": [], "sum": 0.0, "count": 0}
            )
            if suffix == "_bucket":
                if le_label != "+Inf":
                    state["bounds"].append(float(le_label))
                state["cumulative"].append(int(float(value_text)))
            elif suffix == "_sum":
                state["sum"] = float(value_text)
            elif suffix == "_count":
                state["count"] = int(float(value_text))
        elif kind == "summary" and domain == "span":
            stats = meter.spans.stats.setdefault(name, SpanStats())
            if suffix == "_sum":
                stats.total_s = float(value_text)
            elif suffix == "_count":
                stats.count = int(float(value_text))
                stats.min_s = 0.0 if stats.count else float("inf")
                stats.max_s = 0.0
        else:
            raise ValueError(f"unsupported family kind {kind!r} for {family!r}")

    if not saw_eof:
        raise ValueError("exposition does not end with # EOF")

    for family, state in partial.items():
        _, name = table[family]
        hist = Histogram(tuple(state["bounds"]))
        previous = 0
        counts = []
        for running in state["cumulative"]:
            counts.append(running - previous)
            previous = running
        if len(counts) != len(hist.counts):
            raise ValueError(
                f"histogram {family!r} has {len(counts)} buckets, "
                f"expected {len(hist.counts)}"
            )
        hist.counts = counts
        hist.sum = state["sum"]
        hist.count = state["count"]
        meter.metrics._hists[name] = hist
    return meter


def write_frames_csv(path: PathLike, log: SessionLog) -> int:
    """Write one row per displayed frame; returns the row count.

    Columns: display time, frame delay, ROI PSNR, displayed ROI level,
    frame-level mismatch — the §5 per-frame measurement record.
    """
    rows = zip(
        log.display_times,
        log.frame_delays,
        log.roi_psnrs,
        (level for _, level in log.roi_levels),
        log.mismatches,
    )
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["display_time_s", "frame_delay_s", "roi_psnr_db", "roi_level", "mismatch_s"]
        )
        for row in rows:
            writer.writerow([f"{value:.6f}" for value in row])
            count += 1
    return count
