"""Measurement system: the paper's §5/§6 metrics over session logs."""

from repro.metrics.delay import DelayStats
from repro.metrics.freeze import freeze_ratio
from repro.metrics.quality import QualityStats
from repro.metrics.stability import stability_series
from repro.metrics.throughput import ThroughputStats
from repro.metrics.summary import SessionSummary

__all__ = [
    "DelayStats",
    "freeze_ratio",
    "QualityStats",
    "stability_series",
    "ThroughputStats",
    "SessionSummary",
]
