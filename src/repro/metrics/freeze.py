"""Video freeze ratio (Fig. 14) — "the most crucial user experience
metric" per §6.1.1: the fraction of frames delayed beyond 600 ms.

Frames that never completed (all recovery attempts failed) count as
frozen: their delay is effectively infinite.
"""

from __future__ import annotations

from typing import Sequence


def freeze_ratio(
    delays: Sequence[float], threshold: float = 0.6, lost_frames: int = 0
) -> float:
    """Fraction of frames with delay > ``threshold`` (lost ones included).

    >>> freeze_ratio([0.1, 0.2, 0.7, 0.9])
    0.5
    >>> freeze_ratio([], lost_frames=3)
    1.0
    """
    total = len(delays) + lost_frames
    if total == 0:
        return 0.0
    frozen = sum(1 for d in delays if d > threshold) + lost_frames
    return frozen / total
