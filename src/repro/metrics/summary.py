"""Aggregate per-session summary combining every §6 metric."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.metrics.delay import DelayStats
from repro.metrics.freeze import freeze_ratio
from repro.metrics.quality import QualityStats
from repro.metrics.stability import stability_series
from repro.metrics.throughput import ThroughputStats, per_second_series


@dataclass
class SessionLog:
    """Raw measurements collected while a session runs."""

    #: Per displayed frame: capture-to-display delay (s).
    frame_delays: List[float] = field(default_factory=list)
    #: Per displayed frame: (display time, ROI-region PSNR in dB).
    roi_psnrs: List[float] = field(default_factory=list)
    #: Display times matching ``roi_psnrs`` (for windowed stability).
    display_times: List[float] = field(default_factory=list)
    #: (display time, compression level at the viewer's ROI centre).
    roi_levels: List[Tuple[float, float]] = field(default_factory=list)
    #: (arrival time, bytes) of received media packets.  The scalar
    #: engine appends tuples; the batched engine swaps in an ``(m, 2)``
    #: float64 array holding the same rows (see
    #: ``BatchedSimulation._materialise_arrivals``).
    arrivals: List[Tuple[float, float]] = field(default_factory=list)
    #: Frame-level mismatch time samples (s).
    mismatches: List[float] = field(default_factory=list)
    #: (time, firmware buffer level bytes) samples at the sender.
    buffer_levels: List[Tuple[float, float]] = field(default_factory=list)
    #: (per-second sum of uplink TBS in bps, mean buffer level bytes).
    diag_seconds: List[Tuple[float, float]] = field(default_factory=list)
    #: (time, Rv target bps, Rrtp bps) samples at the sender.
    rate_trace: List[Tuple[float, float, float]] = field(default_factory=list)
    #: Simulated time at which measurement began (end of warm-up).
    start_time: float = 0.0
    frames_sent: int = 0
    frames_displayed: int = 0
    frames_lost: int = 0
    packets_lost: int = 0
    mode_switches: int = 0
    congestion_events: int = 0
    sent_bits: float = 0.0

    def reset(self) -> None:
        """Discard everything collected so far (end of a warm-up phase)."""
        self.frame_delays.clear()
        self.roi_psnrs.clear()
        self.display_times.clear()
        self.roi_levels.clear()
        self.arrivals = []
        self.mismatches.clear()
        self.buffer_levels.clear()
        self.diag_seconds.clear()
        self.rate_trace.clear()
        self.frames_sent = 0
        self.frames_displayed = 0
        self.frames_lost = 0
        self.packets_lost = 0
        self.mode_switches = 0
        self.congestion_events = 0
        self.sent_bits = 0.0


@dataclass(frozen=True)
class SessionSummary:
    """Everything the paper's figures need, from one session."""

    scheme: str
    transport: str
    duration: float
    delay: DelayStats
    freeze_ratio: float
    quality: QualityStats
    #: 2 s-window stds of the displayed ROI compression level (Fig. 12).
    stability_stds: Tuple[float, ...]
    #: 2 s-window stds of the displayed ROI-region PSNR — the
    #: quality-domain view of the same short-term stability.
    quality_stds: Tuple[float, ...]
    throughput: ThroughputStats
    mean_mismatch: float
    frames_displayed: int
    frames_lost: int
    mode_switches: int
    congestion_events: int
    sent_rate_mean: float

    @property
    def stability_mean(self) -> float:
        """Mean of the 2 s-window compression-level stds."""
        if not self.stability_stds:
            return float("nan")
        return float(np.mean(self.stability_stds))

    @property
    def quality_stability_mean(self) -> float:
        """Mean of the 2 s-window ROI-PSNR stds (dB)."""
        if not self.quality_stds:
            return float("nan")
        return float(np.mean(self.quality_stds))

    @staticmethod
    def from_log(
        log: SessionLog,
        scheme: str,
        transport: str,
        duration: float,
        freeze_threshold: float = 0.6,
    ) -> "SessionSummary":
        if len(log.arrivals):
            # (t - start, size) pairs, shifted as one vector op — the
            # elementwise float64 subtraction matches the scalar one.
            # np.array copies, so an ndarray-backed log stays unshifted.
            arrivals = np.array(log.arrivals, dtype=np.float64)
            arrivals[:, 0] -= log.start_time
        else:
            arrivals = []
        series = per_second_series(arrivals, duration)
        return SessionSummary(
            scheme=scheme,
            transport=transport,
            duration=duration,
            delay=DelayStats.from_samples(log.frame_delays),
            freeze_ratio=freeze_ratio(
                log.frame_delays, freeze_threshold, log.frames_lost
            ),
            quality=QualityStats.from_samples(log.roi_psnrs),
            stability_stds=tuple(stability_series(log.roi_levels)),
            quality_stds=tuple(
                stability_series(
                    np.column_stack((log.display_times, log.roi_psnrs))
                    if log.display_times
                    else []
                )
            ),
            throughput=ThroughputStats.from_series(series, keep_series=False),
            mean_mismatch=(
                float(np.mean(log.mismatches)) if log.mismatches else float("nan")
            ),
            frames_displayed=log.frames_displayed,
            frames_lost=log.frames_lost,
            mode_switches=log.mode_switches,
            congestion_events=log.congestion_events,
            sent_rate_mean=log.sent_bits / duration if duration > 0 else float("nan"),
        )

    def to_dict(self) -> Dict[str, float]:
        """Flat dict for table printing."""
        return {
            "scheme": self.scheme,
            "transport": self.transport,
            "mean_psnr_db": round(self.quality.mean_psnr, 2),
            "median_delay_ms": round(self.delay.median * 1e3, 1),
            "freeze_ratio": round(self.freeze_ratio, 4),
            "stability_std": round(self.stability_mean, 3),
            "throughput_mbps": round(self.throughput.mean / 1e6, 3),
            "throughput_std_mbps": round(self.throughput.std / 1e6, 3),
            "mos_good_or_better": round(
                self.quality.fraction("good") + self.quality.fraction("excellent"), 3
            ),
        }
