"""Statistical helpers for comparing sessions and repetitions.

The paper reports means with error bars over 10 repetitions × 5 users;
these helpers provide the equivalent machinery for our reproductions:
bootstrap confidence intervals (no distributional assumptions — freeze
ratios and PSNR means are anything but normal) and a Welch test for
quick two-condition comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI of ``statistic`` over ``samples``.

    >>> ci = bootstrap_ci([1.0, 2.0, 3.0, 4.0, 5.0], seed=1)
    >>> ci.contains(3.0)
    True
    """
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        raise ValueError("need at least one sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_boot)
    for index in range(n_boot):
        resample = array[rng.integers(0, array.size, size=array.size)]
        estimates[index] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    return ConfidenceInterval(
        estimate=float(statistic(array)),
        low=float(np.quantile(estimates, alpha)),
        high=float(np.quantile(estimates, 1.0 - alpha)),
        confidence=confidence,
    )


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` over allocations.

    1.0 means perfectly equal shares; ``1/n`` means one participant got
    everything.  Used for the per-cell fairness of uplink grant bytes
    across a shared cell's members (docs/FLEET.md).

    >>> jain_index([1.0, 1.0, 1.0, 1.0])
    1.0
    >>> jain_index([1.0, 0.0, 0.0, 0.0])
    0.25
    >>> round(jain_index([4.0, 1.0]), 4)
    0.7353
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("need at least one allocation")
    if np.any(array < 0.0):
        raise ValueError("allocations must be non-negative")
    square_sum = float(np.sum(array) ** 2)
    sum_squares = float(array.size * np.sum(array**2))
    if sum_squares == 0.0:
        # All-zero allocations: everyone got the same (nothing).
        return 1.0
    return square_sum / sum_squares


def welch_t(
    a: Sequence[float], b: Sequence[float]
) -> Tuple[float, float]:
    """Welch's t statistic and approximate two-sided p-value.

    The p-value uses the normal approximation of the t distribution —
    adequate for the screening use here (is a condition difference
    noise or signal?), with scipy available for anything sharper.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.size < 2 or b.size < 2:
        raise ValueError("need at least two samples per group")
    var_a = a.var(ddof=1) / a.size
    var_b = b.var(ddof=1) / b.size
    denom = math.sqrt(var_a + var_b)
    if denom == 0.0:
        return (0.0, 1.0)
    t = (a.mean() - b.mean()) / denom
    p = 2.0 * (1.0 - _normal_cdf(abs(t)))
    return (float(t), float(p))


def _normal_cdf(x: float) -> float:
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def significantly_different(
    a: Sequence[float], b: Sequence[float], alpha: float = 0.05
) -> bool:
    """True when the two sample sets differ at level ``alpha``."""
    _, p = welch_t(a, b)
    return p < alpha
