"""ROI video-quality statistics: PSNR summary and MOS PDF (Fig. 11/16/17).

Per-frame ROI PSNR values are averaged arithmetically across frames (as
quality traces are in the paper), and the MOS PDF buckets frames into
Table 1's five bands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.video.quality import MOS_BANDS, MOS_ORDER

#: Ascending strict-lower band edges (drop "bad"'s -inf); a PSNR's band
#: index in ``MOS_ORDER`` is the number of edges strictly below it,
#: which is exactly ``searchsorted(..., side="left")``.
_MOS_EDGES = np.asarray([lower for _, lower in MOS_BANDS[:-1]][::-1])


@dataclass(frozen=True)
class QualityStats:
    """Summary of per-frame ROI PSNR samples."""

    mean_psnr: float
    std_psnr: float
    mos_pdf: Dict[str, float] = field(default_factory=dict)
    count: int = 0

    @staticmethod
    def from_samples(psnrs: Sequence[float]) -> "QualityStats":
        if not len(psnrs):
            return QualityStats(float("nan"), float("nan"), {b: 0.0 for b in MOS_ORDER}, 0)
        array = np.asarray(psnrs, dtype=float)
        band_index = np.searchsorted(_MOS_EDGES, array, side="left")
        # NaN fails every ``psnr > lower`` test in the scalar mos_band
        # and lands in "bad"; searchsorted would sort it past the end.
        band_index[np.isnan(array)] = 0
        counts = np.bincount(band_index, minlength=len(MOS_ORDER)).tolist()
        pdf = {band: counts[i] / array.size for i, band in enumerate(MOS_ORDER)}
        return QualityStats(
            mean_psnr=float(array.mean()),
            std_psnr=float(array.std()),
            mos_pdf=pdf,
            count=int(array.size),
        )

    def fraction(self, band: str) -> float:
        """MOS PDF value for one band name."""
        return self.mos_pdf.get(band, 0.0)
