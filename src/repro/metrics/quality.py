"""ROI video-quality statistics: PSNR summary and MOS PDF (Fig. 11/16/17).

Per-frame ROI PSNR values are averaged arithmetically across frames (as
quality traces are in the paper), and the MOS PDF buckets frames into
Table 1's five bands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

import numpy as np

from repro.video.quality import MOS_ORDER, mos_band


@dataclass(frozen=True)
class QualityStats:
    """Summary of per-frame ROI PSNR samples."""

    mean_psnr: float
    std_psnr: float
    mos_pdf: Dict[str, float] = field(default_factory=dict)
    count: int = 0

    @staticmethod
    def from_samples(psnrs: Sequence[float]) -> "QualityStats":
        if not len(psnrs):
            return QualityStats(float("nan"), float("nan"), {b: 0.0 for b in MOS_ORDER}, 0)
        array = np.asarray(psnrs, dtype=float)
        counts = {band: 0 for band in MOS_ORDER}
        for value in array:
            counts[mos_band(float(value))] += 1
        pdf = {band: counts[band] / array.size for band in MOS_ORDER}
        return QualityStats(
            mean_psnr=float(array.mean()),
            std_psnr=float(array.std()),
            mos_pdf=pdf,
            count=int(array.size),
        )

    def fraction(self, band: str) -> float:
        """MOS PDF value for one band name."""
        return self.mos_pdf.get(band, 0.0)
