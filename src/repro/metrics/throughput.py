"""Received-throughput statistics (Fig. 16a)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.units import BITS_PER_BYTE


def per_second_series(
    arrivals: Sequence[Tuple[float, float]], duration: float
) -> List[float]:
    """Bucket (arrival time, bytes) pairs into per-second bps values.

    Vectorised but bit-identical to the per-pair loop it replaces:
    ``astype(int64)`` truncates toward zero exactly like ``int()``, and
    ``np.add.at`` accumulates repeated bucket indices in element order,
    so each bucket's float sum is built in arrival order.
    """
    buckets = int(np.ceil(duration)) or 1
    series = np.zeros(buckets)
    if len(arrivals):
        pairs = np.asarray(arrivals, dtype=np.float64)
        index = np.minimum(buckets - 1, pairs[:, 0].astype(np.int64))
        np.add.at(series, index, pairs[:, 1] * BITS_PER_BYTE)
    return series.tolist()


@dataclass(frozen=True)
class ThroughputStats:
    """Mean/std of a per-second throughput series (bps)."""

    mean: float
    std: float
    series: Tuple[float, ...] = ()

    @staticmethod
    def from_series(series: Sequence[float], keep_series: bool = True) -> "ThroughputStats":
        if not len(series):
            return ThroughputStats(float("nan"), float("nan"), ())
        array = np.asarray(series, dtype=float)
        return ThroughputStats(
            mean=float(array.mean()),
            std=float(array.std()),
            series=tuple(array.tolist()) if keep_series else (),
        )
