"""End-to-end video frame delay statistics (Fig. 13).

Frame delay is capture-to-display latency — NOT the frame interval: a
stream can be 460 ms late while still playing at 36 FPS (§6.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class DelayStats:
    """Summary of a frame-delay sample set (seconds)."""

    mean: float
    median: float
    p90: float
    p99: float
    count: int

    @staticmethod
    def from_samples(delays: Sequence[float]) -> "DelayStats":
        if not len(delays):
            return DelayStats(float("nan"), float("nan"), float("nan"), float("nan"), 0)
        array = np.asarray(delays, dtype=float)
        # One partition serves both tail percentiles; each value equals
        # the single-q call bit-for-bit (same virtual index, same lerp).
        p90, p99 = np.percentile(array, (90.0, 99.0)).tolist()
        return DelayStats(
            mean=float(array.mean()),
            median=float(np.median(array)),
            p90=p90,
            p99=p99,
            count=int(array.size),
        )


def delay_cdf(delays: Sequence[float], points: int = 100) -> List[Tuple[float, float]]:
    """(delay, cumulative fraction) pairs for CDF plots."""
    if not len(delays):
        return []
    array = np.sort(np.asarray(delays, dtype=float))
    fractions = np.arange(1, array.size + 1) / array.size
    if array.size <= points:
        return list(zip(array.tolist(), fractions.tolist()))
    idx = np.linspace(0, array.size - 1, points).astype(int)
    return list(zip(array[idx].tolist(), fractions[idx].tolist()))
