"""The paper's §6 test environments as :class:`SessionConfig` factories.

Each factory returns a base configuration; callers then pick scheme,
transport, seed, duration and user profile on top (usually with
:func:`dataclasses.replace`).  The radio parameters encode what the
paper reports about each location:

- RSS levels: -115 dBm (concrete parking garage), -82 dBm (shadowed
  outdoor lot), -73 dBm (open lot); experiments run on an idle weekend
  cell (§6.2).
- Background load: early-morning idle vs just-after-class busy campus.
- Driving: 15 / 30 / 50 mph; the highway route has high RSS
  (≈ -60 dBm) but fast channel dynamics and handovers.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict

from repro.config import CellConfig, ChannelConfig, LteConfig, PathConfig, SessionConfig


def wireline(**overrides) -> SessionConfig:
    """Both endpoints on the campus wireline network (§6.1.1)."""
    return SessionConfig(path=PathConfig.for_wireline(), **overrides)


def cellular(
    rss_dbm: float = -82.0,
    background_load: float = 0.15,
    speed_mph: float = 0.0,
    **overrides,
) -> SessionConfig:
    """LTE access with the given radio environment."""
    channel = ChannelConfig(rss_dbm=rss_dbm, speed_mph=speed_mph)
    cell = CellConfig(background_load=background_load)
    lte = LteConfig(channel=channel, cell=cell)
    return SessionConfig(path=PathConfig(access="lte"), lte=lte, **overrides)


def idle_cell(**overrides) -> SessionConfig:
    """Early morning, most users off campus (light load, Fig. 17a)."""
    return cellular(background_load=0.05, **overrides)


def busy_cell(**overrides) -> SessionConfig:
    """Noon just after class (heavy competing uplink load, Fig. 17a)."""
    return cellular(background_load=0.50, **overrides)


def rss_scenario(level: str, **overrides) -> SessionConfig:
    """'weak' (-115 dBm) / 'moderate' (-82) / 'strong' (-73), idle cell."""
    rss = {"weak": -115.0, "moderate": -82.0, "strong": -73.0}
    if level not in rss:
        raise ValueError(f"unknown RSS level: {level!r}")
    return cellular(rss_dbm=rss[level], background_load=0.05, **overrides)


def driving(speed_mph: float, **overrides) -> SessionConfig:
    """Vehicle test at 15 / 30 / 50 mph (Fig. 17e/f).

    The highway (50 mph) route runs in the open with strong signal, the
    urban routes have more shadowing; mobility itself adds channel
    volatility and handovers.
    """
    if speed_mph >= 45:
        rss = -62.0  # open highway, few blocking buildings
    elif speed_mph >= 25:
        rss = -80.0  # urban road
    else:
        rss = -78.0  # residential area
    return cellular(
        rss_dbm=rss, background_load=0.20, speed_mph=speed_mph, **overrides
    )


def subway(**overrides) -> SessionConfig:
    """Underground commute: weak-ish signal with long periodic fades.

    Not a paper scenario — a stress environment for the recovery paths
    (tunnel segments read as multi-second deep fades).
    """
    channel = ChannelConfig(
        rss_dbm=-100.0,
        speed_mph=25.0,
        deep_fade_rate_per_min=4.0,
        deep_fade_depth_db=15.0,
        deep_fade_duration=(2.0, 5.0),
    )
    lte = LteConfig(channel=channel, cell=CellConfig(background_load=0.3))
    return SessionConfig(path=PathConfig(access="lte"), lte=lte, **overrides)


def stadium(**overrides) -> SessionConfig:
    """A packed venue: a crowd of explicitly-modelled competing UEs.

    Not a paper scenario — exercises the competitor-cell model at heavy
    load (repro.lte.competitors).
    """
    cell = CellConfig(background_load=0.7, competitor_count=40)
    lte = LteConfig(channel=ChannelConfig(rss_dbm=-78.0), cell=cell)
    return SessionConfig(path=PathConfig(access="lte"), lte=lte, **overrides)


def scenario(name: str, **overrides) -> SessionConfig:
    """Look up a named scenario."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    return factory(**overrides)


SCENARIOS: Dict[str, Callable[..., SessionConfig]] = {
    "wireline": wireline,
    "cellular": cellular,
    "idle_cell": idle_cell,
    "busy_cell": busy_cell,
    "rss_weak": lambda **kw: rss_scenario("weak", **kw),
    "rss_moderate": lambda **kw: rss_scenario("moderate", **kw),
    "rss_strong": lambda **kw: rss_scenario("strong", **kw),
    "driving_15mph": lambda **kw: driving(15.0, **kw),
    "driving_30mph": lambda **kw: driving(30.0, **kw),
    "driving_50mph": lambda **kw: driving(50.0, **kw),
    "subway": subway,
    "stadium": stadium,
}


def with_scheme(config: SessionConfig, scheme: str, transport: str) -> SessionConfig:
    """Convenience: swap scheme/transport on an existing config."""
    return dataclasses.replace(config, scheme=scheme, transport=transport)
