"""Scenario library: the paper's test environments as config factories."""

from repro.traces.scenarios import (
    SCENARIOS,
    busy_cell,
    cellular,
    driving,
    idle_cell,
    rss_scenario,
    scenario,
    wireline,
)

__all__ = [
    "SCENARIOS",
    "busy_cell",
    "cellular",
    "driving",
    "idle_cell",
    "rss_scenario",
    "scenario",
    "wireline",
]
