"""The viewer's LTE downlink: eNodeB queue + bursty service.

The paper's cellular experiments put *both* endpoints on LTE: the
sender's uplink is the bottleneck, but the receiving phone's downlink
still shapes the arrival process — deep basestation buffers
(bufferbloat, the reason end-to-end delay metrics go blind, §4.3.1),
serve-in-bursts scheduling, and channel-dependent capacity.

This is a lighter model than the uplink's (no BSR loop — the eNodeB
sees its own queue directly): a FIFO with a hard cap, drained every
1 ms subframe when the burst process schedules our flow, at the
CQI-dependent transport block size.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.config import DownlinkConfig
from repro.lte.channel import ChannelProcess
from repro.lte.cell import CellLoadProcess
from repro.lte.firmware_buffer import FirmwareBuffer
from repro.lte.tbs import transport_block_bytes
from repro.net.packet import Packet
from repro.sim.engine import Simulation
from repro.units import LTE_SUBFRAME

PacketSink = Callable[[Packet], None]


class EnbDownlink:
    """Basestation → viewer's phone downlink hop."""

    def __init__(
        self,
        sim: Simulation,
        config: DownlinkConfig,
        rng: np.random.Generator,
        sink: Optional[PacketSink] = None,
    ):
        self._sim = sim
        self._config = config
        self._rng = rng
        self._sink = sink
        self.channel = ChannelProcess(sim, config.channel, rng)
        self.cell = CellLoadProcess(sim, config.cell, rng)
        self.queue = FirmwareBuffer(config.queue_cap_bytes)
        self._burst_left = 0
        self._idle_left = 0
        self.bytes_served = 0.0
        # An empty-queue subframe is a pure no-op (no RNG draw, no burst
        # advance), so the process pauses while idle and deliver() wakes it.
        self._tick = sim.every_while(LTE_SUBFRAME, self._subframe)

    def set_sink(self, sink: PacketSink) -> None:
        self._sink = sink

    def deliver(self, packet: Packet) -> None:
        """Enqueue a packet arriving from the core network."""
        self.queue.push(packet)
        if self._tick.paused:
            self._tick.wake()

    @property
    def queued_bytes(self) -> float:
        return self.queue.level

    @property
    def dropped_packets(self) -> int:
        return self.queue.dropped_packets

    def _in_service_burst(self, duty: float) -> bool:
        if self._burst_left > 0:
            self._burst_left -= 1
            return True
        if self._idle_left > 0:
            self._idle_left -= 1
            return False
        duty = min(1.0, max(1e-3, duty))
        mean_burst = self._config.burst_subframes
        burst = 1 + int(-mean_burst * np.log(max(1e-12, self._rng.random())))
        idle = min(
            self._config.max_idle_subframes,
            int(round(burst * (1.0 - duty) / duty)),
        )
        self._burst_left = burst - 1
        self._idle_left = idle
        return True

    def _subframe(self) -> bool:
        queue = self.queue
        if queue.level <= 0.0:
            return False
        cqi = self.channel.cqi()
        if cqi <= 0:
            return True
        load = self.cell.load
        duty = self._config.p_max * (1.0 - load)
        if not self._in_service_burst(duty):
            return True
        capacity = transport_block_bytes(cqi, self._config.prb_quota)
        fading = float(np.exp(self._rng.normal(0.0, 0.1)))
        before = queue.level
        completed = queue.drain(capacity * fading)
        self.bytes_served += before - queue.level
        if self._sink is not None:
            for packet in completed:
                self._sim.schedule(self._config.radio_latency, self._arrive, packet)
        return True

    def _arrive(self, packet: Packet) -> None:
        packet.arrived = self._sim.now
        if self._sink is not None:
            self._sink(packet)
