"""MobileInsight-style diagnostic interface.

The paper reads the phone's diag port with a customised real-time log
decoder (§5): the modem logs the uplink firmware-buffer level and the
transport block size **per 1 ms subframe**, and the decoder delivers
these records to the application every 40 ms.  FBCC's Eq. (3) scans the
per-subframe records inside each 40 ms batch, which is what makes it an
order of magnitude more responsive than RTT-based end-to-end feedback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.sim.engine import Simulation


@dataclass(frozen=True)
class DiagRecord:
    """One per-subframe modem log record."""

    time: float
    buffer_bytes: float
    tbs_bytes: float


#: Signature of a diagnostic-batch subscriber.
DiagListener = Callable[[List[DiagRecord]], None]


class DiagMonitor:
    """Collects per-subframe records and delivers them in 40 ms batches."""

    def __init__(self, sim: Simulation, interval: float):
        self._sim = sim
        self._pending: List[DiagRecord] = []
        self._listeners: List[DiagListener] = []
        sim.every(interval, self._deliver)

    def subscribe(self, listener: DiagListener) -> None:
        """Register a callback receiving each 40 ms batch of records."""
        self._listeners.append(listener)

    def record(self, buffer_bytes: float, tbs_bytes: float) -> None:
        """Log one subframe's modem state (called by the UE each 1 ms)."""
        self._pending.append(DiagRecord(self._sim.now, buffer_bytes, tbs_bytes))

    def _deliver(self) -> None:
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        for listener in self._listeners:
            listener(batch)
