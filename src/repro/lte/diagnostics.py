"""MobileInsight-style diagnostic interface.

The paper reads the phone's diag port with a customised real-time log
decoder (§5): the modem logs the uplink firmware-buffer level and the
transport block size **per 1 ms subframe**, and the decoder delivers
these records to the application every 40 ms.  FBCC's Eq. (3) scans the
per-subframe records inside each 40 ms batch, which is what makes it an
order of magnitude more responsive than RTT-based end-to-end feedback.

The UE pauses its subframe process while the uplink is idle (see
:meth:`repro.sim.engine.Simulation.every_while`); the monitor's
*idle filler* hook lets it materialise the all-zero records for the
skipped subframes lazily, right before each batch is delivered, so
subscribers see exactly the record stream an always-ticking UE would
have produced.
"""

from __future__ import annotations

from typing import Callable, List, NamedTuple, Optional

from repro.obs.bus import NULL_BUS
from repro.obs.meter import NULL_METER


class DiagRecord(NamedTuple):
    """One per-subframe modem log record."""

    time: float
    buffer_bytes: float
    tbs_bytes: float


#: Signature of a diagnostic-batch subscriber.
DiagListener = Callable[[List[DiagRecord]], None]

#: Signature of the idle filler: ``fn(deadline)`` appends records for
#: every skipped subframe strictly before ``deadline``.
IdleFiller = Callable[[float], None]


class DiagMonitor:
    """Collects per-subframe records and delivers them in 40 ms batches."""

    def __init__(self, sim, interval: float, trace=NULL_BUS, meter=NULL_METER):
        self._sim = sim
        self._pending: List[DiagRecord] = []
        self._listeners: List[DiagListener] = []
        self._idle_filler: Optional[IdleFiller] = None
        self._trace = trace
        self._meter = meter
        sim.every(interval, self._deliver)

    def subscribe(self, listener: DiagListener) -> None:
        """Register a callback receiving each 40 ms batch of records."""
        self._listeners.append(listener)

    def set_idle_filler(self, filler: IdleFiller) -> None:
        """Register the hook that backfills records for skipped subframes."""
        self._idle_filler = filler

    def record(self, buffer_bytes: float, tbs_bytes: float) -> None:
        """Log one subframe's modem state (called by the UE each 1 ms)."""
        # ``_now`` rather than the ``now`` property: this runs once per
        # simulated millisecond.
        self._pending.append(DiagRecord(self._sim._now, buffer_bytes, tbs_bytes))

    def record_at(self, time: float, buffer_bytes: float, tbs_bytes: float) -> None:
        """Log a backfilled record carrying an explicit (past) timestamp."""
        self._pending.append(DiagRecord(time, buffer_bytes, tbs_bytes))

    def _deliver(self) -> None:
        if self._idle_filler is not None:
            self._idle_filler(self._sim.now)
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        if self._trace:
            self._trace.emit(
                "diag.batch",
                n=len(batch),
                mean_level=sum(r.buffer_bytes for r in batch) / len(batch),
                tbs_bytes=sum(r.tbs_bytes for r in batch),
            )
        if self._meter:
            self._meter.inc("lte.diag_batches")
        for listener in self._listeners:
            listener(batch)
