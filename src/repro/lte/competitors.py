"""Explicit competing-UE traffic model for the serving cell.

The default :class:`repro.lte.cell.CellLoadProcess` abstracts the other
UEs into a Gauss-Markov load fraction.  This module models them
explicitly: N background UEs with on/off (exponential holding time)
traffic sessions — web bursts, uploads, streams — whose combined
activity produces the load fraction the PF scheduler sees.  The
emergent load is burstier and heavier-tailed than the OU abstraction,
which matters for the busy-cell experiments (Fig. 17a/b): a noon
campus cell is a crowd of phones, not a smooth fluid.

The population is consumed in two modes:

- **Abstract drain** (single-UE sessions): select it with
  ``CellConfig.competitor_count > 0`` and
  :func:`make_cell_model` returns a :class:`CompetitorCell` in place of
  the Gauss-Markov process.  The tracked UE's scheduler reads ``load``
  and shrinks its own duty cycle and PRB grant accordingly — the
  competitors never hold PRBs themselves.
- **Scheduled load** (multi-UE shared cells, docs/FLEET.md): a
  :class:`repro.lte.shared_cell.SharedCell` built with
  ``FleetConfig.background_ues > 0`` owns one cell-level
  :class:`CompetitorCell` and, each 1 ms subframe, converts its ``load``
  fraction into whole PRBs claimed from the shared budget *before* any
  member's grant — the crowd occupies real cell resources that the
  POI360 callers can no longer be granted.

Duty-cycle math: each competitor holds exponential on/off sessions
with a mean on-time drawn per UE; the mean off-time is derived by
:func:`mean_off_for_duty` so the long-run activity fraction matches
the configured ``background_load``, however long the UE's sessions are.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.config import CellConfig
from repro.sim.engine import Simulation

#: Update cadence of every competitor's on/off state (s).
UPDATE_INTERVAL = 0.05


def mean_off_for_duty(mean_on: float, duty: float) -> float:
    """Mean off-time giving an on/off UE a long-run duty cycle ``duty``.

    An alternating-renewal process is active a fraction
    ``E[on] / (E[on] + E[off])`` of the time; solving for ``E[off]``
    gives ``E[on] * (1 - duty) / duty`` (duty floored at 1e-3 so a
    zero-load config yields long but finite off-times).

    >>> mean_off_for_duty(6.0, 0.5)
    6.0
    >>> mean_off_for_duty(9.0, 0.25)
    27.0
    >>> round(6.0 / (6.0 + mean_off_for_duty(6.0, 0.2)), 3)  # realised duty
    0.2
    """
    return mean_on * (1.0 - duty) / max(1e-3, duty)


class _CompetitorUe:
    """One background UE: on/off traffic with exponential holding times."""

    __slots__ = ("active", "weight", "_mean_on", "_mean_off", "_until")

    def __init__(self, rng: np.random.Generator, duty: float):
        #: Resource weight while active (heavy-tailed: some UEs stream,
        #: most poke at short flows).
        self.weight = float(rng.lognormal(0.0, 0.6))
        self._mean_on = float(rng.uniform(2.0, 15.0))
        self._mean_off = mean_off_for_duty(self._mean_on, duty)
        self.active = rng.random() < duty
        self._until = 0.0

    def update(self, now: float, rng: np.random.Generator) -> None:
        if now < self._until:
            return
        self.active = not self.active
        mean = self._mean_on if self.active else self._mean_off
        self._until = now + float(rng.exponential(mean))


class CompetitorCell:
    """Cell load produced by explicit background UEs.

    Drop-in replacement for :class:`CellLoadProcess`: exposes the same
    ``load`` property, consumed by the PF scheduler.
    """

    def __init__(self, sim: Simulation, config: CellConfig, rng: np.random.Generator):
        self._sim = sim
        self._config = config
        self._rng = rng
        count = max(1, config.competitor_count)
        # Each competitor's duty cycle chosen so the expected aggregate
        # load matches the configured background_load.
        duty = min(0.95, config.background_load * self._capacity_share(count))
        self._competitors: List[_CompetitorUe] = [
            _CompetitorUe(rng, duty) for _ in range(count)
        ]
        self._total_weight = sum(c.weight for c in self._competitors)
        sim.every(UPDATE_INTERVAL, self._update)

    @staticmethod
    def _capacity_share(count: int) -> float:
        """Scale factor turning per-UE duty into aggregate load.

        With ``count`` UEs each active ``duty`` of the time, the
        expected fraction of weighted resources in use is ``duty`` (the
        weights normalise out), so the share is 1 — kept as a hook for
        admission-control variants.
        """
        return 1.0

    def _update(self) -> None:
        now = self._sim.now
        for competitor in self._competitors:
            competitor.update(now, self._rng)

    @property
    def load(self) -> float:
        """Instantaneous fraction of cell resources other UEs hold."""
        if self._total_weight <= 0.0:
            return 0.0
        active = sum(c.weight for c in self._competitors if c.active)
        return min(0.9, active / self._total_weight)

    @property
    def active_competitors(self) -> int:
        return sum(1 for c in self._competitors if c.active)


class GridCompetitorCell:
    """Grid twin of :class:`CompetitorCell` for the lockstep engines.

    Same population, same per-UE draws from the same rng stream, same
    aggregate-load arithmetic — but the caller clocks the on/off updates
    (every ``UPDATE_INTERVAL`` on the 1 ms grid) instead of the event
    engine, and ``load`` is a cached plain float recomputed only when
    the population flips.  Both the scalar :class:`repro.lte.shared_cell.
    GridSharedCell` and the batched :class:`~repro.lte.shared_cell.
    SharedCellArray` own one of these per cell, so the two engines
    consume bit-identical background loads by construction.
    """

    __slots__ = ("_competitors", "_total_weight", "_rng", "load")

    def __init__(self, config: CellConfig, rng: np.random.Generator):
        count = max(1, config.competitor_count)
        duty = min(0.95, config.background_load * CompetitorCell._capacity_share(count))
        self._competitors: List[_CompetitorUe] = [
            _CompetitorUe(rng, duty) for _ in range(count)
        ]
        self._total_weight = sum(c.weight for c in self._competitors)
        self._rng = rng
        self.load = self._snapshot()

    def update(self, now: float) -> None:
        """Advance every competitor's on/off state to ``now``."""
        rng = self._rng
        for competitor in self._competitors:
            competitor.update(now, rng)
        self.load = self._snapshot()

    def _snapshot(self) -> float:
        if self._total_weight <= 0.0:
            return 0.0
        active = sum(c.weight for c in self._competitors if c.active)
        return min(0.9, active / self._total_weight)


def make_cell_model(sim: Simulation, config: CellConfig, rng: np.random.Generator):
    """Factory: explicit competitors when configured, OU process otherwise."""
    if config.competitor_count > 0:
        return CompetitorCell(sim, config, rng)
    from repro.lte.cell import CellLoadProcess

    return CellLoadProcess(sim, config, rng)
