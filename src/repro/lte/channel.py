"""Radio channel model: shadow fading, mobility, handover outages.

The instantaneous RSS is the configured mean plus a Gauss-Markov
(Ornstein-Uhlenbeck) shadow-fading term.  Mobility shortens the fading
correlation time, widens its excursions, and triggers Poisson handovers
during which the link is in outage (CQI 0 → no grants), reproducing the
paper's driving experiments (Fig. 17e/f).
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import ChannelConfig
from repro.lte.tbs import cqi_from_rss
from repro.obs.bus import NULL_BUS
from repro.obs.meter import NULL_METER
from repro.sim.engine import Simulation


class ChannelProcess:
    """Time-varying RSS / CQI process for the sender's uplink."""

    def __init__(
        self,
        sim: Simulation,
        config: ChannelConfig,
        rng: np.random.Generator,
        trace=NULL_BUS,
        meter=NULL_METER,
    ):
        self._sim = sim
        self._config = config
        self._rng = rng
        self._trace = trace
        self._meter = meter
        self._shadow_db = 0.0
        self._outage_until = -1.0
        self._fade_db = 0.0
        self._fade_until = -1.0
        speed = max(0.0, config.speed_mph)
        #: Mobility encounters obstructions more often.
        self._fade_rate = (
            config.deep_fade_rate_per_min * (1.0 + speed / 15.0) / 60.0
        )
        #: Mobility compresses the shadowing correlation time.
        self._corr_time = config.shadow_corr_time / (1.0 + speed / 10.0)
        self._sigma = config.shadow_sigma_db * (1.0 + speed / 50.0)
        self._handover_rate = (
            config.handover_rate_per_min_at_30mph * (speed / 30.0) / 60.0
        )
        # The Gauss-Markov step parameters are constants of the process;
        # hoist them (and the per-step event probabilities) out of the
        # 50 Hz update callback.
        dt = config.update_interval
        self._decay = math.exp(-dt / self._corr_time)
        self._innovation = self._sigma * math.sqrt(
            max(0.0, 1.0 - self._decay * self._decay)
        )
        self._handover_prob = self._handover_rate * dt
        self._fade_prob = self._fade_rate * dt
        #: CQI at the current RSS; only changes when ``_update`` runs, so
        #: per-subframe ``cqi()`` calls reuse it instead of re-deriving.
        self._cqi = cqi_from_rss(config.rss_dbm)
        sim.every(dt, self._update)

    def _update(self) -> None:
        self._shadow_db = self._shadow_db * self._decay + self._innovation * self._rng.normal()
        now = self._sim.now
        if self._handover_rate > 0.0 and now > self._outage_until:
            if self._rng.random() < self._handover_prob:
                self._outage_until = now + self._config.handover_outage
        if now > self._fade_until:
            self._fade_db = 0.0
            if self._fade_rate > 0.0 and self._rng.random() < self._fade_prob:
                self._fade_db = self._rng.exponential(self._config.deep_fade_depth_db)
                low, high = self._config.deep_fade_duration
                self._fade_until = now + self._rng.uniform(low, high)
        self._cqi = cqi_from_rss(self._config.rss_dbm + self._shadow_db - self._fade_db)
        if self._trace:
            self._trace.emit("lte.cqi", cqi=self._cqi, rss_dbm=self.rss_dbm)
        if self._meter:
            self._meter.observe("lte.cqi", self._cqi)

    @property
    def rss_dbm(self) -> float:
        """Instantaneous received signal strength (dBm)."""
        return self._config.rss_dbm + self._shadow_db - self._fade_db

    @property
    def in_outage(self) -> bool:
        """True while a handover outage is in progress."""
        return self._sim.now <= self._outage_until

    def cqi(self) -> int:
        """Instantaneous CQI (0 during handover outage)."""
        if self._sim.now <= self._outage_until:
            return 0
        return self._cqi
