"""Radio channel model: shadow fading, mobility, handover outages.

The instantaneous RSS is the configured mean plus a Gauss-Markov
(Ornstein-Uhlenbeck) shadow-fading term.  Mobility shortens the fading
correlation time, widens its excursions, and triggers Poisson handovers
during which the link is in outage (CQI 0 → no grants), reproducing the
paper's driving experiments (Fig. 17e/f).
"""

from __future__ import annotations

import math
from typing import NamedTuple, Sequence

import numpy as np

from repro.config import ChannelConfig
from repro.lte.tbs import cqi_from_rss, cqi_from_rss_array
from repro.obs.bus import NULL_BUS
from repro.obs.meter import NULL_METER
from repro.sim.blocks import (
    BlockStream,
    BlockStreamArray,
    exponential_transform,
    normal_transform,
    uniform_range_transform,
    uniform_transform,
)
from repro.sim.engine import Simulation


class ChannelDynamics(NamedTuple):
    """Derived per-update constants of the channel process.

    One derivation shared by the event-driven :class:`ChannelProcess`,
    the grid-scalar :class:`GridChannel` reference and the batched
    :class:`ChannelArray` twin, so all three agree on how mobility
    reshapes the fading statistics.
    """

    decay: float
    innovation: float
    corr_time: float
    sigma: float
    fade_rate: float
    handover_rate: float
    handover_prob: float
    fade_prob: float


def derive_channel_dynamics(config: ChannelConfig) -> ChannelDynamics:
    """Fold mobility into the Gauss-Markov / Poisson step constants."""
    speed = max(0.0, config.speed_mph)
    # Mobility encounters obstructions more often.
    fade_rate = config.deep_fade_rate_per_min * (1.0 + speed / 15.0) / 60.0
    # Mobility compresses the shadowing correlation time.
    corr_time = config.shadow_corr_time / (1.0 + speed / 10.0)
    sigma = config.shadow_sigma_db * (1.0 + speed / 50.0)
    handover_rate = (
        config.handover_rate_per_min_at_30mph * (speed / 30.0) / 60.0
    )
    dt = config.update_interval
    decay = math.exp(-dt / corr_time)
    innovation = sigma * math.sqrt(max(0.0, 1.0 - decay * decay))
    return ChannelDynamics(
        decay=decay,
        innovation=innovation,
        corr_time=corr_time,
        sigma=sigma,
        fade_rate=fade_rate,
        handover_rate=handover_rate,
        handover_prob=handover_rate * dt,
        fade_prob=fade_rate * dt,
    )


class ChannelProcess:
    """Time-varying RSS / CQI process for the sender's uplink."""

    def __init__(
        self,
        sim: Simulation,
        config: ChannelConfig,
        rng: np.random.Generator,
        trace=NULL_BUS,
        meter=NULL_METER,
    ):
        self._sim = sim
        self._config = config
        self._rng = rng
        self._trace = trace
        self._meter = meter
        self._shadow_db = 0.0
        self._outage_until = -1.0
        self._fade_db = 0.0
        self._fade_until = -1.0
        # The Gauss-Markov step parameters are constants of the process;
        # hoist them (and the per-step event probabilities) out of the
        # 50 Hz update callback.
        dt = config.update_interval
        dynamics = derive_channel_dynamics(config)
        self._fade_rate = dynamics.fade_rate
        self._corr_time = dynamics.corr_time
        self._sigma = dynamics.sigma
        self._handover_rate = dynamics.handover_rate
        self._decay = dynamics.decay
        self._innovation = dynamics.innovation
        self._handover_prob = dynamics.handover_prob
        self._fade_prob = dynamics.fade_prob
        #: CQI at the current RSS; only changes when ``_update`` runs, so
        #: per-subframe ``cqi()`` calls reuse it instead of re-deriving.
        self._cqi = cqi_from_rss(config.rss_dbm)
        sim.every(dt, self._update)

    def _update(self) -> None:
        self._shadow_db = self._shadow_db * self._decay + self._innovation * self._rng.normal()
        now = self._sim.now
        if self._handover_rate > 0.0 and now > self._outage_until:
            if self._rng.random() < self._handover_prob:
                self._outage_until = now + self._config.handover_outage
        if now > self._fade_until:
            self._fade_db = 0.0
            if self._fade_rate > 0.0 and self._rng.random() < self._fade_prob:
                self._fade_db = self._rng.exponential(self._config.deep_fade_depth_db)
                low, high = self._config.deep_fade_duration
                self._fade_until = now + self._rng.uniform(low, high)
        self._cqi = cqi_from_rss(self._config.rss_dbm + self._shadow_db - self._fade_db)
        if self._trace:
            self._trace.emit("lte.cqi", cqi=self._cqi, rss_dbm=self.rss_dbm)
        if self._meter:
            self._meter.observe("lte.cqi", self._cqi)

    @property
    def rss_dbm(self) -> float:
        """Instantaneous received signal strength (dBm)."""
        return self._config.rss_dbm + self._shadow_db - self._fade_db

    @property
    def in_outage(self) -> bool:
        """True while a handover outage is in progress."""
        return self._sim.now <= self._outage_until

    def cqi(self) -> int:
        """Instantaneous CQI (0 during handover outage)."""
        if self._sim.now <= self._outage_until:
            return 0
        return self._cqi


# ----------------------------------------------------------------------
# Lockstep twins (batched engine, repro.sim.batch)
# ----------------------------------------------------------------------


class GridChannel:
    """Grid-scalar channel for the lockstep uplink profile.

    Same dynamics as :class:`ChannelProcess`, with two deliberate
    differences that make a bit-exact batched twin possible:

    - every variate comes from a block-transformed stream
      (:mod:`repro.sim.blocks`) — handover/fade trigger uniforms, deep-
      fade depths (inverse-transform exponential) and fade durations
      (inverse-transform uniform) each from their own stream, so the
      batched :class:`ChannelArray` consumes the exact same float64
      sequences with per-session cursors;
    - the caller supplies ``now`` (the lockstep engines derive time from
      an integer tick counter rather than the event clock).

    ``stream(name)`` must return the named per-session generator.
    """

    __slots__ = (
        "_decay", "_innovation", "_handover_prob", "_fade_prob",
        "_handover_enabled", "_fade_enabled", "_handover_outage", "_rss",
        "_z", "_ho_u", "_fade_u", "_fade_depth", "_fade_dur",
        "shadow_db", "outage_until", "fade_db", "fade_until", "cqi_value",
    )

    def __init__(self, config: ChannelConfig, stream, block: int = 1024):
        dynamics = derive_channel_dynamics(config)
        self._decay = dynamics.decay
        self._innovation = dynamics.innovation
        self._handover_prob = dynamics.handover_prob
        self._fade_prob = dynamics.fade_prob
        self._handover_enabled = dynamics.handover_rate > 0.0
        self._fade_enabled = dynamics.fade_rate > 0.0
        self._handover_outage = config.handover_outage
        self._rss = config.rss_dbm
        self._z = BlockStream(stream("channel.z"), normal_transform(), block)
        self._ho_u = BlockStream(stream("channel.handover"), uniform_transform(), block)
        self._fade_u = BlockStream(stream("channel.fade"), uniform_transform(), block)
        self._fade_depth = BlockStream(
            stream("channel.fade_depth"),
            exponential_transform(config.deep_fade_depth_db),
            block,
        )
        low, high = config.deep_fade_duration
        self._fade_dur = BlockStream(
            stream("channel.fade_duration"), uniform_range_transform(low, high), block
        )
        self.shadow_db = 0.0
        self.outage_until = -1.0
        self.fade_db = 0.0
        self.fade_until = -1.0
        self.cqi_value = cqi_from_rss(config.rss_dbm)

    def update(self, now: float) -> None:
        self.shadow_db = self.shadow_db * self._decay + self._innovation * self._z.next()
        if self._handover_enabled and now > self.outage_until:
            if self._ho_u.next() < self._handover_prob:
                self.outage_until = now + self._handover_outage
        if now > self.fade_until:
            self.fade_db = 0.0
            if self._fade_enabled and self._fade_u.next() < self._fade_prob:
                self.fade_db = self._fade_depth.next()
                self.fade_until = now + self._fade_dur.next()
        self.cqi_value = cqi_from_rss(self._rss + self.shadow_db - self.fade_db)

    def cqi(self, now: float) -> int:
        """Instantaneous CQI (0 during handover outage)."""
        if now <= self.outage_until:
            return 0
        return self.cqi_value


class ChannelArray:
    """``(n_sessions,)`` vectorised twin of :class:`GridChannel`.

    Per-update cost is a handful of array ops regardless of the cohort
    size; the conditional draws (handover / fade triggers) gather from
    per-session blocks by cursor, consuming exactly the values the
    scalar twin would.
    """

    def __init__(self, configs: Sequence[ChannelConfig], streams, block: int = 1024):
        n = len(configs)
        dynamics = [derive_channel_dynamics(config) for config in configs]
        self.decay = np.array([d.decay for d in dynamics])
        self.innovation = np.array([d.innovation for d in dynamics])
        self.handover_prob = np.array([d.handover_prob for d in dynamics])
        self.fade_prob = np.array([d.fade_prob for d in dynamics])
        self.handover_enabled = np.array(
            [d.handover_rate > 0.0 for d in dynamics], dtype=bool
        )
        self.fade_enabled = np.array([d.fade_rate > 0.0 for d in dynamics], dtype=bool)
        self.handover_outage = np.array([c.handover_outage for c in configs])
        self.rss = np.array([c.rss_dbm for c in configs])
        self._z = BlockStreamArray(
            [streams[s]("channel.z") for s in range(n)],
            [normal_transform()] * n,
            block,
            aligned=True,
        )
        self._ho_u = BlockStreamArray(
            [streams[s]("channel.handover") for s in range(n)],
            [uniform_transform()] * n,
            block,
        )
        self._fade_u = BlockStreamArray(
            [streams[s]("channel.fade") for s in range(n)],
            [uniform_transform()] * n,
            block,
        )
        self._fade_depth = BlockStreamArray(
            [streams[s]("channel.fade_depth") for s in range(n)],
            [exponential_transform(c.deep_fade_depth_db) for c in configs],
            block,
        )
        self._fade_dur = BlockStreamArray(
            [streams[s]("channel.fade_duration") for s in range(n)],
            [uniform_range_transform(*c.deep_fade_duration) for c in configs],
            block,
        )
        self.shadow = np.zeros(n)
        self.outage_until = np.full(n, -1.0)
        self.fade_db = np.zeros(n)
        self.fade_until = np.full(n, -1.0)
        self.cqi_value = cqi_from_rss_array(self.rss)
        #: Scalar gate for the hot path: past this instant no session is
        #: in outage (``outage_until`` only changes inside update()).
        self._outage_horizon = -1.0
        self._all_positive = np.ones(n, dtype=bool)

    def update(self, now: float) -> None:
        z = self._z.take_all()
        self.shadow = self.shadow * self.decay + self.innovation * z
        m_ho = self.handover_enabled & (now > self.outage_until)
        idx = np.nonzero(m_ho)[0]
        if idx.size:
            u = self._ho_u.take(idx)
            fired = idx[u < self.handover_prob[idx]]
            if fired.size:
                self.outage_until[fired] = now + self.handover_outage[fired]
                self._outage_horizon = float(self.outage_until.max())
        m_fade = now > self.fade_until
        self.fade_db[m_fade] = 0.0
        cidx = np.nonzero(m_fade & self.fade_enabled)[0]
        if cidx.size:
            u = self._fade_u.take(cidx)
            fidx = cidx[u < self.fade_prob[cidx]]
            if fidx.size:
                self.fade_db[fidx] = self._fade_depth.take(fidx)
                self.fade_until[fidx] = now + self._fade_dur.take(fidx)
        self.cqi_value = cqi_from_rss_array(self.rss + self.shadow - self.fade_db)

    def effective_cqi(self, now: float) -> np.ndarray:
        """Per-session CQI with handover outages zeroed."""
        return np.where(now <= self.outage_until, 0, self.cqi_value)

    def cqi_state(self, now: float):
        """Hot-path form: ``(cqi_positive, cqi_value)``.

        ``cqi_value`` is only meaningful where ``cqi_positive`` — the
        RSS→CQI mapping clamps to [1, 15], so a session's CQI is zero
        exactly while it sits in a handover outage.  Outside any outage
        (the common case, gated by one float compare) the mask is a
        shared all-True array.
        """
        if now > self._outage_horizon:
            return self._all_positive, self.cqi_value
        return now > self.outage_until, self.cqi_value
