"""Proportional-fair-flavoured eNodeB uplink grant engine.

Every 1 ms subframe the scheduler decides whether our UE transmits and
how large its transport block is:

- the UE's long-run scheduling duty cycle is
  ``p = p_max * (1 - load) * max(floor, min(1, B_reported / B_ref))`` —
  a deeply backlogged UE wins (almost) its full PF share, a
  lightly-backlogged one is scheduled rarely;
- service arrives in *bursts* of consecutive subframes separated by
  idle gaps (the other UEs' turns), not i.i.d. per subframe — this is
  what makes LTE frame-arrival jitter an order of magnitude larger than
  wireline and drives the receiver's adaptive de-jitter buffer;
- a scheduled subframe carries
  ``min(backlog, prbs(load) * bytes_per_prb(CQI) * fading)`` bytes.

The emergent steady-state throughput is linear in the firmware-buffer
level up to the knee ``B_ref`` and saturates beyond it — the paper's
Fig. 5, which both of POI360's FBCC mechanisms rely on.
"""

from __future__ import annotations

import numpy as np

from repro.config import LteConfig
from repro.lte.cell import CellLoadProcess
from repro.lte.channel import ChannelProcess
from repro.lte.tbs import transport_block_bytes

#: A near-empty buffer is still scheduled occasionally (scheduling
#: request path); this floor bounds the queue-head wait for tiny sends.
MIN_SCHEDULING_FRACTION = 0.04

#: The scheduling-request/grant cycle bounds how long a backlogged UE
#: can go unserved, whatever its PF share (subframes).
MAX_IDLE_SUBFRAMES = 28

#: Batch size of pre-drawn uniforms (one per subframe decision).
_BATCH = 4096


class EnbScheduler:
    """Per-subframe grant decisions for a single tracked UE."""

    def __init__(
        self,
        config: LteConfig,
        channel: ChannelProcess,
        cell: CellLoadProcess,
        rng: np.random.Generator,
    ):
        self._config = config
        self._channel = channel
        self._cell = cell
        self._rng = rng
        self._uniforms = rng.random(_BATCH)
        self._cursor = 0
        # Frozen-config fields used every subframe, hoisted once.
        self._p_max = config.p_max
        self._backlog_ref = config.pf_backlog_ref
        self._prb_quota = config.prb_quota
        self._mean_burst = config.scheduling_burst_subframes
        speed = max(0.0, config.channel.speed_mph)
        #: Fast-fading lognormal sigma on the per-grant TBS.
        self._fading_sigma = 0.10 + speed / 300.0
        #: Burst/idle service process state (subframes remaining).
        self._burst_left = 0
        self._idle_left = 0

    def _next_uniform(self) -> float:
        if self._cursor >= _BATCH:
            self._uniforms = self._rng.random(_BATCH)
            self._cursor = 0
        value = self._uniforms[self._cursor]
        self._cursor += 1
        return value

    def effective_prbs(self, load: float) -> int:
        """PRBs our UE is granted when scheduled, given the cell load."""
        return max(2, int(round(self._prb_quota * (2.0 - load))))

    def grant_for_subframe(self, reported_backlog: float, actual_backlog: float) -> float:
        """Transport block size (bytes) granted this subframe (0 = none)."""
        if reported_backlog <= 0.0:
            return 0.0
        cqi = self._channel.cqi()
        if cqi <= 0:
            return 0.0
        load = self._cell.load
        backlog_fraction = min(1.0, reported_backlog / self._backlog_ref)
        probability = (
            self._p_max
            * (1.0 - load)
            * max(MIN_SCHEDULING_FRACTION, backlog_fraction)
        )
        if not self._in_service_burst(probability):
            return 0.0
        capacity = transport_block_bytes(cqi, self.effective_prbs(load))
        fading = float(np.exp(self._rng.normal(0.0, self._fading_sigma)))
        return min(actual_backlog, capacity * fading)

    def _in_service_burst(self, duty_cycle: float) -> bool:
        """Advance the burst/idle process; True when this subframe serves.

        Burst lengths are geometric with the configured mean; idle gaps
        are sized so the long-run duty cycle matches ``duty_cycle``.
        """
        if self._burst_left > 0:
            self._burst_left -= 1
            return True
        if self._idle_left > 0:
            self._idle_left -= 1
            return False
        mean_burst = self._mean_burst
        duty = min(1.0, max(1e-3, duty_cycle))
        burst = 1 + int(-mean_burst * np.log(max(1e-12, self._next_uniform())))
        idle = min(MAX_IDLE_SUBFRAMES, int(round(burst * (1.0 - duty) / duty)))
        self._burst_left = burst - 1  # this subframe is the burst's first
        self._idle_left = idle
        return True

    def saturation_rate_bps(self) -> float:
        """Expected plateau throughput under current channel/load (bps).

        This is a model introspection helper for tests and calibration,
        not something POI360 gets to observe.
        """
        cqi = self._channel.cqi()
        load = self._cell.load
        capacity = transport_block_bytes(cqi, self.effective_prbs(load))
        probability = self._config.p_max * (1.0 - load)
        return probability * capacity * 8.0 * 1000.0
