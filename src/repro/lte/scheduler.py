"""Proportional-fair-flavoured eNodeB uplink grant engine.

Every 1 ms subframe the scheduler decides whether our UE transmits and
how large its transport block is:

- the UE's long-run scheduling duty cycle is
  ``p = p_max * (1 - load) * max(floor, min(1, B_reported / B_ref))`` —
  a deeply backlogged UE wins (almost) its full PF share, a
  lightly-backlogged one is scheduled rarely;
- service arrives in *bursts* of consecutive subframes separated by
  idle gaps (the other UEs' turns), not i.i.d. per subframe — this is
  what makes LTE frame-arrival jitter an order of magnitude larger than
  wireline and drives the receiver's adaptive de-jitter buffer;
- a scheduled subframe carries
  ``min(backlog, prbs(load) * bytes_per_prb(CQI) * fading)`` bytes.

The emergent steady-state throughput is linear in the firmware-buffer
level up to the knee ``B_ref`` and saturates beyond it — the paper's
Fig. 5, which both of POI360's FBCC mechanisms rely on.
"""

from __future__ import annotations

import numpy as np

from repro.config import LteConfig
from repro.lte.cell import CellLoadProcess
from repro.lte.channel import ChannelProcess
from repro.lte.tbs import (
    BYTES_PER_PRB_TABLE,
    transport_block_bytes,
    transport_block_bytes_array,
)

#: A near-empty buffer is still scheduled occasionally (scheduling
#: request path); this floor bounds the queue-head wait for tiny sends.
MIN_SCHEDULING_FRACTION = 0.04

#: The scheduling-request/grant cycle bounds how long a backlogged UE
#: can go unserved, whatever its PF share (subframes).
MAX_IDLE_SUBFRAMES = 28

#: Batch size of pre-drawn uniforms (one per subframe decision).
_BATCH = 4096

#: Shared empty results for subframes that serve nobody.
_EMPTY_ROWS = np.empty(0, dtype=np.int64)
_EMPTY_GRANTS = np.empty(0, dtype=np.float64)


class EnbScheduler:
    """Per-subframe grant decisions for a single tracked UE."""

    def __init__(
        self,
        config: LteConfig,
        channel: ChannelProcess,
        cell: CellLoadProcess,
        rng: np.random.Generator,
    ):
        self._config = config
        self._channel = channel
        self._cell = cell
        #: Optional per-subframe PRB budget hook (shared cells only);
        #: ``None`` keeps the solo grant arithmetic untouched.
        self._cell_claim = None
        self._rng = rng
        self._uniforms = rng.random(_BATCH)
        self._cursor = 0
        # Frozen-config fields used every subframe, hoisted once.
        self._p_max = config.p_max
        self._backlog_ref = config.pf_backlog_ref
        self._prb_quota = config.prb_quota
        self._mean_burst = config.scheduling_burst_subframes
        speed = max(0.0, config.channel.speed_mph)
        #: Fast-fading lognormal sigma on the per-grant TBS.
        self._fading_sigma = 0.10 + speed / 300.0
        #: Burst/idle service process state (subframes remaining).
        self._burst_left = 0
        self._idle_left = 0

    def _next_uniform(self) -> float:
        if self._cursor >= _BATCH:
            self._uniforms = self._rng.random(_BATCH)
            self._cursor = 0
        value = self._uniforms[self._cursor]
        self._cursor += 1
        return value

    def set_cell(self, cell) -> None:
        """Re-point the load source (e.g. a shared cell's member view).

        When the new cell exposes ``claim_prbs`` — a
        :class:`repro.lte.shared_cell.CellMemberView` does — the grant
        path additionally claims its PRBs from the cell's per-subframe
        budget, so members of one cell cannot jointly exceed it.
        """
        self._cell = cell
        self._cell_claim = getattr(cell, "claim_prbs", None)

    def effective_prbs(self, load: float) -> int:
        """PRBs our UE is granted when scheduled, given the cell load."""
        return max(2, int(round(self._prb_quota * (2.0 - load))))

    def grant_for_subframe(self, reported_backlog: float, actual_backlog: float) -> float:
        """Transport block size (bytes) granted this subframe (0 = none)."""
        if reported_backlog <= 0.0:
            return 0.0
        cqi = self._channel.cqi()
        if cqi <= 0:
            return 0.0
        load = self._cell.load
        backlog_fraction = min(1.0, reported_backlog / self._backlog_ref)
        probability = (
            self._p_max
            * (1.0 - load)
            * max(MIN_SCHEDULING_FRACTION, backlog_fraction)
        )
        if not self._in_service_burst(probability):
            return 0.0
        prbs = self.effective_prbs(load)
        if self._cell_claim is not None:
            # Shared cell: the PF share is only an *entitlement* — the
            # subframe's remaining PRB budget caps what is actually
            # granted (claims by peers and background UEs come first).
            prbs = self._cell_claim(prbs)
            if prbs <= 0:
                return 0.0
        capacity = transport_block_bytes(cqi, prbs)
        fading = float(np.exp(self._rng.normal(0.0, self._fading_sigma)))
        return min(actual_backlog, capacity * fading)

    def _in_service_burst(self, duty_cycle: float) -> bool:
        """Advance the burst/idle process; True when this subframe serves.

        Burst lengths are geometric with the configured mean; idle gaps
        are sized so the long-run duty cycle matches ``duty_cycle``.
        """
        if self._burst_left > 0:
            self._burst_left -= 1
            return True
        if self._idle_left > 0:
            self._idle_left -= 1
            return False
        mean_burst = self._mean_burst
        duty = min(1.0, max(1e-3, duty_cycle))
        burst = 1 + int(-mean_burst * np.log(max(1e-12, self._next_uniform())))
        idle = min(MAX_IDLE_SUBFRAMES, int(round(burst * (1.0 - duty) / duty)))
        self._burst_left = burst - 1  # this subframe is the burst's first
        self._idle_left = idle
        return True

    def saturation_rate_bps(self) -> float:
        """Expected plateau throughput under current channel/load (bps).

        This is a model introspection helper for tests and calibration,
        not something POI360 gets to observe.
        """
        cqi = self._channel.cqi()
        load = self._cell.load
        capacity = transport_block_bytes(cqi, self.effective_prbs(load))
        probability = self._config.p_max * (1.0 - load)
        return probability * capacity * 8.0 * 1000.0


# ----------------------------------------------------------------------
# Lockstep twins (batched engine, repro.sim.batch)
# ----------------------------------------------------------------------


class GridScheduler:
    """Grid-scalar twin of :class:`EnbScheduler`.

    Identical grant arithmetic and burst/idle service process, but the
    two variates — the geometric burst draw and the per-grant lognormal
    fast fading — come from block-transformed streams
    (:mod:`repro.sim.blocks`), pre-applying ``-log`` / ``exp`` to whole
    blocks so the batched :class:`SchedulerArray` consumes the exact
    same float64 values.  CQI and cell load are passed in by the caller
    (the lockstep engines own those processes).
    """

    __slots__ = (
        "_p_max", "_backlog_ref", "_prb_quota", "_mean_burst",
        "_burst", "_fading", "_burst_left", "_idle_left", "_claim",
    )

    def __init__(self, config: LteConfig, stream, block: int = 1024):
        from repro.sim.blocks import (
            BlockStream,
            lognormal_transform,
            neglog_uniform_transform,
        )

        self._p_max = config.p_max
        self._backlog_ref = config.pf_backlog_ref
        self._prb_quota = config.prb_quota
        self._mean_burst = config.scheduling_burst_subframes
        speed = max(0.0, config.channel.speed_mph)
        sigma = 0.10 + speed / 300.0
        self._burst = BlockStream(stream("sched.burst"), neglog_uniform_transform(), block)
        self._fading = BlockStream(stream("sched.fading"), lognormal_transform(sigma), block)
        self._burst_left = 0
        self._idle_left = 0
        #: Optional per-subframe PRB budget hook — the grid twin of
        #: :meth:`EnbScheduler.set_cell`'s ``claim_prbs`` wiring.
        self._claim = None

    def attach_cell(self, view) -> None:
        """Claim PRBs through a shared-cell member view.

        ``view.claim_prbs`` is the grid analogue of
        :class:`repro.lte.shared_cell.CellMemberView.claim_prbs`; when
        attached, every grant's PRBs clip against the cell's remaining
        per-subframe budget.  A claim of zero returns without drawing a
        fading variate, keeping the RNG stream aligned with the batched
        engine's filtered fading take.
        """
        self._claim = view.claim_prbs

    def grant_for_subframe(
        self, reported: float, actual: float, cqi: int, load: float
    ) -> float:
        """Transport block size (bytes) granted this subframe (0 = none)."""
        if reported <= 0.0:
            return 0.0
        if cqi <= 0:
            return 0.0
        backlog_fraction = min(1.0, reported / self._backlog_ref)
        probability = (
            self._p_max * (1.0 - load) * max(MIN_SCHEDULING_FRACTION, backlog_fraction)
        )
        if not self._in_service_burst(probability):
            return 0.0
        prbs = max(2, int(round(self._prb_quota * (2.0 - load))))
        if self._claim is not None:
            prbs = self._claim(prbs)
            if prbs <= 0:
                return 0.0
        capacity = transport_block_bytes(cqi, prbs)
        fading = self._fading.next()
        return min(actual, capacity * fading)

    def _in_service_burst(self, duty_cycle: float) -> bool:
        if self._burst_left > 0:
            self._burst_left -= 1
            return True
        if self._idle_left > 0:
            self._idle_left -= 1
            return False
        duty = min(1.0, max(1e-3, duty_cycle))
        burst = 1 + int(self._mean_burst * self._burst.next())
        idle = min(MAX_IDLE_SUBFRAMES, int(round(burst * (1.0 - duty) / duty)))
        self._burst_left = burst - 1  # this subframe is the burst's first
        self._idle_left = idle
        return True


class SchedulerArray:
    """``(n_sessions,)`` vectorised twin of :class:`GridScheduler`.

    The burst/idle counters live as int64 arrays; a subframe only
    consumes a burst draw (and a fading draw) for the sessions whose
    scalar twin would, so the per-session stream cursors stay aligned.
    """

    def __init__(self, configs, streams, block: int = 1024):
        from repro.sim.blocks import (
            BlockStreamArray,
            lognormal_transform,
            neglog_uniform_transform,
        )

        n = len(configs)
        self._p_max = np.array([c.p_max for c in configs])
        self._backlog_ref = np.array([c.pf_backlog_ref for c in configs])
        self._prb_quota = np.array([c.prb_quota for c in configs], dtype=np.float64)
        self._mean_burst = np.array([c.scheduling_burst_subframes for c in configs])
        sigmas = [0.10 + max(0.0, c.channel.speed_mph) / 300.0 for c in configs]
        self._burst_u = BlockStreamArray(
            [streams[s]("sched.burst") for s in range(n)],
            [neglog_uniform_transform()] * n,
            block,
        )
        self._fading = BlockStreamArray(
            [streams[s]("sched.fading") for s in range(n)],
            [lognormal_transform(sigma) for sigma in sigmas],
            block,
        )
        self._burst_left = np.zeros(n, dtype=np.int64)
        self._idle_left = np.zeros(n, dtype=np.int64)
        # Scratch buffers for the per-subframe boolean masks: the hot
        # path runs every 1 ms, so the handful of temporaries it needs
        # are preallocated and reused instead of reallocated per call.
        self._scratch_e = np.zeros(n, dtype=bool)
        self._scratch_b = np.zeros(n, dtype=bool)
        self._scratch_i = np.zeros(n, dtype=bool)

    def serve_subframe(
        self,
        reported: np.ndarray,
        actual: np.ndarray,
        cqi: np.ndarray,
        cqi_positive: np.ndarray,
        load: np.ndarray,
        cells=None,
    ):
        """Served-session indices and their grant bytes this subframe.

        The hot-path form: returns ``(rows, grants)`` with one entry per
        *served* session instead of a dense ``(n,)`` vector, and keeps
        the burst/idle counter updates as whole-array boolean arithmetic
        (a bool subtracts as 0/1) rather than fancy-indexed writes.

        ``cells`` (a :class:`repro.lte.shared_cell.SharedCellArray`)
        routes every session's PRBs through the vectorised budget claim;
        sessions whose claim came back zero are dropped *before* the
        fading take, so each per-session fading stream advances exactly
        when its scalar twin's would.
        """
        eligible = np.greater(reported, 0.0, out=self._scratch_e)
        eligible &= cqi_positive
        if not eligible.any():
            return _EMPTY_ROWS, _EMPTY_GRANTS
        # Burst/idle service process, advanced only for eligible sessions.
        # ``eligible ^ in_burst`` == ``eligible & ~in_burst`` because
        # in_burst is a subset of eligible (one op, reusing the buffer).
        in_burst = np.greater(self._burst_left, 0, out=self._scratch_b)
        in_burst &= eligible
        np.subtract(self._burst_left, in_burst, out=self._burst_left)
        in_idle = np.greater(self._idle_left, 0, out=self._scratch_i)
        rest = np.bitwise_xor(eligible, in_burst, out=self._scratch_e)
        in_idle &= rest
        np.subtract(self._idle_left, in_idle, out=self._idle_left)
        draw_mask = np.bitwise_xor(rest, in_idle, out=self._scratch_e)
        if draw_mask.any():
            draw = np.nonzero(draw_mask)[0]
            duty_cycle = (
                self._p_max[draw]
                * (1.0 - load[draw])
                * np.maximum(
                    MIN_SCHEDULING_FRACTION,
                    np.minimum(1.0, reported[draw] / self._backlog_ref[draw]),
                )
            )
            duty = np.minimum(1.0, np.maximum(1e-3, duty_cycle))
            burst = 1 + (self._mean_burst[draw] * self._burst_u.take(draw)).astype(
                np.int64
            )
            idle = np.minimum(
                MAX_IDLE_SUBFRAMES,
                np.rint(burst * (1.0 - duty) / duty).astype(np.int64),
            )
            self._burst_left[draw] = burst - 1
            self._idle_left[draw] = idle
            in_burst |= draw_mask  # a fresh draw's first subframe serves
        rows = np.nonzero(in_burst)[0]
        if not rows.size:
            return _EMPTY_ROWS, _EMPTY_GRANTS
        prbs = np.maximum(2.0, np.rint(self._prb_quota[rows] * (2.0 - load[rows])))
        if cells is not None:
            prbs = cells.claim_rows(rows, prbs)
            served = prbs > 0.0
            if not served.all():
                rows = rows[served]
                if not rows.size:
                    return _EMPTY_ROWS, _EMPTY_GRANTS
                prbs = prbs[served]
        capacity = BYTES_PER_PRB_TABLE[cqi[rows]] * prbs
        fading = self._fading.take(rows)
        grants = np.minimum(actual[rows], capacity * fading)
        return rows, grants

    def grants_for_subframe(
        self,
        reported: np.ndarray,
        actual: np.ndarray,
        cqi: np.ndarray,
        load: np.ndarray,
    ) -> np.ndarray:
        """Per-session grant bytes for this subframe (0 = not scheduled)."""
        grants = np.zeros(reported.shape[0])
        rows, values = self.serve_subframe(reported, actual, cqi, cqi > 0, load)
        if rows.size:
            grants[rows] = values
        return grants
