"""CQI / MCS / transport-block-size mappings.

A thin, honest slice of 3GPP TS 36.213: the CQI table's spectral
efficiencies (Table 7.2.3-1) translate a channel quality indicator into
bytes per physical resource block (PRB) per 1 ms subframe.  The RSS→CQI
mapping is an empirical linear fit calibrated so the paper's three field
locations (-115 / -82 / -73 dBm) land on CQIs that give the uplink
bandwidths its Fig. 17c/d behaviour implies (≈1 / ≈4 / ≈5.5 Mbps).
"""

from __future__ import annotations

import numpy as np

#: Spectral efficiency (information bits per resource element) for CQI
#: indices 1..15, per 3GPP TS 36.213 Table 7.2.3-1.
CQI_EFFICIENCY = (
    0.1523,
    0.2344,
    0.3770,
    0.6016,
    0.8770,
    1.1758,
    1.4766,
    1.9141,
    2.4063,
    2.7305,
    3.3223,
    3.9023,
    4.5234,
    5.1152,
    5.5547,
)

#: Resource elements per PRB per subframe usable for PUSCH data after
#: reference-signal and control overhead.
USABLE_RES_PER_PRB = 150

#: Calibrated RSS→CQI linear fit: ``cqi = RSS_CQI_BASE + (rss - RSS_CQI_ANCHOR)
#: / RSS_DB_PER_CQI`` (then rounded and clamped to [1, 15]).
RSS_CQI_ANCHOR = -115.0
RSS_CQI_BASE = 5.0
RSS_DB_PER_CQI = 5.25


#: ``bytes_per_prb`` for CQI 1..15, precomputed once (the mapping sits
#: on the per-subframe grant path).
_BYTES_PER_PRB = tuple(
    efficiency * USABLE_RES_PER_PRB / 8.0 for efficiency in CQI_EFFICIENCY
)


def efficiency_for_cqi(cqi: int) -> float:
    """Spectral efficiency (bits per resource element) for a CQI index.

    CQI 0 means "out of range" (e.g. during a handover outage) and maps
    to zero efficiency.
    """
    if cqi <= 0:
        return 0.0
    index = min(int(cqi), len(CQI_EFFICIENCY)) - 1
    return CQI_EFFICIENCY[index]


def bytes_per_prb(cqi: int) -> float:
    """Payload bytes one PRB carries in one subframe at the given CQI."""
    if cqi <= 0:
        return 0.0
    return _BYTES_PER_PRB[min(int(cqi), len(_BYTES_PER_PRB)) - 1]


def cqi_from_rss(rss_dbm: float) -> int:
    """Map an instantaneous RSS (dBm) to a CQI index in [1, 15].

    >>> cqi_from_rss(-115)
    5
    >>> cqi_from_rss(-73)
    13
    """
    cqi = RSS_CQI_BASE + (rss_dbm - RSS_CQI_ANCHOR) / RSS_DB_PER_CQI
    return int(max(1, min(15, round(cqi))))


def transport_block_bytes(cqi: int, prbs: int) -> float:
    """Transport block size (bytes) for ``prbs`` resource blocks at ``cqi``."""
    if prbs <= 0:
        return 0.0
    return bytes_per_prb(cqi) * prbs


# ----------------------------------------------------------------------
# Array twins (batched lockstep engine, repro.sim.batch)
# ----------------------------------------------------------------------

#: ``bytes_per_prb`` indexed directly by CQI 0..15 — index 0 (handover
#: outage) maps to 0.0, so a clipped gather replaces the scalar branch.
BYTES_PER_PRB_TABLE = np.array((0.0,) + _BYTES_PER_PRB, dtype=np.float64)


def cqi_from_rss_array(rss_dbm: np.ndarray) -> np.ndarray:
    """:func:`cqi_from_rss` over an array of RSS values.

    Pure affine arithmetic plus half-even rounding, so every element is
    bit-identical to the scalar mapping (``round`` and ``np.rint`` both
    round half to even).
    """
    cqi = RSS_CQI_BASE + (rss_dbm - RSS_CQI_ANCHOR) / RSS_DB_PER_CQI
    return np.clip(np.rint(cqi), 1, 15).astype(np.int64)


def transport_block_bytes_array(cqi: np.ndarray, prbs: np.ndarray) -> np.ndarray:
    """:func:`transport_block_bytes` over arrays (CQI <= 0 -> 0 bytes)."""
    capacity = BYTES_PER_PRB_TABLE[np.clip(cqi, 0, 15)]
    return capacity * prbs
