"""Competing background load inside the serving cell.

The fraction of uplink resources other UEs consume follows a clamped
Gauss-Markov process around the configured mean.  It shrinks both the
probability that our UE wins a subframe and the PRBs it is granted,
which is how the paper's idle-vs-busy campus experiments (Fig. 17a/b)
are reproduced.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import CellConfig
from repro.sim.engine import Simulation

#: Load is clamped into this range (a cell is never 100% occupied by
#: others for long — the PF scheduler still serves backlogged UEs).
LOAD_MIN = 0.0
LOAD_MAX = 0.9

#: Update cadence of the load process (s).
UPDATE_INTERVAL = 0.1


class CellLoadProcess:
    """Time-varying background-load fraction in [0, 0.9]."""

    def __init__(self, sim: Simulation, config: CellConfig, rng: np.random.Generator):
        self._config = config
        self._rng = rng
        self._deviation = 0.0
        # Process constants, hoisted out of the update callback.
        self._decay = math.exp(-UPDATE_INTERVAL / config.load_corr_time)
        self._innovation = config.load_sigma * math.sqrt(
            max(0.0, 1.0 - self._decay * self._decay)
        )
        self._load = min(LOAD_MAX, max(LOAD_MIN, config.background_load))
        sim.every(UPDATE_INTERVAL, self._update)

    def _update(self) -> None:
        self._deviation = self._deviation * self._decay + self._innovation * self._rng.normal()
        value = self._config.background_load + self._deviation
        self._load = min(LOAD_MAX, max(LOAD_MIN, value))

    @property
    def load(self) -> float:
        """Instantaneous background-load fraction (cached per update)."""
        return self._load


# ----------------------------------------------------------------------
# Lockstep twins (batched engine, repro.sim.batch)
# ----------------------------------------------------------------------


class GridCellLoad:
    """Grid-scalar twin of :class:`CellLoadProcess`.

    Same clamped Gauss-Markov dynamics, but the innovation normals come
    from a block-transformed stream (:mod:`repro.sim.blocks`) and the
    caller drives the updates on the lockstep grid, so the batched
    :class:`CellLoadArray` reproduces it bit-for-bit.
    """

    __slots__ = ("_background", "_decay", "_innovation", "_z", "_deviation", "load")

    def __init__(self, config: CellConfig, stream, block: int = 1024):
        from repro.sim.blocks import BlockStream, normal_transform

        self._background = config.background_load
        self._decay = math.exp(-UPDATE_INTERVAL / config.load_corr_time)
        self._innovation = config.load_sigma * math.sqrt(
            max(0.0, 1.0 - self._decay * self._decay)
        )
        self._z = BlockStream(stream("cell.z"), normal_transform(), block)
        self._deviation = 0.0
        self.load = min(LOAD_MAX, max(LOAD_MIN, config.background_load))

    def update(self) -> None:
        self._deviation = self._deviation * self._decay + self._innovation * self._z.next()
        value = self._background + self._deviation
        self.load = min(LOAD_MAX, max(LOAD_MIN, value))


class CellLoadArray:
    """``(n_sessions,)`` vectorised twin of :class:`GridCellLoad`."""

    def __init__(self, configs, streams, block: int = 1024):
        from repro.sim.blocks import BlockStreamArray, normal_transform

        n = len(configs)
        self._background = np.array([c.background_load for c in configs])
        decay = np.array(
            [math.exp(-UPDATE_INTERVAL / c.load_corr_time) for c in configs]
        )
        self._decay = decay
        self._innovation = np.array(
            [
                c.load_sigma * math.sqrt(max(0.0, 1.0 - d * d))
                for c, d in zip(configs, decay.tolist())
            ]
        )
        self._z = BlockStreamArray(
            [streams[s]("cell.z") for s in range(n)],
            [normal_transform()] * n,
            block,
            aligned=True,
        )
        self._deviation = np.zeros(n)
        self.load = np.minimum(LOAD_MAX, np.maximum(LOAD_MIN, self._background))

    def update(self) -> None:
        z = self._z.take_all()
        self._deviation = self._deviation * self._decay + self._innovation * z
        value = self._background + self._deviation
        self.load = np.minimum(LOAD_MAX, np.maximum(LOAD_MIN, value))
