"""The sender's UE uplink: firmware buffer + grants + diag logging.

Runs one callback per 1 ms LTE subframe: asks the eNodeB scheduler for a
grant (based on the *delayed* buffer state the basestation knows via
BSR), drains the firmware buffer accordingly, hands completed packets to
the network after the radio latency, and logs the subframe into the
diagnostic monitor.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

import numpy as np

from repro.config import LteConfig
from repro.lte.channel import ChannelProcess
from repro.lte.competitors import make_cell_model
from repro.lte.diagnostics import DiagMonitor
from repro.lte.firmware_buffer import FirmwareBuffer
from repro.lte.scheduler import EnbScheduler
from repro.net.packet import Packet
from repro.sim.engine import Simulation
from repro.units import LTE_SUBFRAME

#: Signature of the downstream packet sink.
PacketSink = Callable[[Packet], None]


class UeUplink:
    """Subframe-level uplink pipeline for the video sender's phone."""

    def __init__(
        self,
        sim: Simulation,
        config: LteConfig,
        rng: np.random.Generator,
        sink: Optional[PacketSink] = None,
    ):
        self._sim = sim
        self._config = config
        self.channel = ChannelProcess(sim, config.channel, rng)
        self.cell = make_cell_model(sim, config.cell, rng)
        self.scheduler = EnbScheduler(config, self.channel, self.cell, rng)
        self.buffer = FirmwareBuffer(config.firmware_buffer_cap)
        self.diag = DiagMonitor(sim, config.diag_interval)
        self._sink = sink
        #: Ring of recent buffer levels implementing the BSR delay.
        depth = max(1, int(round(config.bsr_delay / LTE_SUBFRAME)))
        self._bsr_ring: Deque[float] = deque([0.0] * depth, maxlen=depth)
        self.bytes_sent = 0.0
        sim.every(LTE_SUBFRAME, self._subframe)

    def set_sink(self, sink: PacketSink) -> None:
        """Attach the downstream path receiving transmitted packets."""
        self._sink = sink

    def send(self, packet: Packet) -> bool:
        """Enqueue a paced RTP packet into the firmware buffer."""
        return self.buffer.push(packet)

    @property
    def buffer_level(self) -> float:
        """Current firmware-buffer occupancy in bytes."""
        return self.buffer.level

    def _subframe(self) -> None:
        reported = self._bsr_ring[0]
        self._bsr_ring.append(self.buffer.level)
        grant = self.scheduler.grant_for_subframe(reported, self.buffer.level)
        tbs = 0.0
        if grant > 0.0:
            before = self.buffer.level
            completed = self.buffer.drain(grant)
            tbs = before - self.buffer.level
            self.bytes_sent += tbs
            if self._sink is not None:
                for packet in completed:
                    self._sim.schedule(self._config.radio_latency, self._sink, packet)
        self.diag.record(self.buffer.level, tbs)
