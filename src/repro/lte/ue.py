"""The sender's UE uplink: firmware buffer + grants + diag logging.

Runs one callback per 1 ms LTE subframe: asks the eNodeB scheduler for a
grant (based on the *delayed* buffer state the basestation knows via
BSR), drains the firmware buffer accordingly, hands completed packets to
the network after the radio latency, and logs the subframe into the
diagnostic monitor.

When the firmware buffer is empty *and* every BSR slot still in flight
reports zero, a subframe is pure bookkeeping: the scheduler returns
before touching its RNG or burst state, and the only side effect is an
all-zero diag record.  The uplink therefore pauses its subframe process
(:meth:`Simulation.every_while`) until the next ``send``, and backfills
the zero records lazily — per-batch observables and the RNG stream are
bit-identical to an always-ticking UE.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

import numpy as np

from repro.config import LteConfig
from repro.lte.channel import ChannelProcess
from repro.lte.competitors import make_cell_model
from repro.lte.diagnostics import DiagMonitor
from repro.lte.firmware_buffer import FirmwareBuffer
from repro.lte.scheduler import EnbScheduler
from repro.net.packet import Packet
from repro.obs.bus import NULL_BUS
from repro.obs.meter import NULL_METER
from repro.sim.engine import Simulation
from repro.units import LTE_SUBFRAME

#: Signature of the downstream packet sink.
PacketSink = Callable[[Packet], None]


class UeUplink:
    """Subframe-level uplink pipeline for the video sender's phone."""

    def __init__(
        self,
        sim: Simulation,
        config: LteConfig,
        rng: np.random.Generator,
        sink: Optional[PacketSink] = None,
        trace=NULL_BUS,
        meter=NULL_METER,
    ):
        self._sim = sim
        self._config = config
        self._trace = trace
        self._meter = meter
        self.channel = ChannelProcess(sim, config.channel, rng, trace=trace, meter=meter)
        self.cell = make_cell_model(sim, config.cell, rng)
        self.scheduler = EnbScheduler(config, self.channel, self.cell, rng)
        self.buffer = FirmwareBuffer(config.firmware_buffer_cap)
        self.diag = DiagMonitor(sim, config.diag_interval, trace=trace, meter=meter)
        self._sink = sink
        #: Ring of recent buffer levels implementing the BSR delay.
        depth = max(1, int(round(config.bsr_delay / LTE_SUBFRAME)))
        self._bsr_ring: Deque[float] = deque([0.0] * depth, maxlen=depth)
        self.bytes_sent = 0.0
        # Bound-method fast paths for the once-per-millisecond loop.
        self._grant = self.scheduler.grant_for_subframe
        self._record = self.diag.record
        self._tick = sim.every_while(LTE_SUBFRAME, self._subframe)
        self.diag.set_idle_filler(self._fill_idle)

    def set_sink(self, sink: PacketSink) -> None:
        """Attach the downstream path receiving transmitted packets."""
        self._sink = sink

    def join_cell(self, cell):
        """Camp this UE on a shared cell (repro.lte.shared_cell).

        The UE's own cell-load model becomes the member's *background*
        component inside the shared cell; the scheduler is re-pointed at
        the member view so peer contention, PF catch-up weighting and
        the per-subframe PRB budget all apply.  Returns the view.
        """
        self.cell_view = cell.add_member(self)
        self.scheduler.set_cell(self.cell_view)
        return self.cell_view

    def send(self, packet: Packet) -> bool:
        """Enqueue a paced RTP packet into the firmware buffer."""
        accepted = self.buffer.push(packet)
        if not accepted:
            if self._trace:
                self._trace.emit(
                    "lte.drop", size_bytes=packet.size_bytes, level=self.buffer.level
                )
            if self._meter:
                self._meter.inc("lte.drops")
        if self._tick.paused:
            self._fill_idle(self._sim.now)
            self._tick.wake()
        return accepted

    def _fill_idle(self, until: float) -> None:
        """Backfill all-zero diag records for subframes skipped while idle."""
        tick = self._tick
        if not tick.paused:
            return
        record_at = self.diag.record_at
        while tick.next_time < until:
            record_at(tick.next_time, 0.0, 0.0)
            tick.skip()

    @property
    def buffer_level(self) -> float:
        """Current firmware-buffer occupancy in bytes."""
        return self.buffer.level

    def _subframe(self) -> bool:
        meter = self._meter
        t0 = meter.span_start() if meter else 0.0
        buffer = self.buffer
        ring = self._bsr_ring
        reported = ring[0]
        level = buffer.level
        ring.append(level)
        grant = self._grant(reported, level)
        tbs = 0.0
        if grant > 0.0:
            completed = buffer.drain(grant)
            tbs = level - buffer.level
            self.bytes_sent += tbs
            if self._sink is not None:
                schedule = self._sim.schedule
                latency = self._config.radio_latency
                sink = self._sink
                for packet in completed:
                    schedule(latency, sink, packet)
            level = buffer.level
        self._record(level, tbs)
        if self._trace:
            self._trace.emit("fw_buffer", level=level, tbs=tbs)
        if meter:
            meter.inc("lte.subframes")
            meter.span_end("lte.subframe", t0)
        # Keep ticking while any in-flight BSR slot or the buffer itself
        # is non-zero; otherwise pause until the next send() wakes us.
        return bool(level) or any(ring)


# ----------------------------------------------------------------------
# Lockstep twin (batched engine, repro.sim.batch)
# ----------------------------------------------------------------------

#: Shared empty completions list for subframes that serve nobody.
_NO_ROUNDS: list = []


class UeUplinkArray:
    """``(n_sessions,)`` vectorised twin of :class:`UeUplink`.

    Owns the per-session channel, cell-load, scheduler and firmware
    buffer arrays, plus the BSR delay ring.  The lockstep engine drives
    the cadenced processes (channel / cell updates) and calls
    :meth:`subframe` once per 1 ms tick; packet delivery latency is the
    engine's job (it knows the whole downstream path).
    """

    def __init__(self, configs, streams, block: int = 1024):
        from repro.lte.cell import CellLoadArray
        from repro.lte.channel import ChannelArray
        from repro.lte.firmware_buffer import FirmwareBufferArray
        from repro.lte.scheduler import SchedulerArray

        n = len(configs)
        self.channel = ChannelArray([c.channel for c in configs], streams, block)
        self.cell = CellLoadArray([c.cell for c in configs], streams, block)
        self.scheduler = SchedulerArray(configs, streams, block)
        self.buffer = FirmwareBufferArray(
            np.array([c.firmware_buffer_cap for c in configs])
        )
        depths = {
            max(1, int(round(c.bsr_delay / LTE_SUBFRAME))) for c in configs
        }
        if len(depths) != 1:
            raise ValueError("BSR delay must be cohort-homogeneous")
        self._bsr_depth = depths.pop()
        self._bsr_ring = np.zeros((n, self._bsr_depth))
        self._bsr_pos = 0
        self.bytes_sent = np.zeros(n)
        self._zero_tbs = np.zeros(n)

    def subframe(self, now: float, loads=None, cells=None):
        """One 1 ms subframe for every session.

        Returns ``(tbs, rounds)`` where ``rounds`` is the (possibly
        empty) list of :meth:`FirmwareBufferArray.drain_rows` completion
        rounds and ``tbs`` the per-session bytes granted this subframe
        (a shared zeros array when nobody was served — read-only).
        Post-drain levels are ``self.buffer.level``.

        ``loads``/``cells`` are the shared-cell hooks
        (:class:`repro.sim.batch_cell.BatchedCellSimulation`): ``loads``
        replaces each session's own cell-load model with its cell-member
        effective load, and ``cells`` (a
        :class:`~repro.lte.shared_cell.SharedCellArray`) routes every
        PRB grant through the per-cell budget claim pass.
        """
        ring = self._bsr_ring
        pos = self._bsr_pos
        reported = ring[:, pos].copy()
        level_before = ring[:, pos]
        np.copyto(level_before, self.buffer.level)
        self._bsr_pos = pos + 1 if pos + 1 < self._bsr_depth else 0
        cqi_positive, cqi = self.channel.cqi_state(now)
        load = self.cell.load if loads is None else loads
        rows, grants = self.scheduler.serve_subframe(
            reported, self.buffer.level, cqi, cqi_positive, load, cells=cells
        )
        if rows.size:
            rounds = self.buffer.drain_rows(rows, grants)
            tbs = level_before - self.buffer.level
            self.bytes_sent += tbs
        else:
            rounds = _NO_ROUNDS
            tbs = self._zero_tbs
        return tbs, rounds
