"""The UE's uplink firmware (modem) buffer.

RTP packets paced by the transport layer land here and wait for uplink
grants.  The buffer is drained byte-wise: a grant may carry the tail of
one packet and the head of the next; a packet "departs" when its last
byte is transmitted.  When the hard cap is exceeded the modem drops the
incoming packet (WebRTC's built-in loss handling deals with it
end-to-end, §4).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.net.packet import Packet


class FirmwareBuffer:
    """Byte-accurate FIFO with packet boundaries."""

    def __init__(self, capacity_bytes: float):
        self.capacity_bytes = float(capacity_bytes)
        self._queue: Deque[Tuple[Packet, float]] = deque()
        self._level = 0.0
        self.dropped_packets = 0
        self.dropped_bytes = 0.0

    @property
    def level(self) -> float:
        """Current occupancy in bytes."""
        return self._level

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, packet: Packet) -> bool:
        """Enqueue ``packet``; returns False (and drops it) if over cap."""
        if self._level + packet.size_bytes > self.capacity_bytes:
            self.dropped_packets += 1
            self.dropped_bytes += packet.size_bytes
            return False
        self._queue.append((packet, float(packet.size_bytes)))
        self._level += packet.size_bytes
        return True

    def drain(self, grant_bytes: float) -> List[Packet]:
        """Transmit up to ``grant_bytes``; return packets fully sent now.

        A packet completes when its remainder falls below a sub-byte
        epsilon — floating-point residue must never strand a packet in
        a buffer that reports itself empty (no backlog → no grants).
        """
        completed: List[Packet] = []
        remaining = min(grant_bytes, self._level)
        while remaining > 1e-12 and self._queue:
            packet, left = self._queue[0]
            take = min(left, remaining)
            left -= take
            remaining -= take
            self._level -= take
            if left <= 1e-9:
                self._queue.popleft()
                completed.append(packet)
            else:
                self._queue[0] = (packet, left)
        if not self._queue:
            self._level = 0.0
        return completed


# ----------------------------------------------------------------------
# Lockstep twin (batched engine, repro.sim.batch)
# ----------------------------------------------------------------------

import numpy as np

#: Packet slots per session in the batched ring.  The 64 KiB firmware
#: cap bounds the queue to well under this for any sane packet mix; a
#: pathological all-tiny-packet queue trips the explicit overflow check
#: rather than silently corrupting state.
_RING_SLOTS = 256


class FirmwareBufferArray:
    """``(n_sessions,)`` vectorised twin of :class:`FirmwareBuffer`.

    Packets live in per-session circular rings; draining runs in
    *rounds*, each round retiring at most one packet per session, so a
    multi-packet grant replays exactly the scalar head-of-line loop
    (same ``min``/epsilon arithmetic per packet, in the same order).
    Packet identity is carried as ``(frame_id, is_last)`` — all the
    lockstep receiver needs.
    """

    def __init__(self, capacities: np.ndarray):
        n = capacities.shape[0]
        self.capacity = capacities
        self._left = np.zeros((n, _RING_SLOTS))
        self._full = np.zeros((n, _RING_SLOTS))
        self._frame = np.full((n, _RING_SLOTS), -1, dtype=np.int64)
        self._last = np.zeros((n, _RING_SLOTS), dtype=bool)
        self._head = np.zeros(n, dtype=np.int64)
        self._count = np.zeros(n, dtype=np.int64)
        self.level = np.zeros(n)
        self.dropped_packets = np.zeros(n, dtype=np.int64)
        self.dropped_bytes = np.zeros(n)

    def push(
        self,
        idx: np.ndarray,
        sizes: np.ndarray,
        frames: np.ndarray,
        last: np.ndarray,
    ) -> np.ndarray:
        """Enqueue one packet per session in ``idx``; returns the
        accepted mask (aligned with ``idx``)."""
        over = self.level[idx] + sizes > self.capacity[idx]
        drop = idx[over]
        if drop.size:
            self.dropped_packets[drop] += 1
            self.dropped_bytes[drop] += sizes[over]
        accepted = ~over
        rows = idx[accepted]
        if rows.size:
            if (self._count[rows] >= _RING_SLOTS).any():
                raise RuntimeError("firmware packet ring overflow")
            cols = (self._head[rows] + self._count[rows]) % _RING_SLOTS
            self._left[rows, cols] = sizes[accepted]
            self._full[rows, cols] = sizes[accepted]
            self._frame[rows, cols] = frames[accepted]
            self._last[rows, cols] = last[accepted]
            self._count[rows] += 1
            self.level[rows] += sizes[accepted]
        return accepted

    def drain_rows(self, rows: np.ndarray, grants: np.ndarray):
        """Transmit up to ``grants[i]`` bytes for session ``rows[i]``.

        Returns a list of drain *rounds*, each ``(rows, frames, last,
        sizes)`` — parallel 1-D arrays, one entry per packet fully sent
        in that round.  Per-session packet order across rounds matches
        the scalar head-of-line loop.  Only the listed sessions are
        touched, so per-round work scales with the served set, not the
        cohort.
        """
        remaining = np.minimum(grants, self.level[rows])
        alive = (remaining > 1e-12) & (self._count[rows] > 0)
        if not alive.all():
            rows = rows[alive]
            remaining = remaining[alive]
        rounds = []
        while rows.size:
            heads = self._head[rows]
            left = self._left[rows, heads]
            take = np.minimum(left, remaining)
            np.subtract(left, take, out=left)
            np.subtract(remaining, take, out=remaining)
            self.level[rows] -= take
            # Unconditional write-back: popped slots carry a stale
            # sub-epsilon residue, but push() overwrites slots wholesale.
            self._left[rows, heads] = left
            done = left <= 1e-9
            pop_rows = rows[done]
            if not pop_rows.size:
                # A surviving head means the grant is exhausted (the
                # scalar loop's ``take == remaining`` exit).
                break
            pop_heads = heads[done]
            rounds.append(
                (
                    pop_rows,
                    self._frame[pop_rows, pop_heads],
                    self._last[pop_rows, pop_heads],
                    self._full[pop_rows, pop_heads],
                )
            )
            self._head[pop_rows] = (pop_heads + 1) % _RING_SLOTS
            cnt = self._count[pop_rows] - 1
            self._count[pop_rows] = cnt
            emptied = pop_rows[cnt == 0]
            if emptied.size:
                self.level[emptied] = 0.0
            remaining = remaining[done]
            cont = (remaining > 1e-12) & (cnt > 0)
            rows = pop_rows[cont]
            remaining = remaining[cont]
        return rounds

    def drain(self, grants: np.ndarray):
        """Transmit up to ``grants`` bytes per session.

        Returns ``(rows, frames, last, sizes)`` — parallel 1-D arrays,
        one entry per packet fully sent now, in head-of-line order per
        session (concatenated across drain rounds).
        """
        rounds = self.drain_rows(np.nonzero(grants > 0.0)[0], grants[grants > 0.0])
        if not rounds:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=bool),
                np.empty(0),
            )
        return tuple(np.concatenate(parts) for parts in zip(*rounds))
