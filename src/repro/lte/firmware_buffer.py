"""The UE's uplink firmware (modem) buffer.

RTP packets paced by the transport layer land here and wait for uplink
grants.  The buffer is drained byte-wise: a grant may carry the tail of
one packet and the head of the next; a packet "departs" when its last
byte is transmitted.  When the hard cap is exceeded the modem drops the
incoming packet (WebRTC's built-in loss handling deals with it
end-to-end, §4).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.net.packet import Packet


class FirmwareBuffer:
    """Byte-accurate FIFO with packet boundaries."""

    def __init__(self, capacity_bytes: float):
        self.capacity_bytes = float(capacity_bytes)
        self._queue: Deque[Tuple[Packet, float]] = deque()
        self._level = 0.0
        self.dropped_packets = 0
        self.dropped_bytes = 0.0

    @property
    def level(self) -> float:
        """Current occupancy in bytes."""
        return self._level

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, packet: Packet) -> bool:
        """Enqueue ``packet``; returns False (and drops it) if over cap."""
        if self._level + packet.size_bytes > self.capacity_bytes:
            self.dropped_packets += 1
            self.dropped_bytes += packet.size_bytes
            return False
        self._queue.append((packet, float(packet.size_bytes)))
        self._level += packet.size_bytes
        return True

    def drain(self, grant_bytes: float) -> List[Packet]:
        """Transmit up to ``grant_bytes``; return packets fully sent now.

        A packet completes when its remainder falls below a sub-byte
        epsilon — floating-point residue must never strand a packet in
        a buffer that reports itself empty (no backlog → no grants).
        """
        completed: List[Packet] = []
        remaining = min(grant_bytes, self._level)
        while remaining > 1e-12 and self._queue:
            packet, left = self._queue[0]
            take = min(left, remaining)
            left -= take
            remaining -= take
            self._level -= take
            if left <= 1e-9:
                self._queue.popleft()
                completed.append(packet)
            else:
                self._queue[0] = (packet, left)
        if not self._queue:
            self._level = 0.0
        return completed
