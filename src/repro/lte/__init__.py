"""LTE uplink substrate: channel, PF scheduler, firmware buffer, diag.

This package replaces the commercial LTE network + Nexus 5 modem used by
the paper's prototype with a subframe-level (1 ms) model whose emergent
behaviour reproduces the phenomena POI360 exploits:

- the proportional-fair uplink scheduler serves a UE at a rate that grows
  with its (reported) firmware-buffer backlog and saturates past a knee
  (paper Fig. 5),
- the modem exposes per-subframe buffer level and transport block size
  through a diagnostic interface read in 40 ms batches (MobileInsight).
"""

from repro.lte.channel import ChannelProcess
from repro.lte.cell import CellLoadProcess
from repro.lte.diagnostics import DiagMonitor, DiagRecord
from repro.lte.firmware_buffer import FirmwareBuffer
from repro.lte.scheduler import EnbScheduler
from repro.lte.tbs import bytes_per_prb, cqi_from_rss, efficiency_for_cqi
from repro.lte.ue import UeUplink

__all__ = [
    "ChannelProcess",
    "CellLoadProcess",
    "DiagMonitor",
    "DiagRecord",
    "FirmwareBuffer",
    "EnbScheduler",
    "UeUplink",
    "bytes_per_prb",
    "cqi_from_rss",
    "efficiency_for_cqi",
]
