"""Binary diag-log codec — the paper's "customized real-time log decoder".

The prototype reads the Qualcomm diagnostic port through a MobileInsight
-style decoder (§5): the modem emits framed binary records, a user-space
decoder parses them in real time and publishes (buffer level, TBS) to
shared memory.  This module reproduces that pipeline shape: it
serialises :class:`DiagRecord` batches into framed binary messages and
provides a *streaming* decoder that tolerates arbitrary chunking (the
diag port hands you bytes, not records).

Frame layout (little-endian)::

    magic   u16  = 0x10D0
    count   u16    records in this frame
    payload count * (f64 time_s, f32 buffer_bytes, f32 tbs_bytes)
    check   u16    sum of payload bytes mod 65536
"""

from __future__ import annotations

import struct
from typing import Iterable, List

from repro.lte.diagnostics import DiagRecord

MAGIC = 0x10D0
_HEADER = struct.Struct("<HH")
_RECORD = struct.Struct("<dff")
_CHECK = struct.Struct("<H")


class DiagLogError(ValueError):
    """Raised on a corrupt or out-of-sync log stream."""


def encode_frame(records: Iterable[DiagRecord]) -> bytes:
    """Serialise one batch of records into a framed binary message."""
    body = b"".join(
        _RECORD.pack(r.time, r.buffer_bytes, r.tbs_bytes) for r in records
    )
    count = len(body) // _RECORD.size
    if count > 0xFFFF:
        raise ValueError("frame too large")
    checksum = sum(body) % 65536
    return _HEADER.pack(MAGIC, count) + body + _CHECK.pack(checksum)


class StreamingDecoder:
    """Incremental decoder over an arbitrarily-chunked byte stream."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self.frames_decoded = 0

    def feed(self, chunk: bytes) -> List[DiagRecord]:
        """Consume bytes; return every record completed by this chunk."""
        self._buffer.extend(chunk)
        records: List[DiagRecord] = []
        while True:
            frame = self._try_frame()
            if frame is None:
                return records
            records.extend(frame)

    def _try_frame(self) -> "List[DiagRecord] | None":
        if len(self._buffer) < _HEADER.size:
            return None
        magic, count = _HEADER.unpack_from(self._buffer, 0)
        if magic != MAGIC:
            raise DiagLogError(f"bad magic 0x{magic:04x}: stream out of sync")
        total = _HEADER.size + count * _RECORD.size + _CHECK.size
        if len(self._buffer) < total:
            return None
        body = bytes(self._buffer[_HEADER.size : total - _CHECK.size])
        (checksum,) = _CHECK.unpack_from(self._buffer, total - _CHECK.size)
        if checksum != sum(body) % 65536:
            raise DiagLogError("checksum mismatch")
        del self._buffer[:total]
        self.frames_decoded += 1
        return [
            DiagRecord(time=t, buffer_bytes=b, tbs_bytes=s)
            for t, b, s in _RECORD.iter_unpack(body)
        ]

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


def decode_stream(data: bytes) -> List[DiagRecord]:
    """Decode a complete byte stream in one call."""
    decoder = StreamingDecoder()
    records = decoder.feed(data)
    if decoder.pending_bytes:
        raise DiagLogError(f"{decoder.pending_bytes} trailing bytes")
    return records
