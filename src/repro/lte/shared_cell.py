"""One eNodeB uplink cell shared by N POI360 callers (docs/FLEET.md).

A :class:`SharedCell` couples the member UEs of one cell through the
two quantities a proportional-fair uplink scheduler actually splits:

- **duty cycle** — every member's :class:`repro.lte.scheduler.EnbScheduler`
  reads its cell load through a :class:`CellMemberView`, and the view
  folds the *other* members' realized resource shares (an EWMA of the
  PRB fraction each one consumed) into the load it reports, on top of
  the background component.  A cell crowded with backlogged callers
  therefore shrinks everybody's scheduling probability and PRB grant,
  exactly as ``p = p_max * (1 - load)`` does for the abstract load;
- **PRBs per subframe** — a hard per-subframe budget
  (:attr:`repro.config.FleetConfig.prb_budget`).  Scheduled background
  UEs (:mod:`repro.lte.competitors`) claim their PRBs first, then each
  member's grant claims from the remainder, so a subframe can never
  hand out more transport-block capacity than the cell owns.

The view also applies a proportional-fair catch-up weight
``w = (mean_share / own_share) ** k`` (clamped): a member that has been
starved sees an optimistically *lower* load — higher duty cycle and
more PRBs — until its share recovers, while a hog is throttled.  This
is the negative feedback that makes N identical callers converge to
equal long-run grant shares (Jain index ≈ 1, ``tests/test_fleet.py``).

Degeneration contract: with one member and no scheduled background the
view returns the member's own background model value untouched, every
claim is granted in full, and the weight is exactly ``1.0`` — a 1-UE
cell reproduces the single-UE session **bit-exactly** (asserted in
``tests/test_fleet.py``).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.config import CellConfig, FleetConfig
from repro.sim.engine import Simulation
from repro.units import LTE_SUBFRAME

#: Loads are clamped into this range, matching the single-UE cell
#: models (a PF scheduler still serves backlogged UEs at full cell).
LOAD_MAX = 0.9

#: Share denominator guard; also the "never seen a grant" floor of the
#: PF weight ratio (a member with zero share is maximally boosted).
_SHARE_EPS = 1e-6


class _Member:
    """Per-caller state the cell tracks: realized share + fallback load."""

    __slots__ = ("fallback", "share", "last_update")

    def __init__(self, fallback):
        #: The member UE's own background-load model (``UeUplink.cell``)
        #: — the Gauss-Markov / competitor abstraction it would have
        #: consulted solo.  Used as the background component when the
        #: cell has no scheduled background population.
        self.fallback = fallback
        #: EWMA of the PRB fraction this member consumed per subframe.
        self.share = 0.0
        #: Simulated time of the last share decay/update.
        self.last_update = 0.0


class CellMemberView:
    """One member's window onto the shared cell.

    Duck-types the ``load`` property of
    :class:`repro.lte.cell.CellLoadProcess`, so the member's
    :class:`~repro.lte.scheduler.EnbScheduler` consumes it unchanged;
    additionally exposes :meth:`claim_prbs`, which the scheduler uses
    (when present) to draw PRBs from the cell's per-subframe budget.
    """

    __slots__ = ("_cell", "index")

    def __init__(self, cell: "SharedCell", index: int):
        self._cell = cell
        self.index = index

    @property
    def load(self) -> float:
        """Effective cell load this member's scheduler should see."""
        return self._cell.load_for(self.index, self._cell._sim._now)

    def claim_prbs(self, prbs: int) -> int:
        """Claim up to ``prbs`` from this subframe's remaining budget."""
        return self._cell.claim(self.index, prbs, self._cell._sim._now)


class SharedCell:
    """PF grant splitting across the POI360 callers camped on one cell."""

    def __init__(
        self,
        sim: Simulation,
        config: Optional[FleetConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        config = config if config is not None else FleetConfig()
        self._sim = sim
        self.config = config
        self._members: List[_Member] = []
        self._prb_budget = max(1, int(config.prb_budget))
        tau = max(LTE_SUBFRAME, config.share_time_constant)
        #: Per-subframe EWMA step of the realized-share tracker.
        self._alpha = 1.0 - math.exp(-LTE_SUBFRAME / tau)
        self._decay = 1.0 - self._alpha
        self._kappa = max(0.0, config.pf_weight_exponent)
        self._weight_max = max(1.0, config.pf_weight_max)
        #: Subframe the current budget belongs to, and PRBs left in it.
        self._budget_time = -1.0
        self._budget_left = self._prb_budget
        #: Aggregate-share snapshot (recomputed once per subframe).
        self._agg_time = -1.0
        self._agg_total = 0.0
        self.background = None
        if config.background_ues > 0:
            if rng is None:
                raise ValueError("scheduled background UEs need an rng stream")
            from repro.lte.competitors import CompetitorCell

            # The background crowd is *scheduled load*: its on/off
            # population produces a load fraction, and the cell converts
            # that fraction into PRBs claimed from the shared budget
            # ahead of the members each subframe.
            self.background = CompetitorCell(
                sim,
                CellConfig(
                    background_load=config.background_load,
                    competitor_count=config.background_ues,
                ),
                rng,
            )

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_member(self, ue) -> CellMemberView:
        """Register a caller's UE; returns its view onto the cell.

        Normally called through :meth:`repro.lte.ue.UeUplink.join_cell`,
        which also rewires the UE's scheduler onto the view.
        """
        index = len(self._members)
        self._members.append(_Member(fallback=ue.cell))
        return CellMemberView(self, index)

    @property
    def members(self) -> int:
        """Number of callers camped on this cell."""
        return len(self._members)

    # ------------------------------------------------------------------
    # Share bookkeeping
    # ------------------------------------------------------------------

    def _decay_to(self, member: _Member, now: float) -> float:
        """Lazily decay a member's share EWMA to ``now`` and return it.

        Idle or unserved subframes contribute zero share, so catching a
        member up is a pure exponential decay over the elapsed
        subframes — no per-tick work for paused uplinks.
        """
        elapsed = now - member.last_update
        if elapsed > 0.0:
            ticks = int(round(elapsed / LTE_SUBFRAME))
            if ticks > 0:
                member.share *= self._decay**ticks
            member.last_update = now
        return member.share

    def _aggregate(self, now: float) -> float:
        """Total decayed share across members (cached per subframe)."""
        if now != self._agg_time:
            total = 0.0
            for member in self._members:
                total += self._decay_to(member, now)
            self._agg_total = total
            self._agg_time = now
        return self._agg_total

    def share_of(self, index: int, now: Optional[float] = None) -> float:
        """A member's current realized resource share (introspection)."""
        now = self._sim._now if now is None else now
        return self._decay_to(self._members[index], now)

    def pf_weight(self, index: int, now: Optional[float] = None) -> float:
        """The PF catch-up weight a member currently enjoys.

        ``(mean_share / own_share) ** pf_weight_exponent``, clamped into
        ``[1/pf_weight_max, pf_weight_max]``; exactly ``1.0`` for a
        lone member (shares cancel), for perfectly equal shares, or
        when the exponent is zero.
        """
        now = self._sim._now if now is None else now
        total = self._aggregate(now)
        count = len(self._members)
        if count <= 1:
            return 1.0
        mine = self._members[index].share
        ratio = (total / count + _SHARE_EPS) / (mine + _SHARE_EPS)
        weight = ratio**self._kappa
        if weight > self._weight_max:
            return self._weight_max
        floor = 1.0 / self._weight_max
        if weight < floor:
            return floor
        return weight

    # ------------------------------------------------------------------
    # What a member's scheduler sees
    # ------------------------------------------------------------------

    def background_load(self, index: int) -> float:
        """The background component of a member's load view."""
        if self.background is not None:
            return self.background.load
        return self._members[index].fallback.load

    def load_for(self, index: int, now: float) -> float:
        """Effective load for member ``index`` at ``now``.

        ``background + sum(peer shares)``, then shrunk (grown) by the
        member's PF weight: ``1 - w * (1 - raw)``.  The weight branch is
        skipped when ``w == 1.0`` so a lone member sees its background
        model's value bit-for-bit.
        """
        total = self._aggregate(now)
        member = self._members[index]
        peers = total - member.share
        if peers < 0.0:
            # A claim bumped this member's share after the aggregate
            # snapshot was taken this subframe; peers cannot be negative.
            peers = 0.0
        raw = self.background_load(index) + peers
        if raw > LOAD_MAX:
            raw = LOAD_MAX
        weight = self.pf_weight(index, now)
        if weight != 1.0:
            boosted = 1.0 - weight * (1.0 - raw)
            if boosted < 0.0:
                return 0.0
            if boosted > LOAD_MAX:
                return LOAD_MAX
            return boosted
        return raw

    # ------------------------------------------------------------------
    # Per-subframe PRB budget
    # ------------------------------------------------------------------

    def _start_subframe(self, now: float) -> None:
        budget = self._prb_budget
        if self.background is not None:
            # Scheduled background traffic claims its PRBs ahead of the
            # members: the crowd's load fraction, in whole PRBs.
            budget -= int(round(self._prb_budget * self.background.load))
            if budget < 0:
                budget = 0
        self._budget_left = budget
        self._budget_time = now

    def claim(self, index: int, prbs: int, now: float) -> int:
        """Grant up to ``prbs`` PRBs from this subframe's budget.

        The first claim of a subframe resets the budget (minus the
        scheduled background's take); later claims within the same
        subframe see only what is left.  Within a subframe, members are
        served in event order (attach order) — long-run fairness is the
        PF coupling's job, not the intra-subframe order's.
        """
        if now != self._budget_time:
            self._start_subframe(now)
        granted = prbs if prbs <= self._budget_left else self._budget_left
        if granted > 0:
            self._budget_left -= granted
            member = self._members[index]
            self._decay_to(member, now)
            member.share += self._alpha * (granted / self._prb_budget)
        return granted
