"""One eNodeB uplink cell shared by N POI360 callers (docs/FLEET.md).

A :class:`SharedCell` couples the member UEs of one cell through the
two quantities a proportional-fair uplink scheduler actually splits:

- **duty cycle** — every member's :class:`repro.lte.scheduler.EnbScheduler`
  reads its cell load through a :class:`CellMemberView`, and the view
  folds the *other* members' realized resource shares (an EWMA of the
  PRB fraction each one consumed) into the load it reports, on top of
  the background component.  A cell crowded with backlogged callers
  therefore shrinks everybody's scheduling probability and PRB grant,
  exactly as ``p = p_max * (1 - load)`` does for the abstract load;
- **PRBs per subframe** — a hard per-subframe budget
  (:attr:`repro.config.FleetConfig.prb_budget`).  Scheduled background
  UEs (:mod:`repro.lte.competitors`) claim their PRBs first, then each
  member's grant claims from the remainder, so a subframe can never
  hand out more transport-block capacity than the cell owns.

The view also applies a proportional-fair catch-up weight
``w = (mean_share / own_share) ** k`` (clamped): a member that has been
starved sees an optimistically *lower* load — higher duty cycle and
more PRBs — until its share recovers, while a hog is throttled.  This
is the negative feedback that makes N identical callers converge to
equal long-run grant shares (Jain index ≈ 1, ``tests/test_fleet.py``).

Degeneration contract: with one member and no scheduled background the
view returns the member's own background model value untouched, every
claim is granted in full, and the weight is exactly ``1.0`` — a 1-UE
cell reproduces the single-UE session **bit-exactly** (asserted in
``tests/test_fleet.py``).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.config import CellConfig, FleetConfig
from repro.sim.engine import Simulation
from repro.units import LTE_SUBFRAME

#: Loads are clamped into this range, matching the single-UE cell
#: models (a PF scheduler still serves backlogged UEs at full cell).
LOAD_MAX = 0.9

#: Share denominator guard; also the "never seen a grant" floor of the
#: PF weight ratio (a member with zero share is maximally boosted).
_SHARE_EPS = 1e-6


class _Member:
    """Per-caller state the cell tracks: realized share + fallback load."""

    __slots__ = ("fallback", "share", "last_update")

    def __init__(self, fallback):
        #: The member UE's own background-load model (``UeUplink.cell``)
        #: — the Gauss-Markov / competitor abstraction it would have
        #: consulted solo.  Used as the background component when the
        #: cell has no scheduled background population.
        self.fallback = fallback
        #: EWMA of the PRB fraction this member consumed per subframe.
        self.share = 0.0
        #: Simulated time of the last share decay/update.
        self.last_update = 0.0


class CellMemberView:
    """One member's window onto the shared cell.

    Duck-types the ``load`` property of
    :class:`repro.lte.cell.CellLoadProcess`, so the member's
    :class:`~repro.lte.scheduler.EnbScheduler` consumes it unchanged;
    additionally exposes :meth:`claim_prbs`, which the scheduler uses
    (when present) to draw PRBs from the cell's per-subframe budget.
    """

    __slots__ = ("_cell", "index")

    def __init__(self, cell: "SharedCell", index: int):
        self._cell = cell
        self.index = index

    @property
    def load(self) -> float:
        """Effective cell load this member's scheduler should see."""
        return self._cell.load_for(self.index, self._cell._sim._now)

    def claim_prbs(self, prbs: int) -> int:
        """Claim up to ``prbs`` from this subframe's remaining budget."""
        return self._cell.claim(self.index, prbs, self._cell._sim._now)


class SharedCell:
    """PF grant splitting across the POI360 callers camped on one cell."""

    def __init__(
        self,
        sim: Simulation,
        config: Optional[FleetConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        config = config if config is not None else FleetConfig()
        self._sim = sim
        self.config = config
        self._members: List[_Member] = []
        self._prb_budget = max(1, int(config.prb_budget))
        tau = max(LTE_SUBFRAME, config.share_time_constant)
        #: Per-subframe EWMA step of the realized-share tracker.
        self._alpha = 1.0 - math.exp(-LTE_SUBFRAME / tau)
        self._decay = 1.0 - self._alpha
        self._kappa = max(0.0, config.pf_weight_exponent)
        self._weight_max = max(1.0, config.pf_weight_max)
        #: Subframe the current budget belongs to, and PRBs left in it.
        self._budget_time = -1.0
        self._budget_left = self._prb_budget
        #: Aggregate-share snapshot (recomputed once per subframe).
        self._agg_time = -1.0
        self._agg_total = 0.0
        self.background = None
        if config.background_ues > 0:
            if rng is None:
                raise ValueError("scheduled background UEs need an rng stream")
            from repro.lte.competitors import CompetitorCell

            # The background crowd is *scheduled load*: its on/off
            # population produces a load fraction, and the cell converts
            # that fraction into PRBs claimed from the shared budget
            # ahead of the members each subframe.
            self.background = CompetitorCell(
                sim,
                CellConfig(
                    background_load=config.background_load,
                    competitor_count=config.background_ues,
                ),
                rng,
            )

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add_member(self, ue) -> CellMemberView:
        """Register a caller's UE; returns its view onto the cell.

        Normally called through :meth:`repro.lte.ue.UeUplink.join_cell`,
        which also rewires the UE's scheduler onto the view.
        """
        index = len(self._members)
        self._members.append(_Member(fallback=ue.cell))
        return CellMemberView(self, index)

    @property
    def members(self) -> int:
        """Number of callers camped on this cell."""
        return len(self._members)

    # ------------------------------------------------------------------
    # Share bookkeeping
    # ------------------------------------------------------------------

    def _decay_to(self, member: _Member, now: float) -> float:
        """Lazily decay a member's share EWMA to ``now`` and return it.

        Idle or unserved subframes contribute zero share, so catching a
        member up is a pure exponential decay over the elapsed
        subframes — no per-tick work for paused uplinks.
        """
        elapsed = now - member.last_update
        if elapsed > 0.0:
            ticks = int(round(elapsed / LTE_SUBFRAME))
            if ticks > 0:
                member.share *= self._decay**ticks
            member.last_update = now
        return member.share

    def _aggregate(self, now: float) -> float:
        """Total decayed share across members (cached per subframe)."""
        if now != self._agg_time:
            total = 0.0
            for member in self._members:
                total += self._decay_to(member, now)
            self._agg_total = total
            self._agg_time = now
        return self._agg_total

    def share_of(self, index: int, now: Optional[float] = None) -> float:
        """A member's current realized resource share (introspection)."""
        now = self._sim._now if now is None else now
        return self._decay_to(self._members[index], now)

    def pf_weight(self, index: int, now: Optional[float] = None) -> float:
        """The PF catch-up weight a member currently enjoys.

        ``(mean_share / own_share) ** pf_weight_exponent``, clamped into
        ``[1/pf_weight_max, pf_weight_max]``; exactly ``1.0`` for a
        lone member (shares cancel), for perfectly equal shares, or
        when the exponent is zero.
        """
        now = self._sim._now if now is None else now
        total = self._aggregate(now)
        count = len(self._members)
        if count <= 1:
            return 1.0
        mine = self._members[index].share
        ratio = (total / count + _SHARE_EPS) / (mine + _SHARE_EPS)
        weight = ratio**self._kappa
        if weight > self._weight_max:
            return self._weight_max
        floor = 1.0 / self._weight_max
        if weight < floor:
            return floor
        return weight

    # ------------------------------------------------------------------
    # What a member's scheduler sees
    # ------------------------------------------------------------------

    def background_load(self, index: int) -> float:
        """The background component of a member's load view."""
        if self.background is not None:
            return self.background.load
        return self._members[index].fallback.load

    def load_for(self, index: int, now: float) -> float:
        """Effective load for member ``index`` at ``now``.

        ``background + sum(peer shares)``, then shrunk (grown) by the
        member's PF weight: ``1 - w * (1 - raw)``.  The weight branch is
        skipped when ``w == 1.0`` so a lone member sees its background
        model's value bit-for-bit.
        """
        total = self._aggregate(now)
        member = self._members[index]
        peers = total - member.share
        if peers < 0.0:
            # A claim bumped this member's share after the aggregate
            # snapshot was taken this subframe; peers cannot be negative.
            peers = 0.0
        raw = self.background_load(index) + peers
        if raw > LOAD_MAX:
            raw = LOAD_MAX
        weight = self.pf_weight(index, now)
        if weight != 1.0:
            boosted = 1.0 - weight * (1.0 - raw)
            if boosted < 0.0:
                return 0.0
            if boosted > LOAD_MAX:
                return LOAD_MAX
            return boosted
        return raw

    # ------------------------------------------------------------------
    # Per-subframe PRB budget
    # ------------------------------------------------------------------

    def _start_subframe(self, now: float) -> None:
        budget = self._prb_budget
        if self.background is not None:
            # Scheduled background traffic claims its PRBs ahead of the
            # members: the crowd's load fraction, in whole PRBs.
            budget -= int(round(self._prb_budget * self.background.load))
            if budget < 0:
                budget = 0
        self._budget_left = budget
        self._budget_time = now

    def claim(self, index: int, prbs: int, now: float) -> int:
        """Grant up to ``prbs`` PRBs from this subframe's budget.

        The first claim of a subframe resets the budget (minus the
        scheduled background's take); later claims within the same
        subframe see only what is left.  Within a subframe, members are
        served in event order (attach order) — long-run fairness is the
        PF coupling's job, not the intra-subframe order's.
        """
        if now != self._budget_time:
            self._start_subframe(now)
        granted = prbs if prbs <= self._budget_left else self._budget_left
        if granted > 0:
            self._budget_left -= granted
            member = self._members[index]
            self._decay_to(member, now)
            member.share += self._alpha * (granted / self._prb_budget)
        return granted


# ----------------------------------------------------------------------
# Lockstep twins (batched engine, repro.sim.batch_cell)
# ----------------------------------------------------------------------

#: Background-crowd update cadence on the 1 ms grid (subframes).
_BG_TICKS = int(round(0.05 / LTE_SUBFRAME))  # competitors.UPDATE_INTERVAL


def _background_crowd(config: FleetConfig):
    """The cell's scheduled background population, or ``None``.

    Both grid twins build the crowd identically — same
    :class:`~repro.lte.competitors.GridCompetitorCell`, same
    ``fleet.background`` rng stream derived from ``config.seed`` — so
    the scalar and batched engines consume bit-identical background
    loads by construction.
    """
    if config.background_ues <= 0:
        return None
    from repro.lte.competitors import GridCompetitorCell
    from repro.sim.rng import RngRegistry

    return GridCompetitorCell(
        CellConfig(
            background_load=config.background_load,
            competitor_count=config.background_ues,
        ),
        RngRegistry(config.seed).stream("fleet.background"),
    )


class GridCellMemberView:
    """Grid twin of :class:`CellMemberView` (duck-typed ``load`` +
    ``claim_prbs``, clocked by the cell's ``begin_tick`` instead of the
    event engine's ``sim._now``)."""

    __slots__ = ("_cell", "index")

    def __init__(self, cell: "GridSharedCell", index: int):
        self._cell = cell
        self.index = index

    @property
    def load(self) -> float:
        return self._cell.load_for(self.index)

    def claim_prbs(self, prbs: int) -> int:
        return self._cell.claim(self.index, prbs)


class GridSharedCell:
    """Grid-scalar twin of :class:`SharedCell`: the bit-exactness
    reference for the batched :class:`SharedCellArray`.

    The event-driven :class:`SharedCell` decays shares lazily and resets
    its budget on the first claim of a subframe; on the lockstep grid a
    driver (:class:`repro.telephony.uplink.UplinkCellSession`) calls
    :meth:`begin_tick` once per 1 ms tick, which updates the background
    crowd at its cadence, decays every share eagerly by one subframe,
    snapshots the aggregate left-to-right, and resets the PRB budget
    (minus the background's pre-claim).  Because every member queries
    its load every tick, the eager per-tick decay performs exactly the
    ``ticks == 1`` case of the lazy ``decay ** ticks`` catch-up.
    """

    __slots__ = (
        "config", "background", "_prb_budget", "_alpha", "_decay",
        "_kappa", "_weight_max", "_fallbacks", "_shares", "_total",
        "_budget_left", "_now",
    )

    def __init__(self, config: Optional[FleetConfig] = None):
        config = config if config is not None else FleetConfig()
        self.config = config
        self._prb_budget = max(1, int(config.prb_budget))
        tau = max(LTE_SUBFRAME, config.share_time_constant)
        self._alpha = 1.0 - math.exp(-LTE_SUBFRAME / tau)
        self._decay = 1.0 - self._alpha
        self._kappa = max(0.0, config.pf_weight_exponent)
        self._weight_max = max(1.0, config.pf_weight_max)
        #: Per-member fallback load models (``GridCellLoad``) + shares.
        self._fallbacks: list = []
        self._shares: List[float] = []
        self._total = 0.0
        self._budget_left = self._prb_budget
        self._now = 0.0
        self.background = _background_crowd(config)

    def add_member(self, fallback) -> GridCellMemberView:
        """Register a member; ``fallback`` is its own cell-load model."""
        index = len(self._shares)
        self._fallbacks.append(fallback)
        self._shares.append(0.0)
        return GridCellMemberView(self, index)

    @property
    def members(self) -> int:
        return len(self._shares)

    @property
    def budget_left(self) -> int:
        """PRBs still grantable this subframe (introspection)."""
        return self._budget_left

    def begin_tick(self, k: int, now: float) -> None:
        """Advance the cell to tick ``k``: background, decay, budget."""
        self._now = now
        background = self.background
        if background is not None and k % _BG_TICKS == 0:
            background.update(now)
        decay = self._decay
        shares = self._shares
        total = 0.0
        for index in range(len(shares)):
            share = shares[index] * decay
            shares[index] = share
            total += share
        self._total = total
        budget = self._prb_budget
        if background is not None:
            budget -= int(round(self._prb_budget * background.load))
            if budget < 0:
                budget = 0
        self._budget_left = budget

    def pf_weight(self, index: int) -> float:
        """PF catch-up weight — :meth:`SharedCell.pf_weight` arithmetic,
        with the power routed through the numpy float64 ufunc so the
        scalar value equals :class:`SharedCellArray`'s elementwise
        ``np.power`` bit-for-bit (the repo's numpy-ufunc-routed-scalars
        idiom, see ``ReceiverState.finalise``)."""
        count = len(self._shares)
        if count <= 1:
            return 1.0
        mine = self._shares[index]
        ratio = (self._total / count + _SHARE_EPS) / (mine + _SHARE_EPS)
        weight = float(np.power(np.float64(ratio), self._kappa))
        if weight > self._weight_max:
            return self._weight_max
        floor = 1.0 / self._weight_max
        if weight < floor:
            return floor
        return weight

    def load_for(self, index: int) -> float:
        """Effective load for member ``index`` this tick — the same
        composition as :meth:`SharedCell.load_for`, reading the
        per-tick aggregate snapshot."""
        share = self._shares[index]
        peers = self._total - share
        if peers < 0.0:
            peers = 0.0
        background = self.background
        if background is not None:
            base = background.load
        else:
            base = self._fallbacks[index].load
        raw = base + peers
        if raw > LOAD_MAX:
            raw = LOAD_MAX
        weight = self.pf_weight(index)
        if weight != 1.0:
            boosted = 1.0 - weight * (1.0 - raw)
            if boosted < 0.0:
                return 0.0
            if boosted > LOAD_MAX:
                return LOAD_MAX
            return boosted
        return raw

    def claim(self, index: int, prbs: int) -> int:
        """Grant up to ``prbs`` from this tick's remaining budget."""
        granted = prbs if prbs <= self._budget_left else self._budget_left
        if granted > 0:
            self._budget_left -= granted
            self._shares[index] += self._alpha * (granted / self._prb_budget)
        return granted


class SharedCellArray:
    """``(C cells, N members)`` vectorised twin of :class:`GridSharedCell`.

    One :meth:`member_loads` call per 1 ms tick advances **every** cell:
    background crowds update at their cadence (scalar per-cell Python —
    the crowd flips at 20 Hz, off the hot path), share EWMAs decay as
    one ``(C, N)`` multiply, the per-cell aggregates accumulate
    column-by-column (left-to-right, matching the scalar member loop's
    float association), and the load composition — peers, background,
    clamp, PF catch-up weight ``((mean+eps)/(share+eps)) ** kappa``
    row-wise — runs as whole-array ops.  :meth:`claim_rows` replaces the
    members' sequential budget claims with an order-preserving segmented
    prefix-sum pass (see the method docstring for the equivalence
    argument).  Flattened member order is cell-major — identical to the
    flat cohort order of :class:`repro.sim.batch_cell.
    BatchedCellSimulation`.
    """

    def __init__(self, fleets, members: int, fallback):
        fleets = list(fleets)
        if not fleets:
            raise ValueError("at least one cell required")
        if members < 1:
            raise ValueError("cells need at least one member")
        c = len(fleets)
        self._c = c
        self._n = members
        self.fleets = fleets
        #: The flat cohort's own per-session cell-load models
        #: (``CellLoadArray``) — each member's background fallback.
        self._fallback = fallback
        self._shares = np.zeros((c, members))
        prb = np.array([max(1, int(f.prb_budget)) for f in fleets], dtype=np.float64)
        self._prb_budget = prb
        alpha = np.array(
            [
                1.0 - math.exp(-LTE_SUBFRAME / max(LTE_SUBFRAME, f.share_time_constant))
                for f in fleets
            ]
        )
        self._alpha = alpha
        self._decay_col = (1.0 - alpha)[:, None]
        self._kappa_col = np.array([max(0.0, f.pf_weight_exponent) for f in fleets])[
            :, None
        ]
        wmax = np.array([max(1.0, f.pf_weight_max) for f in fleets])
        self._wmax_col = wmax[:, None]
        self._wfloor_col = (1.0 / wmax)[:, None]
        self._backgrounds = [_background_crowd(f) for f in fleets]
        self._has_bg = any(bg is not None for bg in self._backgrounds)
        self._bg_mask = np.array([bg is not None for bg in self._backgrounds])
        self._bg_load = np.array(
            [0.0 if bg is None else bg.load for bg in self._backgrounds]
        )
        self._budget_left = prb.copy()
        self._total = np.zeros(c)

    @property
    def cells(self) -> int:
        return self._c

    @property
    def budget_left(self) -> np.ndarray:
        """Per-cell PRBs still grantable this subframe (introspection)."""
        return self._budget_left

    def member_loads(self, k: int, now: float) -> np.ndarray:
        """Advance every cell to tick ``k``; flat ``(C*N,)`` loads.

        Performs, for all cells at once, exactly what
        :meth:`GridSharedCell.begin_tick` + N ``load_for`` calls do —
        the scalar reference computes every member's load from the same
        per-tick share snapshot (claims bump only the claimer's *own*
        share, which no later member's load reads), so the phase-major
        evaluation here is order-equivalent to the scalar member-major
        one.
        """
        if self._has_bg and k % _BG_TICKS == 0:
            bg_load = self._bg_load
            for index, bg in enumerate(self._backgrounds):
                if bg is not None:
                    bg.update(now)
                    bg_load[index] = bg.load
        shares = self._shares
        shares *= self._decay_col
        total = self._total
        total.fill(0.0)
        for j in range(self._n):
            total += shares[:, j]
        # Budget reset minus the background pre-claim; ``np.rint`` is
        # the scalar ``int(round(...))`` (both round half-even).
        np.maximum(
            0.0,
            self._prb_budget - np.rint(self._prb_budget * self._bg_load),
            out=self._budget_left,
        )
        # Background component: each member's own fallback model, or
        # the cell's crowd where one is scheduled.
        base = self._fallback.load.reshape(self._c, self._n)
        if self._has_bg:
            base = base.copy()
            base[self._bg_mask, :] = self._bg_load[self._bg_mask, None]
        peers = total[:, None] - shares
        np.maximum(peers, 0.0, out=peers)
        raw = base + peers
        np.minimum(raw, LOAD_MAX, out=raw)
        if self._n <= 1:
            return raw.reshape(-1)
        ratio = (total[:, None] / self._n + _SHARE_EPS) / (shares + _SHARE_EPS)
        weight = np.power(ratio, self._kappa_col)
        np.minimum(weight, self._wmax_col, out=weight)
        np.maximum(weight, self._wfloor_col, out=weight)
        boosted = 1.0 - weight * (1.0 - raw)
        np.minimum(boosted, LOAD_MAX, out=boosted)
        np.maximum(boosted, 0.0, out=boosted)
        loads = np.where(weight == 1.0, raw, boosted)
        return loads.reshape(-1)

    def claim_rows(self, rows: np.ndarray, prbs: np.ndarray) -> np.ndarray:
        """Vectorised, order-preserving budget claims for served rows.

        ``rows`` are flat session indices in ascending order (cell-major,
        as ``np.nonzero`` yields them), ``prbs`` the demands.  The
        sequential semantics — each member grabs
        ``min(demand, remaining)`` in attach order — equal
        ``min(demand_i, max(0, budget - sum(demand_j, j<i in cell)))``:
        while the budget lasts, grants == demands so the prefix sums
        agree; at the first shortfall the formula hands out exactly the
        remainder, and every later claim sees a non-positive remainder
        and gets zero.  Demands and budgets are small exact integers in
        float64, so the prefix sums are exact.
        """
        cells = rows // self._n
        csum = np.cumsum(prbs)
        before = csum - prbs
        first = np.empty(rows.size, dtype=bool)
        first[0] = True
        np.not_equal(cells[1:], cells[:-1], out=first[1:])
        segment = np.cumsum(first) - 1
        before -= before[np.nonzero(first)[0]][segment]
        grants = self._budget_left[cells] - before
        np.minimum(grants, prbs, out=grants)
        np.maximum(grants, 0.0, out=grants)
        self._budget_left -= np.bincount(cells, weights=grants, minlength=self._c)
        positive = grants > 0.0
        if positive.any():
            prows = rows[positive]
            pcells = cells[positive]
            flat = self._shares.reshape(-1)
            flat[prows] += self._alpha[pcells] * (
                grants[positive] / self._prb_budget[pcells]
            )
        return grants
