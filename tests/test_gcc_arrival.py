"""GCC packet grouping and trendline estimation."""

import pytest

from repro.rate_control.gcc.arrival import InterGroupFilter, TrendlineEstimator


def test_packets_within_burst_grouped():
    filt = InterGroupFilter(burst_interval=0.005)
    assert filt.on_packet(0.000, 0.050, 1200) is None
    assert filt.on_packet(0.003, 0.052, 1200) is None  # same send burst
    # New group: previous completes, but there is no earlier group to
    # difference against yet.
    assert filt.on_packet(0.010, 0.060, 1200) is None
    result = filt.on_packet(0.020, 0.070, 1200)
    assert result is not None


def test_delay_delta_zero_for_constant_latency():
    filt = InterGroupFilter(burst_interval=0.005)
    deltas = []
    for index in range(10):
        send = index * 0.010
        result = filt.on_packet(send, send + 0.050, 1200)
        if result:
            deltas.append(result[0])
    assert all(abs(d) < 1e-9 for d in deltas)


def test_delay_delta_positive_when_queue_builds():
    filt = InterGroupFilter(burst_interval=0.005)
    deltas = []
    for index in range(10):
        send = index * 0.010
        arrival = send + 0.050 + index * 0.004  # 4 ms extra queue per group
        result = filt.on_packet(send, arrival, 1200)
        if result:
            deltas.append(result[0])
    assert all(d == pytest.approx(0.004) for d in deltas)


def test_arrival_burst_merged_into_group():
    """Packets draining back-to-back after a scheduler idle gap must not
    register as a delay spike (WebRTC's BelongsToBurst)."""
    filt = InterGroupFilter(burst_interval=0.005)
    filt.on_packet(0.000, 0.050, 1200)
    # Sent 20 ms later but arriving 1 ms later: queued behind the first
    # during an idle gap, drained in a burst.
    assert filt.on_packet(0.020, 0.051, 1200) is None


def test_trendline_zero_for_flat_delays():
    trend = TrendlineEstimator(window=20, gain=4.0)
    values = [trend.update(0.0, t * 0.01) for t in range(1, 40)]
    assert abs(values[-1]) < 1e-9


def test_trendline_positive_for_growing_delay():
    trend = TrendlineEstimator(window=20, gain=4.0)
    value = 0.0
    for t in range(1, 60):
        value = trend.update(0.002, t * 0.01)
    assert value > 1.0


def test_trendline_negative_for_draining_queue():
    trend = TrendlineEstimator(window=20, gain=4.0)
    value = 0.0
    for t in range(1, 60):
        value = trend.update(-0.002, t * 0.01)
    assert value < -1.0
