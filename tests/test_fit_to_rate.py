"""POI360's rate-constrained mode selection (fit_to_rate)."""

import pytest

from repro.compression.poi360 import AdaptiveCompression
from repro.config import CompressionConfig, VideoConfig
from repro.sim.rng import RngRegistry
from repro.units import mbps
from repro.video.content import ContentModel
from repro.video.encoder import FrameEncoder
from repro.video.frame import TileGrid


@pytest.fixture
def encoder(grid, video_config):
    rng = RngRegistry(4)
    content = ContentModel(grid, rng.stream("content"))
    return FrameEncoder(video_config, grid, content, rng.stream("encoder"))


@pytest.fixture
def scheme(compression_config, grid):
    return AdaptiveCompression(compression_config, grid)


def test_floor_rate_scales_with_pixels(encoder, scheme, grid):
    scheme.update_mismatch(0.05)
    aggressive = scheme.matrix((0, 4))
    scheme.update_mismatch(5.0)
    conservative = scheme.matrix((0, 4))
    assert encoder.floor_rate(conservative) > encoder.floor_rate(aggressive)


def test_generous_rate_leaves_mode_alone(encoder, scheme):
    scheme.update_mismatch(5.0)  # desire mode 8
    scheme.fit_to_rate(mbps(50.0), encoder.floor_rate)
    assert scheme.current_mode.index == 8
    assert scheme.rate_clamp_events == 0


def test_starving_rate_clamps_conservative_desire(encoder, scheme):
    scheme.update_mismatch(5.0)  # desire mode 8
    scheme.fit_to_rate(mbps(1.2), encoder.floor_rate)
    assert scheme.current_mode.index < 8
    assert scheme.rate_clamp_events == 1
    # The chosen mode actually fits.
    matrix = scheme.matrix((0, 4))
    assert encoder.floor_rate(matrix) <= scheme.RATE_FIT_MARGIN * mbps(1.2)


def test_extreme_starvation_uses_emergency_crop(encoder, scheme):
    scheme.update_mismatch(0.05)
    scheme.fit_to_rate(mbps(0.4), encoder.floor_rate)
    assert scheme.current_mode.index == 0
    assert scheme.current_mode.plateau == (0, 0)


def test_cap_releases_when_rate_recovers(encoder, scheme):
    scheme.update_mismatch(5.0)
    scheme.fit_to_rate(mbps(1.0), encoder.floor_rate)
    clamped = scheme.current_mode.index
    scheme.fit_to_rate(mbps(50.0), encoder.floor_rate)
    assert scheme.current_mode.index == 8 > clamped


def test_mode_switch_counter_tracks_effective_changes(encoder, scheme):
    switches = scheme.mode_switches
    scheme.fit_to_rate(mbps(50.0), encoder.floor_rate)  # no change
    assert scheme.mode_switches == switches
    scheme.fit_to_rate(mbps(1.0), encoder.floor_rate)  # clamp: change
    assert scheme.mode_switches == switches + 1
    scheme.fit_to_rate(mbps(1.0), encoder.floor_rate)  # steady: no change
    assert scheme.mode_switches == switches + 1


def test_fixed_schemes_ignore_fit(compression_config, grid, viewer_config, encoder):
    from repro.compression import make_scheme

    conduit = make_scheme("conduit", compression_config, grid, viewer_config)
    before = conduit.matrix((3, 4))
    conduit.fit_to_rate(mbps(0.1), encoder.floor_rate)
    after = conduit.matrix((3, 4))
    assert (before == after).all()
