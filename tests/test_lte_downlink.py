"""eNodeB downlink model for the viewer's phone."""

import dataclasses

import numpy as np
import pytest

from repro.config import CellConfig, ChannelConfig, DownlinkConfig, LteConfig, PathConfig
from repro.lte.downlink import EnbDownlink
from repro.net.packet import Packet
from repro.net.path import ForwardPath
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry
from repro.units import BITS_PER_BYTE, kbytes, mbps


def _quiet_config(**overrides):
    return DownlinkConfig(
        channel=ChannelConfig(
            rss_dbm=-80.0, shadow_sigma_db=0.01, deep_fade_rate_per_min=0.0
        ),
        cell=CellConfig(background_load=0.1, load_sigma=0.0),
        **overrides,
    )


def _run_downlink(rate_bps, seconds=15.0, config=None, seed=3):
    sim = Simulation()
    arrivals = []
    downlink = EnbDownlink(
        sim, config or _quiet_config(), RngRegistry(seed).stream("dl"), sink=arrivals.append
    )
    interval = 1200 * BITS_PER_BYTE / rate_bps
    sim.every(interval, lambda: downlink.deliver(
        Packet(kind="video", size_bytes=1200, created=sim.now)))
    sim.run(seconds)
    return downlink, arrivals


def test_packets_flow_at_video_rates():
    downlink, arrivals = _run_downlink(mbps(3.0))
    delivered = sum(p.size_bytes for p in arrivals) * 8 / 15.0
    assert delivered == pytest.approx(3e6, rel=0.1)
    assert downlink.dropped_packets == 0


def test_downlink_has_large_capacity():
    """A downlink carries far more than the uplink's few Mbps."""
    downlink, arrivals = _run_downlink(mbps(12.0), seconds=20.0)
    delivered = sum(p.size_bytes for p in arrivals) * 8 / 20.0
    assert delivered > 8e6


def test_overload_queues_then_drops():
    config = _quiet_config(prb_quota=4, p_max=0.3, queue_cap_bytes=kbytes(64))
    downlink, _ = _run_downlink(mbps(12.0), seconds=10.0, config=config)
    assert downlink.queued_bytes > 0
    assert downlink.dropped_packets > 0


def test_service_is_bursty():
    _, arrivals = _run_downlink(mbps(3.0), seconds=20.0)
    times = np.array([p.arrived for p in arrivals])
    gaps = np.diff(times)
    # A mix of back-to-back service and idle gaps, not a smooth clock.
    assert gaps.max() > 4 * np.median(gaps[gaps > 0]) if (gaps > 0).any() else True


def test_forward_path_with_lte_downlink():
    sim = Simulation()
    path_config = PathConfig(
        access="lte", downlink_lte=_quiet_config(), random_loss=0.0
    )
    path = ForwardPath(sim, path_config, LteConfig(), RngRegistry(5).stream("f"))
    assert path.downlink is not None
    arrivals = []
    path.set_receiver(arrivals.append)
    for _ in range(10):
        path.send(Packet(kind="video", size_bytes=1000, created=sim.now))
    sim.run(3.0)
    assert len(arrivals) == 10
    assert path.lost_packets == 0


def test_full_session_with_lte_downlink():
    from repro.telephony.session import TelephonySession
    from repro.traces.scenarios import cellular

    base = cellular(scheme="poi360", transport="gcc", duration=20.0, seed=9)
    config = dataclasses.replace(
        base, path=dataclasses.replace(base.path, downlink_lte=DownlinkConfig())
    )
    result = TelephonySession(config).run(20.0)
    assert result.summary.frames_displayed > 300
    assert result.summary.delay.median < 1.0
