"""Rate-distortion model and MOS mapping (Table 1)."""

import math

import pytest

from repro.config import VideoConfig
from repro.video import quality


def test_psnr_mse_roundtrip():
    for psnr in (10.0, 25.0, 40.0):
        assert quality.psnr_from_mse(quality.mse_from_psnr(psnr)) == pytest.approx(psnr)


def test_psnr_from_mse_zero_is_infinite():
    assert quality.psnr_from_mse(0.0) == float("inf")


def test_anchor_point(video_config):
    bpp = quality.anchor_bpp(video_config)
    assert quality.psnr_from_bpp(bpp, video_config) == pytest.approx(
        video_config.rd_anchor_psnr
    )


def test_psnr_grows_per_octave(video_config):
    bpp = quality.anchor_bpp(video_config) / 4.0  # two octaves below anchor
    expected = video_config.rd_anchor_psnr - 2 * video_config.rd_db_per_octave
    assert quality.psnr_from_bpp(bpp, video_config) == pytest.approx(expected)


def test_psnr_clamped_to_ceiling_and_floor(video_config):
    assert quality.psnr_from_bpp(100.0, video_config) == video_config.psnr_ceiling
    assert quality.psnr_from_bpp(1e-9, video_config) == video_config.psnr_floor
    assert quality.psnr_from_bpp(0.0, video_config) == video_config.psnr_floor


def test_complexity_costs_bits(video_config):
    bpp = quality.anchor_bpp(video_config)
    easy = quality.psnr_from_bpp(bpp, video_config, complexity=0.5)
    hard = quality.psnr_from_bpp(bpp, video_config, complexity=2.0)
    assert easy > hard


def test_scale_psnr_lossless_at_level_one(video_config):
    assert quality.scale_psnr(1.0, video_config) == float("inf")
    assert quality.scale_psnr(0.5, video_config) == float("inf")


def test_scale_psnr_drops_with_level(video_config):
    l2 = quality.scale_psnr(2.0, video_config)
    l8 = quality.scale_psnr(8.0, video_config)
    assert l2 == pytest.approx(
        video_config.scale_anchor_psnr - video_config.scale_db_per_octave
    )
    assert l8 < l2


def test_combine_psnr_mse_adds_distortion():
    combined = quality.combine_psnr_mse(40.0, 40.0)
    assert combined == pytest.approx(40.0 - 10 * math.log10(2), abs=0.01)
    assert quality.combine_psnr_mse(40.0, float("inf")) == pytest.approx(40.0)


def test_displayed_tile_psnr_monotone_in_level(video_config):
    bpp = quality.anchor_bpp(video_config)
    values = [
        quality.displayed_tile_psnr(bpp, level, video_config)
        for level in (1.0, 2.0, 4.0, 16.0, 64.0)
    ]
    assert values == sorted(values, reverse=True)


def test_mos_bands_match_table1():
    assert quality.mos_band(40.0) == "excellent"
    assert quality.mos_band(37.0) == "good"
    assert quality.mos_band(33.0) == "good"
    assert quality.mos_band(31.0) == "fair"
    assert quality.mos_band(27.0) == "fair"
    assert quality.mos_band(25.0) == "poor"
    assert quality.mos_band(22.0) == "poor"
    assert quality.mos_band(20.0) == "bad"
    assert quality.mos_band(8.0) == "bad"


def test_mos_order_covers_all_bands():
    assert set(quality.MOS_ORDER) == {name for name, _ in quality.MOS_BANDS}
