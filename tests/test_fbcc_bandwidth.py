"""FBCC windowed-TBS bandwidth estimator — Eq. (4)."""

import pytest

from repro.lte.diagnostics import DiagRecord
from repro.rate_control.fbcc.bandwidth import TbsBandwidthEstimator


def _record(tbs, t=0.0):
    return DiagRecord(time=t, buffer_bytes=0.0, tbs_bytes=tbs)


def test_empty_estimator_reports_zero():
    assert TbsBandwidthEstimator(500).rate_bps == 0.0


def test_rate_matches_constant_tbs():
    estimator = TbsBandwidthEstimator(100)
    for _ in range(100):
        estimator.on_record(_record(250.0))  # 250 B per 1 ms subframe
    assert estimator.rate_bps == pytest.approx(250 * 8 * 1000)


def test_partial_window_uses_actual_length():
    estimator = TbsBandwidthEstimator(1000)
    for _ in range(10):
        estimator.on_record(_record(125.0))
    assert estimator.rate_bps == pytest.approx(125 * 8 * 1000)


def test_window_slides():
    estimator = TbsBandwidthEstimator(10)
    for _ in range(10):
        estimator.on_record(_record(100.0))
    for _ in range(10):
        estimator.on_record(_record(500.0))
    assert estimator.rate_bps == pytest.approx(500 * 8 * 1000)


def test_on_batch_equivalent_to_records():
    a = TbsBandwidthEstimator(50)
    b = TbsBandwidthEstimator(50)
    batch = [_record(float(i)) for i in range(40)]
    a.on_batch(batch)
    for record in batch:
        b.on_record(record)
    assert a.rate_bps == pytest.approx(b.rate_bps)


def test_invalid_window_rejected():
    with pytest.raises(ValueError):
        TbsBandwidthEstimator(0)
