"""Session wiring internals: diag aggregation, counter baselines."""

import pytest

from repro.telephony.session import TelephonySession
from repro.traces.scenarios import cellular
from repro.units import BITS_PER_BYTE


def test_diag_seconds_aggregation_matches_ue():
    config = cellular(scheme="poi360", transport="gcc", duration=30.0, seed=13)
    session = TelephonySession(config)
    result = session.run(30.0)
    seconds = result.log.diag_seconds
    assert 25 <= len(seconds) <= 31
    total_from_seconds = sum(rate for rate, _ in seconds) / BITS_PER_BYTE
    # The per-second TBS sums reconstruct the UE's byte counter
    # (boundary seconds may differ slightly).
    assert total_from_seconds == pytest.approx(session.forward.ue.bytes_sent, rel=0.1)
    # Buffer means are physical levels.
    assert all(0.0 <= level <= config.lte.firmware_buffer_cap for _, level in seconds)


def test_warmup_baselines_subtract_prior_losses():
    config = cellular(scheme="pyramid", transport="gcc", duration=30.0, seed=2)
    session = TelephonySession(config)
    result = session.run(30.0, warmup=15.0)
    # Warm-up losses (the startup floor transient) are excluded: the
    # measured counters cannot be negative and cannot exceed the
    # cumulative totals.
    assert 0 <= result.log.frames_lost <= session.sender.pacer.dropped_frames
    assert 0 <= result.log.packets_lost


def test_rate_trace_sampled_periodically():
    config = cellular(scheme="poi360", transport="fbcc", duration=20.0, seed=5)
    result = TelephonySession(config).run(20.0)
    trace = result.log.rate_trace
    assert len(trace) == pytest.approx(100, abs=3)  # every 0.2 s
    times = [t for t, _, _ in trace]
    assert all(b > a for a, b in zip(times, times[1:]))
    # FBCC's pacing rate tracks at or above its floor relative to Rv.
    for _, rv, rrtp in trace[10:]:
        assert rrtp >= 0.0 and rv >= 0.0


def test_summary_freeze_threshold_respected():
    import dataclasses

    config = cellular(scheme="poi360", transport="gcc", duration=15.0, seed=3)
    strict = dataclasses.replace(config, freeze_threshold=0.05)
    lenient = dataclasses.replace(config, freeze_threshold=5.0)
    strict_result = TelephonySession(strict).run(15.0)
    lenient_result = TelephonySession(lenient).run(15.0)
    assert strict_result.summary.freeze_ratio >= lenient_result.summary.freeze_ratio
    assert lenient_result.summary.freeze_ratio == 0.0


def test_session_components_exposed():
    config = cellular(scheme="poi360", transport="fbcc", duration=5.0, seed=1)
    session = TelephonySession(config)
    assert session.forward.ue is not None
    assert session.scheme.name == "poi360"
    assert session.transport.name == "fbcc"
    assert session.grid.num_tiles == 96
    assert session.head is not None
