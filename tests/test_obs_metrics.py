"""Metrics registry, span profiler, meter, fleet merge and exporters."""

import importlib.util
import json
import pickle
from pathlib import Path

import pytest

from repro.experiments import cache
from repro.experiments.parallel import SessionTask, merged_meter, run_tasks
from repro.experiments.runner import ExperimentSettings, clear_cache, run_sessions
from repro.metrics.export import (
    metrics_to_dict,
    metrics_to_openmetrics,
    openmetrics_family,
    write_metrics_json,
    write_metrics_openmetrics,
)
from repro.obs import (
    METRIC_CATALOGUE,
    NULL_METER,
    SPAN_NAMES,
    Histogram,
    MetricsRegistry,
    NullMeter,
    SessionMeter,
    SpanProfiler,
    catalogue_names,
    coerce_meter,
)
from repro.telephony.session import run_session
from repro.traces.scenarios import scenario


def _load_check_metrics():
    path = Path(__file__).resolve().parent.parent / "tools" / "check_metrics.py"
    spec = importlib.util.spec_from_file_location("check_metrics", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_metrics = _load_check_metrics()


def _short_cellular(**overrides):
    return scenario(
        "cellular", scheme="poi360", transport="fbcc", duration=5.0, seed=1, **overrides
    )


@pytest.fixture(scope="module")
def metered_result():
    return run_session(_short_cellular(), warmup=0.0, meter=True)


# ----------------------------------------------------------------------
# Histogram mechanics
# ----------------------------------------------------------------------


def test_histogram_le_bucketing_and_overflow():
    hist = Histogram((1.0, 2.0, 4.0))
    for value in (0.5, 1.0, 1.5, 2.0, 3.0, 9.0):
        hist.observe(value)
    # le-semantics: a sample on a bound lands in that bound's bucket.
    assert hist.counts == [2, 2, 1, 1]
    assert hist.count == 6
    assert hist.sum == pytest.approx(17.0)
    assert hist.cumulative() == [2, 4, 5, 6]


def test_histogram_merge_is_elementwise():
    a = Histogram((1.0, 2.0))
    b = Histogram((1.0, 2.0))
    a.observe(0.5)
    b.observe(1.5)
    b.observe(5.0)
    a.merge(b)
    assert a.counts == [1, 1, 1]
    assert a.count == 3
    assert a.sum == pytest.approx(7.0)


def test_histogram_merge_rejects_different_buckets():
    with pytest.raises(ValueError):
        Histogram((1.0,)).merge(Histogram((2.0,)))


# ----------------------------------------------------------------------
# Registry validation and merge
# ----------------------------------------------------------------------


def test_registry_rejects_unknown_and_wrong_kind():
    registry = MetricsRegistry()
    with pytest.raises(KeyError):
        registry.inc("no.such.metric")
    with pytest.raises(KeyError):
        registry.observe("no.such.metric", 1.0)
    with pytest.raises(ValueError):
        registry.inc("fleet.workers")  # gauge, not counter
    with pytest.raises(ValueError):
        registry.observe("receiver.frames", 1.0)  # counter, not histogram
    with pytest.raises(ValueError):
        registry.set_gauge("receiver.frames", 1.0)


def test_registry_merge_sums_counters_and_buckets():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.inc("receiver.frames", 3)
    b.inc("receiver.frames", 4)
    b.inc("receiver.nacks", 2)
    a.observe("receiver.delay_s", 0.12)
    b.observe("receiver.delay_s", 0.9)
    a.set_gauge("fleet.workers", 2)
    b.set_gauge("fleet.workers", 8)
    a.merge(b)
    assert a.counters["receiver.frames"] == 7
    assert a.counters["receiver.nacks"] == 2
    assert a.gauges["fleet.workers"] == 8  # last write wins
    hist = a.histogram("receiver.delay_s")
    assert hist.count == 2
    assert hist.sum == pytest.approx(1.02)


def test_counters_by_subsystem_uses_catalogue_labels():
    registry = MetricsRegistry()
    registry.inc("receiver.frames")
    registry.inc("lte.drops", 5)
    grouped = registry.counters_by_subsystem()
    assert grouped["telephony"]["receiver.frames"] == 1
    assert grouped["lte"]["lte.drops"] == 5


def test_catalogue_names_filters_by_kind():
    gauges = catalogue_names(["gauge"])
    assert "fleet.workers" in gauges
    assert "receiver.frames" not in gauges
    assert catalogue_names() == tuple(METRIC_CATALOGUE)


# ----------------------------------------------------------------------
# Span profiler
# ----------------------------------------------------------------------


def test_span_profiler_accumulates_and_validates():
    spans = SpanProfiler()
    spans.record("sender.encode", 0.002)
    spans.record("sender.encode", 0.004)
    stats = spans.stats["sender.encode"]
    assert stats.count == 2
    assert stats.total_s == pytest.approx(0.006)
    assert stats.mean_s == pytest.approx(0.003)
    assert stats.min_s == pytest.approx(0.002)
    assert stats.max_s == pytest.approx(0.004)
    with pytest.raises(KeyError):
        spans.record("no.such.span", 0.1)


def test_span_context_manager_records():
    spans = SpanProfiler()
    with spans.span("session.run"):
        pass
    assert spans.stats["session.run"].count == 1
    assert spans.stats["session.run"].total_s >= 0.0


def test_span_merge_folds_extrema():
    a, b = SpanProfiler(), SpanProfiler()
    a.record("lte.subframe", 0.001)
    b.record("lte.subframe", 0.010)
    b.record("rate_control.tick", 0.002)
    a.merge(b)
    assert a.stats["lte.subframe"].count == 2
    assert a.stats["lte.subframe"].max_s == pytest.approx(0.010)
    assert a.stats["lte.subframe"].min_s == pytest.approx(0.001)
    assert set(a.as_dict()) == {"lte.subframe", "rate_control.tick"}


# ----------------------------------------------------------------------
# Meter coercion and null behaviour
# ----------------------------------------------------------------------


def test_null_meter_is_falsy_noop():
    assert not NULL_METER
    assert isinstance(NULL_METER, NullMeter)
    NULL_METER.inc("anything")
    NULL_METER.observe("anything", 1.0)
    NULL_METER.set_gauge("anything", 1.0)
    NULL_METER.span_end("anything", NULL_METER.span_start())
    with NULL_METER.span("anything"):
        pass
    assert NULL_METER.metrics.counters == {}
    assert NULL_METER.spans.stats == {}


def test_coerce_meter():
    assert coerce_meter(False) is NULL_METER
    assert coerce_meter(None) is NULL_METER
    fresh = coerce_meter(True)
    assert isinstance(fresh, SessionMeter)
    existing = SessionMeter()
    assert coerce_meter(existing) is existing


def test_session_meter_as_dict_is_json_safe():
    meter = SessionMeter()
    meter.inc("receiver.frames")
    meter.observe("receiver.delay_s", 0.2)
    meter.spans.record("session.run", 1.5)
    payload = meter.as_dict()
    json.dumps(payload)  # must not raise
    assert payload["counters"]["receiver.frames"] == 1
    assert payload["spans"]["session.run"]["count"] == 1


# ----------------------------------------------------------------------
# Session metering
# ----------------------------------------------------------------------


def test_metered_session_counts_match_log(metered_result):
    counters = metered_result.meter.metrics.counters
    log = metered_result.log
    assert counters["sender.frames"] == log.frames_sent
    assert counters["receiver.frames"] == log.frames_displayed
    assert counters["session.runs"] == 1
    assert counters["lte.subframes"] > 1000
    delay_hist = metered_result.meter.metrics.histogram("receiver.delay_s")
    assert delay_hist.count == log.frames_displayed
    assert delay_hist.sum == pytest.approx(sum(log.frame_delays))


def test_metered_session_records_every_span(metered_result):
    recorded = set(metered_result.meter.spans.stats)
    # fleet.* spans only fire in shared-cell runs (tests/test_fleet.py);
    # batch.* spans only in batched-engine runs (tests/test_batch*.py).
    solo_spans = {
        name
        for name in SPAN_NAMES
        if not name.startswith(("fleet.", "batch."))
    }
    assert recorded == solo_spans
    assert metered_result.meter.spans.stats["session.run"].count == 1


def test_metered_result_pickles(metered_result):
    clone = pickle.loads(pickle.dumps(metered_result))
    assert clone.meter.metrics.counters == metered_result.meter.metrics.counters
    assert (
        clone.meter.spans.stats["session.run"].count
        == metered_result.meter.spans.stats["session.run"].count
    )


# ----------------------------------------------------------------------
# Fleet merge: parallel == serial
# ----------------------------------------------------------------------


def _tiny_tasks():
    return [
        SessionTask(
            scenario_name="cellular",
            scheme="poi360",
            transport="fbcc",
            duration=4.0,
            warmup=1.0,
            seed=1 + index,
            profile_name="user2-typical",
            meter=True,
        )
        for index in range(2)
    ]


def test_fleet_merge_parallel_equals_serial():
    serial = run_tasks(_tiny_tasks(), jobs=1)
    parallel = run_tasks(_tiny_tasks(), jobs=2)
    fleet_serial = merged_meter(serial, workers=1)
    fleet_parallel = merged_meter(parallel, workers=2)
    # Metric values are pure functions of the simulation, so the merged
    # registries agree exactly; only span wall-clock differs.
    assert fleet_serial.metrics.counters.keys() == fleet_parallel.metrics.counters.keys()
    for name, value in fleet_serial.metrics.counters.items():
        assert fleet_parallel.metrics.counters[name] == value, name
    for name, hist in fleet_serial.metrics.histograms().items():
        other = fleet_parallel.metrics.histogram(name)
        assert other.counts == hist.counts, name
        assert other.sum == pytest.approx(hist.sum), name
    assert fleet_serial.metrics.counters["fleet.sessions"] == 2
    assert fleet_parallel.metrics.gauges["fleet.workers"] == 2
    assert fleet_parallel.metrics.gauges["fleet.straggler_index"] in (0, 1)
    assert fleet_parallel.metrics.gauges["fleet.straggler_s"] > 0.0


def test_progress_callback_runs_in_task_order():
    seen = []
    run_tasks(_tiny_tasks(), jobs=1, progress=lambda done, total, _r: seen.append((done, total)))
    assert seen == [(1, 2), (2, 2)]


def test_merged_meter_folds_cache_counters():
    fleet = merged_meter([], workers=1, cache_counters={"entry_hits": 3, "entry_misses": 0})
    assert fleet.metrics.counters["cache.entry_hits"] == 3
    assert "cache.entry_misses" not in fleet.metrics.counters  # zeros elided


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def test_openmetrics_family_mangling():
    assert openmetrics_family("receiver.frames") == "repro_receiver_frames"
    assert openmetrics_family("receiver.delay_s", "s") == "repro_receiver_delay_seconds"
    assert openmetrics_family("fbcc.video_rate_mbps", "Mbps") == "repro_fbcc_video_rate_mbps"


def test_openmetrics_export_passes_drift_gate(metered_result, tmp_path):
    fleet = merged_meter([metered_result], workers=1)
    text = metrics_to_openmetrics(fleet)
    assert text.endswith("# EOF\n")
    problems = check_metrics.check(text)
    assert problems == []
    path = tmp_path / "metrics.txt"
    write_metrics_openmetrics(path, fleet)
    assert path.read_text() == text


def test_drift_gate_flags_unknown_family_and_broken_buckets():
    bad = (
        "# TYPE repro_not_in_catalogue counter\n"
        "repro_not_in_catalogue_total 1\n"
        "# EOF\n"
    )
    problems = check_metrics.check(bad)
    assert any("catalogue drift" in p for p in problems)
    torn = (
        "# TYPE repro_receiver_delay_seconds histogram\n"
        'repro_receiver_delay_seconds_bucket{le="0.1"} 5\n'
        'repro_receiver_delay_seconds_bucket{le="+Inf"} 3\n'
        "repro_receiver_delay_seconds_sum 1.0\n"
        "repro_receiver_delay_seconds_count 3\n"
        "# EOF\n"
    )
    problems = check_metrics.check(torn)
    assert any("not cumulative" in p for p in problems)


def test_metrics_json_round_trip(metered_result, tmp_path):
    fleet = merged_meter([metered_result], workers=1)
    path = tmp_path / "metrics.json"
    write_metrics_json(path, fleet)
    payload = json.loads(path.read_text())
    assert payload == metrics_to_dict(fleet)
    assert payload["counters"]["session.runs"] == 1
    assert payload["spans"]["session.run"]["count"] == 1


# ----------------------------------------------------------------------
# Cache counters
# ----------------------------------------------------------------------


@pytest.fixture
def _fresh_cache(tmp_path):
    clear_cache()
    cache.set_cache_dir(tmp_path / "cache")
    cache.set_cache_enabled(True)
    cache.reset_counters()
    yield
    cache.reset_counters()
    cache.set_cache_enabled(None)
    cache.set_cache_dir(None)
    clear_cache()


TINY = ExperimentSettings(duration=8.0, warmup=4.0, repetitions=1, num_users=1)


def test_cache_counters_track_miss_store_hit(_fresh_cache):
    run_sessions("cellular", "poi360", "gcc", TINY)
    first = cache.counters()
    assert first["entry_misses"] == 1
    assert first["sessions_stored"] == 1
    assert first["entry_hits"] == 0
    clear_cache()  # drop L1 so the next run reads the disk entry
    run_sessions("cellular", "poi360", "gcc", TINY)
    second = cache.counters()
    assert second["entry_hits"] == 1
    assert second["session_hits"] == 1
    # The persistent mirror accumulates the same totals.
    lifetime = cache.persistent_counters()
    assert lifetime["entry_hits"] >= 1
    assert lifetime["sessions_stored"] >= 1


def test_disabled_cache_counts_nothing(_fresh_cache):
    cache.set_cache_enabled(False)
    run_sessions("cellular", "poi360", "gcc", TINY)
    assert cache.counters() == {name: 0 for name in cache.COUNTER_NAMES}
