"""Failure injection: the stack must degrade gracefully, not collapse.

These tests reach into a running session's processes to force faults —
radio outages, feedback-channel loss, load spikes — and verify recovery
behaviour.
"""

import numpy as np
import pytest

from repro.telephony.session import TelephonySession
from repro.traces.scenarios import cellular


def _session(transport="fbcc", seed=19, duration=60.0):
    config = cellular(scheme="poi360", transport=transport, duration=duration, seed=seed)
    return TelephonySession(config)


def test_radio_outage_recovers():
    session = _session()
    sim = session.sim
    channel = session.forward.ue.channel

    # Force a 2-second radio outage at t=20.
    sim.schedule(20.0, lambda: setattr(channel, "_outage_until", 22.0))
    result = session.run(60.0, warmup=10.0)

    times = np.array(result.log.display_times)
    # Frames flowed after the outage ended...
    assert (times > 25.0).sum() > 400
    # ... and the tail of the session is healthy again (frame_delays is
    # chronological; the last quarter post-dates the outage by far).
    delays = np.array(result.log.frame_delays)
    assert np.median(delays[-len(delays) // 4 :]) < 0.8


def test_outage_drives_congestion_detection():
    session = _session()
    sim = session.sim
    channel = session.forward.ue.channel
    sim.schedule(20.0, lambda: setattr(channel, "_outage_until", 21.5))
    session.run(40.0)
    # The firmware buffer filled during the outage; FBCC must have fired.
    assert session.transport.encoding.congestion_events >= 1


def test_feedback_loss_degrades_gracefully():
    session = _session(transport="gcc", seed=23)
    # 30% of feedback messages (ROI, M, REMB, RR) vanish.
    session.reverse._link.loss = 0.30
    result = session.run(50.0, warmup=10.0)
    assert result.summary.frames_displayed > 700
    assert result.summary.quality.mean_psnr > 25.0
    # The sender still learned the viewer's ROI at least sometimes.
    assert session.sender.roi_knowledge is not None


def test_total_feedback_blackout_freezes_adaptation_not_video():
    session = _session(transport="gcc", seed=29)
    session.reverse._link.loss = 1.0
    result = session.run(30.0)
    # Media still flows (GCC sender just keeps its last rates)...
    assert result.summary.frames_displayed > 300
    # ... but the sender's ROI knowledge never left its initial value.
    assert session.sender.roi_knowledge == (0, session.grid.tiles_y // 2)


def test_load_spike_throttles_rate():
    session = _session(seed=31)
    sim = session.sim
    cell = session.forward.ue.cell
    rates = []

    def spike():
        cell._config = type(cell._config)(
            background_load=0.8, load_sigma=0.0, load_corr_time=5.0
        )
        cell._deviation = 0.0

    sim.schedule(30.0, spike)
    sim.every(1.0, lambda: rates.append((sim.now, session.transport.video_rate)))
    session.run(60.0)
    before = np.mean([r for t, r in rates if 20.0 < t <= 30.0])
    after = np.mean([r for t, r in rates if 50.0 < t <= 60.0])
    assert after < before


def test_receiver_survives_duplicate_packets():
    session = _session(transport="gcc", seed=37)
    receiver = session.receiver
    original = receiver.on_media_packet

    def duplicate(packet):
        original(packet)
        original(packet)  # replay every packet

    session.forward.set_receiver(duplicate)
    result = session.run(20.0)
    assert result.summary.frames_displayed > 300
