"""Unit-conversion helpers."""

import pytest

from repro import units


def test_ms_converts_to_seconds():
    assert units.ms(40) == pytest.approx(0.040)


def test_us_converts_to_seconds():
    assert units.us(500) == pytest.approx(0.0005)


def test_seconds_to_ms_roundtrip():
    assert units.seconds_to_ms(units.ms(123.0)) == pytest.approx(123.0)


def test_mbps_and_kbps():
    assert units.mbps(2.2) == pytest.approx(2_200_000.0)
    assert units.kbps(2200) == units.mbps(2.2)


def test_bps_to_mbps_roundtrip():
    assert units.bps_to_mbps(units.mbps(3.5)) == pytest.approx(3.5)


def test_kbytes_uses_1024():
    assert units.kbytes(10) == 10240.0
    assert units.bytes_to_kbytes(units.kbytes(7.5)) == pytest.approx(7.5)


def test_bits_bytes_roundtrip():
    assert units.bytes_to_bits(100) == 800
    assert units.bits_to_bytes(units.bytes_to_bits(321)) == pytest.approx(321)


def test_rate_to_bytes():
    # 8 Mbps for half a second is half a megabyte.
    assert units.rate_to_bytes(units.mbps(8), 0.5) == pytest.approx(500_000.0)


def test_lte_subframe_is_one_millisecond():
    assert units.LTE_SUBFRAME == pytest.approx(0.001)
