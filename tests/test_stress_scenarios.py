"""Stress scenarios (subway, stadium) survive end to end."""

import pytest

from repro.telephony.session import run_session
from repro.traces.scenarios import scenario


@pytest.mark.parametrize("name", ["subway", "stadium"])
def test_stress_scenario_streams(name):
    config = scenario(name, scheme="poi360", transport="fbcc", duration=40.0, seed=3)
    result = run_session(config, warmup=10.0)
    # The call survives: most frames still arrive, and quality is
    # degraded rather than destroyed.
    assert result.summary.frames_displayed > 600
    assert result.summary.freeze_ratio < 0.5
    assert result.summary.quality.mean_psnr > 20.0


def test_stadium_uses_competitor_cell():
    from repro.lte.competitors import CompetitorCell
    from repro.telephony.session import TelephonySession

    config = scenario("stadium", scheme="poi360", transport="fbcc", duration=5.0)
    session = TelephonySession(config)
    assert isinstance(session.forward.ue.cell, CompetitorCell)


def test_subway_fades_are_harsher_than_default():
    base = scenario("cellular", scheme="poi360", transport="fbcc", duration=60.0, seed=7)
    tunnel = scenario("subway", scheme="poi360", transport="fbcc", duration=60.0, seed=7)
    easy = run_session(base, warmup=15.0)
    hard = run_session(tunnel, warmup=15.0)
    assert hard.summary.quality.mean_psnr <= easy.summary.quality.mean_psnr + 0.5
    assert hard.summary.freeze_ratio >= easy.summary.freeze_ratio - 0.01
