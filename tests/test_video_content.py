"""Synthetic content complexity model."""

import numpy as np

from repro.sim.rng import RngRegistry
from repro.video.content import ContentModel


def test_mean_complexity_near_one(grid):
    content = ContentModel(grid, RngRegistry(1).stream("c"))
    assert abs(content.mean_complexity(0.0) - 1.0) < 0.25


def test_complexity_positive_everywhere(grid, content):
    for i in range(0, 12, 3):
        for j in range(0, 8, 2):
            assert content.complexity(i, j, 5.0) > 0.0


def test_complexity_varies_across_tiles(grid):
    content = ContentModel(grid, RngRegistry(2).stream("c"))
    values = [content.complexity(i, 4, 0.0) for i in range(12)]
    assert np.std(values) > 0.01


def test_complexity_varies_over_time(grid):
    content = ContentModel(grid, RngRegistry(3).stream("c"))
    early = content.complexity(3, 3, 0.0)
    later = content.complexity(3, 3, 12.0)
    assert early != later


def test_different_seeds_give_different_videos(grid):
    a = ContentModel(grid, RngRegistry(1).stream("c"))
    b = ContentModel(grid, RngRegistry(99).stream("c"))
    map_a = a.complexity_map(0.0)
    map_b = b.complexity_map(0.0)
    assert not np.allclose(map_a, map_b)


def test_complexity_map_matches_pointwise(grid, content):
    mapped = content.complexity_map(3.0)
    assert mapped[5, 2] == content.complexity(5, 2, 3.0)
    assert mapped.shape == (12, 8)
