"""Binary diag-log codec."""

import pytest

from repro.lte.diag_log import (
    DiagLogError,
    StreamingDecoder,
    decode_stream,
    encode_frame,
)
from repro.lte.diagnostics import DiagRecord


def _records(n=5, start=0.0):
    return [
        DiagRecord(time=start + i * 1e-3, buffer_bytes=1000.0 + i, tbs_bytes=500.0)
        for i in range(n)
    ]


def test_roundtrip_single_frame():
    records = _records(40)
    decoded = decode_stream(encode_frame(records))
    assert len(decoded) == 40
    assert decoded[0].time == pytest.approx(records[0].time)
    assert decoded[-1].buffer_bytes == pytest.approx(records[-1].buffer_bytes)
    assert decoded[3].tbs_bytes == pytest.approx(500.0)


def test_roundtrip_multiple_frames():
    data = encode_frame(_records(10)) + encode_frame(_records(7, start=1.0))
    decoded = decode_stream(data)
    assert len(decoded) == 17


def test_empty_frame():
    assert decode_stream(encode_frame([])) == []


def test_streaming_across_arbitrary_chunks():
    data = encode_frame(_records(25)) + encode_frame(_records(25, start=2.0))
    decoder = StreamingDecoder()
    out = []
    for i in range(0, len(data), 7):  # awkward 7-byte chunks
        out.extend(decoder.feed(data[i : i + 7]))
    assert len(out) == 50
    assert decoder.frames_decoded == 2
    assert decoder.pending_bytes == 0


def test_partial_frame_waits():
    data = encode_frame(_records(5))
    decoder = StreamingDecoder()
    assert decoder.feed(data[:10]) == []
    assert decoder.pending_bytes == 10
    assert len(decoder.feed(data[10:])) == 5


def test_bad_magic_raises():
    with pytest.raises(DiagLogError):
        decode_stream(b"\x00\x00\x00\x00")


def test_checksum_detects_corruption():
    data = bytearray(encode_frame(_records(5)))
    data[10] ^= 0xFF  # flip a payload byte
    with pytest.raises(DiagLogError):
        decode_stream(bytes(data))


def test_trailing_garbage_detected():
    data = encode_frame(_records(2)) + b"\xd0"
    with pytest.raises(DiagLogError):
        decode_stream(data)


def test_decoder_matches_live_monitor():
    """End-to-end: encode what the DiagMonitor batches, decode, compare."""
    from repro.config import LteConfig
    from repro.lte.ue import UeUplink
    from repro.net.packet import Packet
    from repro.sim.engine import Simulation
    from repro.sim.rng import RngRegistry

    sim = Simulation()
    ue = UeUplink(sim, LteConfig(), RngRegistry(2).stream("ue"))
    wire = bytearray()
    direct = []
    ue.diag.subscribe(lambda batch: wire.extend(encode_frame(batch)))
    ue.diag.subscribe(direct.extend)
    sim.every(0.004, lambda: ue.send(Packet(kind="v", size_bytes=1200, created=sim.now)))
    sim.run(2.0)
    decoded = decode_stream(bytes(wire))
    assert len(decoded) == len(direct)
    assert decoded[123].buffer_bytes == pytest.approx(direct[123].buffer_bytes)
