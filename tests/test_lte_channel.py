"""Channel process: shadowing, mobility, handovers, deep fades."""

import dataclasses

import numpy as np
import pytest

from repro.config import ChannelConfig
from repro.lte.channel import ChannelProcess
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry


def _run_channel(config, seconds=60.0, seed=3):
    sim = Simulation()
    channel = ChannelProcess(sim, config, RngRegistry(seed).stream("ch"))
    samples = []
    sim.every(0.05, lambda: samples.append((channel.rss_dbm, channel.cqi())))
    sim.run(seconds)
    return channel, samples


def test_rss_fluctuates_around_mean():
    config = ChannelConfig(rss_dbm=-82.0, deep_fade_rate_per_min=0.0)
    _, samples = _run_channel(config)
    rss = np.array([r for r, _ in samples])
    assert abs(rss.mean() - (-82.0)) < 3.0
    assert rss.std() > 0.5


def test_shadow_sigma_scales_spread():
    calm = ChannelConfig(shadow_sigma_db=1.0, deep_fade_rate_per_min=0.0)
    wild = ChannelConfig(shadow_sigma_db=6.0, deep_fade_rate_per_min=0.0)
    _, calm_samples = _run_channel(calm, seconds=120)
    _, wild_samples = _run_channel(wild, seconds=120)
    calm_std = np.std([r for r, _ in calm_samples])
    wild_std = np.std([r for r, _ in wild_samples])
    assert wild_std > 2.0 * calm_std


def test_static_channel_has_no_handover():
    config = ChannelConfig(speed_mph=0.0, deep_fade_rate_per_min=0.0)
    _, samples = _run_channel(config, seconds=120)
    assert all(cqi > 0 for _, cqi in samples)


def test_driving_triggers_handover_outages():
    config = ChannelConfig(
        speed_mph=50.0,
        handover_rate_per_min_at_30mph=10.0,
        deep_fade_rate_per_min=0.0,
    )
    _, samples = _run_channel(config, seconds=120)
    assert any(cqi == 0 for _, cqi in samples)


def test_deep_fades_attenuate_rss():
    config = ChannelConfig(
        rss_dbm=-80.0,
        shadow_sigma_db=0.01,
        deep_fade_rate_per_min=30.0,
        deep_fade_depth_db=20.0,
        deep_fade_duration=(1.0, 2.0),
    )
    _, samples = _run_channel(config, seconds=60)
    rss = np.array([r for r, _ in samples])
    assert rss.min() < -90.0  # at least one deep fade hit
    assert rss.max() > -82.0  # and the channel recovers


def test_mobility_compresses_correlation_time():
    static = ChannelConfig(speed_mph=0.0, deep_fade_rate_per_min=0.0)
    moving = dataclasses.replace(static, speed_mph=50.0)
    sim = Simulation()
    rng = RngRegistry(1)
    static_process = ChannelProcess(sim, static, rng.stream("a"))
    moving_process = ChannelProcess(sim, moving, rng.stream("b"))
    assert moving_process._corr_time < static_process._corr_time
    assert moving_process._sigma > static_process._sigma


def test_cqi_reflects_rss_level():
    strong = ChannelConfig(rss_dbm=-73.0, shadow_sigma_db=0.01, deep_fade_rate_per_min=0.0)
    weak = ChannelConfig(rss_dbm=-115.0, shadow_sigma_db=0.01, deep_fade_rate_per_min=0.0)
    _, strong_samples = _run_channel(strong, seconds=10)
    _, weak_samples = _run_channel(weak, seconds=10)
    assert np.mean([c for _, c in strong_samples]) > np.mean([c for _, c in weak_samples]) + 5
