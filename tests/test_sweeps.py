"""Parameter-sweep tooling."""

import pytest

from repro.config import SessionConfig
from repro.experiments.sweeps import SweepPoint, as_series, replace_field, sweep
from repro.traces.scenarios import cellular


def test_replace_field_nested():
    config = replace_field(SessionConfig(), "lte.channel.rss_dbm", -99.0)
    assert config.lte.channel.rss_dbm == -99.0
    # Untouched siblings survive.
    assert config.lte.cell.background_load == SessionConfig().lte.cell.background_load


def test_replace_field_top_level():
    config = replace_field(SessionConfig(), "scheme", "conduit")
    assert config.scheme == "conduit"


def test_replace_field_unknown():
    with pytest.raises(AttributeError):
        replace_field(SessionConfig(), "lte.warp_drive", 9)


def test_sweep_runs_each_value():
    base = cellular(scheme="poi360", transport="gcc")
    points = sweep(
        base, "lte.channel.rss_dbm", [-73.0, -115.0], duration=12.0, warmup=4.0
    )
    assert [p.value for p in points] == [-73.0, -115.0]
    assert all(len(p.results) == 1 for p in points)
    # Strong signal carries more traffic than weak.
    series = as_series(points, "freeze_ratio")
    assert set(series) == {-73.0, -115.0}
    strong = points[0].results[0].summary.throughput.mean
    weak = points[1].results[0].summary.throughput.mean
    assert strong > weak


def test_sweep_point_means():
    base = cellular(scheme="poi360", transport="gcc")
    (point,) = sweep(base, "seed", [1], repetitions=2, duration=10.0, warmup=3.0)
    assert len(point.results) == 2
    assert point.mean("freeze_ratio") >= 0.0
    assert point.mean_psnr() > 15.0
