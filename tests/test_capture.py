"""Virtual webcam source."""

import pytest

from repro.config import VideoConfig
from repro.sim.engine import Simulation
from repro.video.capture import VideoSource


def test_frames_fire_at_fps():
    sim = Simulation()
    frames = []
    VideoSource(sim, VideoConfig(fps=30.0), lambda index, t: frames.append((index, t)))
    sim.run(1.0)
    assert len(frames) == 30
    indices = [i for i, _ in frames]
    assert indices == list(range(30))
    times = [t for _, t in frames]
    assert times[0] == pytest.approx(1 / 30)
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g == pytest.approx(1 / 30) for g in gaps)


def test_custom_fps():
    sim = Simulation()
    source = VideoSource(sim, VideoConfig(fps=24.0), lambda i, t: None)
    sim.run(2.0)
    # The 48th tick lands on the boundary; float accumulation may push
    # it a hair past the deadline.
    assert source.frames_captured in (47, 48)
