"""Send-side BWE (transport-wide CC) variant."""

import pytest

from repro.config import GccConfig
from repro.net.packet import Packet
from repro.rate_control.gcc.sendside import (
    SendSideBwe,
    SendSideGccTransport,
    TwccFeedbackGenerator,
)
from repro.sim.engine import Simulation
from repro.units import mbps


def _media(seq, sent, size=1200.0, rtx=False):
    payload = {"seq": seq, "sent": sent}
    if rtx:
        payload["rtx"] = True
    return Packet(kind="video", size_bytes=size, created=sent, payload=payload)


def test_feedback_generator_batches_packets():
    sim = Simulation()
    messages = []
    generator = TwccFeedbackGenerator(sim, GccConfig(), messages.append)
    for index in range(30):
        sim.run(0.01)
        generator.on_media_packet(_media(index, sim.now - 0.05))
    sim.run(0.2)
    batches = [m for m in messages if m["type"] == "twcc"]
    assert batches
    total = sum(len(m["packets"]) for m in batches)
    assert total == 30
    sent, arrival, size = batches[0]["packets"][0]
    assert arrival - sent == pytest.approx(0.05, abs=0.001)


def test_rtx_excluded_from_reports():
    sim = Simulation()
    messages = []
    generator = TwccFeedbackGenerator(sim, GccConfig(), messages.append)
    generator.on_media_packet(_media(0, 0.0, rtx=True))
    sim.run(0.3)
    assert not [m for m in messages if m["type"] == "twcc"]


def test_loss_reports_emitted():
    sim = Simulation()
    messages = []
    generator = TwccFeedbackGenerator(sim, GccConfig(), messages.append)
    generator.on_media_packet(_media(0, 0.0))
    generator.on_media_packet(_media(4, 0.01))  # 3 lost
    sim.run(1.1)
    reports = [m for m in messages if m["type"] == "rr"]
    assert reports and reports[0]["loss"] == pytest.approx(0.6, abs=0.01)


def test_bwe_grows_on_clean_path():
    sim = Simulation()
    bwe = SendSideBwe(sim, GccConfig())
    early = None
    for index in range(1500):
        sim.run(0.004)
        bwe.on_packet_report(sim.now - 0.05, sim.now, 1200.0)
        if index == 200:
            early = bwe.rate
    # Flat delays → no decreases, monotone probing upward.
    assert bwe.aimd.decreases == 0
    assert bwe.rate > early


def test_bwe_cuts_on_growing_delay():
    sim = Simulation()
    bwe = SendSideBwe(sim, GccConfig())
    for index in range(300):
        sim.run(0.004)
        bwe.on_packet_report(sim.now - 0.05, sim.now, 1200.0)
    assert bwe.aimd.decreases == 0
    for index in range(300):
        sim.run(0.004)
        # Queue builds: each packet 1.5 ms later than the last.
        bwe.on_packet_report(sim.now - 0.05 - index * 0.0015, sim.now, 1200.0)
    assert bwe.aimd.decreases >= 1


def test_transport_combines_loss_and_delay():
    sim = Simulation()
    transport = SendSideGccTransport(sim, GccConfig())
    transport.on_feedback({"type": "rr", "loss": 0.5}, now=1.0)
    assert transport.video_rate < GccConfig().start_rate
    assert transport.pacing_rate == pytest.approx(
        transport.video_rate * GccConfig().pacing_factor
    )


def test_end_to_end_session_with_sendside_gcc():
    from repro.telephony.session import TelephonySession
    from repro.traces.scenarios import cellular

    config = cellular(scheme="poi360", transport="gcc_ss", duration=30.0, seed=9)
    session = TelephonySession(config)
    result = session.run(30.0, warmup=10.0)
    assert result.summary.frames_displayed > 400
    assert result.summary.throughput.mean > 0.3e6
    assert session.transport.rtt.samples > 0
