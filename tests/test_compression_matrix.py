"""Eq. (1) matrices, plateaus, FoV geometry."""

import numpy as np
import pytest

from repro.compression.matrix import (
    build_mode_matrix,
    fov_tile_offsets,
    pixel_ratio,
    roi_region_tiles,
)
from repro.config import ViewerConfig


def test_roi_centre_is_lossless(grid):
    matrix = build_mode_matrix(grid, (5, 4), 1.5)
    assert matrix[5, 4] == 1.0


def test_levels_follow_eq1(grid):
    c = 1.4
    matrix = build_mode_matrix(grid, (0, 0), c)
    assert matrix[1, 0] == pytest.approx(c)
    assert matrix[0, 2] == pytest.approx(c**2)
    assert matrix[3, 2] == pytest.approx(c**5)


def test_cyclic_shift_in_x(grid):
    """Shifting the ROI cyclically shifts the matrix (§4.1)."""
    c = 1.3
    base = build_mode_matrix(grid, (0, 4), c)
    shifted = build_mode_matrix(grid, (3, 4), c)
    assert np.allclose(np.roll(base, 3, axis=0), shifted)


def test_x_distance_wraps(grid):
    matrix = build_mode_matrix(grid, (0, 4), 1.5)
    assert matrix[11, 4] == pytest.approx(1.5)  # one step the short way round
    assert matrix[6, 4] == pytest.approx(1.5**6)  # antipode


def test_plateau_keeps_core_lossless(grid):
    matrix = build_mode_matrix(grid, (5, 4), 1.8, plateau=(1, 1))
    for di in (-1, 0, 1):
        for dj in (-1, 0, 1):
            assert matrix[5 + di, 4 + dj] == 1.0
    assert matrix[7, 4] == pytest.approx(1.8)


def test_matrix_symmetry_about_roi(grid):
    matrix = build_mode_matrix(grid, (6, 4), 1.5)
    assert matrix[5, 4] == matrix[7, 4]
    assert matrix[6, 3] == matrix[6, 5]


def test_pixel_ratio_bounds(grid):
    uniform = np.ones((grid.tiles_x, grid.tiles_y))
    assert pixel_ratio(uniform) == pytest.approx(1.0)
    aggressive = build_mode_matrix(grid, (0, 4), 1.8)
    conservative = build_mode_matrix(grid, (0, 4), 1.1)
    assert 0.0 < pixel_ratio(aggressive) < pixel_ratio(conservative) < 1.0


def test_fov_tile_offsets_match_hmd(grid):
    offsets = fov_tile_offsets(grid, ViewerConfig(fov_x_deg=100.0, fov_y_deg=90.0))
    xs = {dx for dx, _ in offsets}
    ys = {dy for _, dy in offsets}
    assert xs == {-1, 0, 1}
    assert ys == {-2, -1, 0, 1, 2}


def test_roi_region_tiles_wrap_and_clip(grid):
    offsets = [(-1, 0), (0, 0), (1, 0), (0, -1), (0, 1)]
    tiles = roi_region_tiles(grid, (0, 0), offsets)
    assert (11, 0) in tiles  # wrapped in x
    assert all(0 <= j < grid.tiles_y for _, j in tiles)
    assert len(tiles) == 4  # (0, -1) clipped away
