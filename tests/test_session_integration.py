"""Integration tests: the full telephony stack end to end.

These run short sessions (tens of simulated seconds) and check system
behaviour, not exact numbers.
"""

import dataclasses

import numpy as np
import pytest

from repro import SessionConfig, run_session
from repro.roi.users import USER_PROFILES
from repro.telephony.session import TelephonySession
from repro.traces import scenarios


@pytest.fixture(scope="module")
def cellular_result():
    config = scenarios.cellular(scheme="poi360", transport="gcc", duration=40.0, seed=11)
    return run_session(config, warmup=15.0)


@pytest.fixture(scope="module")
def wireline_result():
    config = scenarios.wireline(scheme="poi360", transport="gcc", duration=40.0, seed=11)
    return run_session(config, warmup=15.0)


def test_frames_flow_end_to_end(cellular_result):
    assert cellular_result.summary.frames_displayed > 500
    # Frames captured during the warm-up can still display afterwards,
    # so allow up to ~1 s of in-flight slack.
    assert (
        cellular_result.log.frames_sent
        >= cellular_result.summary.frames_displayed - 35
    )


def test_delays_plausible(cellular_result, wireline_result):
    cellular_median = cellular_result.summary.delay.median
    wireline_median = wireline_result.summary.delay.median
    assert 0.15 < cellular_median < 0.8
    assert 0.08 < wireline_median < 0.35
    assert wireline_median < cellular_median


def test_quality_recorded(cellular_result):
    quality = cellular_result.summary.quality
    assert 20.0 < quality.mean_psnr < 45.0
    assert sum(quality.mos_pdf.values()) == pytest.approx(1.0)


def test_roi_feedback_reaches_sender():
    config = scenarios.cellular(scheme="poi360", transport="gcc", duration=20.0, seed=3)
    session = TelephonySession(config)
    session.run(20.0)
    # The sender's ROI knowledge must have left its initial value and
    # followed the viewer.
    assert session.sender.roi_knowledge != (0, session.grid.tiles_y // 2) or (
        session.receiver._viewport.roi_center == session.sender.roi_knowledge
    )


def test_mismatch_feedback_drives_modes():
    config = scenarios.cellular(scheme="poi360", transport="gcc", duration=30.0, seed=3)
    session = TelephonySession(config)
    session.run(30.0)
    # Started at the conservative mode 8; feedback must have moved it.
    assert session.scheme.current_mode.index < 8
    assert session.log.mode_switches >= 1


def test_throughput_within_uplink_capacity(cellular_result):
    assert cellular_result.summary.throughput.mean < 6e6
    assert cellular_result.summary.throughput.mean > 0.3e6


def test_fbcc_session_runs_and_uses_diag():
    config = scenarios.cellular(scheme="poi360", transport="fbcc", duration=30.0, seed=5)
    session = TelephonySession(config)
    result = session.run(30.0, warmup=10.0)
    assert result.summary.frames_displayed > 300
    assert session.transport.bandwidth.rate_bps > 0


def test_fbcc_requires_lte():
    config = scenarios.wireline(scheme="poi360", transport="fbcc", duration=5.0)
    with pytest.raises(ValueError):
        TelephonySession(config)


def test_unknown_transport_rejected():
    config = dataclasses.replace(scenarios.cellular(), transport="tcp-vegas")
    with pytest.raises(ValueError):
        TelephonySession(config)


def test_seed_reproducibility():
    config = scenarios.cellular(scheme="conduit", transport="gcc", duration=15.0, seed=21)
    a = run_session(config)
    b = run_session(config)
    assert a.summary.frames_displayed == b.summary.frames_displayed
    assert a.summary.quality.mean_psnr == pytest.approx(b.summary.quality.mean_psnr)
    assert a.summary.delay.median == pytest.approx(b.summary.delay.median)


def test_different_seeds_differ():
    base = scenarios.cellular(scheme="poi360", transport="gcc", duration=15.0, seed=1)
    other = dataclasses.replace(base, seed=2)
    a = run_session(base)
    b = run_session(other)
    assert a.summary.quality.mean_psnr != pytest.approx(b.summary.quality.mean_psnr)


def test_user_profiles_apply():
    config = scenarios.cellular(scheme="poi360", transport="gcc", duration=15.0, seed=4)
    result = run_session(config, profile=USER_PROFILES[0])
    assert result.config.viewer.dwell_mean == USER_PROFILES[0].dwell_mean


def test_warmup_excluded_from_metrics():
    config = scenarios.cellular(scheme="poi360", transport="gcc", duration=20.0, seed=6)
    session = TelephonySession(config)
    result = session.run(20.0, warmup=10.0)
    assert result.log.start_time == pytest.approx(10.0)
    assert all(t >= 10.0 for t, _ in result.log.roi_levels)
    # Roughly 20 s worth of frames, not 30.
    assert result.summary.frames_displayed < 25 * 30


def test_summary_to_dict_keys(cellular_result):
    table = cellular_result.summary.to_dict()
    for key in ("scheme", "transport", "mean_psnr_db", "freeze_ratio"):
        assert key in table
