"""Persistent result cache: round-trips, invalidation, controls."""

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import cache
from repro.experiments.runner import (
    ExperimentSettings,
    clear_cache,
    run_sessions,
)

TINY = ExperimentSettings(duration=8.0, warmup=4.0, repetitions=1, num_users=1)

_SUBPROCESS_SCRIPT = """
import dataclasses, hashlib
from repro.experiments.runner import ExperimentSettings, run_sessions

settings = ExperimentSettings(duration=8.0, warmup=4.0, repetitions=1, num_users=1)
results = run_sessions("cellular", "poi360", "gcc", settings)
payload = repr([
    (dataclasses.asdict(r.summary), r.log.frame_delays, r.log.roi_psnrs)
    for r in results
])
print(hashlib.sha256(payload.encode()).hexdigest())
"""


@pytest.fixture(autouse=True)
def _fresh_cache(tmp_path):
    clear_cache()
    cache.set_cache_dir(tmp_path / "cache")
    cache.set_cache_enabled(True)
    yield
    cache.set_cache_enabled(None)
    cache.set_cache_dir(None)
    clear_cache()


def _key(settings=TINY):
    return cache.condition_key(
        settings,
        "cellular",
        "poi360",
        "gcc",
        (profile.name for profile in settings.users()),
    )


def _digest(results):
    return [
        (repr(dataclasses.asdict(r.summary)), r.log.frame_delays, r.log.roi_psnrs)
        for r in results
    ]


def test_disk_round_trip_within_process():
    first = run_sessions("cellular", "poi360", "gcc", TINY)
    clear_cache()  # drop L1 only; the pickle on disk must satisfy the re-run
    second = run_sessions("cellular", "poi360", "gcc", TINY)
    assert second is not first
    assert _digest(second) == _digest(first)
    assert cache.stats()["current_entries"] == 1


def test_round_trip_across_fresh_processes(tmp_path):
    """Two cold interpreters sharing only the cache dir agree bit-for-bit."""
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = str(tmp_path / "shared")
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    env.pop("REPRO_CACHE", None)
    runs = [
        subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        for _ in range(2)
    ]
    digests = [run.stdout.strip() for run in runs]
    assert digests[0] == digests[1]
    assert len(digests[0]) == 64
    pickles = list((tmp_path / "shared").rglob("*.pkl"))
    assert len(pickles) == 1  # the second process loaded, not re-stored


def test_key_changes_with_settings():
    assert _key(TINY) != _key(dataclasses.replace(TINY, duration=9.0))
    assert _key(TINY) != _key(dataclasses.replace(TINY, base_seed=2))
    assert _key(TINY) == _key(dataclasses.replace(TINY))


def test_code_salt_change_invalidates(monkeypatch):
    results = run_sessions("cellular", "poi360", "gcc", TINY)
    assert cache.load(_key()) is not None
    monkeypatch.setattr(cache, "_CODE_SALT", "0" * 12)
    assert cache.load(_key()) is None
    stats = cache.stats()
    assert stats["current_entries"] == 0
    assert stats["stale_entries"] == 1
    assert len(results) == 1


def test_disabled_cache_neither_stores_nor_loads():
    cache.set_cache_enabled(False)
    run_sessions("cellular", "poi360", "gcc", TINY)
    assert cache.stats()["current_entries"] == 0
    cache.store(_key(), [])
    assert cache.load(_key()) is None


def test_clear_removes_current_and_stale_entries(monkeypatch):
    run_sessions("cellular", "poi360", "gcc", TINY)
    stale = cache.cache_dir() / ("f" * 12)
    stale.mkdir(parents=True)
    (stale / "dead.pkl").write_bytes(b"junk")
    assert cache.clear() == 2
    stats = cache.stats()
    assert stats["current_entries"] == 0
    assert stats["stale_entries"] == 0


def test_torn_entry_is_a_miss():
    key = _key()
    path = cache.cache_dir() / cache.code_salt() / f"{key}.pkl"
    path.parent.mkdir(parents=True)
    path.write_bytes(b"\x80\x05 torn")
    assert cache.load(key) is None
