"""Firmware buffer semantics."""

import pytest

from repro.lte.firmware_buffer import FirmwareBuffer
from repro.net.packet import Packet


def _packet(size=1000.0):
    return Packet(kind="video", size_bytes=size, created=0.0)


def test_push_increases_level():
    buffer = FirmwareBuffer(capacity_bytes=10_000)
    assert buffer.push(_packet(1000))
    assert buffer.level == 1000
    assert len(buffer) == 1


def test_push_over_capacity_drops():
    buffer = FirmwareBuffer(capacity_bytes=1500)
    assert buffer.push(_packet(1000))
    assert not buffer.push(_packet(1000))
    assert buffer.level == 1000
    assert buffer.dropped_packets == 1
    assert buffer.dropped_bytes == 1000


def test_drain_partial_packet_keeps_boundary():
    buffer = FirmwareBuffer(capacity_bytes=10_000)
    packet = _packet(1000)
    buffer.push(packet)
    completed = buffer.drain(400)
    assert completed == []
    assert buffer.level == pytest.approx(600)
    completed = buffer.drain(600)
    assert completed == [packet]
    assert buffer.level == 0


def test_drain_spans_multiple_packets():
    buffer = FirmwareBuffer(capacity_bytes=10_000)
    packets = [_packet(500) for _ in range(4)]
    for packet in packets:
        buffer.push(packet)
    completed = buffer.drain(1200)
    assert completed == packets[:2]
    assert buffer.level == pytest.approx(800)


def test_drain_more_than_level():
    buffer = FirmwareBuffer(capacity_bytes=10_000)
    packet = _packet(700)
    buffer.push(packet)
    completed = buffer.drain(5000)
    assert completed == [packet]
    assert buffer.level == 0


def test_drain_empty_buffer():
    buffer = FirmwareBuffer(capacity_bytes=1000)
    assert buffer.drain(100) == []
    assert buffer.level == 0


def test_fifo_order_preserved():
    buffer = FirmwareBuffer(capacity_bytes=10_000)
    first, second = _packet(100), _packet(100)
    buffer.push(first)
    buffer.push(second)
    assert buffer.drain(100) == [first]
    assert buffer.drain(100) == [second]
