"""eNodeB PF-style grant engine: the Fig. 5 relation and its pieces."""

import numpy as np
import pytest

from repro.config import CellConfig, ChannelConfig, LteConfig
from repro.lte.cell import CellLoadProcess
from repro.lte.channel import ChannelProcess
from repro.lte.scheduler import EnbScheduler
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry
from repro.units import kbytes


def _build(load=0.1, rss=-82.0, seed=1):
    sim = Simulation()
    rng = RngRegistry(seed)
    config = LteConfig(
        channel=ChannelConfig(
            rss_dbm=rss, shadow_sigma_db=0.01, deep_fade_rate_per_min=0.0
        ),
        cell=CellConfig(background_load=load, load_sigma=0.0),
    )
    channel = ChannelProcess(sim, config.channel, rng.stream("ch"))
    cell = CellLoadProcess(sim, config.cell, rng.stream("cell"))
    scheduler = EnbScheduler(config, channel, cell, rng.stream("sched"))
    return sim, scheduler, config


def _mean_grant_rate(scheduler, backlog, subframes=30_000):
    """Average service rate (bps) at a steadily-held backlog."""
    total = 0.0
    for _ in range(subframes):
        total += scheduler.grant_for_subframe(backlog, backlog)
    return total * 8.0 / (subframes / 1000.0)


def test_no_grant_without_backlog():
    _, scheduler, _ = _build()
    assert scheduler.grant_for_subframe(0.0, 0.0) == 0.0


def test_grant_never_exceeds_actual_backlog():
    _, scheduler, _ = _build()
    grants = [scheduler.grant_for_subframe(kbytes(50), 500.0) for _ in range(5000)]
    assert max(grants) <= 500.0


def test_service_rate_grows_with_backlog():
    """The linear region of Fig. 5."""
    _, scheduler, _ = _build()
    low = _mean_grant_rate(scheduler, kbytes(2))
    high = _mean_grant_rate(scheduler, kbytes(8))
    assert high > 2.0 * low


def test_service_rate_saturates_past_knee():
    """The plateau of Fig. 5."""
    _, scheduler, _ = _build()
    at_knee = _mean_grant_rate(scheduler, kbytes(12))
    deep = _mean_grant_rate(scheduler, kbytes(40))
    assert deep < 1.25 * at_knee


def test_background_load_shrinks_throughput():
    _, idle_sched, _ = _build(load=0.05)
    _, busy_sched, _ = _build(load=0.6)
    idle = _mean_grant_rate(idle_sched, kbytes(20))
    busy = _mean_grant_rate(busy_sched, kbytes(20))
    assert busy < 0.7 * idle


def test_weak_signal_shrinks_throughput():
    _, strong_sched, _ = _build(rss=-73.0)
    _, weak_sched, _ = _build(rss=-115.0)
    strong = _mean_grant_rate(strong_sched, kbytes(20))
    weak = _mean_grant_rate(weak_sched, kbytes(20))
    assert weak < 0.5 * strong


def test_effective_prbs_shrink_with_load():
    _, scheduler, config = _build()
    assert scheduler.effective_prbs(0.0) > scheduler.effective_prbs(0.8)
    assert scheduler.effective_prbs(0.99) >= 2


def test_service_arrives_in_bursts():
    """Consecutive scheduled subframes cluster (burst/idle process)."""
    _, scheduler, _ = _build()
    served = [scheduler.grant_for_subframe(kbytes(10), kbytes(10)) > 0 for _ in range(20_000)]
    transitions = sum(1 for a, b in zip(served, served[1:]) if a != b)
    duty = float(np.mean(served))
    # An i.i.d. Bernoulli process would flip ~2*duty*(1-duty) per slot;
    # bursts make transitions much rarer.
    iid_transitions = 2 * duty * (1 - duty) * len(served)
    assert transitions < 0.7 * iid_transitions


def test_saturation_rate_estimate_positive():
    _, scheduler, _ = _build()
    assert scheduler.saturation_rate_bps() > 1e6
