"""Forward and reverse path composition."""

import pytest

from repro.config import LteConfig, PathConfig
from repro.net.packet import Packet
from repro.net.path import ForwardPath, ReversePath
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry


def _packet(size=1000.0):
    return Packet(kind="video", size_bytes=size, created=0.0)


def test_lte_forward_path_delivers():
    sim = Simulation()
    config = PathConfig(access="lte", random_loss=0.0)
    path = ForwardPath(sim, config, LteConfig(), RngRegistry(1).stream("f"))
    arrivals = []
    path.set_receiver(arrivals.append)
    for _ in range(5):
        path.send(_packet())
    sim.run(3.0)
    assert len(arrivals) == 5
    assert all(p.arrived and p.arrived > 0.03 for p in arrivals)


def test_wireline_forward_path_delivers():
    sim = Simulation()
    path = ForwardPath(
        sim, PathConfig.for_wireline(), LteConfig(), RngRegistry(2).stream("f")
    )
    assert path.ue is None and path.access_link is not None
    arrivals = []
    path.set_receiver(arrivals.append)
    path.send(_packet())
    sim.run(1.0)
    assert len(arrivals) == 1
    # Wireline end-to-end one-way latency is tens of milliseconds.
    assert arrivals[0].arrived < 0.05


def test_unknown_access_rejected():
    sim = Simulation()
    with pytest.raises(ValueError):
        ForwardPath(sim, PathConfig(access="carrier-pigeon"), LteConfig(), RngRegistry(1).stream("f"))


def test_access_backlog_reports_lte_buffer():
    sim = Simulation()
    path = ForwardPath(sim, PathConfig(access="lte"), LteConfig(), RngRegistry(3).stream("f"))
    path.set_receiver(lambda p: None)
    path.send(_packet(5_000))
    assert path.access_backlog_bytes == pytest.approx(5_000)


def test_reverse_path_round_trip():
    sim = Simulation()
    reverse = ReversePath(sim, PathConfig(access="lte"), RngRegistry(4).stream("r"))
    arrivals = []
    reverse.set_receiver(arrivals.append)
    reverse.send(Packet(kind="feedback", size_bytes=80, created=0.0))
    sim.run(1.0)
    assert len(arrivals) == 1
    assert arrivals[0].arrived > 0.03  # cellular feedback latency


def test_lost_packets_counter():
    sim = Simulation()
    path = ForwardPath(sim, PathConfig(access="lte"), LteConfig(), RngRegistry(5).stream("f"))
    path.set_receiver(lambda p: None)
    assert path.lost_packets == 0
