"""Seeded RNG registry."""

import numpy as np

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_stream():
    registry = RngRegistry(seed=5)
    assert registry.stream("channel") is registry.stream("channel")


def test_streams_are_reproducible_across_registries():
    a = RngRegistry(seed=42).stream("head").random(8)
    b = RngRegistry(seed=42).stream("head").random(8)
    assert np.array_equal(a, b)


def test_different_names_give_independent_streams():
    registry = RngRegistry(seed=42)
    a = registry.stream("alpha").random(8)
    b = registry.stream("beta").random(8)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(8)
    b = RngRegistry(seed=2).stream("x").random(8)
    assert not np.array_equal(a, b)


def test_spawn_derives_independent_registry():
    base = RngRegistry(seed=1)
    child = base.spawn(3)
    assert child.seed != base.seed
    a = base.stream("x").random(4)
    b = child.stream("x").random(4)
    assert not np.array_equal(a, b)


def test_adding_stream_does_not_perturb_existing():
    first = RngRegistry(seed=9)
    draws_before = first.stream("one").random(4)
    second = RngRegistry(seed=9)
    second.stream("zero")  # extra stream created first
    draws_after = second.stream("one").random(4)
    assert np.array_equal(draws_before, draws_after)
