"""Array kernels vs scalar references: bit-exactness properties.

Every ``*_array`` kernel must equal mapping its scalar twin element by
element — not approximately, *exactly* (``==`` on floats, including the
inf edges).  The same holds one level up: a full traced session run
with the vectorised kernels must be byte-identical to one run with
``set_reference_kernels(True)``.  These tests are what lets the perf
work claim "same numbers, faster".
"""

import dataclasses
import importlib.util
from pathlib import Path

import numpy as np
import pytest

from repro.compression.matrix import (
    build_mode_matrix,
    build_mode_matrix_reference,
    clear_matrix_cache,
    pixel_ratio,
)
from repro.sim.rng import RngRegistry
from repro.telephony.receiver import roi_region_psnr
from repro.telephony.session import run_session
from repro.traces.scenarios import scenario
from repro.video import quality
from repro.video.content import ContentModel
from repro.video.encoder import FrameEncoder
from repro.video.quality import (
    displayed_tile_psnr,
    displayed_tile_psnr_array,
    mse_from_psnr,
    mse_from_psnr_array,
    psnr_from_bpp,
    psnr_from_bpp_array,
    psnr_from_mse,
    psnr_from_mse_array,
    scale_psnr,
    scale_psnr_array,
    set_reference_kernels,
)


@pytest.fixture(autouse=True)
def _vectorized_kernels():
    """Tests compare against scalars explicitly; keep the mode clean."""
    previous = set_reference_kernels(False)
    yield
    set_reference_kernels(previous)


# Edge-heavy operating points: zero/negative bpp (floor), huge bpp
# (ceiling), level 1 (lossless → +inf scale PSNR), sub-unit complexity.
BPP_EDGES = np.array([-0.5, 0.0, 1e-9, 1e-4, 0.01, 0.08, 0.5, 5.0, 500.0])
LEVEL_EDGES = np.array([0.5, 1.0, 1.0000001, 1.5, 2.25, 8.0, 64.0])
MSE_EDGES = np.array([-1.0, 0.0, 1e-12, 0.5, 42.0, 65025.0])
PSNR_EDGES = np.array([-10.0, 0.0, 20.0, 37.0, 80.0, float("inf")])


def test_mse_from_psnr_array_matches_scalar():
    out = mse_from_psnr_array(PSNR_EDGES)
    assert out.tolist() == [mse_from_psnr(p) for p in PSNR_EDGES]


def test_psnr_from_mse_array_matches_scalar_including_inf():
    out = psnr_from_mse_array(MSE_EDGES)
    assert out.tolist() == [psnr_from_mse(m) for m in MSE_EDGES]
    assert out[0] == float("inf") and out[1] == float("inf")


def test_psnr_from_bpp_array_matches_scalar(video_config):
    for complexity in (0.25, 1.0, 3.7):
        out = psnr_from_bpp_array(BPP_EDGES, video_config, complexity)
        assert out.tolist() == [
            psnr_from_bpp(b, video_config, complexity) for b in BPP_EDGES
        ]
    # floor and ceiling really hit on the edge inputs
    out = psnr_from_bpp_array(BPP_EDGES, video_config, 1.0)
    assert out[0] == video_config.psnr_floor
    assert out[-1] == video_config.psnr_ceiling


def test_psnr_from_bpp_array_broadcasts_complexity(video_config):
    complexity = np.linspace(0.5, 2.0, len(BPP_EDGES))
    out = psnr_from_bpp_array(BPP_EDGES, video_config, complexity)
    assert out.tolist() == [
        psnr_from_bpp(b, video_config, c) for b, c in zip(BPP_EDGES, complexity)
    ]


def test_scale_psnr_array_matches_scalar(video_config):
    out = scale_psnr_array(LEVEL_EDGES, video_config)
    assert out.tolist() == [scale_psnr(l, video_config) for l in LEVEL_EDGES]
    assert out[0] == float("inf") and out[1] == float("inf")


def test_displayed_tile_psnr_array_matches_scalar(video_config):
    bpp, levels = np.meshgrid(BPP_EDGES, LEVEL_EDGES, indexing="ij")
    bpp, levels = bpp.ravel(), levels.ravel()
    out = displayed_tile_psnr_array(bpp, levels, video_config, 1.3)
    assert out.tolist() == [
        displayed_tile_psnr(b, l, video_config, 1.3) for b, l in zip(bpp, levels)
    ]


def test_reference_mode_kernels_equal_vectorized(video_config):
    """The REPRO_REFERENCE_KERNELS scalar loop is the same function."""
    bpp, levels = np.meshgrid(BPP_EDGES, LEVEL_EDGES, indexing="ij")
    vec = displayed_tile_psnr_array(bpp, levels, video_config)
    set_reference_kernels(True)
    ref = displayed_tile_psnr_array(bpp, levels, video_config)
    assert vec.shape == ref.shape
    assert vec.tolist() == ref.tolist()


def test_complexity_tiles_matches_scalar(grid, content):
    i = np.arange(grid.tiles_x).repeat(grid.tiles_y)
    j = np.tile(np.arange(grid.tiles_y), grid.tiles_x)
    for t in (0.0, 3.7, 120.0):
        tiles = content.complexity_tiles(i, j, t)
        assert tiles.tolist() == [
            content.complexity(int(a), int(b), t) for a, b in zip(i, j)
        ]


def test_mean_complexity_shared_by_both_modes(content):
    vec = content.mean_complexity(5.5)
    set_reference_kernels(True)
    assert content.mean_complexity(5.5) == vec


# ----------------------------------------------------------------------
# Mode-matrix cache
# ----------------------------------------------------------------------


def test_cached_matrix_bit_exact_vs_reference(grid):
    clear_matrix_cache()
    for c in (1.1, 1.5, 1.8):
        for plateau in ((1, 1), (2, 1)):
            for roi in [(0, 0), (5, 4), (11, 8), (3, 7)]:
                cached = build_mode_matrix(grid, roi, c, plateau)
                fresh = build_mode_matrix_reference(grid, roi, c, plateau)
                assert cached.tolist() == fresh.tolist()


def test_cached_matrix_is_read_only_and_shared(grid):
    clear_matrix_cache()
    first = build_mode_matrix(grid, (5, 4), 1.5, (1, 1))
    again = build_mode_matrix(grid, (5, 4), 1.5, (1, 1))
    assert again is first
    assert not first.flags.writeable
    with pytest.raises(ValueError):
        first[0, 0] = 99.0


def test_cached_matrix_wraps_roi_x(grid):
    clear_matrix_cache()
    wrapped = build_mode_matrix(grid, (5 + grid.tiles_x, 4), 1.5, (1, 1))
    assert wrapped is build_mode_matrix(grid, (5, 4), 1.5, (1, 1))


def test_pixel_ratio_memo_exact(grid):
    clear_matrix_cache()
    matrix = build_mode_matrix(grid, (7, 2), 1.5, (1, 1))
    fresh = build_mode_matrix_reference(grid, (7, 2), 1.5, (1, 1))
    assert pixel_ratio(matrix) == pixel_ratio(fresh)
    assert pixel_ratio(matrix) == pixel_ratio(matrix)  # memo hit


# ----------------------------------------------------------------------
# Bounded memos
# ----------------------------------------------------------------------


def test_config_memo_is_bounded(video_config):
    from repro.config import VideoConfig
    from repro.video.quality import _CONFIG_MEMO, _CONFIG_MEMO_MAX, anchor_bpp

    configs = [VideoConfig() for _ in range(3 * _CONFIG_MEMO_MAX)]
    for config in configs:
        anchor_bpp(config)
    assert len(_CONFIG_MEMO) <= _CONFIG_MEMO_MAX
    # entries keep strong refs, so ids cannot alias stale values
    for entry in _CONFIG_MEMO.values():
        assert entry[0] in configs


def test_matrix_cache_is_bounded(grid):
    from repro.compression import matrix as matrix_module

    clear_matrix_cache()
    cap = matrix_module._MATRIX_CACHE_MAX
    for k in range(cap + 50):
        build_mode_matrix(grid, (k % grid.tiles_x, k % grid.tiles_y), 1.0 + k * 1e-6, (1, 1))
    assert len(matrix_module._MATRIX_CACHE) <= cap
    clear_matrix_cache()


# ----------------------------------------------------------------------
# Receiver ROI-region kernel and encoder caches
# ----------------------------------------------------------------------


def _roi_crop(grid, video, center):
    half = video.roi_measure_halfwidth
    span = np.arange(-half, half + 1)
    dx, dy = np.repeat(span, len(span)), np.tile(span, len(span))
    j = center[1] + dy
    valid = (j >= 0) & (j < grid.tiles_y)
    return (center[0] + dx[valid]) % grid.tiles_x, j[valid]


def test_roi_region_psnr_matches_reference_loop(grid, video_config, content):
    matrix = build_mode_matrix(grid, (5, 4), 1.5, (1, 1))
    weights = np.abs(np.cos(np.linspace(0.0, 3.0, grid.tiles_x)))[:, None] * np.ones(
        (grid.tiles_x, grid.tiles_y)
    )
    for center in [(5, 4), (0, 0), (11, grid.tiles_y - 1)]:
        i, j = _roi_crop(grid, video_config, center)
        for w in (None, weights):
            vec = roi_region_psnr(i, j, matrix, 0.08, 2.5, video_config, content, w)
            set_reference_kernels(True)
            ref = roi_region_psnr(i, j, matrix, 0.08, 2.5, video_config, content, w)
            set_reference_kernels(False)
            assert vec == ref


def test_encoder_caches_do_not_change_frames(grid, video_config):
    def frames(reference):
        registry = RngRegistry(seed=23)
        content = ContentModel(grid, registry.stream("content"))
        encoder = FrameEncoder(
            video_config, grid, content, registry.stream("encoder"), reference=reference
        )
        out = []
        matrices = [
            build_mode_matrix(grid, (k % grid.tiles_x, 4), 1.5, (1, 1))
            for k in range(6)
        ]
        for k in range(40):
            matrix = matrices[k // 8 % len(matrices)]  # repeats → cache hits
            frame = encoder.encode(matrix, (k % grid.tiles_x, 4), 2.5e6, 0.033 * k)
            out.append(repr(dataclasses.asdict(frame)))
        return out

    assert frames(reference=False) == frames(reference=True)


# ----------------------------------------------------------------------
# End-to-end: the whole session is byte-identical pre/post kernels
# ----------------------------------------------------------------------


def _session_digest(result):
    return (
        repr(dataclasses.asdict(result.summary)),
        result.log.frame_delays,
        result.log.roi_psnrs,
        result.log.diag_seconds,
        result.log.frames_displayed,
    )


@pytest.mark.parametrize("scheme", ["poi360", "conduit", "pyramid"])
def test_session_byte_identical_with_reference_kernels(scheme):
    def run():
        config = scenario(
            "cellular", scheme=scheme, transport="gcc", duration=8.0, seed=4
        )
        return _session_digest(run_session(config, warmup=3.0))

    vectorized = run()
    set_reference_kernels(True)
    reference = run()
    set_reference_kernels(False)
    assert vectorized == reference
    assert run() == vectorized  # and deterministic across repeats


# ----------------------------------------------------------------------
# tools/check_perf.py regression gate
# ----------------------------------------------------------------------


def _load_check_perf():
    path = Path(__file__).resolve().parents[1] / "tools" / "check_perf.py"
    spec = importlib.util.spec_from_file_location("check_perf", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _record(**speedups):
    return {
        "kernels": {name: {"speedup": value} for name, value in speedups.items()},
        "single_session_vs_seed": 1.2,
    }


def test_check_perf_passes_identical_records():
    check_perf = _load_check_perf()
    record = _record(roi_quality=1.7, matrix_build=30.0)
    assert check_perf.compare(record, record) == []


def test_check_perf_fails_on_regression():
    check_perf = _load_check_perf()
    baseline = _record(roi_quality=1.7)
    fresh = _record(roi_quality=1.0)
    failures = check_perf.compare(fresh, baseline, tolerance=0.30)
    assert len(failures) == 1 and "roi_quality" in failures[0]


def test_check_perf_clamps_noisy_large_ratios():
    check_perf = _load_check_perf()
    baseline = _record(matrix_build=67.0)
    fresh = _record(matrix_build=30.0)  # huge drop, but both ≥ clamp
    assert check_perf.compare(fresh, baseline) == []
    collapsed = _record(matrix_build=2.0)
    assert len(check_perf.compare(collapsed, baseline)) == 1


def test_check_perf_fails_on_missing_kernel():
    check_perf = _load_check_perf()
    baseline = _record(roi_quality=1.7, encoder_alloc=1.9)
    fresh = _record(roi_quality=1.7)
    failures = check_perf.compare(fresh, baseline)
    assert len(failures) == 1 and "encoder_alloc" in failures[0]
