"""CQI / TBS mapping."""

import pytest

from repro.lte import tbs


def test_efficiency_monotone_in_cqi():
    efficiencies = [tbs.efficiency_for_cqi(c) for c in range(1, 16)]
    assert efficiencies == sorted(efficiencies)
    assert all(e > 0 for e in efficiencies)


def test_cqi_zero_means_outage():
    assert tbs.efficiency_for_cqi(0) == 0.0
    assert tbs.transport_block_bytes(0, 10) == 0.0


def test_cqi_above_table_clamps():
    assert tbs.efficiency_for_cqi(20) == tbs.efficiency_for_cqi(15)


def test_bytes_per_prb_matches_table():
    assert tbs.bytes_per_prb(15) == pytest.approx(5.5547 * 150 / 8)


def test_transport_block_scales_with_prbs():
    one = tbs.transport_block_bytes(10, 1)
    ten = tbs.transport_block_bytes(10, 10)
    assert ten == pytest.approx(10 * one)


def test_transport_block_zero_prbs():
    assert tbs.transport_block_bytes(10, 0) == 0.0


def test_rss_mapping_calibration_points():
    # The paper's three field locations (§6.2).
    assert tbs.cqi_from_rss(-115) == 5
    assert tbs.cqi_from_rss(-82) == 11
    assert tbs.cqi_from_rss(-73) == 13


def test_rss_mapping_clamps_to_range():
    assert tbs.cqi_from_rss(-200) == 1
    assert tbs.cqi_from_rss(-30) == 15


def test_rss_mapping_monotone():
    values = [tbs.cqi_from_rss(rss) for rss in range(-130, -50, 2)]
    assert values == sorted(values)
