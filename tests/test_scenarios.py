"""Scenario library."""

import pytest

from repro.traces import scenarios


def test_all_named_scenarios_build():
    for name in scenarios.SCENARIOS:
        config = scenarios.scenario(name, scheme="poi360", transport="gcc")
        assert config.scheme == "poi360"


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        scenarios.scenario("moonbase")


def test_wireline_uses_wireline_access():
    assert scenarios.wireline().path.access == "wireline"
    assert scenarios.cellular().path.access == "lte"


def test_rss_levels_match_paper():
    assert scenarios.rss_scenario("weak").lte.channel.rss_dbm == -115.0
    assert scenarios.rss_scenario("moderate").lte.channel.rss_dbm == -82.0
    assert scenarios.rss_scenario("strong").lte.channel.rss_dbm == -73.0
    with pytest.raises(ValueError):
        scenarios.rss_scenario("imaginary")


def test_load_levels_ordered():
    assert (
        scenarios.idle_cell().lte.cell.background_load
        < scenarios.busy_cell().lte.cell.background_load
    )


def test_driving_sets_speed_and_highway_rss():
    slow = scenarios.driving(15.0)
    highway = scenarios.driving(50.0)
    assert slow.lte.channel.speed_mph == 15.0
    assert highway.lte.channel.speed_mph == 50.0
    # The highway route runs in the open: stronger signal (§6.2).
    assert highway.lte.channel.rss_dbm > slow.lte.channel.rss_dbm


def test_with_scheme_swaps_fields():
    config = scenarios.with_scheme(scenarios.cellular(), "conduit", "fbcc")
    assert config.scheme == "conduit"
    assert config.transport == "fbcc"


def test_overrides_flow_through():
    config = scenarios.scenario("busy_cell", duration=12.0, seed=99)
    assert config.duration == 12.0
    assert config.seed == 99
