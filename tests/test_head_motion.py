"""Head-motion model and viewport mapping."""

import dataclasses

import numpy as np
import pytest

from repro.config import ViewerConfig
from repro.roi.head_motion import HeadMotion
from repro.roi.users import USER_PROFILES, profile_by_name
from repro.roi.viewport import Viewport
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry


def _run_motion(config=None, seconds=60.0, seed=5):
    sim = Simulation()
    head = HeadMotion(sim, config or ViewerConfig(), RngRegistry(seed).stream("head"))
    poses = []
    sim.every(0.02, lambda: poses.append((sim.now, head.yaw, head.pitch)))
    sim.run(seconds)
    return head, poses


def test_pitch_stays_in_limits():
    config = ViewerConfig()
    _, poses = _run_motion(config, seconds=120)
    pitches = [p for _, _, p in poses]
    assert max(pitches) <= config.pitch_limit + 1e-6
    assert min(pitches) >= -config.pitch_limit - 1e-6


def test_saccades_and_pursuits_occur():
    head, _ = _run_motion(seconds=120)
    assert head.saccades >= 3
    assert head.pursuits >= 3


def test_velocity_capped_by_acceleration_budget():
    config = ViewerConfig()
    _, poses = _run_motion(config, seconds=120)
    yaws = np.array([y for _, y, _ in poses])
    velocities = np.abs(np.diff(yaws)) / 0.02
    # Angular velocity cannot exceed the saccade peak by much (paper §8:
    # mean ~60 deg/s; our peaks are Gaussian around the profile mean).
    assert velocities.max() < 250.0


def test_head_keeps_moving():
    """Continuous drift means the gaze never freezes for long."""
    _, poses = _run_motion(seconds=60)
    yaws = np.array([y for _, y, _ in poses])
    window = 100  # 2 s of samples
    stalls = 0
    for start in range(0, len(yaws) - window, window):
        if np.ptp(yaws[start : start + window]) < 1e-3:
            stalls += 1
    assert stalls == 0


def test_profiles_change_behaviour():
    calm = profile_by_name("user1-calm").apply(ViewerConfig())
    restless = profile_by_name("user4-restless").apply(ViewerConfig())
    calm_head, _ = _run_motion(calm, seconds=120, seed=9)
    restless_head, _ = _run_motion(restless, seconds=120, seed=9)
    assert restless_head.saccades + restless_head.pursuits >= calm_head.saccades + calm_head.pursuits


def test_unknown_profile_raises():
    with pytest.raises(KeyError):
        profile_by_name("user99")


def test_profiles_unique_names():
    names = [p.name for p in USER_PROFILES]
    assert len(set(names)) == len(names) == 5


def test_viewport_maps_pose_to_tiles(grid):
    sim = Simulation()
    config = ViewerConfig()
    head = HeadMotion(sim, config, RngRegistry(2).stream("head"))
    viewport = Viewport(grid, config, head)
    head.yaw, head.pitch = 45.0, 0.0
    assert viewport.roi_center == (1, 4)
    tiles = viewport.fov_tiles()
    assert viewport.roi_center in tiles
    assert len(tiles) == 15  # 3 x 5 FoV region
    yaw, pitch = viewport.pose
    assert 0 <= yaw < 360
