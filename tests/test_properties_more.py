"""Second batch of property-based tests (codec, traces, geometry)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lte.diag_log import decode_stream, encode_frame
from repro.lte.diagnostics import DiagRecord
from repro.roi.traces import HeadTrace
from repro.video.frame import TileGrid
from repro.video.projection import (
    angles_to_vector,
    solid_angle_weights,
    vector_to_angles,
)

record_strategy = st.builds(
    DiagRecord,
    time=st.floats(0.0, 1e6, allow_nan=False),
    buffer_bytes=st.floats(0.0, 1e6, allow_nan=False, width=32),
    tbs_bytes=st.floats(0.0, 1e5, allow_nan=False, width=32),
)


@given(st.lists(record_strategy, max_size=200))
@settings(max_examples=50)
def test_diag_codec_roundtrip(records):
    decoded = decode_stream(encode_frame(records))
    assert len(decoded) == len(records)
    for original, restored in zip(records, decoded):
        assert math.isclose(original.time, restored.time, rel_tol=1e-12)
        assert math.isclose(
            original.buffer_bytes, restored.buffer_bytes, rel_tol=1e-6, abs_tol=1e-3
        )


@given(
    st.lists(
        st.tuples(st.floats(0.01, 1.0), st.floats(-720, 720), st.floats(-55, 55)),
        min_size=2,
        max_size=40,
    ),
    st.floats(0.0, 50.0),
)
def test_head_trace_interpolation_bounded(deltas, query):
    t = 0.0
    samples = []
    for dt, yaw, pitch in deltas:
        t += dt
        samples.append((t, yaw, pitch))
    trace = HeadTrace(samples=tuple(samples))
    yaw, pitch = trace.pose_at(query)
    yaws = [y for _, y, _ in samples]
    pitches = [p for _, _, p in samples]
    assert min(yaws) - 1e-9 <= yaw <= max(yaws) + 1e-9
    assert min(pitches) - 1e-9 <= pitch <= max(pitches) + 1e-9


@given(yaw=st.floats(0.0, 360.0), pitch=st.floats(-89.9, 89.9))
def test_angles_vector_roundtrip_property(yaw, pitch):
    back_yaw, back_pitch = vector_to_angles(*angles_to_vector(yaw, pitch))
    # Yaw is degenerate at the poles; compare directions instead.
    a = np.array(angles_to_vector(yaw, pitch))
    b = np.array(angles_to_vector(back_yaw, back_pitch))
    assert np.allclose(a, b, atol=1e-9)


@given(
    tiles_x=st.sampled_from([4, 6, 8, 12, 24]),
    tiles_y=st.sampled_from([2, 4, 8, 16]),
)
def test_solid_angle_weights_any_grid(tiles_x, tiles_y):
    grid = TileGrid(width=tiles_x * 8, height=tiles_y * 8, tiles_x=tiles_x, tiles_y=tiles_y)
    weights = solid_angle_weights(grid)
    assert weights.shape == (tiles_x, tiles_y)
    assert np.all(weights > 0)
    assert weights.mean() == np.float64(1.0) or abs(weights.mean() - 1.0) < 1e-12


@given(st.floats(0.0, 5.0), st.floats(0.0, 5.0), st.integers(0, 40))
def test_freeze_ratio_monotone_in_threshold(d1, d2, lost):
    from repro.metrics.freeze import freeze_ratio

    delays = [d1, d2]
    strict = freeze_ratio(delays, threshold=0.2, lost_frames=lost)
    lenient = freeze_ratio(delays, threshold=2.0, lost_frames=lost)
    assert lenient <= strict


@given(
    field=st.sampled_from(
        [
            ("lte.channel.rss_dbm", -100.0),
            ("lte.cell.background_load", 0.33),
            ("video.fps", 24.0),
            ("gcc.start_rate", 5e5),
            ("fbcc.k_consecutive", 7),
            ("viewer.dwell_mean", 1.5),
        ]
    )
)
def test_replace_field_sets_exactly(field):
    from repro.config import SessionConfig
    from repro.experiments.sweeps import replace_field

    dotted, value = field
    config = replace_field(SessionConfig(), dotted, value)
    node = config
    for part in dotted.split("."):
        node = getattr(node, part)
    assert node == value
