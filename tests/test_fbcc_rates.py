"""FBCC encoding-rate control (Eq. 6) and RTP sweet-spot control (Eq. 7)."""

import pytest

from repro.config import FbccConfig
from repro.lte.diagnostics import DiagRecord
from repro.rate_control.fbcc.encoding import EncodingRateControl
from repro.rate_control.fbcc.rtp import RtpRateControl, SweetSpotLearner
from repro.units import kbytes, mbps


def _record(level, t=0.0, tbs=0.0):
    return DiagRecord(time=t, buffer_bytes=level, tbs_bytes=tbs)


class TestEncodingRateControl:
    def _control(self, gcc_rate=mbps(3.0), rtt=0.3, config=None):
        return EncodingRateControl(
            config or FbccConfig(), gcc_rate=lambda: gcc_rate, rtt=lambda: rtt
        )

    def test_follows_gcc_without_congestion(self):
        control = self._control()
        assert control.rate(10.0) == pytest.approx(mbps(3.0))
        assert not control.holding(10.0)

    def test_congestion_pins_rate_to_phy(self):
        config = FbccConfig()
        control = self._control(config=config)
        control.on_congestion(mbps(2.0), now=10.0)
        assert control.holding(10.1)
        assert control.rate(10.1) == pytest.approx(
            mbps(2.0) * config.phy_rate_margin
        )

    def test_hold_lasts_two_rtts(self):
        control = self._control(rtt=0.3)
        control.on_congestion(mbps(2.0), now=10.0)
        assert control.holding(10.0 + 2 * 0.3 - 0.01)
        assert not control.holding(10.0 + 2 * 0.3 + 0.01)
        assert control.rate(11.0) == pytest.approx(mbps(3.0))

    def test_redetection_extends_hold(self):
        control = self._control(rtt=0.3)
        control.on_congestion(mbps(2.0), now=10.0)
        control.on_congestion(mbps(1.5), now=10.5)
        assert control.holding(11.0)
        assert control.congestion_events == 2


class TestRtpRateControl:
    def test_low_buffer_raises_rate(self):
        control = RtpRateControl(FbccConfig(), initial_rate=mbps(2.0), interval=0.04)
        batch = [_record(kbytes(2))]
        rate = control.on_batch(batch, tbs_rate_bps=mbps(2.0))
        # Eq. 7: + (10 KB - 2 KB)/40 ms in bytes/s → +1.6 Mbps.
        assert rate == pytest.approx(mbps(2.0) + (kbytes(8) / 0.04) * 8, rel=0.01)

    def test_high_buffer_lowers_rate_to_floor(self):
        config = FbccConfig()
        video_rate = mbps(2.0)
        control = RtpRateControl(
            config, initial_rate=mbps(8.0), interval=0.04, video_rate=lambda: video_rate
        )
        batch = [_record(kbytes(40))]
        rate = control.on_batch(batch, tbs_rate_bps=mbps(2.0))
        assert rate == pytest.approx(
            RtpRateControl.VIDEO_RATE_FLOOR * video_rate
        )

    def test_rate_clamped_to_bounds(self):
        config = FbccConfig()
        control = RtpRateControl(config, initial_rate=config.rtp_max_rate, interval=0.04)
        rate = control.on_batch([_record(0.0)], tbs_rate_bps=0.0)
        assert rate == config.rtp_max_rate

    def test_empty_batch_keeps_rate(self):
        control = RtpRateControl(FbccConfig(), initial_rate=mbps(1.0), interval=0.04)
        assert control.on_batch([], tbs_rate_bps=0.0) == pytest.approx(mbps(1.0))

    def test_configured_target_used(self):
        config = FbccConfig(target_buffer=kbytes(12))
        control = RtpRateControl(config, initial_rate=mbps(1.0), interval=0.04)
        assert control.target_buffer == kbytes(12)


class TestSweetSpotLearner:
    def test_default_until_enough_bins(self):
        learner = SweetSpotLearner()
        assert learner.target(default=1234.0) == 1234.0

    def test_learns_knee(self):
        learner = SweetSpotLearner()
        # Linear-then-saturating profile: plateau from ~8 KB on.
        for level_kb, rate in ((1, 0.5), (3, 1.5), (5, 2.5), (8, 3.0), (12, 3.1), (20, 3.0)):
            for _ in range(50):
                learner.observe(kbytes(level_kb), mbps(rate))
        target = learner.target(default=0.0)
        assert kbytes(6) < target < kbytes(14)

    def test_learner_enabled_when_target_none(self):
        config = FbccConfig(target_buffer=None)
        control = RtpRateControl(config, initial_rate=mbps(1.0), interval=0.04)
        assert control.target_buffer == RtpRateControl.DEFAULT_TARGET
