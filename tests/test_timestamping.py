"""Colored-block frame timestamping (§5 measurement system)."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry
from repro.telephony.timestamping import (
    NUM_DIGITS,
    PALETTE,
    decode_timestamp,
    encode_timestamp,
)


def test_roundtrip_exact():
    for t in (0.0, 0.042, 1.5, 123.456, 86_399.999):
        blocks = encode_timestamp(t)
        assert decode_timestamp(blocks) == pytest.approx(t, abs=0.0005)


def test_block_count():
    assert len(encode_timestamp(12.3)) == NUM_DIGITS


def test_palette_has_ten_distinct_colors():
    assert len(PALETTE) == 10
    assert len(set(PALETTE)) == 10


def test_palette_separation_dominates_noise():
    colors = np.asarray(PALETTE, dtype=float)
    min_distance = min(
        np.linalg.norm(colors[i] - colors[j])
        for i in range(10)
        for j in range(i + 1, 10)
    )
    assert min_distance > 100.0  # >> the ~6 RGB-unit averaging noise


def test_roundtrip_under_pixel_noise():
    rng = RngRegistry(11).stream("ts")
    for t in np.linspace(0.0, 500.0, 23):
        blocks = encode_timestamp(float(t))
        decoded = decode_timestamp(blocks, rng=rng, pixel_noise_std=10.0)
        assert decoded == pytest.approx(float(t), abs=0.0005)


def test_wraps_after_modulus():
    day_ish = (10**NUM_DIGITS) / 1000.0
    blocks = encode_timestamp(day_ish + 1.5)
    assert decode_timestamp(blocks) == pytest.approx(1.5, abs=0.001)
