"""Shared fixtures for the POI360 reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    CompressionConfig,
    LteConfig,
    SessionConfig,
    VideoConfig,
    ViewerConfig,
)
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry
from repro.video.content import ContentModel
from repro.video.frame import TileGrid


@pytest.fixture
def sim() -> Simulation:
    return Simulation()


@pytest.fixture
def rng() -> np.random.Generator:
    return RngRegistry(seed=1234).stream("tests")


@pytest.fixture
def grid() -> TileGrid:
    video = VideoConfig()
    return TileGrid(video.width, video.height, video.tiles_x, video.tiles_y)


@pytest.fixture
def video_config() -> VideoConfig:
    return VideoConfig()


@pytest.fixture
def viewer_config() -> ViewerConfig:
    return ViewerConfig()


@pytest.fixture
def compression_config() -> CompressionConfig:
    return CompressionConfig()


@pytest.fixture
def lte_config() -> LteConfig:
    return LteConfig()


@pytest.fixture
def session_config() -> SessionConfig:
    return SessionConfig(duration=10.0, seed=7)


@pytest.fixture
def content(grid, rng) -> ContentModel:
    return ContentModel(grid, rng)
