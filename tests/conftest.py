"""Shared fixtures for the POI360 reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    CompressionConfig,
    LteConfig,
    SessionConfig,
    VideoConfig,
    ViewerConfig,
)
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry
from repro.video.content import ContentModel
from repro.video.frame import TileGrid


@pytest.fixture
def sim() -> Simulation:
    return Simulation()


@pytest.fixture
def rng() -> np.random.Generator:
    return RngRegistry(seed=1234).stream("tests")


@pytest.fixture
def grid() -> TileGrid:
    video = VideoConfig()
    return TileGrid(video.width, video.height, video.tiles_x, video.tiles_y)


@pytest.fixture
def video_config() -> VideoConfig:
    return VideoConfig()


@pytest.fixture
def viewer_config() -> ViewerConfig:
    return ViewerConfig()


@pytest.fixture
def compression_config() -> CompressionConfig:
    return CompressionConfig()


@pytest.fixture
def lte_config() -> LteConfig:
    return LteConfig()


@pytest.fixture
def session_config() -> SessionConfig:
    return SessionConfig(duration=10.0, seed=7)


@pytest.fixture
def content(grid, rng) -> ContentModel:
    return ContentModel(grid, rng)


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the persistent experiment cache at a per-run scratch dir.

    Unit tests must never read results produced by a previous run (or
    pollute the working tree with ``.repro_cache/``); the benchmark
    suite manages its own persistent cache in ``benchmarks/conftest.py``.
    """
    from repro.experiments import cache

    cache.set_cache_dir(tmp_path_factory.mktemp("repro_cache"))
    yield
    cache.set_cache_dir(None)
