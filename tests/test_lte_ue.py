"""UE uplink: end-to-end subframe pipeline and diag logging."""

import numpy as np
import pytest

from repro.config import CellConfig, ChannelConfig, LteConfig
from repro.lte.ue import UeUplink
from repro.net.packet import Packet
from repro.sim.engine import Simulation
from repro.sim.rng import RngRegistry
from repro.units import BITS_PER_BYTE, mbps


def _quiet_lte(**overrides):
    return LteConfig(
        channel=ChannelConfig(shadow_sigma_db=0.01, deep_fade_rate_per_min=0.0),
        cell=CellConfig(background_load=0.1, load_sigma=0.0),
        **overrides,
    )


def _run_ue(rate_bps, seconds=20.0, seed=2, config=None):
    sim = Simulation()
    delivered = []
    ue = UeUplink(
        sim, config or _quiet_lte(), RngRegistry(seed).stream("ue"), sink=delivered.append
    )
    interval = 1200 * BITS_PER_BYTE / rate_bps

    def inject():
        ue.send(Packet(kind="video", size_bytes=1200, created=sim.now))

    sim.every(interval, inject)
    sim.run(seconds)
    return sim, ue, delivered


def test_packets_flow_through():
    _, ue, delivered = _run_ue(mbps(1.0))
    assert len(delivered) > 0
    assert ue.bytes_sent > 0


def test_throughput_matches_offered_load_below_capacity():
    _, ue, delivered = _run_ue(mbps(1.0), seconds=30)
    delivered_rate = sum(p.size_bytes for p in delivered) * 8 / 30
    assert delivered_rate == pytest.approx(1e6, rel=0.15)


def test_overload_fills_buffer_and_drops():
    _, ue, _ = _run_ue(mbps(12.0), seconds=20)
    assert ue.buffer.dropped_packets > 0
    assert ue.buffer_level > 0.5 * _quiet_lte().firmware_buffer_cap


def test_diag_records_per_subframe():
    records = []
    sim = Simulation()
    ue = UeUplink(sim, _quiet_lte(), RngRegistry(3).stream("ue"))
    ue.diag.subscribe(records.extend)
    sim.run(1.0)
    # One record per 1 ms subframe, delivered in 40 ms batches.
    assert len(records) == pytest.approx(1000, abs=50)
    assert all(r.tbs_bytes == 0 for r in records)  # nothing to send


def test_diag_batches_arrive_at_interval():
    batches = []
    sim = Simulation()
    ue = UeUplink(sim, _quiet_lte(), RngRegistry(3).stream("ue"))
    ue.diag.subscribe(lambda batch: batches.append((sim.now, len(batch))))
    sim.run(0.5)
    assert len(batches) == pytest.approx(12, abs=2)
    assert batches[0][1] == pytest.approx(40, abs=2)


def test_radio_latency_applied():
    sim = Simulation()
    arrivals = []
    config = _quiet_lte()
    ue = UeUplink(sim, config, RngRegistry(4).stream("ue"), sink=arrivals.append)
    packet = Packet(kind="video", size_bytes=200, created=0.0)
    ue.send(packet)
    sim.run(2.0)
    assert arrivals, "packet never delivered"
    assert arrivals[0].arrived is None  # sink invoked directly, no link stage
    # The packet left no earlier than the radio latency.
    assert sim.now >= config.radio_latency


def test_steady_buffer_tracks_offered_load():
    """PF coupling: a higher offered load sits at a higher buffer level."""
    _, ue_low, _ = _run_ue(mbps(0.8), seconds=30)
    _, ue_high, _ = _run_ue(mbps(2.0), seconds=30)
    assert ue_high.buffer_level >= 0.0  # smoke: attribute accessible
    # Compare time-averaged levels via bytes in flight proxy: rerun and sample.
    sim = Simulation()
    levels_low, levels_high = [], []
    for rate, sink in ((mbps(0.8), levels_low), (mbps(2.0), levels_high)):
        sim_i = Simulation()
        ue = UeUplink(sim_i, _quiet_lte(), RngRegistry(7).stream("ue"))
        sim_i.every(1200 * 8 / rate, lambda ue=ue, s=sim_i: ue.send(
            Packet(kind="video", size_bytes=1200, created=s.now)))
        sim_i.every(0.1, lambda ue=ue, out=sink: out.append(ue.buffer_level))
        sim_i.run(30.0)
    assert np.mean(levels_high[50:]) > np.mean(levels_low[50:])


def test_idle_ue_pauses_and_send_wakes():
    """With nothing to send the subframe process sleeps; send() revives it."""
    sim = Simulation()
    delivered = []
    ue = UeUplink(sim, _quiet_lte(), RngRegistry(5).stream("ue"), sink=delivered.append)
    sim.run(0.5)
    assert ue._tick.paused
    ue.send(Packet(kind="video", size_bytes=600, created=sim.now))
    assert not ue._tick.paused
    sim.run(0.5)
    assert delivered
    assert ue.bytes_sent >= 600
    assert ue._tick.paused  # buffer and BSR ring drained → asleep again


def test_idle_backfill_keeps_full_subframe_grid():
    """Paused subframes still appear as all-zero diag records on the grid."""
    from repro.units import LTE_SUBFRAME

    records = []
    sim = Simulation()
    ue = UeUplink(sim, _quiet_lte(), RngRegistry(3).stream("ue"))
    ue.diag.subscribe(records.extend)
    sim.run(0.2)
    reference = Simulation()
    grid = []
    reference.every(LTE_SUBFRAME, lambda: grid.append(reference.now))
    reference.run(0.2)
    times = [r.time for r in records]
    assert len(times) > 150
    assert times == grid[: len(times)]
    assert all(r.buffer_bytes == 0.0 and r.tbs_bytes == 0.0 for r in records)


def test_downlink_pauses_when_queue_empty():
    from repro.config import DownlinkConfig
    from repro.lte.downlink import EnbDownlink

    sim = Simulation()
    out = []
    downlink = EnbDownlink(
        sim, DownlinkConfig(), RngRegistry(9).stream("downlink"), sink=out.append
    )
    sim.run(0.5)
    assert downlink._tick.paused
    downlink.deliver(Packet(kind="diag", size_bytes=300, created=sim.now))
    sim.run(0.5)
    assert out
    assert downlink._tick.paused
