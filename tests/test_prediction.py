"""Motion-based ROI prediction (§8 extension)."""

import pytest

from repro.roi.prediction import MotionPredictor


def test_no_prediction_without_samples():
    predictor = MotionPredictor()
    assert predictor.predict(0.1) is None
    assert predictor.velocity() is None


def test_single_sample_predicts_hold():
    predictor = MotionPredictor()
    predictor.observe(0.0, 90.0, 5.0)
    assert predictor.predict(0.2) == (90.0, 5.0)


def test_constant_velocity_extrapolation():
    predictor = MotionPredictor()
    for step in range(8):
        predictor.observe(step * 0.01, 10.0 + 60.0 * step * 0.01, 0.0)
    yaw, pitch = predictor.predict(0.1)
    last_yaw = 10.0 + 60.0 * 0.07
    assert yaw == pytest.approx(last_yaw + 6.0, abs=0.2)
    assert pitch == pytest.approx(0.0, abs=0.1)


def test_velocity_estimate():
    predictor = MotionPredictor()
    for step in range(8):
        predictor.observe(step * 0.01, 30.0 * step * 0.01, -10.0 * step * 0.01)
    yaw_vel, pitch_vel = predictor.velocity()
    assert yaw_vel == pytest.approx(30.0, rel=0.05)
    assert pitch_vel == pytest.approx(-10.0, rel=0.05)


def test_prediction_fails_on_direction_change():
    """The paper's §8 point: saccades break linear prediction."""
    predictor = MotionPredictor(history=8)
    # Steady pursuit right...
    for step in range(8):
        predictor.observe(step * 0.01, 60.0 * step * 0.01, 0.0)
    predicted_yaw, _ = predictor.predict(0.12)
    # ... but the head actually snaps back (a saccade reversal).
    actual_yaw = 60.0 * 0.07 - 80.0 * 0.12
    assert abs(predicted_yaw - actual_yaw) > 10.0


def test_duplicate_timestamps_handled():
    predictor = MotionPredictor()
    predictor.observe(1.0, 10.0, 0.0)
    predictor.observe(1.0, 10.0, 0.0)
    assert predictor.velocity() is None
    assert predictor.predict(0.1) == (10.0, 0.0)
