"""Forward error correction (ULPFEC-style)."""

import dataclasses

import pytest

from repro.net.packet import Packet
from repro.rate_control.fec import FecDecoder, FecEncoder


def _media(seq, size=1200.0):
    return Packet(
        kind="video",
        size_bytes=size,
        created=0.1 * seq,
        payload={"seq": seq, "frame": f"frame-{seq // 5}", "frame_seq": seq % 5,
                 "frame_packets": 5},
    )


def _protected_group(group_size=5, start_seq=0):
    parities = []
    encoder = FecEncoder(group_size, send_parity=parities.append)
    packets = [_media(start_seq + i) for i in range(group_size)]
    for packet in packets:
        encoder.on_media(packet)
    assert len(parities) == 1
    return packets, parities[0]


def test_parity_emitted_per_group():
    parities = []
    encoder = FecEncoder(4, send_parity=parities.append)
    for seq in range(12):
        encoder.on_media(_media(seq))
    assert len(parities) == 3
    assert encoder.parity_sent == 3
    assert encoder.overhead_ratio == pytest.approx(0.25)


def test_parity_size_matches_largest_member():
    parities = []
    encoder = FecEncoder(3, send_parity=parities.append)
    encoder.on_media(_media(0, size=400))
    encoder.on_media(_media(1, size=1200))
    encoder.on_media(_media(2, size=800))
    assert parities[0].size_bytes == 1200


def test_group_size_validated():
    with pytest.raises(ValueError):
        FecEncoder(1, send_parity=lambda p: None)


def test_single_loss_recovered():
    packets, parity = _protected_group()
    decoder = FecDecoder()
    recovered = []
    for packet in packets[:2] + packets[3:]:  # drop seq 2
        recovered += decoder.on_media(packet)
    assert not recovered  # parity not seen yet
    recovered += decoder.on_parity(parity)
    assert len(recovered) == 1
    rebuilt = recovered[0]
    assert rebuilt.payload["seq"] == 2
    assert rebuilt.payload["fec_recovered"]
    assert rebuilt.payload["rtx"]
    assert decoder.recovered_packets == 1


def test_recovery_with_parity_first():
    packets, parity = _protected_group(start_seq=10)
    decoder = FecDecoder()
    recovered = list(decoder.on_parity(parity))
    for packet in packets[1:]:
        recovered += decoder.on_media(packet)
    assert [p.payload["seq"] for p in recovered] == [10]


def test_double_loss_not_recoverable():
    packets, parity = _protected_group()
    decoder = FecDecoder()
    for packet in packets[2:]:  # drop seqs 0 and 1
        decoder.on_media(packet)
    assert decoder.on_parity(parity) == []
    assert decoder.recovered_packets == 0


def test_complete_group_recovers_nothing():
    packets, parity = _protected_group()
    decoder = FecDecoder()
    for packet in packets:
        assert decoder.on_media(packet) == []
    assert decoder.on_parity(parity) == []


def test_end_to_end_session_with_fec_and_loss():
    from repro.telephony.session import run_session
    from repro.traces.scenarios import cellular

    base = cellular(scheme="poi360", transport="gcc", duration=25.0, seed=41)
    lossy_path = dataclasses.replace(base.path, random_loss=0.02)
    with_fec = dataclasses.replace(
        base,
        path=lossy_path,
        fec=dataclasses.replace(base.fec, enabled=True, group_size=8),
    )
    result = run_session(with_fec)
    assert result.summary.frames_displayed > 400
    assert result.summary.freeze_ratio < 0.2
