"""Eq. (2): the ROI mismatch-time estimator."""

import pytest

from repro.compression.mismatch import MismatchEstimator


def test_converged_frames_report_frame_delay():
    estimator = MismatchEstimator(window_s=2.0)
    m = estimator.observe_frame(1.0, frame_delay=0.3, now=1.0)
    assert m == pytest.approx(0.3)


def test_mismatch_counts_from_roi_change():
    estimator = MismatchEstimator(window_s=2.0)
    estimator.observe_roi((5, 4), now=0.0)
    estimator.observe_roi((6, 4), now=1.0)  # ROI change at t=1
    m = estimator.observe_frame(2.0, frame_delay=0.2, now=1.5)
    assert m == pytest.approx(0.5)


def test_mismatch_floored_at_frame_delay():
    estimator = MismatchEstimator(window_s=2.0)
    estimator.observe_roi((5, 4), now=0.0)
    estimator.observe_roi((6, 4), now=1.0)
    m = estimator.observe_frame(2.0, frame_delay=0.8, now=1.1)
    assert m == pytest.approx(0.8)


def test_clock_resets_on_convergence():
    estimator = MismatchEstimator(window_s=10.0)
    estimator.observe_roi((5, 4), now=0.0)
    estimator.observe_roi((6, 4), now=1.0)
    estimator.observe_frame(2.0, frame_delay=0.2, now=1.6)
    estimator.observe_frame(1.0, frame_delay=0.2, now=2.0)  # converged
    # A later mismatched frame without a recorded change counts from now.
    m = estimator.observe_frame(2.0, frame_delay=0.2, now=5.0)
    assert m == pytest.approx(0.2)


def test_consecutive_changes_extend_mismatch():
    estimator = MismatchEstimator(window_s=10.0)
    estimator.observe_roi((5, 4), now=0.0)
    estimator.observe_roi((6, 4), now=1.0)
    estimator.observe_frame(2.0, frame_delay=0.1, now=1.4)
    estimator.observe_roi((7, 4), now=1.5)  # second change before converging
    m = estimator.observe_frame(2.0, frame_delay=0.1, now=2.5)
    assert m == pytest.approx(1.5)  # still counted from the first change


def test_sliding_window_average():
    estimator = MismatchEstimator(window_s=1.0)
    estimator.observe_frame(1.0, frame_delay=0.2, now=0.0)
    estimator.observe_frame(1.0, frame_delay=0.4, now=0.5)
    assert estimator.average() == pytest.approx(0.3)
    # The first sample falls out of the window.
    estimator.observe_frame(1.0, frame_delay=0.6, now=1.2)
    assert estimator.average() == pytest.approx(0.5)


def test_average_empty_is_zero():
    assert MismatchEstimator(window_s=2.0).average() == 0.0


def test_converged_level_reference():
    """With a plateau profile, convergence is judged against the level a
    fresh ROI would give, not the literal l_min."""
    estimator = MismatchEstimator(window_s=2.0)
    m = estimator.observe_frame(
        1.2, frame_delay=0.2, now=1.0, converged_level=1.2
    )
    assert m == pytest.approx(0.2)  # converged: displayed == reference
    m = estimator.observe_frame(
        1.5, frame_delay=0.2, now=2.0, converged_level=1.2
    )
    assert m >= 0.2  # now mismatched
