"""MobileInsight-style diag monitor."""

import pytest

from repro.lte.diagnostics import DiagMonitor, DiagRecord
from repro.sim.engine import Simulation


def test_records_delivered_in_batches():
    sim = Simulation()
    monitor = DiagMonitor(sim, interval=0.040)
    batches = []
    monitor.subscribe(batches.append)
    sim.every(0.001, lambda: monitor.record(buffer_bytes=100.0, tbs_bytes=50.0))
    sim.run(0.2)
    assert len(batches) >= 4
    assert all(35 <= len(batch) <= 45 for batch in batches)


def test_empty_interval_delivers_nothing():
    sim = Simulation()
    monitor = DiagMonitor(sim, interval=0.040)
    batches = []
    monitor.subscribe(batches.append)
    sim.run(0.5)
    assert batches == []


def test_multiple_subscribers_get_same_batch():
    sim = Simulation()
    monitor = DiagMonitor(sim, interval=0.040)
    seen_a, seen_b = [], []
    monitor.subscribe(seen_a.append)
    monitor.subscribe(seen_b.append)
    monitor.record(1.0, 2.0)
    sim.run(0.1)
    assert len(seen_a) == len(seen_b) == 1
    assert seen_a[0] is seen_b[0]


def test_record_fields():
    sim = Simulation()
    monitor = DiagMonitor(sim, interval=0.040)
    batches = []
    monitor.subscribe(batches.append)
    sim.schedule(0.005, monitor.record, 1234.0, 567.0)
    sim.run(0.1)
    record = batches[0][0]
    assert isinstance(record, DiagRecord)
    assert record.time == pytest.approx(0.005)
    assert record.buffer_bytes == 1234.0
    assert record.tbs_bytes == 567.0
