"""The package's public surface."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_schemes_and_transports_enumerated():
    assert set(repro.SCHEMES) == {"poi360", "conduit", "pyramid"}
    assert set(repro.TRANSPORTS) == {"fbcc", "gcc", "gcc_ss"}


def test_session_config_defaults_sane():
    config = repro.SessionConfig()
    assert config.video.fps == 30.0
    assert config.frame_interval() == 1.0 / 30.0
    assert config.freeze_threshold == 0.6
    assert config.compression.num_modes == 8
    assert config.fbcc.k_consecutive == 10


def test_profiles_available():
    assert len(repro.USER_PROFILES) == 5
    assert repro.profile_by_name("user2-typical").name == "user2-typical"
