"""Service mode: job specs, the queue, the HTTP server, the client.

The expensive guarantees (byte-identity with the CLI, restart
recovery) run one real — tiny — simulation each; everything about
queue mechanics (dedup, cancellation, concurrency, endpoints) runs
against a monkeypatched ``execute_job`` so the tests are fast and
deterministic.
"""

import json
import threading

import pytest

from repro import cli
from repro.experiments import cache
from repro.service import jobs as service_jobs
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import (
    RESULT_NAME,
    SPEC_DEFAULTS,
    JobCancelled,
    JobOutcome,
    JobRegistry,
    execute_job,
    job_key,
    normalise_spec,
)
from repro.service.server import OPENMETRICS_CONTENT_TYPE, ServiceServer


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path):
    """Service tests need the cache ON (payload persistence) but private."""
    cache.set_cache_dir(tmp_path / "cache")
    cache.set_cache_enabled(True)
    cache.reset_counters()
    yield
    cache.set_cache_dir(None)
    cache.set_cache_enabled(None)


# ----------------------------------------------------------------------
# Specs and keys
# ----------------------------------------------------------------------


def _spec_from_namespace(kind, namespace):
    spec = {"kind": kind}
    for field in SPEC_DEFAULTS[kind]:
        spec[field] = getattr(namespace, field)
    return spec


@pytest.mark.parametrize("kind,argv", [
    ("metrics", ["metrics"]),
    ("fleet", ["fleet"]),
    ("perf", ["perf"]),
])
def test_spec_defaults_match_cli_parser(kind, argv):
    """SPEC_DEFAULTS mirrors the CLI parser defaults — no drift allowed."""
    namespace = cli.build_parser().parse_args(argv)
    from_cli = normalise_spec(_spec_from_namespace(kind, namespace))
    from_defaults = normalise_spec({"kind": kind})
    assert from_cli == from_defaults


@pytest.mark.parametrize("bad", [
    {"kind": "nope"},
    {},
    "not a dict",
    {"kind": "metrics", "bogus_field": 1},
    {"kind": "metrics", "scenario": "atlantis"},
    {"kind": "metrics", "scenario": "wireline", "transport": "fbcc"},
    {"kind": "metrics", "sessions": 0},
    {"kind": "fleet", "calls": []},
    {"kind": "fleet", "calls": [0]},
    {"kind": "fleet", "calls": "x,y"},
    {"kind": "fleet", "calls": {"n": 1}},
    {"kind": "fleet", "calls": 1.5},
    {"kind": "fleet", "batch": True, "rotate_profiles": True},
])
def test_normalise_spec_rejects(bad):
    with pytest.raises(ValueError):
        normalise_spec(bad)


def test_job_key_is_spelling_independent():
    a = job_key({"kind": "fleet", "duration": 8, "calls": "1,2"})
    b = job_key({"calls": [1, 2], "kind": "fleet", "duration": 8.0})
    assert a == b
    assert a != job_key({"kind": "fleet", "duration": 9.0, "calls": [1, 2]})


def test_calls_string_normalises_like_the_cli_flag():
    spec = normalise_spec({"kind": "fleet", "calls": "1, 2,4"})
    assert spec["calls"] == [1, 2, 4]
    # A bare integer (e.g. `repro360 submit --set calls=1`) is one value.
    assert normalise_spec({"kind": "fleet", "calls": 1})["calls"] == [1]


# ----------------------------------------------------------------------
# The shared execution path
# ----------------------------------------------------------------------


SMALL_FLEET = {
    "kind": "fleet",
    "calls": [1],
    "duration": 2.0,
    "warmup": 0.5,
    "batch": True,
}


def test_execute_job_matches_direct_cli_byte_for_byte(tmp_path, capsys):
    """A job's payload and registry ARE the CLI's --json/--metrics-output."""
    registry_path = tmp_path / "registry.json"
    code = cli.main([
        "fleet", "--calls", "1", "--duration", "2", "--warmup", "0.5",
        "--batch", "--json", "--metrics-output", str(registry_path),
    ])
    assert code == 0
    cli_stdout = capsys.readouterr().out
    outcome = execute_job(SMALL_FLEET)
    assert json.dumps(outcome.payload, indent=1) + "\n" == cli_stdout
    assert (
        json.dumps(outcome.registry, indent=1) + "\n" == registry_path.read_text()
    )


def test_execute_job_cancel_mid_sweep():
    """The cancel probe aborts between tasks and raises JobCancelled."""
    seen = []

    def progress(done, total, _result):
        seen.append((done, total))

    spec = {"kind": "metrics", "sessions": 3, "duration": 2.0, "warmup": 0.5,
            "transport": "gcc"}
    with pytest.raises(JobCancelled):
        execute_job(spec, progress=progress, cancel=lambda: bool(seen))
    # The first session completed, then the probe fired: never all three.
    assert seen and seen[-1][0] < 3


def test_execute_perf_cancel_before_first_leg():
    with pytest.raises(JobCancelled):
        execute_job({"kind": "perf", "duration": 1.0}, cancel=lambda: True)


# ----------------------------------------------------------------------
# Queue mechanics (monkeypatched execute_job — fast and deterministic)
# ----------------------------------------------------------------------


class FakeExecutor:
    """A controllable stand-in for execute_job.

    Each call blocks until :meth:`release` (or runs straight through if
    already released), heartbeats once so sealed ledgers stay valid,
    and honours the cancel probe.
    """

    def __init__(self, blocking=False):
        self.gate = threading.Event()
        if not blocking:
            self.gate.set()
        self.started = threading.Event()
        self.calls = []

    def release(self):
        self.gate.set()

    def __call__(self, spec, jobs=None, ledger=None, progress=None, cancel=None):
        self.calls.append(spec)
        self.started.set()
        while not self.gate.wait(0.05):
            if cancel is not None and cancel():
                raise JobCancelled("cancelled mid-fake")
        if cancel is not None and cancel():
            raise JobCancelled("cancelled mid-fake")
        if ledger is not None:
            ledger.heartbeat("session", done=1, total=1)
        if progress is not None:
            progress(1, 1, None)
        return JobOutcome({"echo": spec["kind"]}, registry={"counters": {}})


@pytest.fixture
def fake(monkeypatch):
    executor = FakeExecutor(blocking=True)
    monkeypatch.setattr(service_jobs, "execute_job", executor)
    return executor


def _registry(tmp_path, **kwargs):
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("recover", False)
    return JobRegistry(tmp_path / "runs", **kwargs)


def test_duplicate_submission_dedups_by_key(tmp_path, fake):
    registry = _registry(tmp_path)
    try:
        first = registry.submit({"kind": "perf"})
        assert fake.started.wait(5.0)
        second = registry.submit({"kind": "perf", "duration": 30.0})
        assert second is first  # same canonical spec, same key
        other = registry.submit({"kind": "perf", "duration": 1.0})
        assert other is not first
        meter = registry.service_meter()
        assert meter.metrics.counters["service.jobs_deduped"] == 1
        assert meter.metrics.counters["service.jobs_submitted"] == 2
        fake.release()
        assert registry.wait(first.id, timeout=10.0).state == "done"
        assert registry.wait(other.id, timeout=10.0).state == "done"
    finally:
        fake.release()
        registry.close()


def test_cancel_running_job_seals_a_cancelled_ledger(tmp_path, fake):
    from repro.obs.ledger import read_manifest

    registry = _registry(tmp_path)
    try:
        job = registry.submit({"kind": "perf"})
        assert fake.started.wait(5.0)
        assert registry.cancel(job.id)
        assert registry.wait(job.id, timeout=10.0).state == "cancelled"
        assert read_manifest(job.run_dir)["status"] == "cancelled"
        meter = registry.service_meter()
        assert meter.metrics.counters["service.jobs_cancelled"] == 1
    finally:
        fake.release()
        registry.close()


def test_cancel_queued_job_never_runs(tmp_path, fake):
    registry = _registry(tmp_path)
    try:
        running = registry.submit({"kind": "perf"})
        assert fake.started.wait(5.0)
        queued = registry.submit({"kind": "perf", "duration": 1.0})
        assert queued.state == "queued"
        assert registry.cancel(queued.id)
        fake.release()
        assert registry.wait(queued.id, timeout=10.0).state == "cancelled"
        assert queued.run_dir is None  # no ledger was ever opened
        assert registry.wait(running.id, timeout=10.0).state == "done"
        assert not registry.cancel(queued.id)  # already terminal
    finally:
        fake.release()
        registry.close()


def test_failed_job_seals_an_error_ledger(tmp_path, monkeypatch):
    from repro.obs.ledger import read_manifest

    def boom(spec, **kwargs):
        raise RuntimeError("engine exploded")

    monkeypatch.setattr(service_jobs, "execute_job", boom)
    registry = _registry(tmp_path)
    try:
        job = registry.submit({"kind": "perf"})
        assert registry.wait(job.id, timeout=10.0).state == "failed"
        assert "engine exploded" in job.error
        assert read_manifest(job.run_dir)["status"] == "error"
        assert registry.service_meter().metrics.counters[
            "service.jobs_failed"
        ] == 1
    finally:
        registry.close()


def test_cache_hit_replays_without_running(tmp_path, monkeypatch):
    executor = FakeExecutor(blocking=False)
    monkeypatch.setattr(service_jobs, "execute_job", executor)
    registry = _registry(tmp_path)
    try:
        first = registry.submit({"kind": "perf"})
        assert registry.wait(first.id, timeout=10.0).state == "done"
        again = registry.submit({"kind": "perf"})
        assert again.id != first.id
        assert again.state == "done" and again.cache_hit
        assert again.result == first.result
        assert len(executor.calls) == 1  # nothing re-ran
        meter = registry.service_meter()
        assert meter.metrics.counters["service.jobs_cache_hits"] == 1
    finally:
        registry.close()


# ----------------------------------------------------------------------
# The HTTP server and client
# ----------------------------------------------------------------------


@pytest.fixture
def served(tmp_path, monkeypatch):
    executor = FakeExecutor(blocking=False)
    monkeypatch.setattr(service_jobs, "execute_job", executor)
    registry = _registry(tmp_path, workers=2)
    server = ServiceServer(registry, port=0).start()
    client = ServiceClient(server.url, timeout=10.0)
    yield registry, server, client, executor
    server.close()


def test_endpoints_roundtrip(served):
    registry, server, client, executor = served
    assert client.healthz()["status"] == "ok"
    job = client.submit({"kind": "perf"})
    record = client.wait(job["id"], timeout=10.0)
    assert record["state"] == "done"
    assert record["result"]["payload"] == {"echo": "perf"}
    events = client.events(job["id"])
    assert events and events[0]["kind"] == "session"
    assert client.events(job["id"], since=len(events)) == []
    assert [row["id"] for row in client.jobs()] == [job["id"]]


def test_unknown_routes_and_bad_specs_are_clean_errors(served):
    _registry_, _server, client, _executor = served
    with pytest.raises(ServiceError) as error:
        client.job("job-999999")
    assert error.value.status == 404
    with pytest.raises(ServiceError) as error:
        client.submit({"kind": "alchemy"})
    assert error.value.status == 400
    with pytest.raises(ServiceError) as error:
        client._request("GET", "/teapot")
    assert error.value.status == 404


def test_metrics_scrape_passes_the_catalogue_gate(served):
    import importlib.util
    from pathlib import Path

    registry, server, client, _executor = served
    record = client.submit({"kind": "perf"})
    client.wait(record["id"], timeout=10.0)
    text = client.metrics_text()
    tool = Path(cli.__file__).resolve().parents[2] / "tools" / "check_metrics.py"
    spec = importlib.util.spec_from_file_location("check_metrics_svc", tool)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.check(text) == []
    meter = client.metrics()
    assert meter.metrics.counters["service.jobs_completed"] == 1
    assert meter.metrics.counters["service.requests"] >= 1
    assert "service.uptime_s" in meter.metrics.gauges


def test_concurrent_submitters_account_for_every_request(served):
    registry, _server, client, _executor = served
    specs = [{"kind": "perf", "duration": float(index % 3 + 1)}
             for index in range(6)]
    errors = []

    def hammer():
        for spec in specs:
            try:
                client.submit(spec)
            except ServiceError as error:  # pragma: no cover - diagnostic
                errors.append(error)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30.0)
    assert not errors
    for job in registry.list():
        assert registry.wait(job.id, timeout=10.0).state == "done"
    counters = registry.service_meter().metrics.counters
    # Every one of the 24 submissions is accounted for exactly once:
    # it either created a job record or attached to an active one.
    assert (
        counters["service.jobs_submitted"] + counters["service.jobs_deduped"]
        == len(specs) * len(threads)
    )
    # 3 distinct keys -> at least one fresh run each; the rest were
    # dedups or cache-hit replays, never lost.
    assert counters["service.jobs_completed"] >= 3


# ----------------------------------------------------------------------
# Restart recovery and real-ledger integration (one real simulation)
# ----------------------------------------------------------------------


def test_restart_recovery_and_cache_replay(tmp_path):
    root = tmp_path / "runs"
    registry = JobRegistry(root, workers=1, recover=False)
    try:
        job = registry.submit(SMALL_FLEET)
        assert registry.wait(job.id, timeout=120.0).state == "done"
        original = job.result
        assert original["payload"]["points"]
        run_dir = job.run_dir
    finally:
        registry.close()

    # A sealed service run passes the ledger contract gate, including
    # the job's result artifact riding along.
    import os
    import subprocess
    import sys
    from pathlib import Path

    repo = Path(cli.__file__).resolve().parents[2]
    tool = repo / "tools" / "check_run_ledger.py"
    proc = subprocess.run(
        [sys.executable, str(tool), run_dir],
        capture_output=True, text=True,
        env=dict(os.environ, PYTHONPATH=str(repo / "src")),
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert (Path(run_dir) / RESULT_NAME).exists()

    # Restart: the job history and its payload come back from the run
    # root alone (recovery), and an identical resubmission replays
    # instantly from the persisted payload — no simulation.
    recovered = JobRegistry(root, workers=1)
    try:
        rows = recovered.list()
        assert [job.id for job in rows] == [job.id]
        assert rows[0].state == "done"
        assert rows[0].result == original
        replay = recovered.submit(SMALL_FLEET)
        assert replay.state == "done" and replay.cache_hit
        assert replay.result == original
        # The sealed run's registry folds into the /metrics view.
        counters = recovered.service_registry().metrics.counters
        assert counters.get("fleet.sessions", 0) > 0
        assert counters["service.jobs_cache_hits"] == 1
    finally:
        recovered.close()


def test_registry_gc_prunes_only_sealed_runs(tmp_path, monkeypatch):
    executor = FakeExecutor(blocking=False)
    monkeypatch.setattr(service_jobs, "execute_job", executor)
    registry = _registry(tmp_path)
    try:
        job = registry.submit({"kind": "perf"})
        assert registry.wait(job.id, timeout=10.0).state == "done"
        assert registry.gc(keep_days=1.0) == []  # too young
        removed = registry.gc(keep_days=0.0, dry_run=True)
        assert removed == [job.run_dir]
        assert (tmp_path / "runs").joinpath(  # dry run deleted nothing
            job.run_dir.rsplit("/", 1)[-1]
        ).exists()
        removed = registry.gc(keep_days=0.0)
        assert removed == [job.run_dir]
        counters = registry.service_meter().metrics.counters
        assert counters["service.runs_gc_removed"] == 1
    finally:
        registry.close()


def test_openmetrics_content_type_header(served):
    import urllib.request

    _registry_, server, _client, _executor = served
    with urllib.request.urlopen(server.url + "/metrics", timeout=10.0) as response:
        assert response.headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
        assert response.read().decode().endswith("# EOF\n")
