"""Targeted unit tests for the sender/receiver pipelines."""

import pytest

from repro.net.packet import Packet
from repro.telephony.session import TelephonySession
from repro.traces.scenarios import cellular, wireline


@pytest.fixture
def session():
    config = cellular(scheme="poi360", transport="gcc", duration=10.0, seed=17)
    return TelephonySession(config)


class TestSender:
    def test_roi_feedback_updates_knowledge_and_mode(self, session):
        sender = session.sender
        packet = Packet(
            kind="feedback",
            size_bytes=80,
            created=0.0,
            payload={"message": {"type": "roi", "roi": (7, 3), "mismatch": 1.9}},
        )
        sender.on_feedback(packet)
        assert sender.roi_knowledge == (7, 3)
        assert session.scheme._desired_index == 8  # M=1.9 → conservative

    def test_transport_feedback_routed(self, session):
        packet = Packet(
            kind="feedback",
            size_bytes=80,
            created=0.0,
            payload={"message": {"type": "remb", "rate": 500_000.0}},
        )
        session.sender.on_feedback(packet)
        assert session.transport.video_rate == pytest.approx(500_000.0)

    def test_nack_for_unknown_seq_ignored(self, session):
        packet = Packet(
            kind="feedback",
            size_bytes=80,
            created=0.0,
            payload={"message": {"type": "nack", "seqs": [12345]}},
        )
        session.sender.on_feedback(packet)  # must not raise

    def test_retransmit_serves_recent_media(self, session):
        session.sim.run(3.0)
        sender = session.sender
        assert sender._history, "no media sent yet"
        seq = max(sender._history)
        before = len(sender.pacer._retransmits)
        sender._retransmit(seq)
        assert len(sender.pacer._retransmits) == before + 1
        rtx = sender.pacer._retransmits[-1]
        assert rtx.payload["rtx"] and rtx.payload["seq"] == seq

    def test_retransmit_skips_stale_media(self, session):
        session.sim.run(3.0)
        sender = session.sender
        seq = min(sender._history)
        # Age the packet far past the staleness bound.
        sender._history[seq].created = session.sim.now - 5.0
        before = len(sender.pacer._retransmits)
        sender._retransmit(seq)
        assert len(sender.pacer._retransmits) == before


class TestReceiver:
    def test_superseded_frames_not_displayed(self, session):
        session.sim.run(5.0)
        receiver = session.receiver
        displayed_before = session.log.frames_displayed
        delays_before = len(session.log.frame_delays)
        # Re-display an old frame: delay recorded, display rejected.
        old_capture = session.log.display_times[0] - 1.0 if session.log.display_times else 0.0
        from repro.telephony.timestamping import encode_timestamp
        import numpy as np
        from repro.video.frame import EncodedFrame

        stale = EncodedFrame(
            frame_id=999_999,
            capture_time=old_capture,
            send_start=old_capture,
            matrix=np.ones((12, 8)),
            sender_roi=(0, 4),
            size_bits=8000.0,
            bpp=0.05,
            pixel_ratio=0.5,
            timestamp_blocks=encode_timestamp(old_capture),
        )
        receiver._display(stale)
        assert len(session.log.frame_delays) == delays_before + 1
        assert session.log.frames_displayed == displayed_before

    def test_duplicate_nacks_not_sent_per_packet(self, session):
        receiver = session.receiver
        sent_feedback = []
        receiver._feedback = sent_feedback.append
        p1 = Packet(kind="video", size_bytes=100, created=0.0,
                    payload={"seq": 0, "frame": None, "frame_seq": 0, "frame_packets": 1})
        # Simulate only the sequence tracker (frame=None would break
        # assembly, so call the tracker directly).
        receiver._track_sequence(p1)
        packet5 = Packet(kind="video", size_bytes=100, created=0.0, payload={"seq": 5})
        receiver._track_sequence(packet5)
        nacks = [m for m in sent_feedback if m["type"] == "nack"]
        assert len(nacks) == 1
        assert nacks[0]["seqs"] == [1, 2, 3, 4]
        # The same gap is not re-NACKed on the next packet.
        receiver._track_sequence(Packet(kind="video", size_bytes=100, created=0.0, payload={"seq": 6}))
        assert len([m for m in sent_feedback if m["type"] == "nack"]) == 1

    def test_rtx_clears_missing(self, session):
        receiver = session.receiver
        receiver._feedback = lambda m: None
        receiver._track_sequence(Packet(kind="video", size_bytes=100, created=0.0, payload={"seq": 0}))
        receiver._track_sequence(Packet(kind="video", size_bytes=100, created=0.0, payload={"seq": 2}))
        assert 1 in receiver._missing
        receiver._track_sequence(
            Packet(kind="video", size_bytes=100, created=0.0, payload={"seq": 1, "rtx": True})
        )
        assert 1 not in receiver._missing

    def test_playout_clamped(self, session):
        receiver = session.receiver
        receiver._jitter = 10.0  # absurd jitter estimate
        assert receiver.playout_delay == session.config.video.playout_max
        receiver._jitter = 0.0
        assert receiver.playout_delay == session.config.video.playout_min

    def test_frame_delay_estimate_is_median(self, session):
        receiver = session.receiver
        for value in (0.1, 0.2, 0.3, 5.0, 5.0):  # outliers
            receiver._recent_delays.append(value)
        assert receiver.frame_delay_estimate == pytest.approx(0.3)


class TestWirelineSession:
    def test_wireline_has_no_diag(self):
        config = wireline(scheme="poi360", transport="gcc", duration=5.0, seed=2)
        session = TelephonySession(config)
        assert session.forward.ue is None
        result = session.run(5.0)
        assert result.log.diag_seconds == []
