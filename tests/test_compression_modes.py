"""Mode family and the M → mode selection rule."""

import dataclasses

import pytest

from repro.compression.modes import ModeFamily
from repro.config import CompressionConfig


def test_eight_modes_by_default(compression_config):
    family = ModeFamily(compression_config)
    assert len(family) == 8


def test_modes_ordered_by_decreasing_aggressiveness(compression_config):
    family = ModeFamily(compression_config)
    cs = [family[k].c for k in range(1, 9)]
    assert cs[0] == pytest.approx(1.8)
    assert cs[-1] == pytest.approx(1.1)
    assert cs == sorted(cs, reverse=True)


def test_mode_selection_buckets(compression_config):
    family = ModeFamily(compression_config)
    assert family.mode_for_mismatch(0.0).index == 1
    assert family.mode_for_mismatch(0.15).index == 1
    assert family.mode_for_mismatch(0.25).index == 2
    assert family.mode_for_mismatch(0.65).index == 4
    assert family.mode_for_mismatch(1.55).index == 8


def test_mode_selection_clamps_high(compression_config):
    family = ModeFamily(compression_config)
    assert family.mode_for_mismatch(60.0).index == 8


def test_mode_selection_clamps_negative(compression_config):
    family = ModeFamily(compression_config)
    assert family.mode_for_mismatch(-1.0).index == 1


def test_mode_matrices_embed_plateau(compression_config, grid):
    family = ModeFamily(compression_config)
    matrix = family[1].matrix(grid, (5, 4))
    assert matrix[6, 4] == 1.0  # inside the plateau
    assert matrix[7, 4] == pytest.approx(1.8)


def test_single_mode_family_rejected(compression_config):
    config = dataclasses.replace(compression_config, num_modes=1)
    with pytest.raises(ValueError):
        ModeFamily(config)


def test_custom_mode_count(compression_config):
    config = dataclasses.replace(compression_config, num_modes=4)
    family = ModeFamily(config)
    assert len(family) == 4
    assert family.mode_for_mismatch(10.0).index == 4
