"""Discrete-event engine semantics."""

import pytest

from repro.sim.engine import Simulation


def test_schedule_runs_in_time_order():
    sim = Simulation()
    order = []
    sim.schedule(0.3, order.append, "c")
    sim.schedule(0.1, order.append, "a")
    sim.schedule(0.2, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulation()
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(0.5, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_negative_delay_rejected():
    sim = Simulation()
    with pytest.raises(ValueError):
        sim.schedule(-0.1, lambda: None)


def test_non_finite_delay_rejected():
    sim = Simulation()
    with pytest.raises(ValueError):
        sim.schedule(float("inf"), lambda: None)


def test_run_with_duration_advances_clock_exactly():
    sim = Simulation()
    sim.run(2.5)
    assert sim.now == pytest.approx(2.5)


def test_events_beyond_deadline_stay_queued():
    sim = Simulation()
    fired = []
    sim.schedule(1.0, fired.append, True)
    sim.run(0.5)
    assert not fired
    sim.run(1.0)
    assert fired == [True]


def test_every_fires_periodically():
    sim = Simulation()
    times = []
    sim.every(0.010, lambda: times.append(sim.now))
    sim.run(0.095)
    assert len(times) == 9
    assert times[0] == pytest.approx(0.010)
    assert times[-1] == pytest.approx(0.090)


def test_every_rejects_nonpositive_period():
    sim = Simulation()
    with pytest.raises(ValueError):
        sim.every(0.0, lambda: None)


def test_cancel_periodic_process():
    sim = Simulation()
    counter = {"n": 0}

    def tick():
        counter["n"] += 1

    handle = sim.every(0.01, tick)
    sim.run(0.05)
    handle.cancel()
    sim.run(0.05)
    assert counter["n"] == 5


def test_cancel_single_event():
    sim = Simulation()
    fired = []
    handle = sim.schedule(0.1, fired.append, 1)
    handle.cancel()
    sim.run(1.0)
    assert not fired


def test_at_schedules_absolute_time():
    sim = Simulation()
    sim.run(1.0)
    stamped = []
    sim.at(1.5, lambda: stamped.append(sim.now))
    sim.run(1.0)
    assert stamped == [pytest.approx(1.5)]


def test_callbacks_can_schedule_more_events():
    sim = Simulation()
    seen = []

    def first():
        seen.append("first")
        sim.schedule(0.1, lambda: seen.append("nested"))

    sim.schedule(0.1, first)
    sim.run(1.0)
    assert seen == ["first", "nested"]


def test_step_processes_one_event():
    sim = Simulation()
    seen = []
    sim.schedule(0.1, seen.append, "a")
    sim.schedule(0.2, seen.append, "b")
    assert sim.step()
    assert seen == ["a"]
    assert sim.step()
    assert not sim.step()


def test_pending_counts_noncancelled():
    sim = Simulation()
    sim.schedule(0.1, lambda: None)
    handle = sim.schedule(0.2, lambda: None)
    handle.cancel()
    assert sim.pending() == 1
